//! End-to-end pipeline configuration.

use echowrite_dsp::StftConfig;
use echowrite_dtw::classifier::MatchWeights;
use echowrite_profile::mvce::DEFAULT_GUARD_BINS;
use echowrite_profile::SegmentConfig;
use echowrite_spectro::{EnhanceConfig, Normalization};

/// The spectrogram front-end.
///
/// [`Frontend::FullStft`] is the paper's implementation: 8192-point FFTs on
/// the raw 44.1 kHz stream. [`Frontend::Downconverted`] is the paper's
/// Sec. VII-A proposed optimization implemented: complex down-conversion
/// and decimation by `factor`, then `8192/factor`-point FFTs, producing an
/// identical ROI spectrogram (same bin width, same hop) at roughly
/// `factor`× less arithmetic. "This operation does not need to modify main
/// methods" — and indeed the rest of the pipeline and the stored templates
/// are reused unchanged.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Frontend {
    /// Full-rate STFT (the paper's deployed pipeline).
    FullStft,
    /// Down-converted, decimated front-end (the paper's future-work
    /// optimization).
    Downconverted {
        /// Decimation factor; must divide both the FFT size and the hop,
        /// leaving a power-of-two FFT.
        factor: usize,
    },
}

/// How many worker threads the analysis front-end may use for the
/// frame-parallel STFT.
///
/// The frame loop writes disjoint frame-major chunks, so the spectrogram is
/// bitwise identical for every worker count; [`Parallelism::Threads`]\(1\)
/// additionally takes the plain serial loop with no thread scope at all.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Parallelism {
    /// Use [`std::thread::available_parallelism`] workers (the default).
    #[default]
    Auto,
    /// Use exactly `n` workers; `Threads(1)` runs fully serial.
    Threads(usize),
}

impl Parallelism {
    /// Resolves to a concrete worker count for `frames` units of work.
    pub fn workers(self, frames: usize) -> usize {
        let requested = match self {
            Parallelism::Auto => {
                std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
            }
            Parallelism::Threads(n) => n,
        };
        requested.max(1).min(frames.max(1))
    }
}

/// How [`StreamingRecognizer`](crate::StreamingRecognizer) processes
/// incoming audio.
///
/// The incremental path does O(chunk) work per push with bounded memory;
/// the replay path re-analyzes the whole buffered window on every push
/// (the original implementation, kept as the differential oracle). The
/// incremental path requires a causal enhancement configuration:
/// [`Normalization::FixedScale`] and no burst suppression.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StreamingMode {
    /// Incremental when the enhancement configuration permits it
    /// (fixed-scale normalization, no burst suppression), replay otherwise.
    #[default]
    Auto,
    /// Always incremental; validation rejects configs that cannot stream
    /// causally.
    Incremental,
    /// Always full-window replay.
    Replay,
}

/// Configuration of the whole EchoWrite pipeline.
///
/// Defaults are the paper's parameters throughout (Sec. III); see each
/// sub-config for the individual values.
///
/// # Example
///
/// ```
/// use echowrite::EchoWriteConfig;
/// let cfg = EchoWriteConfig::paper();
/// assert_eq!(cfg.carrier_hz, 20_000.0);
/// assert_eq!(cfg.stft.fft_size, 8192);
/// cfg.validate().unwrap();
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct EchoWriteConfig {
    /// STFT parameters (8192-point Hann, 1024 hop at 44.1 kHz).
    pub stft: StftConfig,
    /// Probe-tone carrier frequency in Hz.
    pub carrier_hz: f64,
    /// Half-width of the region of interest around the carrier, Hz
    /// (470.6 Hz from Eq. 1 with v ≤ 4 m/s).
    pub roi_span_hz: f64,
    /// Spectrogram-enhancement parameters (Sec. III-A).
    pub enhance: EnhanceConfig,
    /// Stroke-segmentation parameters (Sec. III-B).
    pub segment: SegmentConfig,
    /// MVCE carrier guard band in bins.
    pub guard_bins: usize,
    /// Number of word candidates offered (paper: 5).
    pub top_k: usize,
    /// Softmin temperature for DTW score → likelihood conversion.
    pub score_temperature: f64,
    /// Composite stroke-matching distance weights.
    pub match_weights: MatchWeights,
    /// The spectrogram front-end.
    pub frontend: Frontend,
    /// Worker threads for the frame-parallel STFT (identical output for
    /// every setting; `Threads(1)` is the bit-for-bit serial reference).
    pub parallelism: Parallelism,
    /// How streaming recognition processes chunks.
    pub streaming: StreamingMode,
}

impl EchoWriteConfig {
    /// The paper's full parameter set.
    pub fn paper() -> Self {
        EchoWriteConfig {
            stft: StftConfig::paper(),
            carrier_hz: 20_000.0,
            roi_span_hz: 470.6,
            enhance: EnhanceConfig::paper(),
            segment: SegmentConfig::paper(),
            guard_bins: DEFAULT_GUARD_BINS,
            top_k: 5,
            score_temperature: 10.0,
            match_weights: MatchWeights::stroke_matching(),
            frontend: Frontend::FullStft,
            parallelism: Parallelism::Auto,
            streaming: StreamingMode::Auto,
        }
    }

    /// The paper configuration with the Sec. VII-A down-sampling
    /// optimization enabled (decimation by `factor`, typically 32).
    pub fn downsampled(factor: usize) -> Self {
        EchoWriteConfig { frontend: Frontend::Downconverted { factor }, ..EchoWriteConfig::paper() }
    }

    /// The paper configuration with causal (streaming-capable) enhancement:
    /// fixed-scale normalization instead of the non-causal global maximum,
    /// so [`StreamingMode::Auto`] resolves to the incremental path.
    pub fn streaming() -> Self {
        EchoWriteConfig { enhance: EnhanceConfig::streaming(), ..EchoWriteConfig::paper() }
    }

    /// [`EchoWriteConfig::streaming`] with the decimating front-end.
    pub fn streaming_downsampled(factor: usize) -> Self {
        EchoWriteConfig {
            enhance: EnhanceConfig::streaming(),
            frontend: Frontend::Downconverted { factor },
            ..EchoWriteConfig::paper()
        }
    }

    /// Whether the enhancement chain is causal enough for the incremental
    /// streaming path (every stage decidable without future context).
    pub fn enhancement_is_causal(&self) -> bool {
        matches!(self.enhance.normalization, Normalization::FixedScale(_))
            && self.enhance.burst_suppression.is_none()
    }

    /// Resolves [`EchoWriteConfig::streaming`] mode to a concrete choice.
    pub fn streaming_is_incremental(&self) -> bool {
        match self.streaming {
            StreamingMode::Replay => false,
            StreamingMode::Incremental => true,
            StreamingMode::Auto => self.enhancement_is_causal(),
        }
    }

    /// Validates all sub-configurations and cross-parameter constraints.
    ///
    /// # Errors
    ///
    /// Returns a message describing the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        self.enhance.validate()?;
        self.segment.validate()?;
        if self.carrier_hz <= 0.0 || self.carrier_hz >= self.stft.sample_rate / 2.0 {
            return Err(format!(
                "carrier {} Hz outside (0, Nyquist {})",
                self.carrier_hz,
                self.stft.sample_rate / 2.0
            ));
        }
        if self.roi_span_hz <= 0.0 {
            return Err("ROI span must be positive".to_string());
        }
        if self.carrier_hz + self.roi_span_hz >= self.stft.sample_rate / 2.0 {
            return Err("ROI exceeds the Nyquist frequency".to_string());
        }
        if self.top_k == 0 {
            return Err("top_k must be positive".to_string());
        }
        if self.score_temperature <= 0.0 {
            return Err("score temperature must be positive".to_string());
        }
        let bin_hz = self.stft.sample_rate / self.stft.fft_size as f64;
        if (self.guard_bins as f64) * bin_hz > self.roi_span_hz / 2.0 {
            return Err("guard band swallows most of the ROI".to_string());
        }
        if self.parallelism == Parallelism::Threads(0) {
            return Err("parallelism needs at least one thread".to_string());
        }
        if self.streaming == StreamingMode::Incremental && !self.enhancement_is_causal() {
            return Err(
                "incremental streaming requires Normalization::FixedScale and no burst \
                 suppression (global-max normalization is non-causal)"
                    .to_string(),
            );
        }
        if let Frontend::Downconverted { factor } = self.frontend {
            if factor < 2 {
                return Err("decimation factor must be at least 2".to_string());
            }
            if !self.stft.fft_size.is_multiple_of(factor) || !(self.stft.fft_size / factor).is_power_of_two()
            {
                return Err(format!(
                    "decimation factor {factor} must divide the FFT size into a power of two"
                ));
            }
            if !self.stft.hop.is_multiple_of(factor) {
                return Err(format!("decimation factor {factor} must divide the hop"));
            }
            let out_nyquist = self.stft.sample_rate / factor as f64 / 2.0;
            if out_nyquist < 1.2 * self.roi_span_hz {
                return Err(format!(
                    "decimated band ±{out_nyquist:.0} Hz cannot contain the ±{:.0} Hz ROI",
                    self.roi_span_hz
                ));
            }
        }
        Ok(())
    }
}

impl Default for EchoWriteConfig {
    fn default() -> Self {
        EchoWriteConfig::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_is_valid() {
        EchoWriteConfig::paper().validate().unwrap();
    }

    #[test]
    fn rejects_carrier_above_nyquist() {
        let mut c = EchoWriteConfig::paper();
        c.carrier_hz = 23_000.0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn rejects_roi_crossing_nyquist() {
        let mut c = EchoWriteConfig::paper();
        c.roi_span_hz = 3_000.0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn rejects_zero_top_k_and_bad_temperature() {
        let mut c = EchoWriteConfig::paper();
        c.top_k = 0;
        assert!(c.validate().is_err());
        let mut c = EchoWriteConfig::paper();
        c.score_temperature = 0.0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn rejects_oversized_guard() {
        let mut c = EchoWriteConfig::paper();
        c.guard_bins = 100;
        assert!(c.validate().is_err());
    }

    #[test]
    fn rejects_zero_threads() {
        let mut c = EchoWriteConfig::paper();
        c.parallelism = Parallelism::Threads(0);
        assert!(c.validate().is_err());
    }

    #[test]
    fn parallelism_resolves_workers() {
        assert_eq!(Parallelism::Threads(4).workers(100), 4);
        assert_eq!(Parallelism::Threads(4).workers(2), 2);
        assert_eq!(Parallelism::Threads(0).workers(10), 1);
        assert!(Parallelism::Auto.workers(1_000) >= 1);
        assert_eq!(Parallelism::default(), Parallelism::Auto);
    }

    #[test]
    fn streaming_mode_resolution() {
        let paper = EchoWriteConfig::paper();
        assert!(!paper.streaming_is_incremental(), "global-max must fall back to replay");
        let streaming = EchoWriteConfig::streaming();
        streaming.validate().unwrap();
        assert!(streaming.streaming_is_incremental());
        let forced = EchoWriteConfig { streaming: StreamingMode::Replay, ..streaming };
        assert!(!forced.streaming_is_incremental(), "replay override wins");
        EchoWriteConfig::streaming_downsampled(32).validate().unwrap();
    }

    #[test]
    fn rejects_incremental_mode_with_non_causal_enhancement() {
        let c = EchoWriteConfig {
            streaming: StreamingMode::Incremental,
            ..EchoWriteConfig::paper()
        };
        assert!(c.validate().unwrap_err().contains("non-causal"));
        let c = EchoWriteConfig {
            streaming: StreamingMode::Incremental,
            ..EchoWriteConfig::streaming()
        };
        assert!(c.validate().is_ok());
    }

    #[test]
    fn propagates_subconfig_errors() {
        let mut c = EchoWriteConfig::paper();
        c.enhance.median_size = 2;
        assert!(c.validate().is_err());
        let mut c = EchoWriteConfig::paper();
        c.segment.beta_hz_per_s = -5.0;
        assert!(c.validate().is_err());
    }
}
