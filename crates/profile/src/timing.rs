//! Wall-clock stage timing, quarantined.
//!
//! The Fig. 19 experiments need real wall-clock stage costs, but echolint's
//! determinism rule bans `std::time` from the pipeline crates so that
//! recognition *results* can never depend on the environment. This module
//! is the one sanctioned home for clock reads (`crates/profile` is the
//! measurement crate): the rest of the pipeline times stages through
//! [`Stopwatch`] and stays clock-free at the source level.

use std::time::Instant;

/// A started monotonic stopwatch.
///
/// # Example
///
/// ```
/// use echowrite_profile::Stopwatch;
/// let sw = Stopwatch::start();
/// let ms = sw.elapsed_ms();
/// assert!(ms >= 0.0);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    start: Instant,
}

impl Stopwatch {
    /// Starts timing now.
    #[must_use]
    pub fn start() -> Self {
        Stopwatch { start: Instant::now() }
    }

    /// Milliseconds elapsed since [`Stopwatch::start`].
    #[must_use]
    pub fn elapsed_ms(&self) -> f64 {
        self.start.elapsed().as_secs_f64() * 1e3
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elapsed_is_monotonic_and_nonnegative() {
        let sw = Stopwatch::start();
        let a = sw.elapsed_ms();
        let b = sw.elapsed_ms();
        assert!(a >= 0.0);
        assert!(b >= a);
    }
}
