//! Integration tests for the future-work features implemented beyond the
//! published system: the down-converted front-end, burst suppression, the
//! streaming text session, digit entry, and WAV round-trips.

use echowrite::{EchoWrite, EchoWriteConfig, SessionEvent, TextSession};
use echowrite_gesture::digits::DigitScheme;
use echowrite_gesture::{Stroke, Writer, WriterParams};
use echowrite_spectro::EnhanceConfig;
use echowrite_synth::{DeviceProfile, EnvironmentProfile, Scene};
use std::sync::OnceLock;

fn engine() -> &'static EchoWrite {
    static E: OnceLock<EchoWrite> = OnceLock::new();
    E.get_or_init(EchoWrite::new)
}

fn render(strokes: &[Stroke], seed: u64, env: EnvironmentProfile) -> Vec<f64> {
    let perf = Writer::new(WriterParams::nominal(), seed).write_sequence(strokes);
    Scene::new(DeviceProfile::mate9(), env, seed).render(&perf.trajectory)
}

#[test]
fn downsampled_engine_recognizes_strokes_end_to_end() {
    let fast = EchoWrite::with_config(EchoWriteConfig::downsampled(32));
    let mut hits = 0;
    for (i, &stroke) in Stroke::ALL.iter().enumerate() {
        let audio = render(&[stroke], 700 + i as u64, EnvironmentProfile::meeting_room());
        if fast.recognize_strokes(&audio).strokes() == vec![stroke] {
            hits += 1;
        }
    }
    assert!(hits >= 4, "downsampled engine got only {hits}/6");
}

#[test]
fn downsampled_and_full_agree_on_words() {
    let fast = EchoWrite::with_config(EchoWriteConfig::downsampled(32));
    let full = engine();
    let seq = full.scheme().encode_word("the").unwrap();
    let audio = render(&seq, 42, EnvironmentProfile::meeting_room());
    let a = full.recognize_strokes(&audio).strokes();
    let b = fast.recognize_strokes(&audio).strokes();
    assert_eq!(a.len(), b.len(), "front-ends segment differently: {a:?} vs {b:?}");
}

#[test]
fn burst_suppressed_engine_matches_baseline_in_clean_rooms() {
    let mut cfg = EchoWriteConfig::paper();
    cfg.enhance = EnhanceConfig::with_burst_suppression();
    let suppressed = EchoWrite::with_config(cfg);
    let baseline = engine();
    for (i, &stroke) in [Stroke::S2, Stroke::S5].iter().enumerate() {
        let audio = render(&[stroke], 50 + i as u64, EnvironmentProfile::meeting_room());
        assert_eq!(
            baseline.recognize_strokes(&audio).strokes(),
            suppressed.recognize_strokes(&audio).strokes(),
            "suppression changed a clean-room result"
        );
    }
}

#[test]
fn text_session_enters_a_two_word_phrase() {
    let e = engine();
    let seqs = vec![
        e.scheme().encode_word("the").unwrap(),
        e.scheme().encode_word("me").unwrap(),
    ];
    let mut writer = Writer::new(WriterParams::nominal(), 8);
    let perf = writer.write_phrase(&seqs, 3.2);
    let mut traj = perf.trajectory;
    let rest = *traj.points().last().unwrap();
    traj.hold(rest, 3.5);
    let audio = Scene::new(DeviceProfile::mate9(), EnvironmentProfile::meeting_room(), 8)
        .render(&traj);

    let mut session = TextSession::new(e);
    let mut committed = 0;
    for chunk in audio.chunks(5 * 1024) {
        for ev in session.push(chunk) {
            if matches!(ev, SessionEvent::Word { .. }) {
                committed += 1;
            }
        }
    }
    if session.flush().is_some() {
        committed += 1;
    }
    assert_eq!(committed, 2, "text: {:?}", session.text());
    assert_eq!(session.text().split_whitespace().count(), 2);
}

#[test]
fn digits_recognized_through_the_pipeline() {
    let e = engine();
    let scheme = DigitScheme::standard();
    let mut correct = 0;
    for d in [1u8, 2, 6, 9] {
        let strokes = scheme.sequence_for(d).to_vec();
        let audio = render(&strokes, 300 + d as u64, EnvironmentProfile::meeting_room());
        let observed = e.recognize_strokes(&audio).strokes();
        let ranked = scheme.decode_ranked(&observed, 0.93);
        if ranked[0].0 == d {
            correct += 1;
        }
    }
    assert!(correct >= 3, "only {correct}/4 digits decoded");
}

#[test]
fn wav_roundtrip_preserves_recognition() {
    let e = engine();
    let seq = e.scheme().encode_word("and").unwrap();
    let audio = render(&seq, 15, EnvironmentProfile::meeting_room());
    let direct = e.recognize_strokes(&audio).strokes();

    let mut buf = Vec::new();
    echowrite_dsp::wav::write_wav(&mut buf, &audio, 44_100).unwrap();
    let decoded = echowrite_dsp::wav::read_wav(buf.as_slice()).unwrap();
    let via_wav = e.recognize_strokes(&decoded.samples).strokes();
    assert_eq!(direct, via_wav, "16-bit quantization changed recognition");
}

#[test]
fn full_edit_decoder_recovers_a_dropped_stroke_end_to_end() {
    let e = engine();
    // Drop one stroke of "people" at the stroke level (simulating a missed
    // detection) and decode both ways.
    let mut observed = e.scheme().encode_word("people").unwrap();
    observed.remove(2);
    let substitution_only = e.decoder().decode(&observed);
    let general = e.decoder().decode_full_edit(&observed, 0.05);
    assert!(!substitution_only.iter().any(|c| c.word == "people"));
    assert!(general.iter().any(|c| c.word == "people"));
}

#[test]
fn session_metrics_on_transcripts() {
    use echowrite_sim::metrics::{msd_error_rate, strokes_per_character};
    let presented = ["the", "people", "by", "the", "water"];
    let error_free = msd_error_rate(&presented, &presented);
    assert_eq!(error_free, 0.0);
    let garbled = ["the", "purple", "by", "water"];
    let rate = msd_error_rate(&presented, &garbled);
    assert!(rate > 0.0 && rate < 1.0);
    let spc = strokes_per_character(&presented, engine().scheme());
    assert!((spc - 1.0).abs() < 1e-9);
}
