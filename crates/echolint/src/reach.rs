//! Graph-powered reachability rules.
//!
//! Three rule families run over the [`crate::callgraph::CallGraph`]:
//!
//! - **panic-reach** — a breadth-first sweep from every declared
//!   `// echolint: entry` function; any unsanctioned panic site in a
//!   reachable function is reported *with the full call chain* from the
//!   entry point, so the diagnostic explains why a panic three calls below
//!   `Worker::drain` matters.
//! - **alloc-reach** — the same sweep from every hot kernel (`*_into` or
//!   `// echolint: hot`), reporting allocation sites in reachable *non-hot*
//!   functions (a hot function's own sites are the per-file `no-alloc-hot`
//!   rule's job — the graph rule adds the transitive closure, not a copy).
//! - **unsafe-boundary** (wrapper-reachability half) — a kernel *lane*
//!   function (defined in `crates/dsp/src/kernels/` outside `mod.rs`) called
//!   from outside the kernels module bypasses the safe dispatch wrappers and
//!   is reported at the call site.
//!
//! Because the graph is conservative ("unresolved → assume worst"), chains
//! are shortest witnesses, not unique ones: BFS parents give one minimal
//! path per reachable function, rendered as `a → b → c`.

use crate::callgraph::CallGraph;
use crate::rules::{Diagnostic, Rule};
use crate::symbols::FileSymbols;
use std::collections::BTreeMap;
use std::collections::VecDeque;

/// Sentinel parent for BFS sources.
const ROOT: usize = usize::MAX;

/// Multi-source BFS; returns per-node parent indices (`ROOT` for sources,
/// `usize::MAX - 1` for unreached). Sources are visited in the given order
/// and edges in sorted callee order, so parents — and therefore the chains
/// in diagnostics — are deterministic.
fn bfs(g: &CallGraph, sources: &[usize]) -> Vec<usize> {
    const UNREACHED: usize = usize::MAX - 1;
    let mut parent = vec![UNREACHED; g.nodes.len()];
    let mut queue: VecDeque<usize> = VecDeque::new();
    for &s in sources {
        if parent[s] == UNREACHED {
            parent[s] = ROOT;
            queue.push_back(s);
        }
    }
    while let Some(i) = queue.pop_front() {
        for e in &g.edges[i] {
            if parent[e.callee] == UNREACHED {
                parent[e.callee] = i;
                queue.push_back(e.callee);
            }
        }
    }
    parent
}

/// Whether `node` was reached by [`bfs`].
fn reached(parent: &[usize], node: usize) -> bool {
    parent[node] != usize::MAX - 1
}

/// The shortest witness chain from a BFS source to `node`, rendered as
/// `source → … → node` over qualified names.
fn chain(g: &CallGraph, parent: &[usize], node: usize) -> String {
    let mut quals: Vec<&str> = Vec::new();
    let mut i = node;
    loop {
        quals.push(&g.nodes[i].qual);
        if parent[i] == ROOT {
            break;
        }
        i = parent[i];
    }
    quals.reverse();
    quals.join(" → ")
}

/// Runs the three graph rule families. `files` must be the same tables the
/// graph was built from (used for allow-marker lookup at call sites).
pub fn graph_rules(files: &[FileSymbols], g: &CallGraph) -> Vec<Diagnostic> {
    let by_file: BTreeMap<&str, &FileSymbols> =
        files.iter().map(|f| (f.file.as_str(), f)).collect();
    let mut diags = Vec::new();

    // panic-reach: entry points → every unsanctioned panic site in reach.
    let from_entries = bfs(g, &g.entries());
    for (i, n) in g.nodes.iter().enumerate() {
        if !reached(&from_entries, i) || n.panic_sites.is_empty() {
            continue;
        }
        let chain = chain(g, &from_entries, i);
        for site in &n.panic_sites {
            diags.push(Diagnostic {
                file: n.file.clone(),
                line: site.line,
                rule: Rule::PanicReach,
                message: format!("{}; call chain: {}", site.what, chain),
            });
        }
    }

    // alloc-reach: hot kernels → allocation sites in reachable non-hot fns.
    // (A hot fn's own body is the per-file no-alloc-hot rule's territory.)
    let from_hot = bfs(g, &g.hot_roots());
    for (i, n) in g.nodes.iter().enumerate() {
        if n.hot || !reached(&from_hot, i) || n.alloc_sites.is_empty() {
            continue;
        }
        let chain = chain(g, &from_hot, i);
        for site in &n.alloc_sites {
            diags.push(Diagnostic {
                file: n.file.clone(),
                line: site.line,
                rule: Rule::AllocReach,
                message: format!("{} reachable from hot kernel; call chain: {}", site.what, chain),
            });
        }
    }

    // unsafe-boundary: lane fns must be reached only through the kernels
    // module's safe wrappers — a direct call from outside is a bypass.
    for (i, n) in g.nodes.iter().enumerate() {
        if n.simd_kernels {
            continue;
        }
        for e in &g.edges[i] {
            let callee = &g.nodes[e.callee];
            if !callee.simd_lane {
                continue;
            }
            let allowed = by_file
                .get(n.file.as_str())
                .is_some_and(|f| f.allows_at(Rule::UnsafeBoundary, e.line));
            if !allowed {
                diags.push(Diagnostic {
                    file: n.file.clone(),
                    line: e.line,
                    rule: Rule::UnsafeBoundary,
                    message: format!(
                        "kernel lane `{}` called from outside crates/dsp/src/kernels — go through the safe dispatch wrapper",
                        callee.qual
                    ),
                });
            }
        }
    }

    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::classify;
    use crate::symbols::file_symbols;
    use std::path::Path;

    fn run(files: &[(&str, &str)]) -> Vec<Diagnostic> {
        let syms: Vec<_> = files
            .iter()
            .map(|(rel, src)| file_symbols(rel, src, &classify(Path::new(rel))))
            .collect();
        let g = CallGraph::build(&syms);
        graph_rules(&syms, &g)
    }

    #[test]
    fn panic_three_calls_below_entry_reports_the_chain() {
        let d = run(&[(
            "crates/core/src/a.rs",
            "// echolint: entry\nfn top() { mid(); }\nfn mid() { low(); }\nfn low() { x.unwrap(); }\n",
        )]);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, Rule::PanicReach);
        assert_eq!(d[0].line, 4);
        assert!(
            d[0].message.contains("core::a::top → core::a::mid → core::a::low"),
            "{}",
            d[0].message
        );
    }

    #[test]
    fn unreachable_panics_are_silent() {
        let d = run(&[(
            "crates/core/src/a.rs",
            "// echolint: entry\nfn top() {}\nfn orphan() { x.unwrap(); }\n",
        )]);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn alloc_reach_skips_the_hot_body_itself() {
        let d = run(&[(
            "crates/dsp/src/a.rs",
            "fn fill_into(o: &mut [f64]) { let v = vec![0.0]; helper(); }\nfn helper() { let v = vec![1.0]; }\n",
        )]);
        // The vec! inside fill_into is no-alloc-hot's job; only helper's
        // allocation is a graph finding.
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, Rule::AllocReach);
        assert_eq!(d[0].line, 2);
        assert!(d[0].message.contains("fill_into → dsp::a::helper"), "{}", d[0].message);
    }

    #[test]
    fn lane_called_from_outside_kernels_is_a_bypass() {
        let d = run(&[
            ("crates/core/src/a.rs", "fn go() { x86::mul_lane(); }\n"),
            ("crates/dsp/src/kernels/x86.rs", "fn mul_lane() {}\n"),
        ]);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, Rule::UnsafeBoundary);
        assert_eq!(d[0].file, "crates/core/src/a.rs");
        assert!(d[0].message.contains("dsp::kernels::x86::mul_lane"), "{}", d[0].message);
    }

    #[test]
    fn lane_called_from_kernels_mod_is_sanctioned() {
        let d = run(&[
            ("crates/dsp/src/kernels/mod.rs", "fn wrap() { x86::mul_lane(); }\n"),
            ("crates/dsp/src/kernels/x86.rs", "fn mul_lane() {}\n"),
        ]);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn allow_marker_sanctions_sites_and_call_sites() {
        let d = run(&[(
            "crates/core/src/a.rs",
            "// echolint: entry\nfn top() {\n// echolint: allow(panic-reach) -- input validated at the boundary\nx.unwrap();\n}\n",
        )]);
        assert!(d.is_empty(), "{d:?}");
        let d = run(&[
            (
                "crates/core/src/a.rs",
                "fn go() {\n// echolint: allow(unsafe-boundary) -- scalar lane is safe by construction\nx86::mul_lane();\n}\n",
            ),
            ("crates/dsp/src/kernels/x86.rs", "fn mul_lane() {}\n"),
        ]);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn cycles_terminate_and_still_report() {
        let d = run(&[(
            "crates/core/src/a.rs",
            "// echolint: entry\nfn ping() { pong(); }\nfn pong() { ping(); boom(); }\nfn boom() { panic!(\"x\"); }\n",
        )]);
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("ping → core::a::pong → core::a::boom"), "{}", d[0].message);
    }
}
