//! `ew` — the EchoWrite command-line tool.
//!
//! ```text
//! ew synth <word> <out.wav> [--env meeting|lab|resting] [--seed N]
//! ew recognize <in.wav> [--downsampled]
//! ew decode <S1> <S2> ... [--full-edit]
//! ew templates
//! ew scheme
//! ```
//!
//! `synth` renders a simulated microphone trace of a user writing `word`;
//! `recognize` runs the full pipeline on any 16-bit PCM WAV (real
//! recordings welcome — the pipeline expects a 20 kHz probe tone in the
//! audio); `decode` runs the Bayesian word decoder on a stroke sequence;
//! `templates` and `scheme` print the intrinsic profiles and the
//! letter→stroke mapping.

use echowrite::{EchoWrite, EchoWriteConfig};
use echowrite_dsp::wav;
use echowrite_gesture::{Stroke, Writer, WriterParams};
use echowrite_synth::{DeviceProfile, EnvironmentProfile, Scene};

fn usage() -> ! {
    eprintln!(
        "usage:\n  ew synth <word> <out.wav> [--env meeting|lab|resting] [--seed N]\n  \
         ew recognize <in.wav> [--downsampled]\n  \
         ew decode <S1> <S2> ... [--full-edit]\n  \
         ew templates\n  \
         ew scheme"
    );
    std::process::exit(2);
}

fn environment(name: &str) -> EnvironmentProfile {
    match name {
        "meeting" => EnvironmentProfile::meeting_room(),
        "lab" => EnvironmentProfile::lab_area(),
        "resting" => EnvironmentProfile::resting_zone(),
        other => {
            eprintln!("unknown environment {other:?} (meeting|lab|resting)");
            std::process::exit(2);
        }
    }
}

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("synth") => cmd_synth(&args[1..]),
        Some("recognize") => cmd_recognize(&args[1..]),
        Some("decode") => cmd_decode(&args[1..]),
        Some("templates") => cmd_templates(),
        Some("scheme") => cmd_scheme(),
        _ => usage(),
    }
}

fn cmd_synth(args: &[String]) {
    let (word, path) = match (args.first(), args.get(1)) {
        (Some(w), Some(p)) if !w.starts_with("--") => (w.clone(), p.clone()),
        _ => usage(),
    };
    let env = environment(&flag_value(args, "--env").unwrap_or_else(|| "meeting".into()));
    let seed: u64 = flag_value(args, "--seed")
        .map(|s| s.parse().unwrap_or(1))
        .unwrap_or(1);

    let engine = EchoWrite::new();
    let strokes = engine.scheme().encode_word(&word).unwrap_or_else(|e| {
        eprintln!("cannot encode {word:?}: {e}");
        std::process::exit(1);
    });
    let perf = Writer::new(WriterParams::nominal(), seed).write_sequence(&strokes);
    let mic = Scene::new(DeviceProfile::mate9(), env, seed).render(&perf.trajectory);
    wav::write_wav_file(&path, &mic, 44_100).unwrap_or_else(|e| {
        eprintln!("cannot write {path}: {e}");
        std::process::exit(1);
    });
    println!(
        "wrote {path}: {:.1}s of audio, strokes [{}]",
        mic.len() as f64 / 44_100.0,
        echowrite_gesture::stroke::format_sequence(&strokes)
    );
}

fn cmd_recognize(args: &[String]) {
    let path = match args.first() {
        Some(p) if !p.starts_with("--") => p.clone(),
        _ => usage(),
    };
    let engine = if args.iter().any(|a| a == "--downsampled") {
        EchoWrite::with_config(EchoWriteConfig::downsampled(32))
    } else {
        EchoWrite::new()
    };
    let audio = wav::read_wav_file(&path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        std::process::exit(1);
    });
    if (audio.sample_rate as f64 - engine.config().stft.sample_rate).abs() > 1.0 {
        eprintln!(
            "warning: {path} is {} Hz; the pipeline expects {} Hz",
            audio.sample_rate,
            engine.config().stft.sample_rate
        );
    }
    let rec = engine.recognize_word(&audio.samples);
    println!(
        "strokes: [{}] ({} ms processing)",
        echowrite_gesture::stroke::format_sequence(&rec.strokes.strokes()),
        rec.strokes.timing.total_ms().round()
    );
    let candidates = if rec.candidates.is_empty() {
        // Nothing at substitution distance — fall back to general
        // edit-distance-1 decoding (recovers dropped/extra strokes).
        let fallback = engine
            .decoder()
            .decode_full_edit(&rec.strokes.strokes(), 0.05);
        if !fallback.is_empty() {
            println!("(no exact/substitution match; edit-distance-1 fallback)");
        }
        fallback
    } else {
        rec.candidates
    };
    if candidates.is_empty() {
        println!("candidates: (none)");
    } else {
        println!("candidates:");
        for (i, c) in candidates.iter().enumerate() {
            println!("  {}. {}", i + 1, c.word);
        }
    }
}

fn cmd_decode(args: &[String]) {
    let full_edit = args.iter().any(|a| a == "--full-edit");
    let strokes: Vec<Stroke> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(|a| {
            a.parse().unwrap_or_else(|e| {
                eprintln!("{e}");
                std::process::exit(2);
            })
        })
        .collect();
    if strokes.is_empty() {
        usage();
    }
    let engine = EchoWrite::new();
    let candidates = if full_edit {
        engine.decoder().decode_full_edit(&strokes, 0.05)
    } else {
        engine.decode_sequence(&strokes)
    };
    if candidates.is_empty() {
        println!("no dictionary match for [{}]", echowrite_gesture::stroke::format_sequence(&strokes));
    } else {
        for (i, c) in candidates.iter().enumerate() {
            let marker = if c.corrected { " (corrected)" } else { "" };
            println!("{}. {}{}", i + 1, c.word, marker);
        }
    }
}

fn cmd_templates() {
    let engine = EchoWrite::new();
    for (s, t) in engine.classifier().templates().iter() {
        let resampled = echowrite_dsp::util::resample_linear(t, 16);
        let cells: Vec<String> = resampled.iter().map(|v| format!("{v:>4.0}")).collect();
        println!("{s} ({:>2} frames): {}", t.len(), cells.join(" "));
    }
}

fn cmd_scheme() {
    let engine = EchoWrite::new();
    for s in Stroke::ALL {
        let letters: String = engine.scheme().letters_for(s).iter().collect();
        println!("{s} {}  {}  ({})", s.glyph(), letters, s.description());
    }
}
