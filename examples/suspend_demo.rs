//! Session suspend/resume end to end (DESIGN.md §6.10): a writer gets
//! halfway through a word, the manager drains the live session into an
//! on-disk [`FileStore`] and shuts down, a *fresh* manager over the same
//! directory thaws the session on a bare `push`, and the finished word
//! decodes as if nothing happened — the transcript is bitwise the one an
//! uninterrupted session would have produced.
//!
//! ```sh
//! cargo run --release --example suspend_demo
//! ```

use echowrite::{EchoWrite, EchoWriteConfig, Parallelism};
use echowrite_gesture::{stroke::format_sequence, Stroke, Writer, WriterParams};
use echowrite_serve::{
    ReapPolicy, ServeConfig, ServeEvent, SessionId, SessionManager, SubmitVerdict,
};
use echowrite_snapshot::{FileStore, SnapshotStore};
use echowrite_synth::{DeviceProfile, EnvironmentProfile, Scene};
use std::sync::Arc;

/// The Android app's 5-frame push size.
const CHUNK: usize = 5 * 1024;

fn render(strokes: &[Stroke], seed: u64) -> Vec<f64> {
    let perf = Writer::new(WriterParams::nominal(), seed).write_sequence(strokes);
    let mut traj = perf.trajectory;
    let last = *traj.points().last().expect("non-empty trajectory");
    traj.hold(last, 1.0);
    Scene::new(DeviceProfile::mate9(), EnvironmentProfile::meeting_room(), seed).render(&traj)
}

fn serve_config() -> ServeConfig {
    ServeConfig {
        shards: Parallelism::Threads(1),
        queue_capacity: 64,
        reap_policy: ReapPolicy::SuspendToStore,
        ..ServeConfig::default()
    }
}

/// Pushes `audio[range]` chunk by chunk, quiesces, and appends the
/// session's recognized strokes to `transcript`.
fn play(
    manager: &SessionManager,
    id: SessionId,
    audio: &[f64],
    range: std::ops::Range<usize>,
    transcript: &mut Vec<Stroke>,
) {
    let mut pos = range.start;
    while pos < range.end {
        let end = (pos + CHUNK).min(range.end);
        match manager.push(id, &audio[pos..end]) {
            SubmitVerdict::Enqueued => pos = end,
            // One writer against an idle manager: backpressure just means
            // "let the shard catch up".
            SubmitVerdict::QueueFull { .. } => manager.quiesce(),
            SubmitVerdict::Shedding => panic!("demo session shed"),
        }
    }
    manager.quiesce();
    let mut events = Vec::new();
    manager.try_events(&mut events);
    for ev in events {
        match ev {
            ServeEvent::Segment { segment, .. } => {
                if let Some(cls) = segment.classification {
                    transcript.push(cls.stroke);
                }
            }
            ServeEvent::Finished { session } => println!("  session {} finished", session.0),
            ServeEvent::Reaped { session } => println!("  session {} reaped?!", session.0),
        }
    }
}

fn main() {
    // "my" in the letter→stroke scheme: m → S4, y → S2.
    let strokes = [Stroke::S4, Stroke::S2];
    let id = SessionId(7);
    let audio = render(&strokes, 7);
    let half = (audio.len() / 2 / CHUNK) * CHUNK;

    let engine = EchoWrite::with_config(EchoWriteConfig::streaming());
    let decoder = engine.clone();
    let dir = std::env::temp_dir().join(format!("echowrite-suspend-demo-{}", std::process::id()));
    let store = Arc::new(FileStore::new(&dir).expect("snapshot directory"));
    let mut transcript = Vec::new();

    println!("writing [{}], pausing mid-word after {half} samples", format_sequence(&strokes));

    // First life: half the word, then drain to disk and shut down.
    let manager = SessionManager::with_snapshot_store(engine.clone(), serve_config(), store.clone())
        .expect("valid serve config");
    assert_eq!(manager.open(id), SubmitVerdict::Enqueued);
    play(&manager, id, &audio, 0..half, &mut transcript);
    let report = manager.shutdown_to_store();
    println!(
        "manager gone: {} session suspended into {}",
        report.metrics.sessions_suspended,
        dir.display()
    );
    for file in store.sessions().expect("store listing") {
        println!("  on disk: session {file:#018x}");
    }

    // Second life: a fresh manager over the same directory. No re-open,
    // no replay — the first push for the id thaws it from the store.
    let manager = SessionManager::with_snapshot_store(engine, serve_config(), store)
        .expect("valid serve config");
    play(&manager, id, &audio, half..audio.len(), &mut transcript);
    assert_eq!(manager.finish(id), SubmitVerdict::Enqueued);
    play(&manager, id, &audio, audio.len()..audio.len(), &mut transcript);
    let report = manager.shutdown();
    println!("resumed: {} session thawed from disk", report.metrics.sessions_resumed);

    let word = decoder
        .decode_sequence(&transcript)
        .first()
        .map(|c| c.word.clone())
        .unwrap_or_else(|| "(no candidate)".to_string());
    println!(
        "\nwrote [{}]  recognized [{}]  top word across the restart: {word}",
        format_sequence(&strokes),
        format_sequence(&transcript)
    );

    let _ = std::fs::remove_dir_all(&dir);
}
