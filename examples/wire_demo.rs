//! The TCP wire front-end end to end: a `WireServer` on an ephemeral
//! loopback port, three client connections streaming stroke audio through
//! real sockets, backpressure verdicts surfaced to the clients, and the
//! server's Prometheus dump (including the `wire_*` counters) at the end.
//!
//! ```sh
//! cargo run --release --example wire_demo
//! # capture a Chrome trace with the wire lanes:
//! cargo run --release --example wire_demo -- --trace trace.json
//! ```

use echowrite::{EchoWrite, EchoWriteConfig, Parallelism};
use echowrite_gesture::{stroke::format_sequence, Stroke, Writer, WriterParams};
use echowrite_serve::{ServeConfig, SessionManager};
use echowrite_synth::{DeviceProfile, EnvironmentProfile, Scene};
use echowrite_wire::{Request, Response, WireClient, WireServer};

fn render(strokes: &[Stroke], seed: u64) -> Vec<f64> {
    let perf = Writer::new(WriterParams::nominal(), seed).write_sequence(strokes);
    let mut traj = perf.trajectory;
    let last = *traj.points().last().expect("non-empty trajectory");
    traj.hold(last, 1.0);
    Scene::new(DeviceProfile::mate9(), EnvironmentProfile::meeting_room(), seed).render(&traj)
}

/// Parses `--trace <path>` from the command line, if present.
fn trace_path() -> Option<String> {
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--trace" {
            return Some(args.next().expect("--trace requires a file path"));
        }
    }
    None
}

/// One client: connects, streams its audio in 5120-sample chunks with at
/// most one request outstanding, then drains events until `Finished`.
fn run_client(
    addr: std::net::SocketAddr,
    session: u64,
    audio: &[f64],
) -> (Vec<Stroke>, u64) {
    let mut client = WireClient::connect(addr).expect("loopback connect");
    let mut queue_full = 0u64;
    let mut ask = |client: &mut WireClient, req: &Request| loop {
        match client.request(req).expect("verdict") {
            Response::Enqueued { .. } => return,
            Response::QueueFull { retry_after_chunks, .. } => {
                queue_full += 1;
                println!(
                    "session {session}: backpressure, retry after ~{retry_after_chunks} chunks"
                );
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            Response::Shedding { .. } => panic!("demo fleet must not be shed"),
            other => panic!("request() returns only verdicts, got {other:?}"),
        }
    };
    ask(&mut client, &Request::Open { session });
    for chunk in audio.chunks(5 * 1024) {
        ask(&mut client, &Request::Push { session, samples: chunk.to_vec() });
    }
    ask(&mut client, &Request::Finish { session });

    let mut strokes = Vec::new();
    loop {
        match client.next_event().expect("event stream") {
            Response::Segment { classification, .. } => {
                if let Some(cls) = classification {
                    strokes.push(cls.stroke);
                }
            }
            Response::Finished { .. } => break,
            other => panic!("unexpected event {other:?}"),
        }
    }
    (strokes, queue_full)
}

fn main() {
    let trace_path = trace_path();
    let recorder = trace_path
        .as_ref()
        .map(|_| echowrite_trace::install_recording(echowrite_trace::DEFAULT_CAPACITY));

    let writers: Vec<(u64, Vec<Stroke>)> = vec![
        (1, vec![Stroke::S2, Stroke::S5]),
        (2, vec![Stroke::S4, Stroke::S1]),
        (3, vec![Stroke::S6, Stroke::S2, Stroke::S1]),
    ];
    let audios: Vec<(u64, Vec<f64>)> =
        writers.iter().map(|(id, strokes)| (*id, render(strokes, *id))).collect();

    let engine = EchoWrite::with_config(EchoWriteConfig::streaming());
    let decoder = engine.clone();
    let manager = SessionManager::new(
        engine,
        ServeConfig {
            shards: Parallelism::Threads(2),
            queue_capacity: 64,
            ..ServeConfig::default()
        },
    )
    .expect("valid serve config");
    let server = WireServer::bind("127.0.0.1:0", manager).expect("loopback bind");
    let addr = server.local_addr();
    println!("wire server listening on {addr}\n");

    // One real TCP connection per writer, all concurrent.
    let results: Vec<(u64, Vec<Stroke>, u64)> = std::thread::scope(|scope| {
        let handles: Vec<_> = audios
            .iter()
            .map(|(id, audio)| {
                let (id, audio) = (*id, audio.as_slice());
                scope.spawn(move || {
                    let (strokes, queue_full) = run_client(addr, id, audio);
                    (id, strokes, queue_full)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("client thread")).collect()
    });

    for (id, got, queue_full) in &results {
        let wrote = &writers.iter().find(|(w, _)| w == id).expect("known writer").1;
        let word = decoder
            .decode_sequence(got)
            .first()
            .map(|c| c.word.clone())
            .unwrap_or_else(|| "(no candidate)".to_string());
        println!(
            "session {id}: wrote [{}]  recognized over TCP [{}]  top word: {word}  \
             (queue-full retries: {queue_full})",
            format_sequence(wrote),
            format_sequence(got)
        );
    }

    let report = server.shutdown();
    println!("\n--- metrics ---\n{}", report.metrics.to_prometheus());

    if let (Some(path), Some(rec)) = (trace_path, recorder) {
        echowrite_trace::disable();
        std::fs::write(&path, rec.to_chrome_json()).expect("write trace file");
        println!("--- trace ---");
        println!("{}", rec.summary_text());
        println!(
            "wrote {} events to {path} ({} dropped); open in chrome://tracing",
            rec.len(),
            rec.dropped()
        );
    }
}
