//! Physical acoustic channel simulator for the EchoWrite reproduction.
//!
//! The paper's hardware loop — a speaker emitting a 20 kHz tone and a
//! microphone sampling echoes at 44.1 kHz — is replaced here by first-
//! principles synthesis:
//!
//! - the transmitted tone propagates along each speaker→scatterer→microphone
//!   path with its exact time-varying path length, so Doppler shifts *emerge*
//!   from motion via phase modulation rather than being painted onto a
//!   spectrogram ([`scatter`]),
//! - the writer's hand and forearm are secondary, slower scatterers, which
//!   reproduces the paper's low-shift multipath clutter (Sec. III-B),
//! - static paths (direct transmission, walls, table) are rendered once and
//!   removed downstream by spectral subtraction exactly as on the phone,
//! - rooms contribute stochastic interference ([`noise`]): a stationary
//!   noise floor, keyboard clicks, speech babble, wideband rubbing bursts,
//!   bursty hardware spikes, and a walking interferer,
//! - device differences (Huawei Mate 9 vs Watch 2) are captured by
//!   [`device::DeviceProfile`].
//!
//! The top-level entry point is [`scene::Scene`], which renders a
//! [`echowrite_gesture::Trajectory`] into the microphone sample stream the
//! rest of the pipeline consumes.
//!
//! # Example
//!
//! ```
//! use echowrite_gesture::{Writer, WriterParams, Stroke};
//! use echowrite_synth::{Scene, DeviceProfile, EnvironmentProfile};
//!
//! let mut writer = Writer::new(WriterParams::nominal(), 1);
//! let perf = writer.write_stroke(Stroke::S2);
//! let scene = Scene::new(DeviceProfile::mate9(), EnvironmentProfile::meeting_room(), 1);
//! let mic = scene.render(&perf.trajectory);
//! assert_eq!(mic.len(), (perf.trajectory.duration() * 44_100.0).round() as usize);
//! ```

pub mod device;
pub mod environment;
pub mod noise;
pub mod scatter;
pub mod scene;
pub mod tone;

pub use device::DeviceProfile;
pub use environment::EnvironmentProfile;
pub use scene::Scene;
pub use tone::ToneConfig;

/// Speed of sound used throughout, matching the paper (m/s).
pub const SPEED_OF_SOUND: f64 = 340.0;
