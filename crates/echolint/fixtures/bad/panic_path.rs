//! Bad fixture: every `no-panic-path` trigger, one per construct.

fn first(xs: &[f64]) -> f64 {
    xs.first().copied().unwrap()
}

fn second(xs: &[f64]) -> f64 {
    xs.first().copied().expect("non-empty")
}

fn boom() {
    panic!("boom");
}

fn never() {
    unreachable!();
}

fn head(xs: &[f64]) -> f64 {
    xs[0]
}
