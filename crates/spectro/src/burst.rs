//! Wideband-burst suppression — the paper's Sec. VII-B future work,
//! implemented.
//!
//! EchoWrite's known weakness is "certain kinds of burst noises such as
//! knocking tables and striking objects which usually cover a wide
//! frequency range overlapping with signals utilized in EchoWrite". The
//! paper proposes "improv\[ing\] denoising techniques by making use of
//! properties of such noises like short duration".
//!
//! A finger echo occupies a narrow, smoothly moving frequency band; a
//! knock/rub excites essentially *every* bin of the ROI for a few frames.
//! The detector here flags columns whose foreground occupancy is
//! implausibly high, verifies the run of flagged columns is short (bursts
//! are transient; a real stroke never paints the whole band), and blanks
//! them before profile extraction.

use crate::spectrogram::Spectrogram;

/// Configuration of the burst detector.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BurstConfig {
    /// A column whose fraction of non-zero rows exceeds this is a burst
    /// candidate (strokes occupy a narrow band; bursts light the whole
    /// column).
    pub max_occupancy: f64,
    /// Maximum length (columns) of a burst run; longer runs are assumed to
    /// be genuine wideband activity and left untouched.
    pub max_frames: usize,
}

impl BurstConfig {
    /// Defaults tuned for the paper's ROI (175 rows, 23 ms hop): bursts are
    /// ≤ 0.35 s events covering more than 45 % of the band.
    pub fn nominal() -> Self {
        BurstConfig { max_occupancy: 0.45, max_frames: 15 }
    }

    /// Validates the thresholds.
    ///
    /// # Errors
    ///
    /// Returns a message when the occupancy is outside `(0, 1]` or the run
    /// length is zero.
    pub fn validate(&self) -> Result<(), String> {
        if !(0.0..=1.0).contains(&self.max_occupancy) || self.max_occupancy == 0.0 {
            return Err(format!("max_occupancy must be in (0,1], got {}", self.max_occupancy));
        }
        if self.max_frames == 0 {
            return Err("max_frames must be positive".to_string());
        }
        Ok(())
    }
}

impl Default for BurstConfig {
    fn default() -> Self {
        BurstConfig::nominal()
    }
}

/// Detects burst columns in a (thresholded) spectrogram.
///
/// Returns the indices of columns identified as wideband bursts.
pub fn detect_bursts(spec: &Spectrogram, config: BurstConfig) -> Vec<usize> {
    let rows = spec.rows();
    if rows == 0 || spec.cols() == 0 {
        return Vec::new();
    }
    // Column occupancy.
    let hot: Vec<bool> = (0..spec.cols())
        .map(|c| {
            let nz = (0..rows).filter(|&r| spec.get(r, c) != 0.0).count();
            nz as f64 / rows as f64 > config.max_occupancy
        })
        .collect();
    // Keep only runs of hot columns no longer than max_frames.
    let mut out = Vec::new();
    let mut i = 0;
    while i < hot.len() {
        if !hot[i] {
            i += 1;
            continue;
        }
        let start = i;
        while i < hot.len() && hot[i] {
            i += 1;
        }
        if i - start <= config.max_frames {
            out.extend(start..i);
        }
    }
    out
}

/// Returns a copy of `spec` with the given columns zeroed.
pub fn blank_columns(spec: &Spectrogram, columns: &[usize]) -> Spectrogram {
    let mut out = spec.clone();
    for &c in columns {
        if c < out.cols() {
            for r in 0..out.rows() {
                out.set(r, c, 0.0);
            }
        }
    }
    out
}

/// Detects and blanks bursts in one step.
pub fn suppress_bursts(spec: &Spectrogram, config: BurstConfig) -> (Spectrogram, Vec<usize>) {
    let bursts = detect_bursts(spec, config);
    let cleaned = if bursts.is_empty() { spec.clone() } else { blank_columns(spec, &bursts) };
    (cleaned, bursts)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 20 rows × 30 cols with a narrow "stroke" band and an optional burst.
    fn with_stroke_and_burst(burst_at: Option<(usize, usize)>) -> Spectrogram {
        let mut s = Spectrogram::zeros(20, 30);
        for c in 5..25 {
            // Stroke: 3 adjacent rows.
            for r in 12..15 {
                s.set(r, c, 5.0);
            }
        }
        if let Some((start, len)) = burst_at {
            for c in start..start + len {
                for r in 0..20 {
                    s.set(r, c, 7.0);
                }
            }
        }
        s
    }

    #[test]
    fn clean_spectrogram_has_no_bursts() {
        let s = with_stroke_and_burst(None);
        assert!(detect_bursts(&s, BurstConfig::nominal()).is_empty());
    }

    #[test]
    fn short_wideband_event_is_detected_and_blanked() {
        let s = with_stroke_and_burst(Some((10, 3)));
        let (cleaned, bursts) = suppress_bursts(&s, BurstConfig::nominal());
        assert_eq!(bursts, vec![10, 11, 12]);
        for c in 10..13 {
            for r in 0..20 {
                assert_eq!(cleaned.get(r, c), 0.0);
            }
        }
        // The stroke outside the burst survives.
        assert_eq!(cleaned.get(13, 8), 5.0);
        assert_eq!(cleaned.get(13, 20), 5.0);
    }

    #[test]
    fn long_wideband_activity_is_left_alone() {
        // A 20-column full-band region exceeds max_frames: not a burst.
        let s = with_stroke_and_burst(Some((5, 20)));
        let cfg = BurstConfig { max_frames: 15, ..BurstConfig::nominal() };
        assert!(detect_bursts(&s, cfg).is_empty());
    }

    #[test]
    fn occupancy_threshold_matters() {
        let s = with_stroke_and_burst(Some((10, 2)));
        // With the threshold at 1.0 even a fully lit column cannot exceed
        // it, so nothing is a burst.
        let lax = BurstConfig { max_occupancy: 1.0, ..BurstConfig::nominal() };
        assert!(detect_bursts(&s, lax).is_empty());
        // A narrow 3-row stroke (15 % occupancy) must never trip even a
        // moderately strict threshold.
        let strict = BurstConfig { max_occupancy: 0.2, ..BurstConfig::nominal() };
        let hits = detect_bursts(&s, strict);
        assert!(hits.iter().all(|&c| (10..12).contains(&c)), "{hits:?}");
    }

    #[test]
    fn empty_spectrogram_is_fine() {
        let s = Spectrogram::zeros(5, 0);
        assert!(detect_bursts(&s, BurstConfig::nominal()).is_empty());
        let (cleaned, bursts) = suppress_bursts(&s, BurstConfig::nominal());
        assert_eq!(cleaned.cols(), 0);
        assert!(bursts.is_empty());
    }

    #[test]
    fn blank_columns_ignores_out_of_range() {
        let s = with_stroke_and_burst(None);
        let out = blank_columns(&s, &[999]);
        assert_eq!(out, s);
    }

    #[test]
    fn config_validation() {
        assert!(BurstConfig::nominal().validate().is_ok());
        assert!(BurstConfig { max_occupancy: 0.0, ..BurstConfig::nominal() }.validate().is_err());
        assert!(BurstConfig { max_occupancy: 1.5, ..BurstConfig::nominal() }.validate().is_err());
        assert!(BurstConfig { max_frames: 0, ..BurstConfig::nominal() }.validate().is_err());
    }
}
