//! The admin HTTP server: thread-per-connection over `std::net`, one
//! request per connection (`Connection: close`), observing a
//! [`SessionManager`] through a [`Weak`] handle so the plane never keeps
//! the serving layer alive — `WireServer::shutdown` still reclaims sole
//! ownership, and every manager-backed endpoint degrades to `503` once
//! the manager is gone.
//!
//! Endpoints (DESIGN.md §6.11):
//!
//! | route                  | method | body                                    |
//! |------------------------|--------|-----------------------------------------|
//! | `/metrics`             | GET    | Prometheus text exposition              |
//! | `/healthz`             | GET    | process liveness (always `200` while up)|
//! | `/readyz`              | GET    | `503` while shedding or shutting down   |
//! | `/sessions`            | GET    | live + suspended session table, JSON    |
//! | `/trace/start`         | POST   | install the global recording sink       |
//! | `/trace/stop`          | POST   | gate off, keep the sink for dumping     |
//! | `/trace/dump`          | GET    | Chrome-trace JSON of the recording      |
//! | `/flight`              | GET    | all shards' flight rings, Chrome-trace  |
//! | `/flight/{session}`    | GET    | one session's flight entries            |

use crate::http::{self, HttpRequest, Method, RequestError};
use echowrite_serve::{flight_to_chrome_json, SessionInfo, SessionManager};
use echowrite_trace::RecordingSink;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::io::Write as _;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, Weak};
use std::thread::JoinHandle;

/// Capacity of the recording sink installed by `POST /trace/start`.
const TRACE_CAPACITY: usize = 65_536;
/// Content type for Prometheus text exposition.
const PROM_TYPE: &str = "text/plain; version=0.0.4";
/// Content type for JSON bodies.
const JSON_TYPE: &str = "application/json";
/// Content type for plain-text bodies.
const TEXT_TYPE: &str = "text/plain";

/// The on-demand tracing state machine driven by `/trace/*`.
enum TraceState {
    /// Never started (or never restarted after a dump): nothing to dump.
    Off,
    /// The global gate is on and this sink is installed.
    Recording(Arc<RecordingSink>),
    /// The gate is off again; the sink is retained for `/trace/dump`.
    Stopped(Arc<RecordingSink>),
}

/// State shared between the accept loop, connection handlers, and
/// shutdown.
struct Shared {
    manager: Weak<SessionManager>,
    /// Set once; the accept loop and handlers exit when they observe it.
    shutting_down: AtomicBool,
    trace: Mutex<TraceState>,
    /// conn id → socket, kept so shutdown can unblock parked readers.
    conns: Mutex<BTreeMap<u64, TcpStream>>,
    /// Handler join handles, drained at shutdown.
    handles: Mutex<Vec<JoinHandle<()>>>,
}

fn lock<'a, T>(m: &'a Mutex<T>) -> std::sync::MutexGuard<'a, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// The admin plane: binds beside the wire listener and serves live
/// introspection over plain HTTP/1.1 with only `std::net`.
pub struct ObsServer {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for ObsServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ObsServer").field("addr", &self.addr).finish_non_exhaustive()
    }
}

impl ObsServer {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// starts serving the admin endpoints over `manager`. Pass the handle
    /// from `WireServer::manager_handle`, or `Arc::downgrade` of a
    /// manager you own.
    ///
    /// # Errors
    ///
    /// Socket bind failures.
    pub fn bind(addr: &str, manager: Weak<SessionManager>) -> std::io::Result<ObsServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            manager,
            shutting_down: AtomicBool::new(false),
            trace: Mutex::new(TraceState::Off),
            conns: Mutex::new(BTreeMap::new()),
            handles: Mutex::new(Vec::new()),
        });
        let accept = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || accept_loop(&listener, &shared))
        };
        Ok(ObsServer { addr, shared, accept: Some(accept) })
    }

    /// The bound socket address (resolves ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, closes in-flight admin connections, and joins
    /// every handler thread. Does not touch the manager — the admin
    /// plane only ever observed it.
    pub fn shutdown(mut self) {
        // ordering: Release pairs with the Acquire loads in the accept
        // loop and handlers — a thread that observes the flag also
        // observes all state written before shutdown began.
        self.shared.shutting_down.store(true, Ordering::Release);
        // Unblock the accept loop with a throwaway connection; it checks
        // the flag before serving what it accepted.
        if let Ok(stream) = TcpStream::connect(self.addr) {
            drop(stream);
        }
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        for (_, stream) in lock(&self.shared.conns).iter() {
            let _ = stream.shutdown(Shutdown::Both);
        }
        loop {
            let Some(h) = lock(&self.shared.handles).pop() else { break };
            let _ = h.join();
        }
    }
}

// echolint: entry
fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    let mut next_conn: u64 = 0;
    loop {
        let Ok((stream, _)) = listener.accept() else {
            // ordering: Acquire pairs with the Release store in shutdown.
            if shared.shutting_down.load(Ordering::Acquire) {
                return;
            }
            continue;
        };
        // ordering: Acquire pairs with the Release store in shutdown.
        if shared.shutting_down.load(Ordering::Acquire) {
            drop(stream);
            return;
        }
        let conn_id = next_conn;
        next_conn += 1;
        let Ok(handle) = stream.try_clone() else {
            continue;
        };
        lock(&shared.conns).insert(conn_id, handle);
        let handler = {
            let shared = Arc::clone(shared);
            std::thread::spawn(move || {
                serve_conn(stream, &shared);
                lock(&shared.conns).remove(&conn_id);
            })
        };
        lock(&shared.handles).push(handler);
    }
}

/// Serves exactly one request on `stream`, then closes it. A malformed
/// request answers `400` and terminates *this* connection only — the
/// fuzz tests pin that isolation down.
// echolint: entry
fn serve_conn(mut stream: TcpStream, shared: &Arc<Shared>) {
    let parsed = http::read_request(&mut stream);
    // ordering: Acquire pairs with the Release store in shutdown.
    if shared.shutting_down.load(Ordering::Acquire) {
        let _ = stream.shutdown(Shutdown::Both);
        return;
    }
    let (status, content_type, body) = match parsed {
        Ok(request) => {
            if let Some(manager) = shared.manager.upgrade() {
                manager.metrics().obs_requests.inc();
            }
            route(shared, &request)
        }
        Err(RequestError::Disconnected) => {
            let _ = stream.shutdown(Shutdown::Both);
            return;
        }
        Err(RequestError::Malformed(why)) => {
            if let Some(manager) = shared.manager.upgrade() {
                manager.metrics().obs_malformed_requests.inc();
            }
            (400, TEXT_TYPE, format!("malformed request: {why}\n"))
        }
    };
    let mut out = Vec::with_capacity(body.len() + 128);
    http::encode_response(&mut out, status, content_type, body.as_bytes());
    let _ = stream.write_all(&out);
    let _ = stream.flush();
    let _ = stream.shutdown(Shutdown::Both);
}

/// Maps one parsed request to `(status, content type, body)`.
fn route(shared: &Arc<Shared>, request: &HttpRequest) -> (u16, &'static str, String) {
    let manager = shared.manager.upgrade();
    match (request.method, request.path.as_str()) {
        (Method::Get, "/metrics") => match manager {
            Some(m) => (200, PROM_TYPE, m.metrics().to_prometheus()),
            None => (503, TEXT_TYPE, "manager has shut down\n".to_string()),
        },
        // Liveness is about this process: while the plane answers at
        // all, it answers 200 — readiness is the manager-state probe.
        (Method::Get, "/healthz") => (200, TEXT_TYPE, "ok\n".to_string()),
        (Method::Get, "/readyz") => match manager {
            Some(m) if m.is_shedding() => (503, TEXT_TYPE, "shedding\n".to_string()),
            Some(_) => (200, TEXT_TYPE, "ready\n".to_string()),
            None => (503, TEXT_TYPE, "manager has shut down\n".to_string()),
        },
        (Method::Get, "/sessions") => match manager {
            Some(m) => (200, JSON_TYPE, sessions_json(&m.introspect())),
            None => (503, TEXT_TYPE, "manager has shut down\n".to_string()),
        },
        (Method::Post, "/trace/start") => {
            let mut trace = lock(&shared.trace);
            match &*trace {
                TraceState::Recording(_) => {
                    (409, TEXT_TYPE, "already recording\n".to_string())
                }
                TraceState::Off | TraceState::Stopped(_) => {
                    *trace = TraceState::Recording(echowrite_trace::install_recording(
                        TRACE_CAPACITY,
                    ));
                    (200, TEXT_TYPE, "recording\n".to_string())
                }
            }
        }
        (Method::Post, "/trace/stop") => {
            let mut trace = lock(&shared.trace);
            match std::mem::replace(&mut *trace, TraceState::Off) {
                TraceState::Recording(sink) => {
                    echowrite_trace::disable();
                    *trace = TraceState::Stopped(sink);
                    (200, TEXT_TYPE, "stopped\n".to_string())
                }
                prev => {
                    *trace = prev;
                    (409, TEXT_TYPE, "not recording\n".to_string())
                }
            }
        }
        (Method::Get, "/trace/dump") => match &*lock(&shared.trace) {
            TraceState::Recording(sink) | TraceState::Stopped(sink) => {
                (200, JSON_TYPE, sink.to_chrome_json())
            }
            TraceState::Off => (404, TEXT_TYPE, "no recording; POST /trace/start\n".to_string()),
        },
        (Method::Get, "/flight") => match manager {
            Some(m) => (200, JSON_TYPE, flight_to_chrome_json(&m.flight_snapshot(None))),
            None => (503, TEXT_TYPE, "manager has shut down\n".to_string()),
        },
        (Method::Get, path) if path.starts_with("/flight/") => {
            let id = path.strip_prefix("/flight/").unwrap_or_default();
            match (id.parse::<u64>(), manager) {
                (Ok(session), Some(m)) => {
                    (200, JSON_TYPE, flight_to_chrome_json(&m.flight_snapshot(Some(session))))
                }
                (Ok(_), None) => (503, TEXT_TYPE, "manager has shut down\n".to_string()),
                (Err(_), _) => (400, TEXT_TYPE, "session id must be a u64\n".to_string()),
            }
        }
        (Method::Post, _) => (405, TEXT_TYPE, "POST is for /trace/start|stop\n".to_string()),
        (Method::Get, _) => (404, TEXT_TYPE, "unknown admin endpoint\n".to_string()),
    }
}

/// Renders the session table as a stable JSON array: fixed key order,
/// rows sorted by session id (the manager already sorts), no floats.
fn sessions_json(rows: &[SessionInfo]) -> String {
    let mut out = String::with_capacity(rows.len() * 96 + 2);
    out.push('[');
    for (i, row) in rows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"session\":{},\"shard\":{},\"samples_in\":{},\"backlog\":{},\
             \"suspended\":{},\"last_active_tick_us\":{}}}",
            row.session,
            row.shard,
            row.samples_in,
            row.backlog,
            row.suspended,
            row.last_active_tick_us
        );
    }
    out.push(']');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn session_table_renders_stable_json() {
        let rows = vec![
            SessionInfo {
                session: 3,
                shard: 0,
                samples_in: 8192,
                backlog: 2,
                suspended: false,
                last_active_tick_us: 185_759,
            },
            SessionInfo {
                session: 9,
                shard: 1,
                samples_in: 0,
                backlog: 0,
                suspended: true,
                last_active_tick_us: 0,
            },
        ];
        assert_eq!(
            sessions_json(&rows),
            "[{\"session\":3,\"shard\":0,\"samples_in\":8192,\"backlog\":2,\
             \"suspended\":false,\"last_active_tick_us\":185759},\
             {\"session\":9,\"shard\":1,\"samples_in\":0,\"backlog\":0,\
             \"suspended\":true,\"last_active_tick_us\":0}]"
        );
        assert_eq!(sessions_json(&[]), "[]");
    }
}
