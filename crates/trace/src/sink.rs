//! Sink dispatch: the global enable gate, built-in sinks, and the scoped
//! install guard used by tests and benches.
//!
//! Dispatch is static over the built-in sinks — an enum match, no vtable —
//! with an `Arc<dyn TraceSink>` escape hatch for callers that bring their
//! own. The disabled path is one relaxed atomic load; under the `off`
//! cargo feature [`enabled`] is a compile-time `false` and every
//! instrumentation site folds to nothing.

use crate::event::TraceEvent;
use crate::recording::RecordingSink;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, RwLock};

/// Receives every emitted event. Implementations must be cheap and
/// thread-safe: they run inline on pipeline and shard-worker threads.
pub trait TraceSink: Send + Sync {
    /// Consumes one event.
    fn record(&self, event: &TraceEvent);
}

/// Discards everything. Installing it keeps the gate *on*, so benches can
/// measure pure emission/dispatch overhead separately from recording cost.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopSink;

impl TraceSink for NoopSink {
    fn record(&self, _event: &TraceEvent) {}
}

/// The installed sink, dispatched by enum match (static for built-ins).
enum SinkState {
    /// Discard (gate may still be on; see [`NoopSink`]).
    Noop,
    /// The bounded in-memory recorder.
    Recording(Arc<RecordingSink>),
    /// A caller-provided sink.
    Custom(Arc<dyn TraceSink>),
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static SINK: RwLock<SinkState> = RwLock::new(SinkState::Noop);
static SCOPE: Mutex<()> = Mutex::new(());

/// True when emissions dispatch to a sink. The disabled path costs one
/// relaxed load; with the `off` feature this is a constant `false`.
#[inline]
pub fn enabled() -> bool {
    if cfg!(feature = "off") {
        return false;
    }
    // ordering: Relaxed — the gate is a fast hint; dispatch re-reads the
    // sink under the RwLock, whose release/acquire edge is the real
    // synchronization.
    ENABLED.load(Ordering::Relaxed)
}

/// Sends `event` to the installed sink; does nothing when disabled.
#[inline]
pub fn emit(event: TraceEvent) {
    if !enabled() {
        return;
    }
    dispatch(&event);
}

fn dispatch(event: &TraceEvent) {
    let state = SINK.read().unwrap_or_else(|e| e.into_inner());
    match &*state {
        SinkState::Noop => {}
        SinkState::Recording(sink) => sink.record(event),
        SinkState::Custom(sink) => sink.record(event),
    }
}

fn set(state: SinkState, on: bool) {
    let mut guard = SINK.write().unwrap_or_else(|e| e.into_inner());
    *guard = state;
    // ordering: SeqCst store after the sink swap under the write lock; a
    // reader that sees the gate on takes the read lock and observes the
    // new sink via the lock edge.
    ENABLED.store(on, Ordering::SeqCst);
}

/// Installs the discarding sink with the gate on (overhead measurement).
pub fn install_noop() {
    set(SinkState::Noop, true);
}

/// Installs a [`RecordingSink`] with room for `capacity` events and turns
/// the gate on; returns the sink for later export.
pub fn install_recording(capacity: usize) -> Arc<RecordingSink> {
    let sink = Arc::new(RecordingSink::new(capacity));
    set(SinkState::Recording(Arc::clone(&sink)), true);
    sink
}

/// Installs a caller-provided sink and turns the gate on.
pub fn install_custom(sink: Arc<dyn TraceSink>) {
    set(SinkState::Custom(sink), true);
}

/// Turns tracing off and drops any installed sink.
pub fn disable() {
    set(SinkState::Noop, false);
}

/// Mode for [`scoped`] installs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScopedMode {
    /// Gate off entirely (the production default).
    Disabled,
    /// Gate on, events discarded.
    Noop,
    /// Gate on, events recorded into a ring of the given capacity.
    Recording(usize),
}

/// RAII guard returned by [`scoped`]: holds the scope lock so concurrent
/// test scopes serialize, and restores the disabled state on drop.
pub struct ScopedTrace {
    _lock: MutexGuard<'static, ()>,
    sink: Option<Arc<RecordingSink>>,
}

impl ScopedTrace {
    /// The recording sink, when the scope was opened in recording mode.
    pub fn recording(&self) -> Option<&Arc<RecordingSink>> {
        self.sink.as_ref()
    }
}

impl Drop for ScopedTrace {
    fn drop(&mut self) {
        disable();
    }
}

/// Opens a serialized tracing scope for tests and benches: at most one
/// scope exists at a time process-wide, and dropping the guard disables
/// tracing again. Recognition output never depends on the sink, so code
/// under test behaves identically inside and outside a scope.
pub fn scoped(mode: ScopedMode) -> ScopedTrace {
    let lock = SCOPE.lock().unwrap_or_else(|e| e.into_inner());
    let sink = match mode {
        ScopedMode::Disabled => {
            disable();
            None
        }
        ScopedMode::Noop => {
            install_noop();
            None
        }
        ScopedMode::Recording(capacity) => Some(install_recording(capacity)),
    };
    ScopedTrace { _lock: lock, sink }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{EventKind, SmallStr, Stage};

    fn ev(name: &'static str) -> TraceEvent {
        TraceEvent {
            stage: Stage::Stft,
            name,
            kind: EventKind::Instant,
            tick_us: 10,
            wall_us: 0,
            value: 0.0,
            detail: SmallStr::empty(),
        }
    }

    // With the `off` feature, `enabled()` is const false and nothing ever
    // reaches a sink — exactly the point of the feature, so the tests that
    // expect captured events only run in the default configuration.
    #[test]
    #[cfg(not(feature = "off"))]
    fn disabled_by_default_and_scoped_recording_captures() {
        let guard = scoped(ScopedMode::Disabled);
        assert!(!enabled());
        emit(ev("dropped"));
        drop(guard);

        let guard = scoped(ScopedMode::Recording(16));
        assert!(enabled());
        emit(ev("kept"));
        let sink = guard.recording().expect("recording scope has a sink");
        assert_eq!(sink.len(), 1);
        drop(guard);
        assert!(!enabled());
    }

    #[test]
    #[cfg(not(feature = "off"))]
    fn noop_scope_gates_on_but_records_nothing() {
        let guard = scoped(ScopedMode::Noop);
        assert!(enabled());
        assert!(guard.recording().is_none());
        emit(ev("discarded"));
    }

    #[test]
    #[cfg(not(feature = "off"))]
    fn custom_sink_receives_events() {
        use std::sync::atomic::AtomicU64;
        #[derive(Default)]
        struct CountSink(AtomicU64);
        impl TraceSink for CountSink {
            fn record(&self, _event: &TraceEvent) {
                self.0.fetch_add(1, Ordering::Relaxed);
            }
        }
        let guard = scoped(ScopedMode::Disabled);
        let sink = Arc::new(CountSink::default());
        install_custom(Arc::clone(&sink) as Arc<dyn TraceSink>);
        emit(ev("one"));
        emit(ev("two"));
        assert_eq!(sink.0.load(Ordering::Relaxed), 2);
        drop(guard);
    }
}
