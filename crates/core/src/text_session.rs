//! A streaming text-entry session: audio chunks in, committed words out.
//!
//! Builds the full interaction loop the paper's Android app implements on
//! top of stroke recognition: strokes accumulate into a pending word, a
//! sufficiently long writing pause (the user dropping their hand) commits
//! the word through the Bayesian decoder, and the next-word predictor keeps
//! conversational context (the paper's "automatic successive
//! associations").

use crate::engine::EchoWrite;
use crate::streaming::{StreamingRecognizer, StrokeEvent};
use echowrite_dtw::Classification;
use echowrite_lang::Candidate;

/// Events emitted by a [`TextSession`].
#[derive(Debug, Clone)]
pub enum SessionEvent {
    /// A stroke stabilized and joined the pending word.
    Stroke(StrokeEvent),
    /// A word boundary was reached and the pending strokes decoded.
    Word {
        /// The committed (top-1) word, if any candidate matched.
        word: Option<String>,
        /// The full candidate list offered to the user.
        candidates: Vec<Candidate>,
        /// Next-word suggestions given the committed word.
        suggestions: Vec<String>,
    },
}

/// A streaming text-entry session over an [`EchoWrite`] engine.
///
/// # Example
///
/// ```
/// use echowrite::{EchoWrite, TextSession};
/// let engine = EchoWrite::new();
/// let mut session = TextSession::new(&engine);
/// // Silence produces no events and no text.
/// assert!(session.push(&vec![0.0; 44_100]).is_empty());
/// assert_eq!(session.text(), "");
/// ```
#[derive(Debug)]
pub struct TextSession<'a> {
    engine: &'a EchoWrite,
    stream: StreamingRecognizer<'a>,
    /// Stabilized classifications of the pending word.
    pending: Vec<Classification>,
    /// End frame of the most recent stroke.
    last_stroke_end: usize,
    /// Inter-stroke gap (frames) that commits a word.
    word_gap_frames: usize,
    committed: Vec<String>,
}

impl<'a> TextSession<'a> {
    /// Creates a session with a 2.6 s word-boundary pause — above the
    /// worst-case intra-word stroke gap (a long withdraw plus the
    /// segment-trimming slack approaches 2.2 s).
    pub fn new(engine: &'a EchoWrite) -> Self {
        let hop_s = engine.config().stft.hop_seconds();
        TextSession {
            engine,
            stream: StreamingRecognizer::new(engine),
            pending: Vec::new(),
            last_stroke_end: 0,
            word_gap_frames: (2.6 / hop_s).round() as usize,
            committed: Vec::new(),
        }
    }

    /// Overrides the word-boundary pause.
    ///
    /// # Panics
    ///
    /// Panics if the gap is not positive.
    pub fn with_word_gap(mut self, seconds: f64) -> Self {
        assert!(seconds > 0.0, "word gap must be positive");
        let hop_s = self.engine.config().stft.hop_seconds();
        self.word_gap_frames = (seconds / hop_s).round().max(1.0) as usize;
        self
    }

    /// Feeds audio; returns stroke and word events in order.
    pub fn push(&mut self, chunk: &[f64]) -> Vec<SessionEvent> {
        let mut events = Vec::new();
        for ev in self.stream.push(chunk) {
            // A long gap before this stroke commits the previous word.
            if !self.pending.is_empty()
                && ev.start_frame.saturating_sub(self.last_stroke_end) >= self.word_gap_frames
            {
                events.push(self.commit());
            }
            self.last_stroke_end = ev.end_frame;
            self.pending.push(ev.classification.clone());
            events.push(SessionEvent::Stroke(ev));
        }
        // Silence long enough after the last stroke also commits.
        if !self.pending.is_empty()
            && self
                .stream
                .frames_processed()
                .saturating_sub(self.last_stroke_end)
                >= self.word_gap_frames
        {
            events.push(self.commit());
        }
        events
    }

    /// Commits the pending strokes immediately (e.g. at end of input).
    ///
    /// Returns `None` when no strokes are pending.
    pub fn flush(&mut self) -> Option<SessionEvent> {
        if self.pending.is_empty() {
            None
        } else {
            Some(self.commit())
        }
    }

    fn commit(&mut self) -> SessionEvent {
        let observed: Vec<_> = self.pending.iter().map(|c| c.stroke).collect();
        let scores: Vec<[f64; 6]> = self.pending.iter().map(|c| c.scores).collect();
        self.pending.clear();
        let candidates = self.engine.decoder().decode_soft(&observed, &scores);
        let word = candidates.first().map(|c| c.word.clone());
        let suggestions = match &word {
            Some(w) => {
                self.committed.push(w.clone());
                self.engine.predictor().predict(w, 3)
            }
            None => Vec::new(),
        };
        SessionEvent::Word { word, candidates, suggestions }
    }

    /// The text committed so far, space-separated.
    pub fn text(&self) -> String {
        self.committed.join(" ")
    }

    /// Number of strokes waiting for a word boundary.
    pub fn pending_strokes(&self) -> usize {
        self.pending.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use echowrite_gesture::{Writer, WriterParams};
    use echowrite_synth::{DeviceProfile, EnvironmentProfile, Scene};
    use std::sync::OnceLock;

    fn engine() -> &'static EchoWrite {
        static E: OnceLock<EchoWrite> = OnceLock::new();
        E.get_or_init(EchoWrite::new)
    }

    /// Renders a phrase continuously (smooth inter-word repositioning),
    /// with `gap` seconds of rest between and after words.
    fn render_phrase(words: &[&str], gap: f64, seed: u64) -> Vec<f64> {
        let e = engine();
        let mut writer = Writer::new(WriterParams::nominal(), seed);
        let seqs: Vec<_> = words
            .iter()
            .map(|w| e.scheme().encode_word(w).expect("letters only"))
            .collect();
        let perf = writer.write_phrase(&seqs, gap);
        let mut traj = perf.trajectory;
        let rest = *traj.points().last().expect("non-empty");
        traj.hold(rest, gap + 0.8);
        Scene::new(DeviceProfile::mate9(), EnvironmentProfile::meeting_room(), seed)
            .render(&traj)
    }

    #[test]
    fn commits_words_at_pauses() {
        let e = engine();
        let audio = render_phrase(&["the", "me"], 3.2, 3);
        let mut session = TextSession::new(e);
        let mut words = Vec::new();
        for chunk in audio.chunks(5 * 1024) {
            for ev in session.push(chunk) {
                if let SessionEvent::Word { word, candidates, .. } = ev {
                    assert!(!candidates.is_empty(), "empty candidate list");
                    words.push(word.unwrap_or_default());
                }
            }
        }
        if let Some(SessionEvent::Word { word, .. }) = session.flush() {
            words.push(word.unwrap_or_default());
        }
        assert_eq!(words.len(), 2, "expected two committed words: {words:?}");
        // The decoded words are drawn from each stroke-sequence's collision
        // group; "the" is the most frequent in its group so top-1 holds.
        assert_eq!(words[0], "the");
        assert_eq!(session.text().split_whitespace().count(), 2);
    }

    #[test]
    fn no_pause_means_one_word() {
        let e = engine();
        let audio = render_phrase(&["and"], 3.0, 5);
        let mut session = TextSession::new(e);
        let mut word_events = 0;
        let mut strokes = 0;
        for chunk in audio.chunks(4096) {
            for ev in session.push(chunk) {
                match ev {
                    SessionEvent::Stroke(_) => strokes += 1,
                    SessionEvent::Word { .. } => word_events += 1,
                }
            }
        }
        assert_eq!(strokes, 3, "'and' has three strokes");
        assert_eq!(word_events, 1, "a single word must commit once");
        assert_eq!(session.pending_strokes(), 0);
    }

    #[test]
    fn flush_commits_remainder() {
        let e = engine();
        // Short tail: the trailing pause is below the word gap, so the
        // word only commits on flush.
        let audio = render_phrase(&["me"], 0.1, 9);
        let mut session = TextSession::new(e).with_word_gap(3.0);
        for chunk in audio.chunks(4096) {
            for ev in session.push(chunk) {
                assert!(matches!(ev, SessionEvent::Stroke(_)), "premature commit");
            }
        }
        let flushed = session.flush().expect("pending word");
        match flushed {
            SessionEvent::Word { candidates, .. } => assert!(!candidates.is_empty()),
            other => panic!("expected word event, got {other:?}"),
        }
        assert!(session.flush().is_none(), "second flush must be empty");
    }

    #[test]
    fn suggestions_follow_commits() {
        let e = engine();
        let audio = render_phrase(&["of"], 3.0, 11);
        let mut session = TextSession::new(e);
        let mut suggestions = Vec::new();
        for chunk in audio.chunks(5 * 1024) {
            for ev in session.push(chunk) {
                if let SessionEvent::Word { word: Some(w), suggestions: s, .. } = ev {
                    if w == "of" {
                        suggestions = s;
                    }
                }
            }
        }
        if !suggestions.is_empty() {
            assert_eq!(suggestions[0], "the", "bigram successor of 'of'");
        }
    }

    #[test]
    #[should_panic(expected = "word gap must be positive")]
    fn rejects_zero_gap() {
        let _ = TextSession::new(engine()).with_word_gap(0.0);
    }
}
