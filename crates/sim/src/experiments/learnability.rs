//! The input-scheme learnability study (paper Sec. II-A, Figs. 4–6).
//!
//! Six fresh participants write the stroke sequences of the 300 most
//! frequent corpus words (shuffled) for 15 minutes. The study evaluates the
//! *scheme*, not the recognizer — the paper assumes a 90 % stroke
//! recognition accuracy when quoting word accuracy. Reported results:
//! sequence accuracy climbs to ≈ 98 % after 15 minutes (Fig. 4), entry
//! speed reaches ≈ 11 WPM (Fig. 5), and per-participant word accuracy sits
//! around 90 % (Fig. 6, the product of 90 % assumed stroke accuracy and the
//! learned sequence accuracy).

use super::Scale;
use crate::participant::{LearningCurve, Participant};
use crate::report::{f1, pct, Table};
use echowrite_corpus::Lexicon;
use rand::seq::SliceRandom;
use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// The paper's assumed stroke-recognition accuracy for this study.
pub const ASSUMED_STROKE_ACCURACY: f64 = 0.90;

/// Per-minute recall behaviour during the first 15 minutes of exposure.
///
/// Learning the letter→stroke mapping is much faster than motor practice:
/// a per-minute power law starting at a high slip rate.
fn recall_curve(p: &Participant) -> LearningCurve {
    LearningCurve {
        initial: 0.055 + 0.02 * (p.id as f64 % 3.0),
        floor: 0.004,
        rate: 1.1,
    }
}

/// Result of one participant's 15-minute study.
#[derive(Debug, Clone)]
pub struct StudyResult {
    /// Participant label.
    pub name: String,
    /// Per-minute sequence accuracy, minutes 1..=15.
    pub minute_accuracy: Vec<f64>,
    /// Words per minute at the end of the study.
    pub final_wpm: f64,
    /// Final word accuracy under the 90 % recognizer assumption.
    pub final_word_accuracy: f64,
}

/// Runs the study for the whole cohort.
pub fn study(scale: Scale) -> Vec<StudyResult> {
    let lexicon = Lexicon::embedded();
    let words: Vec<&str> = lexicon.top(300).iter().map(|e| e.word.as_str()).collect();

    Participant::cohort(scale.seed)
        .iter()
        .map(|p| {
            let mut rng = ChaCha8Rng::seed_from_u64(scale.seed ^ (p.id as u64 * 7919));
            let mut shuffled = words.clone();
            shuffled.shuffle(&mut rng);
            let recall = recall_curve(p);

            let mut minute_accuracy = Vec::with_capacity(15);
            let mut final_wpm = 0.0;
            let mut word_iter = shuffled.iter().cycle();
            for minute in 1..=15usize {
                // Per-stroke writing time shrinks as the mapping becomes
                // automatic: thinking dominates early minutes. The study
                // uses pen-and-paper stroke writing, faster than in-air
                // strokes.
                let think = 0.24 + 1.1 * (minute as f64).powf(-0.8);
                let write = 0.85;
                let per_stroke = think + write;
                let slip = recall.at(minute);

                let mut seconds = 0.0;
                let mut written = 0usize;
                let mut correct = 0usize;
                while seconds < 60.0 {
                    let w = word_iter.next().expect("cycle never ends");
                    let n = w.len();
                    seconds += n as f64 * per_stroke + 0.4; // word gap
                    written += 1;
                    // A word's sequence is correct if no stroke slipped.
                    let ok = (0..n).all(|_| rng.gen::<f64>() >= slip);
                    if ok {
                        correct += 1;
                    }
                }
                minute_accuracy.push(correct as f64 / written as f64);
                if minute == 15 {
                    final_wpm = written as f64 * 60.0 / seconds;
                }
            }
            // Smooth the per-minute accuracy over adjacent minutes the way
            // a per-minute moving tally would.
            let smoothed = echowrite_dsp::filters::moving_average(&minute_accuracy, 3);
            let final_word_accuracy = ASSUMED_STROKE_ACCURACY * smoothed[14];
            StudyResult {
                name: p.name.clone(),
                minute_accuracy: smoothed,
                final_wpm,
                final_word_accuracy,
            }
        })
        .collect()
}

/// Fig. 4 — mean stroke-sequence accuracy per minute of practice.
pub fn fig4(scale: Scale) -> Table {
    let results = study(scale);
    let mut t = Table::new(
        "Fig. 4 — stroke-sequence writing accuracy vs practice minute (mean over participants)",
        &["minute", "accuracy"],
    );
    for m in 0..15 {
        let mean: f64 =
            results.iter().map(|r| r.minute_accuracy[m]).sum::<f64>() / results.len() as f64;
        t.push_row(vec![(m + 1).to_string(), pct(mean)]);
    }
    t
}

/// Fig. 5 — words-input speed per participant after 15 minutes.
pub fn fig5(scale: Scale) -> Table {
    let results = study(scale);
    let mut t = Table::new(
        "Fig. 5 — words-input speed after 15 min practice (paper: ≈11 WPM)",
        &["participant", "WPM"],
    );
    for r in &results {
        t.push_row(vec![r.name.clone(), f1(r.final_wpm)]);
    }
    let mean = results.iter().map(|r| r.final_wpm).sum::<f64>() / results.len() as f64;
    t.push_row(vec!["mean".into(), f1(mean)]);
    t
}

/// Fig. 6 — word accuracy per participant under the 90 % stroke-recognition
/// assumption.
pub fn fig6(scale: Scale) -> Table {
    let results = study(scale);
    let mut t = Table::new(
        "Fig. 6 — word accuracy after 15 min (×90% assumed stroke accuracy; paper: ≈90%)",
        &["participant", "word accuracy"],
    );
    for r in &results {
        t.push_row(vec![r.name.clone(), pct(r.final_word_accuracy)]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_improves_and_reaches_high_nineties() {
        let results = study(Scale::quick());
        let mean_at = |m: usize| {
            results.iter().map(|r| r.minute_accuracy[m]).sum::<f64>() / results.len() as f64
        };
        for r in &results {
            assert_eq!(r.minute_accuracy.len(), 15);
        }
        let early = mean_at(0);
        let late = mean_at(14);
        assert!(late > early, "cohort: {early} → {late}");
        assert!(late > 0.95, "final accuracy {late} (paper ≈98%)");
        assert!(early < 0.93, "starts too perfect: {early}");
    }

    #[test]
    fn final_speed_near_paper_value() {
        let results = study(Scale::quick());
        let mean: f64 = results.iter().map(|r| r.final_wpm).sum::<f64>() / results.len() as f64;
        assert!((9.0..14.0).contains(&mean), "mean WPM {mean} (paper ≈11)");
    }

    #[test]
    fn word_accuracy_is_capped_by_assumption() {
        for r in study(Scale::quick()) {
            assert!(r.final_word_accuracy <= ASSUMED_STROKE_ACCURACY);
            assert!(r.final_word_accuracy > 0.8, "{}", r.final_word_accuracy);
        }
    }

    #[test]
    fn study_is_deterministic() {
        let a = study(Scale::quick());
        let b = study(Scale::quick());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.minute_accuracy, y.minute_accuracy);
            assert_eq!(x.final_wpm, y.final_wpm);
        }
    }

    #[test]
    fn tables_render() {
        let t = fig4(Scale::quick());
        assert_eq!(t.rows.len(), 15);
        let t5 = fig5(Scale::quick());
        assert_eq!(t5.rows.len(), 7); // 6 participants + mean
        let t6 = fig6(Scale::quick());
        assert_eq!(t6.rows.len(), 6);
    }
}
