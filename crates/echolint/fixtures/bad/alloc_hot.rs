//! Bad fixture: allocation inside hot kernels.

fn magnitude_into(out: &mut [f64], xs: &[f64]) {
    let scratch = Vec::new();
    let copied = xs.to_vec();
}

// echolint: hot
fn window(xs: &[f64]) {
    let doubled: Vec<f64> = xs.iter().map(|x| x * 2.0).collect();
}

fn cold(xs: &[f64]) {
    let v = xs.to_vec();
}
