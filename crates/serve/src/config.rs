//! Serving-layer configuration.

use echowrite::Parallelism;

/// What the idle reaper does with a session it reclaims.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReapPolicy {
    /// Discard the session's recognition state (the pre-snapshot
    /// behaviour): a client returning after a reap starts over, and its
    /// late pushes count as orphan commands.
    #[default]
    Drop,
    /// Suspend the session into the manager's
    /// [`SnapshotStore`](echowrite_snapshot::SnapshotStore) instead of
    /// discarding it; the next `Open`/`Push`/`Finish` for the id thaws it
    /// transparently and the session resumes bitwise where it left off.
    /// Requires construction via
    /// [`SessionManager::with_snapshot_store`](crate::SessionManager::with_snapshot_store).
    SuspendToStore,
}

/// Flight-recorder knobs (DESIGN.md §6.11): every shard worker owns an
/// always-on bounded ring of recent trace events; anomalies (shed latch,
/// deadline degradation, malformed wire frames, reap/thaw churn, shutdown)
/// dump the rings as Chrome-trace postmortem artifacts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlightOptions {
    /// Per-shard ring capacity, in recorded events.
    pub capacity: usize,
    /// Directory anomaly dumps are written to. `None` keeps the rings
    /// purely in-memory — snapshots are still served on demand via
    /// [`SessionManager::flight_snapshot`](crate::SessionManager::flight_snapshot),
    /// but anomalies leave no artifact.
    pub artifact_dir: Option<std::path::PathBuf>,
    /// Reap/suspend/thaw events within one reaper scan window that count
    /// as churn and trigger a dump; `0` disables the churn trigger.
    pub churn_threshold: u64,
}

impl Default for FlightOptions {
    fn default() -> Self {
        FlightOptions {
            capacity: echowrite_trace::DEFAULT_FLIGHT_CAPACITY,
            artifact_dir: None,
            churn_threshold: 32,
        }
    }
}

/// Tuning knobs for a [`SessionManager`](crate::SessionManager).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeConfig {
    /// Worker shard count; reuses the workspace [`Parallelism`] knob
    /// (`Auto` resolves to the machine's available parallelism).
    pub shards: Parallelism,
    /// Bounded depth of each shard's ingress queue; a full queue makes
    /// [`submit`](crate::SessionManager::submit) return
    /// [`SubmitVerdict::QueueFull`](crate::SubmitVerdict::QueueFull)
    /// instead of blocking.
    pub queue_capacity: usize,
    /// Hard cap on live sessions across all shards; opens beyond it are
    /// shed unconditionally.
    pub max_sessions: usize,
    /// Admission high-water mark: once live sessions reach it, new opens
    /// are shed until the population drains to ¾ of this mark
    /// (hysteresis, so admission does not flap at the boundary).
    pub high_water: usize,
    /// Backlog deadline, in queued pushes: a push that sees more than this
    /// many pushes enqueued behind it by the time its shard dequeues it is
    /// degraded to segment-only output (DTW matching skipped). `None`
    /// disables degradation — required for bitwise-deterministic output
    /// under load.
    pub deadline_chunks: Option<u64>,
    /// Idle reaping threshold on the shard's logical clock (total samples
    /// the shard has processed): a session whose last command is older
    /// than this many samples is reclaimed. `None` disables the reaper.
    pub idle_timeout_samples: Option<u64>,
    /// Maximum commands a shard worker drains from its queue per batch.
    /// Pushes in one batch run through a single shard-shared DSP scratch
    /// (the windowed-frame/FFT/spectrum buffers stay hot across sessions);
    /// commands still execute strictly in queue order, so output is
    /// independent of the batch size. `1` disables batching.
    pub batch_max: usize,
    /// What the idle reaper does with sessions it reclaims: drop them
    /// (default) or suspend them into the snapshot store for transparent
    /// resumption.
    pub reap_policy: ReapPolicy,
    /// Flight-recorder configuration (always-on per-shard event rings and
    /// their anomaly dump triggers).
    pub flight: FlightOptions,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            shards: Parallelism::Auto,
            queue_capacity: 256,
            max_sessions: 4096,
            high_water: 3072,
            deadline_chunks: None,
            idle_timeout_samples: None,
            batch_max: 8,
            reap_policy: ReapPolicy::Drop,
            flight: FlightOptions::default(),
        }
    }
}

impl ServeConfig {
    /// Resolves the shard count ([`Parallelism::Auto`] queries the
    /// machine; an explicit `Threads(n)` is used as-is).
    pub fn shard_count(&self) -> usize {
        // `workers` caps by the work-unit count; shards are long-lived
        // workers, so the count is not work-bounded.
        self.shards.workers(usize::MAX)
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a message describing the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.shards == Parallelism::Threads(0) {
            return Err("serve needs at least one shard".to_string());
        }
        if self.queue_capacity == 0 {
            return Err("queue capacity must be positive".to_string());
        }
        if self.max_sessions == 0 {
            return Err("max_sessions must be positive".to_string());
        }
        if self.high_water == 0 || self.high_water > self.max_sessions {
            return Err(format!(
                "high_water {} must be in 1..=max_sessions ({})",
                self.high_water, self.max_sessions
            ));
        }
        if self.idle_timeout_samples == Some(0) {
            return Err("idle_timeout_samples of 0 would reap every session instantly".to_string());
        }
        if self.batch_max == 0 {
            return Err("batch_max must be at least 1 (1 disables batching)".to_string());
        }
        if self.flight.capacity == 0 {
            return Err("flight ring capacity must be positive".to_string());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        assert!(ServeConfig::default().validate().is_ok());
    }

    /// The `Parallelism::Threads(0)` rejection mirrors
    /// `EchoWriteConfig::validate` — zero shards, like zero STFT workers,
    /// is a configuration error, not a silent clamp.
    #[test]
    fn rejects_zero_shards() {
        let cfg = ServeConfig { shards: Parallelism::Threads(0), ..ServeConfig::default() };
        assert!(cfg.validate().is_err());
        let one = ServeConfig { shards: Parallelism::Threads(1), ..ServeConfig::default() };
        assert!(one.validate().is_ok());
        assert_eq!(one.shard_count(), 1);
    }

    #[test]
    fn rejects_degenerate_limits() {
        let zero_q = ServeConfig { queue_capacity: 0, ..ServeConfig::default() };
        assert!(zero_q.validate().is_err());
        let zero_max = ServeConfig { max_sessions: 0, high_water: 0, ..ServeConfig::default() };
        assert!(zero_max.validate().is_err());
        let hw = ServeConfig { max_sessions: 8, high_water: 9, ..ServeConfig::default() };
        assert!(hw.validate().is_err());
        let reap0 = ServeConfig { idle_timeout_samples: Some(0), ..ServeConfig::default() };
        assert!(reap0.validate().is_err());
        let batch0 = ServeConfig { batch_max: 0, ..ServeConfig::default() };
        assert!(batch0.validate().is_err());
        let batch1 = ServeConfig { batch_max: 1, ..ServeConfig::default() };
        assert!(batch1.validate().is_ok(), "batch_max of 1 (batching off) is valid");
        let flight0 = ServeConfig {
            flight: FlightOptions { capacity: 0, ..FlightOptions::default() },
            ..ServeConfig::default()
        };
        assert!(flight0.validate().is_err());
    }

    #[test]
    fn auto_resolves_to_at_least_one_shard() {
        assert!(ServeConfig::default().shard_count() >= 1);
    }
}
