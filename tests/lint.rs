//! Tier-1 gate: the live tree must be echolint-clean.
//!
//! This is the in-process equivalent of `cargo run -p echolint -- --workspace`
//! exiting 0. Every surviving panic site in pipeline non-test code must carry
//! a reasoned `// echolint: allow(…) -- …` marker; see DESIGN.md §6.2.

use std::path::Path;

#[test]
fn workspace_passes_echolint() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let diags = echolint::lint_workspace(root).expect("workspace walk");
    assert!(
        diags.is_empty(),
        "echolint found {} diagnostic(s):\n{}",
        diags.len(),
        diags.iter().map(ToString::to_string).collect::<Vec<_>>().join("\n")
    );
}
