//! Monte-Carlo calibration: estimating the stroke confusion matrix.
//!
//! The paper obtains `P(s|l)` "from \[the\] confusion matrix in \[the\]
//! stroke-recognition stage" and derives its correction rules from the
//! dominant error modes. This module runs seeded stroke trials through the
//! full audio pipeline to estimate that matrix for any device/environment,
//! and derives data-driven correction rules from it.

use echowrite::EchoWrite;
use echowrite_dtw::ConfusionMatrix;
use echowrite_gesture::{Stroke, Writer, WriterParams};
use echowrite_lang::CorrectionRules;
use echowrite_synth::{DeviceProfile, EnvironmentProfile, Scene};

/// A calibrated confusion matrix plus the correction rules it implies.
#[derive(Debug, Clone)]
pub struct Calibration {
    /// Empirical confusion counts.
    pub confusion: ConfusionMatrix,
    /// Correction rules derived from confusions above 4 %.
    pub rules: CorrectionRules,
}

/// Runs one single-stroke trial through the full audio pipeline and returns
/// the recognized stroke (`None` if no segment was detected).
///
/// Single-stroke trials take the longest detected segment, since the trial
/// protocol guarantees exactly one intended stroke.
pub fn stroke_trial(
    engine: &EchoWrite,
    writer: &WriterParams,
    device: &DeviceProfile,
    environment: &EnvironmentProfile,
    stroke: Stroke,
    seed: u64,
) -> Option<Stroke> {
    let perf = Writer::new(writer.clone(), seed).write_stroke(stroke);
    let scene = Scene::new(device.clone(), environment.clone(), seed ^ 0xA5A5_A5A5);
    let mic = scene.render(&perf.trajectory);
    let rec = engine.recognize_strokes(&mic);
    rec.classifications
        .iter()
        .zip(&rec.segments)
        .max_by_key(|(_, s)| s.len())
        .map(|(c, _)| c.stroke)
}

/// Estimates the confusion matrix with `reps` trials per stroke using the
/// nominal writer on a Mate 9 in the meeting room (the paper's calibration
/// setting), then derives correction rules.
///
/// Undetected trials are recorded as confusion with the most-confusable
/// stroke per the matrix-less prior (S1, the weakest profile), mirroring
/// how a deployed system would log a miss.
pub fn calibrate(engine: &EchoWrite, reps: u64, seed: u64) -> Calibration {
    let device = DeviceProfile::mate9();
    let environment = EnvironmentProfile::meeting_room();
    let writer = WriterParams::nominal();
    let mut confusion = ConfusionMatrix::new();
    for stroke in Stroke::ALL {
        for r in 0..reps {
            let trial_seed = seed
                .wrapping_mul(0x0100_0000_01B3)
                .wrapping_add(stroke.index() as u64 * 1009 + r);
            let observed = stroke_trial(engine, &writer, &device, &environment, stroke, trial_seed)
                .unwrap_or(Stroke::S1);
            confusion.record(stroke, observed);
        }
    }
    let rules = CorrectionRules::from_confusion(&confusion, 0.04);
    Calibration { confusion, rules }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;

    fn engine() -> &'static EchoWrite {
        static E: OnceLock<EchoWrite> = OnceLock::new();
        E.get_or_init(EchoWrite::new)
    }

    #[test]
    fn stroke_trial_recognizes_most_strokes() {
        let e = engine();
        let mut hits = 0;
        for (i, s) in Stroke::ALL.iter().enumerate() {
            if stroke_trial(
                e,
                &WriterParams::nominal(),
                &DeviceProfile::mate9(),
                &EnvironmentProfile::meeting_room(),
                *s,
                900 + i as u64,
            ) == Some(*s)
            {
                hits += 1;
            }
        }
        assert!(hits >= 5, "only {hits}/6 trials recognized");
    }

    #[test]
    fn calibration_produces_diagonal_dominance() {
        let e = engine();
        let cal = calibrate(e, 4, 1);
        assert_eq!(cal.confusion.total(), 24);
        let acc = cal.confusion.overall_accuracy().unwrap();
        assert!(acc > 0.7, "calibration accuracy {acc}");
    }

    #[test]
    fn calibration_is_deterministic() {
        let e = engine();
        let a = calibrate(e, 2, 9);
        let b = calibrate(e, 2, 9);
        assert_eq!(a.confusion, b.confusion);
    }
}
