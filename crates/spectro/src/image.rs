//! Two-dimensional image operations on spectrograms.
//!
//! These are the building blocks of the paper's Doppler-enhancement chain
//! (Sec. III-A): 2-D median and Gaussian filtering, spectral subtraction of
//! static frames, energy thresholding, zero-one normalization, binarization,
//! and morphological hole filling via flood fill [Soille, 2013].

use crate::spectrogram::Spectrogram;
use echowrite_dsp::filters::gaussian_kernel;

/// Applies a `size`×`size` median filter (edges replicate).
///
/// Interior pixels gather their window by direct row-slice copies and the
/// median is found with a partial selection instead of a full sort; the
/// output is element-for-element identical to the straightforward
/// gather-and-sort definition.
///
/// # Panics
///
/// Panics if `size` is even or zero.
pub fn median_filter_2d(src: &Spectrogram, size: usize) -> Spectrogram {
    assert!(size % 2 == 1 && size > 0, "median size must be odd, got {size}");
    let half = size / 2;
    let (rows, cols) = (src.rows(), src.cols());
    let mut out = src.clone();
    if cols == 0 {
        return out;
    }
    let data = src.data();
    let mut window = vec![0.0f64; size * size];
    let mid = (size * size) / 2;
    for r in 0..rows {
        for c in 0..cols {
            if r >= half && r + half < rows && c >= half && c + half < cols {
                // Interior: the window is `size` contiguous row slices.
                for dr in 0..size {
                    let base = (r - half + dr) * cols + (c - half);
                    window[dr * size..(dr + 1) * size]
                        .copy_from_slice(&data[base..base + size]);
                }
            } else {
                // Border: replicate edges via clamping.
                let mut n = 0;
                for dr in -(half as isize)..=half as isize {
                    let rr = (r as isize + dr).clamp(0, rows as isize - 1) as usize;
                    for dc in -(half as isize)..=half as isize {
                        let cc = (c as isize + dc).clamp(0, cols as isize - 1) as usize;
                        window[n] = data[rr * cols + cc];
                        n += 1;
                    }
                }
            }
            let (_, m, _) = window.select_nth_unstable_by(mid, |a, b| a.total_cmp(b));
            out.set(r, c, *m);
        }
    }
    out
}

/// Applies a separable Gaussian blur with an odd `size`×`size` kernel
/// (σ = size/6, edges replicate).
///
/// # Panics
///
/// Panics if `size` is even or zero.
pub fn gaussian_filter_2d(src: &Spectrogram, size: usize) -> Spectrogram {
    let mut out = src.clone();
    gaussian_filter_2d_in_place(&mut out, size);
    out
}

/// In-place separable Gaussian blur (same semantics as
/// [`gaussian_filter_2d`]): one horizontal and one vertical pass, with a
/// single line buffer as the only allocation.
///
/// # Panics
///
/// Panics if `size` is even or zero.
pub fn gaussian_filter_2d_in_place(s: &mut Spectrogram, size: usize) {
    let kernel = gaussian_kernel(size, None);
    let (rows, cols) = (s.rows(), s.cols());
    if cols == 0 {
        return;
    }
    let data = s.data_mut();
    let mut line = vec![0.0f64; cols.max(rows)];
    let mut conv = vec![0.0f64; cols.max(rows)];

    // Horizontal pass, one row at a time, through the SIMD-dispatched
    // clamped convolution (edge clamping matches the old scalar loop).
    for r in 0..rows {
        let row = &data[r * cols..(r + 1) * cols];
        echowrite_dsp::kernels::conv1d_clamped_into(&mut conv[..cols], row, &kernel);
        data[r * cols..(r + 1) * cols].copy_from_slice(&conv[..cols]);
    }
    // Vertical pass, one column at a time.
    for c in 0..cols {
        for (r, l) in line[..rows].iter_mut().enumerate() {
            *l = data[r * cols + c];
        }
        echowrite_dsp::kernels::conv1d_clamped_into(&mut conv[..rows], &line[..rows], &kernel);
        for (r, &v) in conv[..rows].iter().enumerate() {
            data[r * cols + c] = v;
        }
    }
}

/// Spectral subtraction: computes the per-row mean of the first
/// `static_frames` columns and subtracts it from every column, clamping at
/// zero. Suppresses the carrier line, direct leakage, and static multipath
/// (paper: "subtract STFT of static frames from each following frame").
///
/// # Panics
///
/// Panics if `static_frames` is zero or exceeds the column count.
pub fn subtract_static(src: &Spectrogram, static_frames: usize) -> Spectrogram {
    let mut out = src.clone();
    subtract_static_in_place(&mut out, static_frames);
    out
}

/// In-place variant of [`subtract_static`].
///
/// # Panics
///
/// Panics if `static_frames` is zero or exceeds the column count.
pub fn subtract_static_in_place(s: &mut Spectrogram, static_frames: usize) {
    assert!(
        static_frames > 0 && static_frames <= s.cols(),
        "static_frames {static_frames} out of range for {} columns",
        s.cols()
    );
    let cols = s.cols();
    for row in s.data_mut().chunks_exact_mut(cols) {
        let mean: f64 = row[..static_frames].iter().sum::<f64>() / static_frames as f64;
        echowrite_dsp::kernels::subtract_clamp(row, mean);
    }
}

/// Subtracts an externally supplied per-row background from every column,
/// clamping at zero — the streaming variant of [`subtract_static`], where
/// the background was frozen from the session's opening static frames.
///
/// # Panics
///
/// Panics if `background.len() != src.rows()`.
pub fn subtract_background(src: &Spectrogram, background: &[f64]) -> Spectrogram {
    let mut out = src.clone();
    subtract_background_in_place(&mut out, background);
    out
}

/// In-place variant of [`subtract_background`].
///
/// # Panics
///
/// Panics if `background.len() != s.rows()`.
pub fn subtract_background_in_place(s: &mut Spectrogram, background: &[f64]) {
    assert_eq!(background.len(), s.rows(), "background row-count mismatch");
    let cols = s.cols();
    if cols == 0 {
        return;
    }
    for (row, &bg) in s.data_mut().chunks_exact_mut(cols).zip(background) {
        echowrite_dsp::kernels::subtract_clamp(row, bg);
    }
}

/// Per-row mean of the first `static_frames` columns — the background
/// estimate that [`subtract_static`] uses internally.
///
/// # Panics
///
/// Panics if `static_frames` is zero or exceeds the column count.
pub fn row_means(src: &Spectrogram, static_frames: usize) -> Vec<f64> {
    assert!(
        static_frames > 0 && static_frames <= src.cols(),
        "static_frames {static_frames} out of range for {} columns",
        src.cols()
    );
    (0..src.rows())
        .map(|r| (0..static_frames).map(|c| src.get(r, c)).sum::<f64>() / static_frames as f64)
        .collect()
}

/// Zeroes every cell strictly below `alpha` (the paper's hardware-noise
/// energy threshold, α = 8 for their device).
pub fn threshold(src: &Spectrogram, alpha: f64) -> Spectrogram {
    let mut out = src.clone();
    threshold_in_place(&mut out, alpha);
    out
}

/// In-place variant of [`threshold`].
pub fn threshold_in_place(s: &mut Spectrogram, alpha: f64) {
    echowrite_dsp::kernels::threshold_zero(s.data_mut(), alpha);
}

/// Rescales the whole matrix into `[0, 1]` (paper's "zero-one
/// normalization"). A constant matrix becomes all zeros.
pub fn normalize_zero_one(src: &Spectrogram) -> Spectrogram {
    let mut out = src.clone();
    echowrite_dsp::util::normalize_zero_one(out.data_mut());
    out
}

/// Binarizes at `t`: cells ≥ `t` become 1.0, the rest 0.0.
pub fn binarize(src: &Spectrogram, t: f64) -> Spectrogram {
    let mut out = src.clone();
    binarize_in_place(&mut out, t);
    out
}

/// In-place variant of [`binarize`].
pub fn binarize_in_place(s: &mut Spectrogram, t: f64) {
    echowrite_dsp::kernels::binarize(s.data_mut(), t);
}

/// Fills holes in a binary image: zero-regions not 4-connected to the image
/// border become 1 (flood fill on background pixels, paper's reference
/// [Soille 2013]).
///
/// # Panics
///
/// Panics if the input is not binary.
pub fn fill_holes(src: &Spectrogram) -> Spectrogram {
    let mut out = src.clone();
    fill_holes_in_place(&mut out);
    out
}

/// In-place variant of [`fill_holes`].
///
/// # Panics
///
/// Panics if the input is not binary.
pub fn fill_holes_in_place(s: &mut Spectrogram) {
    assert!(s.is_binary(), "fill_holes requires a binary spectrogram");
    let (rows, cols) = (s.rows(), s.cols());
    if rows == 0 || cols == 0 {
        return;
    }
    // Flood from all border background pixels.
    let data = s.data_mut();
    let mut outside = vec![false; rows * cols];
    let mut stack: Vec<(usize, usize)> = Vec::new();
    let try_seed = |r: usize, c: usize, stack: &mut Vec<(usize, usize)>, data: &[f64]| {
        if data[r * cols + c] == 0.0 {
            stack.push((r, c));
        }
    };
    for c in 0..cols {
        try_seed(0, c, &mut stack, data);
        try_seed(rows - 1, c, &mut stack, data);
    }
    for r in 0..rows {
        try_seed(r, 0, &mut stack, data);
        try_seed(r, cols - 1, &mut stack, data);
    }
    while let Some((r, c)) = stack.pop() {
        let idx = r * cols + c;
        if outside[idx] || data[idx] != 0.0 {
            continue;
        }
        outside[idx] = true;
        if r > 0 {
            stack.push((r - 1, c));
        }
        if r + 1 < rows {
            stack.push((r + 1, c));
        }
        if c > 0 {
            stack.push((r, c - 1));
        }
        if c + 1 < cols {
            stack.push((r, c + 1));
        }
    }
    for (v, &out_flag) in data.iter_mut().zip(&outside) {
        if *v == 0.0 && !out_flag {
            *v = 1.0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn from_rows(rows: &[&[f64]]) -> Spectrogram {
        // Convert row-major literals into the column-based constructor.
        let n_rows = rows.len();
        let n_cols = rows[0].len();
        let mut s = Spectrogram::zeros(n_rows, n_cols);
        for (r, row) in rows.iter().enumerate() {
            assert_eq!(row.len(), n_cols);
            for (c, &v) in row.iter().enumerate() {
                s.set(r, c, v);
            }
        }
        s
    }

    #[test]
    fn median_removes_salt_noise() {
        let s = from_rows(&[
            &[0.0, 0.0, 0.0],
            &[0.0, 9.0, 0.0],
            &[0.0, 0.0, 0.0],
        ]);
        let f = median_filter_2d(&s, 3);
        assert_eq!(f.get(1, 1), 0.0);
    }

    #[test]
    fn median_preserves_solid_blocks() {
        let s = from_rows(&[
            &[5.0, 5.0, 5.0, 0.0],
            &[5.0, 5.0, 5.0, 0.0],
            &[5.0, 5.0, 5.0, 0.0],
        ]);
        let f = median_filter_2d(&s, 3);
        assert_eq!(f.get(1, 1), 5.0);
        assert_eq!(f.get(0, 0), 5.0); // replicate edges keep the block
    }

    #[test]
    #[should_panic(expected = "odd")]
    fn median_rejects_even_size() {
        median_filter_2d(&Spectrogram::zeros(2, 2), 2);
    }

    #[test]
    fn gaussian_preserves_flat_image() {
        let s = from_rows(&[&[3.0; 6]; 5].map(|r| r as &[f64]));
        let g = gaussian_filter_2d(&s, 5);
        for r in 0..5 {
            for c in 0..6 {
                assert!((g.get(r, c) - 3.0).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn gaussian_spreads_impulse_symmetrically() {
        let mut s = Spectrogram::zeros(7, 7);
        s.set(3, 3, 1.0);
        let g = gaussian_filter_2d(&s, 5);
        assert!(g.get(3, 3) > g.get(3, 4));
        assert!((g.get(3, 2) - g.get(3, 4)).abs() < 1e-12);
        assert!((g.get(2, 3) - g.get(4, 3)).abs() < 1e-12);
        // Mass is conserved away from edges.
        let total: f64 = g.data().iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn subtract_static_removes_constant_rows() {
        // Row 0 is a static carrier at 10; row 1 has a burst in column 3.
        let s = from_rows(&[
            &[10.0, 10.0, 10.0, 10.0],
            &[1.0, 1.0, 1.0, 6.0],
        ]);
        let out = subtract_static(&s, 2);
        for c in 0..4 {
            assert_eq!(out.get(0, c), 0.0, "carrier row should vanish");
        }
        assert_eq!(out.get(1, 3), 5.0);
        assert_eq!(out.get(1, 0), 0.0);
    }

    #[test]
    fn subtract_static_clamps_at_zero() {
        let s = from_rows(&[&[4.0, 1.0]]);
        let out = subtract_static(&s, 1);
        assert_eq!(out.get(0, 1), 0.0); // 1 − 4 clamps to 0
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn subtract_static_validates_count() {
        subtract_static(&Spectrogram::zeros(1, 2), 3);
    }

    #[test]
    fn threshold_zeroes_small_values() {
        let s = from_rows(&[&[7.9, 8.0, 8.1]]);
        let out = threshold(&s, 8.0);
        assert_eq!(out.get(0, 0), 0.0);
        assert_eq!(out.get(0, 1), 8.0);
        assert_eq!(out.get(0, 2), 8.1);
    }

    #[test]
    fn normalize_and_binarize() {
        let s = from_rows(&[&[2.0, 4.0, 18.0]]);
        let n = normalize_zero_one(&s);
        assert_eq!(n.get(0, 0), 0.0);
        assert_eq!(n.get(0, 2), 1.0);
        let b = binarize(&n, 0.15);
        assert!(b.is_binary());
        assert_eq!(b.get(0, 0), 0.0);
        assert_eq!(b.get(0, 1), 0.0); // 0.125 < 0.15
        assert_eq!(b.get(0, 2), 1.0);
    }

    #[test]
    fn fill_holes_fills_enclosed_background() {
        let s = from_rows(&[
            &[1.0, 1.0, 1.0, 0.0],
            &[1.0, 0.0, 1.0, 0.0],
            &[1.0, 1.0, 1.0, 0.0],
        ]);
        let f = fill_holes(&s);
        assert_eq!(f.get(1, 1), 1.0, "enclosed hole must fill");
        assert_eq!(f.get(0, 3), 0.0, "border-connected background must stay");
        assert_eq!(f.get(1, 3), 0.0);
    }

    #[test]
    fn fill_holes_ignores_open_bays() {
        // A "C" shape: background connects to the border through the gap.
        let s = from_rows(&[
            &[1.0, 1.0, 1.0],
            &[1.0, 0.0, 0.0],
            &[1.0, 1.0, 1.0],
        ]);
        let f = fill_holes(&s);
        assert_eq!(f.get(1, 1), 0.0);
        assert_eq!(f.get(1, 2), 0.0);
    }

    #[test]
    fn fill_holes_diagonal_gap_is_not_a_seal() {
        // Foreground touching only diagonally does not enclose (4-conn).
        let s = from_rows(&[
            &[1.0, 0.0, 1.0],
            &[0.0, 0.0, 0.0],
            &[1.0, 0.0, 1.0],
        ]);
        let f = fill_holes(&s);
        assert_eq!(f.get(1, 1), 0.0);
    }

    #[test]
    #[should_panic(expected = "binary")]
    fn fill_holes_rejects_grayscale() {
        fill_holes(&from_rows(&[&[0.5]]));
    }
}
