//! Word-recognition experiments (paper Sec. V-B1/2, Table I, Figs. 14–15).
//!
//! Participants write each of the ten Table-I words 30 times; the decoder
//! reports its top-5 candidates. Fig. 14 reports top-k accuracy per word
//! (paper averages: 73.2 / 85.4 / 94.9 / 95.1 / 95.7 % for k = 1..5);
//! Fig. 15 ablates stroke correction (top-5 averages 88.9 % with vs 84.5 %
//! without).

use super::strokes::shared_engine;
use super::Scale;
use crate::calibrate::calibrate;
use crate::report::{pct, Table};
use echowrite_corpus::table1_words;
use echowrite_gesture::{InputScheme, Writer, WriterParams};
use echowrite_lang::{CorrectionRules, WordDecoder};
use echowrite_synth::{DeviceProfile, EnvironmentProfile, Scene};
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

/// One word-entry trial: candidate ranks with and without correction.
#[derive(Debug, Clone, PartialEq)]
pub struct WordTrial {
    /// The intended word.
    pub word: String,
    /// 0-based rank among candidates with correction (None = not listed).
    pub rank_corrected: Option<usize>,
    /// 0-based rank without correction.
    pub rank_plain: Option<usize>,
    /// 0-based rank under general edit-distance-1 decoding (ablation A4).
    pub rank_full_edit: Option<usize>,
}

/// All word trials of one run.
#[derive(Debug, Clone, Default)]
pub struct WordTrials {
    /// Individual records.
    pub trials: Vec<WordTrial>,
}

impl WordTrials {
    /// Top-k accuracy for a word (or all words when `word` is `None`).
    pub fn top_k_accuracy(&self, word: Option<&str>, k: usize, corrected: bool) -> f64 {
        self.top_k_by(word, k, |t| if corrected { t.rank_corrected } else { t.rank_plain })
    }

    /// Top-k accuracy under general edit-distance-1 decoding.
    pub fn top_k_full_edit(&self, word: Option<&str>, k: usize) -> f64 {
        self.top_k_by(word, k, |t| t.rank_full_edit)
    }

    fn top_k_by<F>(&self, word: Option<&str>, k: usize, rank: F) -> f64
    where
        F: Fn(&WordTrial) -> Option<usize>,
    {
        let subset: Vec<&WordTrial> = self
            .trials
            .iter()
            .filter(|t| word.map(|w| t.word == w).unwrap_or(true))
            .collect();
        if subset.is_empty() {
            return 0.0;
        }
        let hits = subset
            .iter()
            .filter(|t| rank(t).map(|r| r < k).unwrap_or(false))
            .count();
        hits as f64 / subset.len() as f64
    }
}

/// Runs (or returns cached) word trials: each Table-I word written `reps`
/// times through the full audio pipeline, decoded twice (with and without
/// stroke correction) from the same recognized strokes.
/// Cache of word-trial runs keyed by `(reps, seed)`.
type WordTrialCache = OnceLock<Mutex<HashMap<(usize, u64), Arc<WordTrials>>>>;

pub fn run_word_trials(scale: Scale) -> Arc<WordTrials> {
    static CACHE: WordTrialCache = WordTrialCache::new();
    let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    if let Some(hit) = cache.lock().expect("lock").get(&(scale.reps, scale.seed)) {
        return Arc::clone(hit);
    }

    let engine = shared_engine();
    // Calibrate the confusion prior once (the paper's P(s|l) source).
    let cal = calibrate(engine, scale.reps.clamp(3, 12) as u64, scale.seed);
    let decoder_corrected = WordDecoder::new(engine.decoder().dictionary().clone())
        .with_confusion(cal.confusion.clone())
        .with_rules(cal.rules.clone())
        .with_top_k(5);
    let decoder_plain = WordDecoder::new(engine.decoder().dictionary().clone())
        .with_confusion(cal.confusion)
        .with_rules(CorrectionRules::none())
        .with_top_k(5);

    let scheme = InputScheme::paper();
    let words = table1_words();
    struct Job {
        word: String,
        seed: u64,
    }
    let mut jobs = Vec::new();
    for (wi, w) in words.iter().enumerate() {
        for rep in 0..scale.reps {
            jobs.push(Job {
                word: w.clone(),
                seed: scale
                    .seed
                    .wrapping_mul(0xD134_2543_DE82_EF95)
                    .wrapping_add((wi as u64) << 24)
                    .wrapping_add(rep as u64),
            });
        }
    }

    let device = DeviceProfile::mate9();
    let environment = EnvironmentProfile::meeting_room();
    let workers = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4);
    let chunk = jobs.len().div_ceil(workers.max(1));
    let mut trials = Vec::with_capacity(jobs.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = jobs
            .chunks(chunk.max(1))
            .map(|chunk_jobs| {
                let scheme = &scheme;
                let decoder_corrected = &decoder_corrected;
                let decoder_plain = &decoder_plain;
                let device = &device;
                let environment = &environment;
                scope.spawn(move || {
                    chunk_jobs
                        .iter()
                        .map(|j| {
                            let seq = scheme.encode_word(&j.word).expect("table-1 words are clean");
                            let perf =
                                Writer::new(WriterParams::nominal(), j.seed).write_sequence(&seq);
                            let scene =
                                Scene::new(device.clone(), environment.clone(), j.seed ^ 0x5bd1e995);
                            let mic = scene.render(&perf.trajectory);
                            let rec = engine.recognize_strokes(&mic);
                            let observed = rec.strokes();
                            let rank = |d: &WordDecoder| {
                                d.decode(&observed)
                                    .iter()
                                    .position(|c| c.word == j.word)
                            };
                            let rank_full_edit = decoder_corrected
                                .decode_full_edit(&observed, 0.05)
                                .iter()
                                .position(|c| c.word == j.word);
                            WordTrial {
                                word: j.word.clone(),
                                rank_corrected: rank(decoder_corrected),
                                rank_plain: rank(decoder_plain),
                                rank_full_edit,
                            }
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        for h in handles {
            trials.extend(h.join().expect("word worker panicked"));
        }
    });

    let result = Arc::new(WordTrials { trials });
    cache
        .lock()
        .expect("lock")
        .insert((scale.reps, scale.seed), Arc::clone(&result));
    result
}

/// Table I — the ten evaluation words with their stroke sequences.
pub fn table1() -> Table {
    let scheme = InputScheme::paper();
    let mut t = Table::new(
        "Table I — selected words (short/medium/long, covering all six strokes)",
        &["word", "length", "stroke sequence"],
    );
    for w in table1_words() {
        let seq = scheme.encode_word(&w).expect("clean words");
        t.push_row(vec![
            w.clone(),
            w.len().to_string(),
            echowrite_gesture::stroke::format_sequence(&seq),
        ]);
    }
    t
}

/// Fig. 14 — top-1..5 accuracy per word, with stroke correction.
pub fn fig14(scale: Scale) -> Table {
    let trials = run_word_trials(scale);
    let mut t = Table::new(
        "Fig. 14 — top-k accuracy per word (with correction; paper avgs 73/85/95/95/96%)",
        &["word", "top-1", "top-2", "top-3", "top-4", "top-5"],
    );
    for w in table1_words() {
        let mut row = vec![w.clone()];
        for k in 1..=5 {
            row.push(pct(trials.top_k_accuracy(Some(&w), k, true)));
        }
        t.push_row(row);
    }
    let mut mean_row = vec!["mean".to_string()];
    for k in 1..=5 {
        mean_row.push(pct(trials.top_k_accuracy(None, k, true)));
    }
    t.push_row(mean_row);
    t
}

/// Fig. 15 — average top-k accuracy with vs without stroke correction
/// (paper: 88.9 % vs 84.5 % top-5 average).
pub fn fig15(scale: Scale) -> Table {
    let trials = run_word_trials(scale);
    let mut t = Table::new(
        "Fig. 15 — top-k accuracy with vs without stroke correction",
        &["k", "with correction", "without correction"],
    );
    for k in 1..=5 {
        t.push_row(vec![
            k.to_string(),
            pct(trials.top_k_accuracy(None, k, true)),
            pct(trials.top_k_accuracy(None, k, false)),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Scale {
        Scale { reps: 2, seed: 42 }
    }

    #[test]
    fn table1_lists_ten_words() {
        let t = table1();
        assert_eq!(t.rows.len(), 10);
    }

    #[test]
    fn trials_cover_words_and_cache() {
        let a = run_word_trials(tiny());
        assert_eq!(a.trials.len(), 10 * 2);
        let b = run_word_trials(tiny());
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn top_k_accuracy_monotone_in_k() {
        let trials = run_word_trials(tiny());
        let mut prev = 0.0;
        for k in 1..=5 {
            let acc = trials.top_k_accuracy(None, k, true);
            assert!(acc >= prev, "top-{k} {acc} < top-{} {prev}", k - 1);
            prev = acc;
        }
        assert!(prev > 0.5, "top-5 accuracy too low: {prev}");
    }

    #[test]
    fn correction_never_hurts_on_average() {
        let trials = run_word_trials(tiny());
        let with = trials.top_k_accuracy(None, 5, true);
        let without = trials.top_k_accuracy(None, 5, false);
        assert!(with >= without, "correction hurt: {with} < {without}");
    }

    #[test]
    fn figures_render() {
        assert_eq!(fig14(tiny()).rows.len(), 11);
        assert_eq!(fig15(tiny()).rows.len(), 5);
    }
}
