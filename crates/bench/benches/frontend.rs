//! Sec. VII-A ablation — full-rate STFT versus the down-converted
//! front-end.
//!
//! The paper proposes decimation to cut the dominant STFT cost; this bench
//! quantifies the saving on identical audio.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use echowrite::{EchoWrite, EchoWriteConfig, Pipeline};
use echowrite_bench::stroke_trace;
use echowrite_dsp::{Complex, Fft, StftConfig};
use echowrite_dtw::classifier::StrokeClassifier;
use echowrite_gesture::Stroke;
use echowrite_spectro::Spectrogram;
use echowrite_synth::EnvironmentProfile;
use std::hint::black_box;

fn bench_frontends(c: &mut Criterion) {
    echowrite_bench::print_bench_environment();
    let audio = stroke_trace(Stroke::S3, EnvironmentProfile::meeting_room(), 7);

    let mut g = c.benchmark_group("ablation_frontend");
    g.sample_size(10);
    let full = Pipeline::new(EchoWriteConfig::paper());
    g.bench_function(BenchmarkId::new("roi_spectrogram", "full"), |b| {
        b.iter(|| full.roi_spectrogram(black_box(&audio)))
    });
    for factor in [8usize, 16, 32] {
        let p = Pipeline::new(EchoWriteConfig::downsampled(factor));
        g.bench_with_input(
            BenchmarkId::new("roi_spectrogram", format!("div{factor}")),
            &p,
            |b, p| b.iter(|| p.roi_spectrogram(black_box(&audio))),
        );
    }
    g.finish();
}

fn bench_end_to_end(c: &mut Criterion) {
    let audio = stroke_trace(Stroke::S3, EnvironmentProfile::meeting_room(), 7);
    let mut g = c.benchmark_group("ablation_frontend_end_to_end");
    g.sample_size(10);
    let full = EchoWrite::new();
    g.bench_function(BenchmarkId::new("recognize", "full"), |b| {
        b.iter(|| full.recognize_strokes(black_box(&audio)))
    });
    let fast = EchoWrite::with_config(EchoWriteConfig::downsampled(32));
    g.bench_function(BenchmarkId::new("recognize", "div32"), |b| {
        b.iter(|| fast.recognize_strokes(black_box(&audio)))
    });
    g.finish();
}

/// The hot-path STFT rewrite: full-size complex FFTs over every bin with a
/// post-hoc ROI crop (the pre-optimization construction) versus the
/// real-input FFT that materializes only the ROI band into a flat buffer.
fn bench_stft(c: &mut Criterion) {
    let audio = stroke_trace(Stroke::S3, EnvironmentProfile::meeting_room(), 7);
    let cfg = EchoWriteConfig::paper();
    let sc = StftConfig::paper();

    let mut g = c.benchmark_group("stft");
    g.sample_size(10);

    let fft = Fft::new(sc.fft_size);
    let window = sc.window.coefficients(sc.fft_size);
    g.bench_function("stft_full_complex", |b| {
        b.iter(|| {
            let audio = black_box(&audio[..]);
            let mut frames = Vec::new();
            let mut start = 0;
            while start + sc.fft_size <= audio.len() {
                let mut buf: Vec<Complex> = audio[start..start + sc.fft_size]
                    .iter()
                    .zip(&window)
                    .map(|(&x, &w)| Complex::new(x * w, 0.0))
                    .collect();
                fft.forward(&mut buf);
                let mags: Vec<f64> = buf[..sc.fft_size / 2 + 1]
                    .iter()
                    .map(|z| z.norm())
                    .collect();
                frames.push(mags);
                start += sc.hop;
            }
            Spectrogram::roi_from_stft(&frames, &sc, cfg.carrier_hz, cfg.roi_span_hz)
        })
    });

    let p = Pipeline::new(cfg.clone());
    g.bench_function("stft_real_roi", |b| {
        b.iter(|| p.roi_spectrogram(black_box(&audio)))
    });

    // The same pair with enhancement included — the legacy enhancement
    // materialized four full-spectrogram clones via the staged path.
    let enhancer = echowrite_spectro::Enhancer::new(echowrite_spectro::EnhanceConfig::paper());
    g.bench_function("stft_enhance_legacy", |b| {
        b.iter(|| {
            let audio = black_box(&audio[..]);
            let mut frames = Vec::new();
            let mut start = 0;
            while start + sc.fft_size <= audio.len() {
                let mut buf: Vec<Complex> = audio[start..start + sc.fft_size]
                    .iter()
                    .zip(&window)
                    .map(|(&x, &w)| Complex::new(x * w, 0.0))
                    .collect();
                fft.forward(&mut buf);
                let mags: Vec<f64> = buf[..sc.fft_size / 2 + 1]
                    .iter()
                    .map(|z| z.norm())
                    .collect();
                frames.push(mags);
                start += sc.hop;
            }
            let spec =
                Spectrogram::roi_from_stft(&frames, &sc, cfg.carrier_hz, cfg.roi_span_hz);
            enhancer.enhance_stages(&spec).binary
        })
    });
    g.bench_function("stft_enhance_fast", |b| {
        b.iter(|| {
            let spec = p.roi_spectrogram(black_box(&audio)).unwrap();
            enhancer.enhance(&spec)
        })
    });
    g.finish();
}

/// Template matching: all six exact DTWs (`classify`) versus the
/// LB_Keogh-ordered, early-abandoning search (`nearest`).
fn bench_dtw(c: &mut Criterion) {
    let lib = echowrite::templates::generate(&EchoWriteConfig::paper());
    // A realistic probe: a warped, perturbed copy of one template, long
    // enough that the O(n·m) DTW cost dominates.
    let base = lib.template(Stroke::S5).to_vec();
    let probe: Vec<f64> = echowrite_dsp::util::resample_linear(&base, base.len() * 3 / 2)
        .iter()
        .enumerate()
        .map(|(i, &v)| v + 3.0 * (i as f64 * 0.37).sin())
        .collect();
    let classifier = StrokeClassifier::new(lib);

    let mut g = c.benchmark_group("dtw");
    g.bench_function("dtw_exact", |b| {
        b.iter(|| classifier.classify(black_box(&probe)))
    });
    g.bench_function("dtw_pruned", |b| {
        b.iter(|| classifier.nearest(black_box(&probe)))
    });
    g.finish();
}

criterion_group!(benches, bench_frontends, bench_end_to_end, bench_stft, bench_dtw);
criterion_main!(benches);
