//! Stroke-recognition experiments (paper Sec. V-A, Figs. 9–13).
//!
//! The paper's protocol: 6 participants × 6 strokes × 30 repetitions in
//! each of 3 rooms on the phone (3 240 instances), plus offline processing
//! of the same protocol recorded with a smartwatch. Each trial here renders
//! a full audio trace through the physical channel and runs the real
//! recognition engine.

use super::Scale;
use crate::calibrate::stroke_trial;
use crate::participant::Participant;
use crate::report::{pct, Table};
use echowrite::EchoWrite;
use echowrite_dtw::ConfusionMatrix;
use echowrite_gesture::{Stroke, Writer, WriterParams};
use echowrite_synth::{DeviceProfile, EnvironmentProfile, Scene};
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

/// One recorded trial.
#[derive(Debug, Clone, PartialEq)]
pub struct TrialRecord {
    /// Device name.
    pub device: String,
    /// Environment name.
    pub environment: String,
    /// Participant id (1-based).
    pub participant: usize,
    /// The intended stroke.
    pub stroke: Stroke,
    /// The recognized stroke, `None` when no segment was detected.
    pub observed: Option<Stroke>,
}

/// All trials of one protocol run.
#[derive(Debug, Clone, Default)]
pub struct StrokeTrials {
    /// Individual records.
    pub records: Vec<TrialRecord>,
}

impl StrokeTrials {
    /// Confusion matrix over a filtered subset; misses count as errors
    /// recorded against S1 (they would surface as a failed entry).
    pub fn confusion<F>(&self, filter: F) -> ConfusionMatrix
    where
        F: Fn(&TrialRecord) -> bool,
    {
        let mut m = ConfusionMatrix::new();
        for r in self.records.iter().filter(|r| filter(r)) {
            let observed = r.observed.unwrap_or(if r.stroke == Stroke::S1 {
                Stroke::S2
            } else {
                Stroke::S1
            });
            m.record(r.stroke, observed);
        }
        m
    }

    /// Overall accuracy over a filtered subset (`None` if empty).
    pub fn accuracy<F>(&self, filter: F) -> Option<f64>
    where
        F: Fn(&TrialRecord) -> bool,
    {
        self.confusion(filter).overall_accuracy()
    }
}

/// The engine shared by all stroke experiments.
pub fn shared_engine() -> &'static EchoWrite {
    static E: OnceLock<EchoWrite> = OnceLock::new();
    E.get_or_init(EchoWrite::new)
}

/// Runs (or returns the cached) full trial protocol at a scale: phone in
/// all three rooms, watch in the meeting room.
/// Cache of trial runs keyed by `(reps, seed)`.
type TrialCache = OnceLock<Mutex<HashMap<(usize, u64), Arc<StrokeTrials>>>>;

pub fn run_trials(scale: Scale) -> Arc<StrokeTrials> {
    static CACHE: TrialCache = TrialCache::new();
    let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    if let Some(hit) = cache.lock().expect("cache lock").get(&(scale.reps, scale.seed)) {
        return Arc::clone(hit);
    }

    let engine = shared_engine();
    let cohort = Participant::cohort(scale.seed);
    let mut conditions: Vec<(DeviceProfile, EnvironmentProfile)> = EnvironmentProfile::all_paper_rooms()
        .into_iter()
        .map(|env| (DeviceProfile::mate9(), env))
        .collect();
    conditions.push((DeviceProfile::watch2(), EnvironmentProfile::meeting_room()));

    // Expand every (condition, participant, stroke, rep) into a job.
    struct Job {
        device: DeviceProfile,
        environment: EnvironmentProfile,
        participant: usize,
        writer: WriterParams,
        stroke: Stroke,
        seed: u64,
    }
    let mut jobs = Vec::new();
    for (ci, (device, environment)) in conditions.iter().enumerate() {
        for p in &cohort {
            for stroke in Stroke::ALL {
                for rep in 0..scale.reps {
                    let seed = scale
                        .seed
                        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                        .wrapping_add((ci as u64) << 40)
                        .wrapping_add((p.id as u64) << 32)
                        .wrapping_add((stroke.index() as u64) << 16)
                        .wrapping_add(rep as u64);
                    jobs.push(Job {
                        device: device.clone(),
                        environment: environment.clone(),
                        participant: p.id,
                        writer: p.writer.clone(),
                        stroke,
                        seed,
                    });
                }
            }
        }
    }

    // Fan the jobs across threads; each trial is independent.
    let workers = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4);
    let chunk = jobs.len().div_ceil(workers.max(1));
    let mut records: Vec<TrialRecord> = Vec::with_capacity(jobs.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = jobs
            .chunks(chunk.max(1))
            .map(|chunk_jobs| {
                scope.spawn(move || {
                    chunk_jobs
                        .iter()
                        .map(|j| TrialRecord {
                            device: j.device.name.clone(),
                            environment: j.environment.name.clone(),
                            participant: j.participant,
                            stroke: j.stroke,
                            observed: stroke_trial(
                                engine,
                                &j.writer,
                                &j.device,
                                &j.environment,
                                j.stroke,
                                j.seed,
                            ),
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        for h in handles {
            records.extend(h.join().expect("trial worker panicked"));
        }
    });

    let trials = Arc::new(StrokeTrials { records });
    cache
        .lock()
        .expect("cache lock")
        .insert((scale.reps, scale.seed), Arc::clone(&trials));
    trials
}

/// Fig. 9 — the six intrinsic Doppler-profile templates (resampled to 16
/// points for display).
pub fn fig9() -> Table {
    let engine = shared_engine();
    let mut t = Table::new(
        "Fig. 9 — intrinsic Doppler-shift templates per stroke (Hz, 16-point resample)",
        &["stroke", "profile"],
    );
    for (s, tmpl) in engine.classifier().templates().iter() {
        let r = echowrite_dsp::util::resample_linear(tmpl, 16);
        let cells: Vec<String> = r.iter().map(|v| format!("{v:.0}")).collect();
        t.push_row(vec![s.to_string(), cells.join(" ")]);
    }
    t
}

/// Fig. 10 — segmentation of a stroke series under interference: detected
/// spans versus ground truth.
pub fn fig10(scale: Scale) -> Table {
    let engine = shared_engine();
    let strokes = [Stroke::S4, Stroke::S5, Stroke::S2, Stroke::S6, Stroke::S3];
    let perf = Writer::new(WriterParams::nominal(), scale.seed).write_sequence(&strokes);
    let scene = Scene::new(
        DeviceProfile::mate9(),
        EnvironmentProfile::resting_zone(),
        scale.seed,
    );
    let mic = scene.render(&perf.trajectory);
    let analysis = engine.pipeline().analyze(&mic);
    let hop = engine.config().stft.hop_seconds();

    let mut t = Table::new(
        "Fig. 10 — stroke segmentation under interference (resting zone)",
        &["stroke", "truth (s)", "detected (s)"],
    );
    for (i, span) in perf.spans.iter().enumerate() {
        let detected = analysis
            .segments
            .get(i)
            .map(|seg| format!("{:.2}–{:.2}", seg.start as f64 * hop, seg.end as f64 * hop))
            .unwrap_or_else(|| "—".to_string());
        t.push_row(vec![
            span.stroke.to_string(),
            format!("{:.2}–{:.2}", span.start, span.end),
            detected,
        ]);
    }
    t.push_row(vec![
        "total".into(),
        format!("{} strokes", perf.spans.len()),
        format!("{} segments", analysis.segments.len()),
    ]);
    t
}

/// Fig. 11 — overall stroke accuracy: smartphone vs smartwatch
/// (paper: 94.7 % vs 94.4 %).
pub fn fig11(scale: Scale) -> Table {
    let trials = run_trials(scale);
    let mut t = Table::new(
        "Fig. 11 — stroke recognition accuracy per device (paper: phone 94.7%, watch 94.4%)",
        &["device", "accuracy"],
    );
    for device in ["Huawei Mate 9", "Huawei Watch 2"] {
        // Compare on the common condition (meeting room).
        let acc = trials
            .accuracy(|r| r.device == device && r.environment == "Meeting room")
            .unwrap_or(0.0);
        t.push_row(vec![device.to_string(), pct(acc)]);
    }
    t
}

/// Fig. 12 — per-stroke accuracy in each environment
/// (paper means: 94.4 / 94.9 / 93.2 %).
pub fn fig12(scale: Scale) -> Table {
    let trials = run_trials(scale);
    let mut t = Table::new(
        "Fig. 12 — per-stroke accuracy per environment (phone)",
        &["environment", "S1", "S2", "S3", "S4", "S5", "S6", "mean"],
    );
    for env in ["Meeting room", "Lab area", "Resting zone"] {
        let m = trials.confusion(|r| r.device == "Huawei Mate 9" && r.environment == env);
        let mut row = vec![env.to_string()];
        for s in Stroke::ALL {
            row.push(pct(m.class_accuracy(s).unwrap_or(0.0)));
        }
        row.push(pct(m.overall_accuracy().unwrap_or(0.0)));
        t.push_row(row);
    }
    t
}

/// Fig. 13 — per-participant accuracy over all rooms
/// (paper: 93.0–95.6 %, σ ≈ 1.1 %).
pub fn fig13(scale: Scale) -> Table {
    let trials = run_trials(scale);
    let mut t = Table::new(
        "Fig. 13 — per-participant stroke accuracy (phone, all rooms)",
        &["participant", "accuracy"],
    );
    let mut accs = Vec::new();
    for pid in 1..=6usize {
        let acc = trials
            .accuracy(|r| r.device == "Huawei Mate 9" && r.participant == pid)
            .unwrap_or(0.0);
        accs.push(acc);
        t.push_row(vec![format!("P{pid}"), pct(acc)]);
    }
    let mean = accs.iter().sum::<f64>() / accs.len() as f64;
    let sd = (accs.iter().map(|a| (a - mean) * (a - mean)).sum::<f64>() / accs.len() as f64).sqrt();
    t.push_row(vec!["mean ± σ".into(), format!("{} ± {}", pct(mean), pct(sd))]);
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Scale {
        Scale { reps: 2, seed: 77 }
    }

    #[test]
    fn trials_cover_all_conditions() {
        let trials = run_trials(tiny());
        // 3 phone rooms + 1 watch room, 6 participants, 6 strokes, 2 reps.
        assert_eq!(trials.records.len(), 4 * 6 * 6 * 2);
        assert!(trials.records.iter().any(|r| r.device == "Huawei Watch 2"));
        assert!(trials.records.iter().any(|r| r.environment == "Resting zone"));
    }

    #[test]
    fn trials_are_cached() {
        let a = run_trials(tiny());
        let b = run_trials(tiny());
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn overall_accuracy_is_papers_ballpark() {
        let trials = run_trials(tiny());
        let acc = trials
            .accuracy(|r| r.device == "Huawei Mate 9" && r.environment != "Resting zone")
            .unwrap();
        assert!(acc > 0.80, "clean-room accuracy {acc}");
    }

    #[test]
    fn fig_tables_have_expected_shapes() {
        assert_eq!(fig9().rows.len(), 6);
        let f11 = fig11(tiny());
        assert_eq!(f11.rows.len(), 2);
        let f12 = fig12(tiny());
        assert_eq!(f12.rows.len(), 3);
        assert_eq!(f12.headers.len(), 8);
        let f13 = fig13(tiny());
        assert_eq!(f13.rows.len(), 7);
    }

    #[test]
    fn fig10_reports_each_truth_stroke() {
        let t = fig10(tiny());
        assert_eq!(t.rows.len(), 6); // 5 strokes + total row
    }
}
