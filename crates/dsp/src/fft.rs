//! Iterative radix-2 fast Fourier transform.
//!
//! The paper performs an 8192-point STFT on every 1024-sample hop, so FFT
//! speed matters. This implementation precomputes bit-reversal permutations
//! and twiddle factors once per size in an [`Fft`] planner, then runs an
//! in-place iterative Cooley–Tukey butterfly network.

use crate::complex::Complex;

/// A planned radix-2 FFT of a fixed power-of-two size.
///
/// Construction precomputes the bit-reversal permutation and per-stage
/// twiddle factors; [`Fft::forward`] and [`Fft::inverse`] then run without
/// allocation.
///
/// # Example
///
/// ```
/// use echowrite_dsp::{Fft, Complex};
///
/// let fft = Fft::new(4);
/// let mut x = vec![Complex::ONE; 4];
/// fft.forward(&mut x);
/// // The DFT of a constant signal is an impulse at DC.
/// assert!((x[0].re - 4.0).abs() < 1e-12);
/// assert!(x[1].norm() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct Fft {
    size: usize,
    rev: Vec<u32>,
    /// Twiddles for the forward transform, laid out stage-major: for each
    /// butterfly half-length `m/2` the factors `exp(-2πik/m)`.
    twiddles: Vec<Complex>,
}

impl Fft {
    /// Plans an FFT of the given size.
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero or not a power of two.
    pub fn new(size: usize) -> Self {
        assert!(size.is_power_of_two(), "FFT size must be a power of two, got {size}");
        let bits = size.trailing_zeros();
        let rev = (0..size as u32)
            .map(|i| i.reverse_bits() >> (32 - bits.max(1)))
            .collect::<Vec<_>>();
        // Total twiddle count: sum over stages of m/2 = size - 1.
        let mut twiddles = Vec::with_capacity(size.saturating_sub(1));
        let mut m = 2;
        while m <= size {
            let half = m / 2;
            for k in 0..half {
                let theta = -2.0 * std::f64::consts::PI * k as f64 / m as f64;
                twiddles.push(Complex::from_angle(theta));
            }
            m <<= 1;
        }
        Fft { size, rev, twiddles }
    }

    /// Returns the planned transform size.
    #[inline]
    pub fn size(&self) -> usize {
        self.size
    }

    /// Computes the forward DFT of `buf` in place (no normalization).
    ///
    /// # Panics
    ///
    /// Panics if `buf.len()` differs from the planned size.
    pub fn forward(&self, buf: &mut [Complex]) {
        self.transform(buf, false);
    }

    /// Computes the inverse DFT of `buf` in place, scaling by `1/N` so that
    /// `inverse(forward(x)) == x`.
    ///
    /// # Panics
    ///
    /// Panics if `buf.len()` differs from the planned size.
    pub fn inverse(&self, buf: &mut [Complex]) {
        self.transform(buf, true);
        let scale = 1.0 / self.size as f64;
        for z in buf.iter_mut() {
            *z = z.scale(scale);
        }
    }

    fn transform(&self, buf: &mut [Complex], inverse: bool) {
        assert_eq!(
            buf.len(),
            self.size,
            "buffer length {} does not match planned FFT size {}",
            buf.len(),
            self.size
        );
        if self.size == 1 {
            return;
        }
        // Bit-reversal permutation.
        for i in 0..self.size {
            let j = self.rev[i] as usize;
            if i < j {
                buf.swap(i, j);
            }
        }
        // Iterative butterflies. Each block of `m` splits into an upper and
        // lower half driven through the SIMD-dispatched butterfly kernel,
        // which is pinned bitwise to the scalar recurrence it replaced.
        let mut m = 2;
        let mut toff = 0; // offset into the twiddle table for this stage
        while m <= self.size {
            let half = m / 2;
            let tw = &self.twiddles[toff..toff + half];
            for chunk in buf.chunks_exact_mut(m) {
                let (u, v) = chunk.split_at_mut(half);
                crate::kernels::butterfly_pass(u, v, tw, inverse);
            }
            toff += half;
            m <<= 1;
        }
    }

    /// Computes the forward DFT of a real signal, returning the full complex
    /// spectrum of length `size`.
    ///
    /// # Panics
    ///
    /// Panics if `signal.len()` differs from the planned size.
    pub fn forward_real(&self, signal: &[f64]) -> Vec<Complex> {
        assert_eq!(signal.len(), self.size);
        let mut buf: Vec<Complex> = signal.iter().map(|&x| Complex::new(x, 0.0)).collect();
        self.forward(&mut buf);
        buf
    }

    /// Computes magnitudes of the forward DFT of a real signal.
    ///
    /// Only the first `size/2 + 1` bins are returned since the spectrum of a
    /// real signal is conjugate-symmetric.
    pub fn magnitude_real(&self, signal: &[f64]) -> Vec<f64> {
        let spec = self.forward_real(signal);
        spec[..self.size / 2 + 1].iter().map(|z| z.norm()).collect()
    }
}

/// Computes a naive O(N²) DFT; used as a cross-check oracle in tests and by
/// callers that need arbitrary (non power-of-two) sizes.
pub fn dft_naive(input: &[Complex]) -> Vec<Complex> {
    let n = input.len();
    let mut out = vec![Complex::ZERO; n];
    for (k, o) in out.iter_mut().enumerate() {
        let mut acc = Complex::ZERO;
        for (t, &x) in input.iter().enumerate() {
            let theta = -2.0 * std::f64::consts::PI * (k * t) as f64 / n as f64;
            acc += x * Complex::from_angle(theta);
        }
        *o = acc;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: Complex, b: Complex, eps: f64) {
        assert!(
            (a - b).norm() < eps,
            "expected {b:?}, got {a:?} (difference {})",
            (a - b).norm()
        );
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two() {
        Fft::new(12);
    }

    #[test]
    fn size_one_is_identity() {
        let fft = Fft::new(1);
        let mut x = vec![Complex::new(5.0, -2.0)];
        fft.forward(&mut x);
        assert_eq!(x[0], Complex::new(5.0, -2.0));
        fft.inverse(&mut x);
        assert_eq!(x[0], Complex::new(5.0, -2.0));
    }

    #[test]
    fn impulse_transforms_to_flat_spectrum() {
        let fft = Fft::new(16);
        let mut x = vec![Complex::ZERO; 16];
        x[0] = Complex::ONE;
        fft.forward(&mut x);
        for z in &x {
            assert_close(*z, Complex::ONE, 1e-12);
        }
    }

    #[test]
    fn single_tone_lands_in_one_bin() {
        let n = 64;
        let fft = Fft::new(n);
        let k0 = 5;
        let signal: Vec<f64> = (0..n)
            .map(|t| (2.0 * std::f64::consts::PI * k0 as f64 * t as f64 / n as f64).cos())
            .collect();
        let mags = fft.magnitude_real(&signal);
        // Energy concentrates in bin k0 with amplitude N/2 for a unit cosine.
        assert!((mags[k0] - n as f64 / 2.0).abs() < 1e-9);
        for (k, &m) in mags.iter().enumerate() {
            if k != k0 {
                assert!(m < 1e-9, "leakage at bin {k}: {m}");
            }
        }
    }

    #[test]
    fn matches_naive_dft() {
        let n = 32;
        let fft = Fft::new(n);
        let input: Vec<Complex> = (0..n)
            .map(|i| Complex::new((i as f64 * 0.7).sin(), (i as f64 * 1.3).cos()))
            .collect();
        let mut fast = input.clone();
        fft.forward(&mut fast);
        let slow = dft_naive(&input);
        for (a, b) in fast.iter().zip(&slow) {
            assert_close(*a, *b, 1e-9);
        }
    }

    #[test]
    fn roundtrip_preserves_signal() {
        let n = 128;
        let fft = Fft::new(n);
        let original: Vec<Complex> = (0..n)
            .map(|i| Complex::new((i as f64).sin(), (i as f64 * 0.5).cos()))
            .collect();
        let mut buf = original.clone();
        fft.forward(&mut buf);
        fft.inverse(&mut buf);
        for (a, b) in buf.iter().zip(&original) {
            assert_close(*a, *b, 1e-9);
        }
    }

    #[test]
    fn parseval_energy_conservation() {
        let n = 256;
        let fft = Fft::new(n);
        let signal: Vec<Complex> = (0..n)
            .map(|i| Complex::new((i as f64 * 0.11).sin() + 0.3, 0.0))
            .collect();
        let time_energy: f64 = signal.iter().map(|z| z.norm_sqr()).sum();
        let mut buf = signal;
        fft.forward(&mut buf);
        let freq_energy: f64 = buf.iter().map(|z| z.norm_sqr()).sum::<f64>() / n as f64;
        assert!((time_energy - freq_energy).abs() < 1e-6 * time_energy);
    }

    #[test]
    fn linearity() {
        let n = 64;
        let fft = Fft::new(n);
        let a: Vec<Complex> = (0..n).map(|i| Complex::new(i as f64, 0.0)).collect();
        let b: Vec<Complex> = (0..n).map(|i| Complex::new(0.0, (i as f64).cos())).collect();
        let sum: Vec<Complex> = a.iter().zip(&b).map(|(x, y)| *x + y.scale(2.0)).collect();

        let mut fa = a;
        fft.forward(&mut fa);
        let mut fb = b;
        fft.forward(&mut fb);
        let mut fsum = sum;
        fft.forward(&mut fsum);
        for i in 0..n {
            assert_close(fsum[i], fa[i] + fb[i].scale(2.0), 1e-9);
        }
    }

    #[test]
    fn real_spectrum_is_conjugate_symmetric() {
        let n = 32;
        let fft = Fft::new(n);
        let signal: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin() + 0.1).collect();
        let spec = fft.forward_real(&signal);
        for k in 1..n / 2 {
            assert_close(spec[n - k], spec[k].conj(), 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "does not match planned")]
    fn rejects_wrong_buffer_length() {
        let fft = Fft::new(8);
        let mut x = vec![Complex::ZERO; 4];
        fft.forward(&mut x);
    }

    #[test]
    fn paper_size_8192_roundtrip() {
        let n = 8192;
        let fft = Fft::new(n);
        let signal: Vec<Complex> = (0..n)
            .map(|i| Complex::new((2.0 * std::f64::consts::PI * 20_000.0 * i as f64 / 44_100.0).sin(), 0.0))
            .collect();
        let mut buf = signal.clone();
        fft.forward(&mut buf);
        // Peak bin should be near 20 kHz * 8192 / 44100 ≈ 3715.
        let peak = buf[..n / 2]
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.norm_sqr().total_cmp(&b.1.norm_sqr()))
            .map(|(i, _)| i)
            .unwrap();
        assert!((peak as i64 - 3715).abs() <= 1, "peak bin {peak}");
        fft.inverse(&mut buf);
        for (a, b) in buf.iter().zip(&signal).step_by(500) {
            assert_close(*a, *b, 1e-8);
        }
    }
}
