//! Short everyday phrases for text-entry speed studies.
//!
//! The paper's Figs. 16–18 measure entry speed on "given paragraphs
//! randomly selected in Fry Instant Phrases … grouped in five blocks, each
//! of which contains two paragraphs". The Fry sheets are an external
//! teaching resource; these embedded phrases match their style (2–6 common
//! words, everyday register) and are grouped the same way.

/// A paragraph: a list of short phrases entered in sequence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Paragraph {
    /// The phrases, already lowercase with no punctuation.
    pub phrases: Vec<&'static str>,
}

impl Paragraph {
    /// All words of the paragraph in order.
    pub fn words(&self) -> Vec<&'static str> {
        self.phrases.iter().flat_map(|p| p.split_whitespace()).collect()
    }

    /// Total letter count (excluding spaces).
    pub fn letter_count(&self) -> usize {
        self.words().iter().map(|w| w.len()).sum()
    }
}

/// A block of two paragraphs, as grouped in Fig. 16.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Block {
    /// Block label (`B1`..`B5`).
    pub name: &'static str,
    /// The two paragraphs.
    pub paragraphs: [Paragraph; 2],
}

impl Block {
    /// All words across both paragraphs.
    pub fn words(&self) -> Vec<&'static str> {
        // echolint: allow(no-panic-path) -- paragraphs is a fixed [Paragraph; 2] array
        let mut out = self.paragraphs[0].words();
        // echolint: allow(no-panic-path) -- paragraphs is a fixed [Paragraph; 2] array
        out.extend(self.paragraphs[1].words());
        out
    }
}

/// The five two-paragraph phrase blocks.
pub fn blocks() -> Vec<Block> {
    fn para(phrases: &[&'static str]) -> Paragraph {
        Paragraph { phrases: phrases.to_vec() }
    }
    vec![
        Block {
            name: "B1",
            paragraphs: [
                para(&["the people", "by the water", "you and i", "a long time"]),
                para(&["come and get it", "sit down", "now and then", "but not me"]),
            ],
        },
        Block {
            name: "B2",
            paragraphs: [
                para(&["out of the water", "we were here", "one more time", "all day long"]),
                para(&["how many words", "part of the time", "can you see", "not now"]),
            ],
        },
        Block {
            name: "B3",
            paragraphs: [
                para(&["what did they say", "when would you go", "no way", "one or two"]),
                para(&["a number of people", "this is a good day", "i like him", "so there you are"]),
            ],
        },
        Block {
            name: "B4",
            paragraphs: [
                para(&["into the water", "it is about time", "the other people", "up in the air"]),
                para(&["she said to go", "which way", "each of us", "he has it"]),
            ],
        },
        Block {
            name: "B5",
            paragraphs: [
                para(&["what are these", "if we were older", "the little things", "write your name"]),
                para(&["we like to write", "have you seen it", "could you go", "more than the other"]),
            ],
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexicon::Lexicon;

    #[test]
    fn five_blocks_of_two_paragraphs() {
        let bs = blocks();
        assert_eq!(bs.len(), 5);
        for b in &bs {
            assert_eq!(b.paragraphs.len(), 2);
            for p in &b.paragraphs {
                assert!(!p.phrases.is_empty());
            }
        }
    }

    #[test]
    fn phrases_are_clean_lowercase() {
        for b in blocks() {
            for p in &b.paragraphs {
                for phrase in &p.phrases {
                    assert!(phrase
                        .chars()
                        .all(|c| c.is_ascii_lowercase() || c == ' '), "{phrase:?}");
                    assert!(!phrase.trim().is_empty());
                }
            }
        }
    }

    #[test]
    fn phrase_lengths_match_fry_style() {
        for b in blocks() {
            for p in &b.paragraphs {
                for phrase in &p.phrases {
                    let n = phrase.split_whitespace().count();
                    assert!((2..=6).contains(&n), "{phrase:?} has {n} words");
                }
            }
        }
    }

    #[test]
    fn all_phrase_words_are_in_lexicon() {
        let lex = Lexicon::embedded();
        for b in blocks() {
            for w in b.words() {
                assert!(lex.contains(w), "phrase word {w:?} missing from lexicon");
            }
        }
    }

    #[test]
    fn word_and_letter_counts() {
        let bs = blocks();
        let p = &bs[0].paragraphs[0];
        assert_eq!(p.words().len(), 11);
        assert_eq!(p.letter_count(), "thepeoplebythewateryouandialongtime".len());
        // Each block offers a reasonable amount of text for a session.
        for b in &bs {
            assert!(b.words().len() >= 20, "block {} too short", b.name);
        }
    }
}
