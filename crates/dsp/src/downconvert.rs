//! Complex down-conversion front-end — the paper's Sec. VII-A optimization.
//!
//! "Obtaining the spectrogram by continuous STFT costs a high percentage of
//! CPU resources. To decrease computing overhead, a possible approach is to
//! utilize down-sampling technique to reduce the number of FFT points,
//! according to bandpass sampling theorem. More importantly, this operation
//! does not need to modify main methods proposed in this work."
//!
//! Exactly that: the 44.1 kHz stream is multiplied by `e^(−j2πf₀t)` to move
//! the 20 kHz carrier to 0 Hz, low-pass filtered, and decimated by `D`
//! (polyphase — the filter runs at the *output* rate). A small complex FFT
//! (8192/D points at a hop of 1024/D) then yields a spectrogram with the
//! same 5.38 Hz bin width and 23.2 ms hop as the full pipeline, so every
//! downstream stage — enhancement, MVCE, segmentation, the stored DTW
//! templates — is reused unchanged. Arithmetic drops by roughly the
//! decimation factor.

use crate::complex::Complex;
use crate::fft::Fft;
use crate::window::WindowKind;

/// A polyphase down-converting decimator: real pass-band in, complex
/// baseband out at `sample_rate / factor`.
#[derive(Debug, Clone)]
pub struct Downconverter {
    carrier_hz: f64,
    sample_rate: f64,
    factor: usize,
    /// FIR taps pre-rotated by the mixer phase relative to the tap centre:
    /// `h[t]·e^(−jω(t−half))`. The per-output absolute phase is applied by a
    /// single rotator recurrence, so no trigonometry runs in the inner loop.
    ctaps: Vec<Complex>,
    half: usize,
}

impl Downconverter {
    /// Creates a down-converter.
    ///
    /// `num_taps` sets the anti-alias FIR length (windowed sinc with a Hann
    /// window, cutoff at 80 % of the output Nyquist).
    ///
    /// # Panics
    ///
    /// Panics if `factor` < 2, `num_taps` is zero, or the carrier is not
    /// below Nyquist.
    pub fn new(carrier_hz: f64, sample_rate: f64, factor: usize, num_taps: usize) -> Self {
        assert!(factor >= 2, "decimation factor must be at least 2, got {factor}");
        assert!(num_taps > 0, "FIR needs at least one tap");
        assert!(
            carrier_hz > 0.0 && carrier_hz < sample_rate / 2.0,
            "carrier {carrier_hz} Hz outside (0, Nyquist)"
        );
        let out_rate = sample_rate / factor as f64;
        let cutoff = 0.4 * out_rate; // 80 % of the output Nyquist
        let taps = lowpass_taps(num_taps, cutoff / sample_rate);
        let w = std::f64::consts::TAU * carrier_hz / sample_rate;
        let half = num_taps / 2;
        let ctaps = taps
            .iter()
            .enumerate()
            .map(|(t, &h)| Complex::from_angle(-w * (t as f64 - half as f64)).scale(h))
            .collect();
        Downconverter { carrier_hz, sample_rate, factor, ctaps, half }
    }

    /// The paper-parameter front-end: 20 kHz carrier at 44.1 kHz decimated
    /// by 32 → 1 378 Hz complex baseband (covering ±689 Hz, comfortably
    /// containing the ±470 Hz ROI).
    pub fn paper(factor: usize) -> Self {
        Downconverter::new(20_000.0, 44_100.0, factor, 129)
    }

    /// Output (baseband) sample rate in Hz.
    pub fn output_rate(&self) -> f64 {
        self.sample_rate / self.factor as f64
    }

    /// The decimation factor.
    pub fn factor(&self) -> usize {
        self.factor
    }

    /// Half the FIR length — the causal-centred window's look-back, in
    /// input samples. Output `k` reads input samples
    /// `k·factor − half_taps ..= k·factor + half_taps`.
    pub fn half_taps(&self) -> usize {
        self.half
    }

    /// Down-converts and decimates `audio`, returning complex baseband
    /// samples at [`Downconverter::output_rate`].
    ///
    /// Polyphase evaluation: the FIR is only evaluated at output instants,
    /// so the cost is `num_taps × len/factor` multiply-accumulates.
    pub fn process(&self, audio: &[f64]) -> Vec<Complex> {
        let n_out = audio.len() / self.factor;
        let mut out = Vec::with_capacity(n_out);
        let w = std::f64::consts::TAU * self.carrier_hz / self.sample_rate;
        // Rotator recurrence: absolute mixer phase at each output centre,
        // advanced by one complex multiply per output (periodically
        // re-seeded exactly to stop drift).
        let step = Complex::from_angle(-w * self.factor as f64);
        let mut rotator = Complex::ONE;
        for k in 0..n_out {
            let centre = k * self.factor;
            if k % 1024 == 0 {
                rotator = Complex::from_angle(-w * centre as f64);
            }
            // Causal-centred FIR evaluated at the output instant only.
            // Interior windows (no clipping at either stream edge) run
            // through the SIMD-dispatched dot kernel; edge windows keep the
            // scalar skip loop. The streaming path applies the *same*
            // interior criterion so the two stay bitwise identical.
            let lo = centre as isize - self.half as isize;
            let acc = if lo >= 0 && lo as usize + self.ctaps.len() <= audio.len() {
                let start = lo as usize;
                crate::kernels::fir_complex_dot(&self.ctaps, &audio[start..start + self.ctaps.len()])
            } else {
                let mut acc = Complex::ZERO;
                for (t, &ct) in self.ctaps.iter().enumerate() {
                    let idx = lo + t as isize;
                    if idx < 0 || idx as usize >= audio.len() {
                        continue;
                    }
                    acc += ct.scale(audio[idx as usize]);
                }
                acc
            };
            out.push(acc * rotator);
            rotator *= step;
        }
        out
    }
}

/// A chunk-driven wrapper around [`Downconverter`] that emits baseband
/// samples as soon as their FIR window is fully covered by received audio.
///
/// Output `k` (centred on input sample `k·factor`) is emitted once sample
/// `k·factor + half` has arrived; [`StreamingDownconverter::finish`] flushes
/// the remaining outputs whose windows run past the end of the stream using
/// the same edge-skip semantics as the offline path. The concatenation of
/// all emitted samples is bitwise identical to
/// [`Downconverter::process`] over the concatenated input, independent of
/// how the audio is chunked: the mixer rotator recurrence (including its
/// periodic exact re-seeding) is replayed in the same order.
#[derive(Debug, Clone)]
pub struct StreamingDownconverter {
    dc: Downconverter,
    buffer: Vec<f64>,
    /// Absolute input index of `buffer[0]`.
    base: usize,
    /// Absolute input samples received so far.
    total_in: usize,
    /// Next output index to emit.
    k: usize,
    rotator: Complex,
    step: Complex,
    w: f64,
}

impl StreamingDownconverter {
    /// Wraps a down-converter for chunked input.
    pub fn new(dc: Downconverter) -> Self {
        let w = std::f64::consts::TAU * dc.carrier_hz / dc.sample_rate;
        let step = Complex::from_angle(-w * dc.factor as f64);
        StreamingDownconverter {
            dc,
            buffer: Vec::new(),
            base: 0,
            total_in: 0,
            k: 0,
            rotator: Complex::ONE,
            step,
            w,
        }
    }

    /// The wrapped down-converter.
    pub fn inner(&self) -> &Downconverter {
        &self.dc
    }

    /// Baseband samples emitted so far.
    pub fn emitted(&self) -> usize {
        self.k
    }

    /// Appends input audio, pushing every newly complete baseband sample
    /// onto `out`.
    pub fn push(&mut self, samples: &[f64], out: &mut Vec<Complex>) {
        self.buffer.extend_from_slice(samples);
        self.total_in += samples.len();
        // Output k needs input samples up to k·factor + half inclusive.
        let before = self.k;
        while self.k * self.dc.factor + self.dc.half < self.total_in {
            self.emit_one(out);
        }
        if echowrite_trace::enabled() {
            let tick = echowrite_trace::samples_to_us(self.total_in as u64, self.dc.sample_rate);
            echowrite_trace::counter(
                echowrite_trace::Stage::Downconvert,
                "baseband_emitted",
                tick,
                (self.k - before) as f64,
            );
        }
        // Compact once the dead prefix dominates the live tail.
        let keep = (self.k * self.dc.factor).saturating_sub(self.dc.half);
        let dead = keep - self.base;
        if dead > self.buffer.len().saturating_sub(dead) && dead > 4096 {
            self.buffer.copy_within(dead.., 0);
            self.buffer.truncate(self.buffer.len() - dead);
            self.base = keep;
        }
    }

    /// Flushes the tail: emits every remaining output `k < total/factor`,
    /// skipping FIR taps that fall past the end of the stream exactly as the
    /// offline path does.
    pub fn finish(&mut self, out: &mut Vec<Complex>) {
        let n_out = self.total_in / self.dc.factor;
        while self.k < n_out {
            self.emit_one(out);
        }
    }

    /// Clears all state for a new session.
    pub fn reset(&mut self) {
        self.buffer.clear();
        self.base = 0;
        self.total_in = 0;
        self.k = 0;
        self.rotator = Complex::ONE;
    }

    /// Captures the dynamic state of this stream, detached from the
    /// down-converter plan (taps, factor, carrier are all config-derived).
    ///
    /// The buffer tail is copied verbatim together with its absolute base
    /// offset: the edge FIR path indexes the buffer by absolute stream
    /// position, so the offset must survive the round trip exactly for the
    /// resumed output to stay bitwise identical.
    pub fn export_state(&self) -> StreamingDownconverterState {
        StreamingDownconverterState {
            buffer: self.buffer.clone(),
            base: self.base as u64,
            total_in: self.total_in as u64,
            k: self.k as u64,
            rotator: self.rotator,
        }
    }

    /// Overwrites this stream's dynamic state with a previously exported
    /// one. The plan must match the one the state was exported under; the
    /// caller is responsible for that pairing. The rotator recurrence
    /// resumes from the exact saved value, so the periodic exact re-seeding
    /// replays in the same order as an uninterrupted stream.
    pub fn restore_state(&mut self, state: &StreamingDownconverterState) {
        self.buffer.clear();
        self.buffer.extend_from_slice(&state.buffer);
        self.base = state.base as usize;
        self.total_in = state.total_in as usize;
        self.k = state.k as usize;
        self.rotator = state.rotator;
    }

    fn emit_one(&mut self, out: &mut Vec<Complex>) {
        let centre = self.k * self.dc.factor;
        if self.k.is_multiple_of(1024) {
            self.rotator = Complex::from_angle(-self.w * centre as f64);
        }
        // Same interior/edge split as [`Downconverter::process`] — the
        // criterion is expressed against the absolute stream bounds so the
        // kernel sees the exact slice the offline path would, keeping the
        // concatenated output bitwise identical.
        let lo = centre as isize - self.dc.half as isize;
        let num_taps = self.dc.ctaps.len();
        let acc = if lo >= 0 && lo as usize + num_taps <= self.total_in {
            let start = lo as usize - self.base;
            crate::kernels::fir_complex_dot(&self.dc.ctaps, &self.buffer[start..start + num_taps])
        } else {
            let mut acc = Complex::ZERO;
            for (t, &ct) in self.dc.ctaps.iter().enumerate() {
                let idx = lo + t as isize;
                if idx < 0 || idx as usize >= self.total_in {
                    continue;
                }
                acc += ct.scale(self.buffer[idx as usize - self.base]);
            }
            acc
        };
        out.push(acc * self.rotator);
        self.rotator *= self.step;
        self.k += 1;
    }
}

/// Plan-independent dynamic state of a [`StreamingDownconverter`]:
/// everything a suspended stream needs to resume bitwise-identically once
/// paired with an identically configured plan. `step` and `w` are
/// config-derived and rebuilt at restore; the rotator is dynamic (its value
/// depends on how many outputs have been emitted since the last re-seed).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct StreamingDownconverterState {
    /// Retained input samples (`buffer[0]` is absolute sample `base`).
    pub buffer: Vec<f64>,
    /// Absolute input index of `buffer[0]`.
    pub base: u64,
    /// Absolute input samples received so far.
    pub total_in: u64,
    /// Next output index to emit.
    pub k: u64,
    /// Current mixer rotator value.
    pub rotator: Complex,
}

/// Windowed-sinc (Hann) low-pass taps with normalized cutoff `fc` (cycles
/// per input sample), unity DC gain.
fn lowpass_taps(num_taps: usize, fc: f64) -> Vec<f64> {
    let m = (num_taps - 1) as f64;
    let window = WindowKind::Hann.coefficients(num_taps);
    let mut taps: Vec<f64> = (0..num_taps)
        .map(|i| {
            let x = i as f64 - m / 2.0;
            let sinc = if x.abs() < 1e-12 {
                2.0 * fc
            } else {
                (std::f64::consts::TAU * fc * x).sin() / (std::f64::consts::PI * x)
            };
            sinc * window[i]
        })
        .collect();
    let sum: f64 = taps.iter().sum();
    for t in &mut taps {
        *t /= sum;
    }
    taps
}

/// Short-time spectra of a complex baseband stream, producing magnitude
/// columns compatible with the full-rate pipeline.
///
/// Each column is `fft_size` bins **fft-shifted** so that row 0 is the most
/// negative frequency and the carrier (0 Hz baseband) sits at row
/// `fft_size/2`. Magnitudes are scaled by `scale` so they match the
/// full-rate STFT's absolute levels (the enhancement threshold α is
/// calibrated on those levels).
#[derive(Debug, Clone)]
pub struct BasebandStft {
    fft: Fft,
    window: Vec<f64>,
    hop: usize,
    scale: f64,
}

impl BasebandStft {
    /// Plans a baseband STFT.
    ///
    /// # Panics
    ///
    /// Panics if `fft_size` is not a power of two or `hop` is zero.
    pub fn new(fft_size: usize, hop: usize, scale: f64) -> Self {
        assert!(hop > 0, "hop must be positive");
        BasebandStft {
            fft: Fft::new(fft_size),
            window: WindowKind::Hann.coefficients(fft_size),
            hop,
            scale,
        }
    }

    /// FFT size.
    pub fn fft_size(&self) -> usize {
        self.fft.size()
    }

    /// Hop between successive frames, in baseband samples.
    pub fn hop(&self) -> usize {
        self.hop
    }

    /// Number of complete frames available from `len` baseband samples.
    pub fn frame_count(&self, len: usize) -> usize {
        let size = self.fft.size();
        if len < size {
            0
        } else {
            (len - size) / self.hop + 1
        }
    }

    /// Allocates the per-worker FFT workspace for the `_into` entry points.
    pub fn make_scratch(&self) -> BasebandScratch {
        BasebandScratch { buf: vec![Complex::ZERO; self.fft.size()] }
    }

    /// Computes one frame's fft-shifted magnitudes restricted to shifted
    /// rows `[row_lo, row_hi]` inclusive (row 0 = most negative frequency,
    /// `fft_size/2` = carrier), writing into `out` without allocating.
    ///
    /// # Panics
    ///
    /// Panics if `frame.len() != fft_size`, the row range is invalid, or
    /// `out.len() != row_hi - row_lo + 1`.
    pub fn frame_rows_into(
        &self,
        frame: &[Complex],
        row_lo: usize,
        row_hi: usize,
        scratch: &mut BasebandScratch,
        out: &mut [f64],
    ) {
        let size = self.fft.size();
        assert_eq!(frame.len(), size, "frame length mismatch");
        assert!(row_lo <= row_hi, "row_lo {row_lo} > row_hi {row_hi}");
        assert!(row_hi < size, "row_hi {row_hi} beyond fft size {size}");
        assert_eq!(out.len(), row_hi - row_lo + 1, "row output length mismatch");
        scratch.buf.resize(size, Complex::ZERO);
        crate::kernels::scale_complex_into(&mut scratch.buf, frame, &self.window);
        self.fft.forward(&mut scratch.buf);
        // fft-shift indexing: shifted row r reads FFT bin (r + size/2) % size.
        for (o, r) in out.iter_mut().zip(row_lo..=row_hi) {
            *o = scratch.buf[(r + size / 2) % size].norm() * self.scale;
        }
    }

    /// Computes shifted rows `[row_lo, row_hi]` of every complete frame into
    /// a flat frame-major buffer (frame `f` occupies
    /// `out[f*band .. (f+1)*band]`), allocating nothing.
    ///
    /// # Panics
    ///
    /// Panics if the row range is invalid or `out.len()` differs from
    /// `frame_count * band`.
    pub fn process_rows_into(
        &self,
        baseband: &[Complex],
        row_lo: usize,
        row_hi: usize,
        scratch: &mut BasebandScratch,
        out: &mut [f64],
    ) {
        assert!(row_lo <= row_hi, "row_lo {row_lo} > row_hi {row_hi}");
        let frames = self.frame_count(baseband.len());
        let band = row_hi - row_lo + 1;
        assert_eq!(
            out.len(),
            frames * band,
            "flat output length {} != frames {frames} × band {band}",
            out.len()
        );
        for (f, row) in out.chunks_exact_mut(band).enumerate() {
            let start = f * self.hop;
            self.frame_rows_into(
                &baseband[start..start + self.fft.size()],
                row_lo,
                row_hi,
                scratch,
                row,
            );
        }
    }

    /// Processes baseband samples into fft-shifted magnitude columns.
    pub fn process(&self, baseband: &[Complex]) -> Vec<Vec<f64>> {
        let size = self.fft.size();
        let frames = self.frame_count(baseband.len());
        let mut scratch = self.make_scratch();
        let mut out = Vec::with_capacity(frames);
        for f in 0..frames {
            let start = f * self.hop;
            let mut col = vec![0.0; size];
            self.frame_rows_into(
                &baseband[start..start + size],
                0,
                size - 1,
                &mut scratch,
                &mut col,
            );
            out.push(col);
        }
        out
    }
}

/// Reusable workspace for [`BasebandStft::frame_rows_into`].
#[derive(Debug, Clone)]
pub struct BasebandScratch {
    buf: Vec<Complex>,
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A pass-band tone offset from the carrier must appear as a baseband
    /// complex exponential at the offset frequency.
    #[test]
    fn tone_moves_to_baseband_offset() {
        let dc = Downconverter::paper(32);
        let fs = 44_100.0;
        let offset = 100.0; // Hz above the carrier
        let n = 44_100;
        let audio: Vec<f64> = (0..n)
            .map(|i| (std::f64::consts::TAU * (20_000.0 + offset) * i as f64 / fs).sin())
            .collect();
        let bb = dc.process(&audio);
        assert_eq!(bb.len(), n / 32);
        // Measure the baseband frequency via phase advance per sample.
        let mid = bb.len() / 2;
        let dphi = (bb[mid + 1] * bb[mid].conj()).arg();
        let f_meas = dphi / std::f64::consts::TAU * dc.output_rate();
        assert!(
            (f_meas - offset).abs() < 2.0,
            "baseband frequency {f_meas} Hz, expected {offset}"
        );
        // Amplitude ≈ a/2 after mixing.
        let amp = bb[mid].norm();
        assert!((amp - 0.5).abs() < 0.05, "baseband amplitude {amp}");
    }

    #[test]
    fn negative_offset_has_negative_frequency() {
        let dc = Downconverter::paper(32);
        let fs = 44_100.0;
        let audio: Vec<f64> = (0..44_100)
            .map(|i| (std::f64::consts::TAU * (20_000.0 - 150.0) * i as f64 / fs).sin())
            .collect();
        let bb = dc.process(&audio);
        let mid = bb.len() / 2;
        let dphi = (bb[mid + 1] * bb[mid].conj()).arg();
        let f_meas = dphi / std::f64::consts::TAU * dc.output_rate();
        assert!((f_meas + 150.0).abs() < 2.0, "got {f_meas} Hz");
    }

    #[test]
    fn out_of_band_noise_is_attenuated() {
        let dc = Downconverter::paper(32);
        let fs = 44_100.0;
        // A strong 5 kHz audible tone, far outside the probe band.
        let audio: Vec<f64> = (0..44_100)
            .map(|i| (std::f64::consts::TAU * 5_000.0 * i as f64 / fs).sin())
            .collect();
        let bb = dc.process(&audio);
        let rms = (bb.iter().map(|z| z.norm_sqr()).sum::<f64>() / bb.len() as f64).sqrt();
        assert!(rms < 0.02, "out-of-band leakage rms {rms}");
    }

    #[test]
    fn lowpass_taps_normalized_and_symmetric() {
        let taps = lowpass_taps(65, 0.01);
        assert!((taps.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        for i in 0..32 {
            assert!((taps[i] - taps[64 - i]).abs() < 1e-12);
        }
    }

    #[test]
    fn baseband_stft_centres_carrier() {
        let dc = Downconverter::paper(32);
        let fs = 44_100.0;
        let audio: Vec<f64> = (0..88_200)
            .map(|i| (std::f64::consts::TAU * 20_000.0 * i as f64 / fs).sin())
            .collect();
        let bb = dc.process(&audio);
        let stft = BasebandStft::new(256, 32, 32.0);
        let cols = stft.process(&bb);
        assert!(!cols.is_empty());
        for col in &cols {
            assert_eq!(col.len(), 256);
            let peak = col
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(b.1))
                .unwrap()
                .0;
            assert_eq!(peak, 128, "carrier must land at the centre row");
        }
    }

    #[test]
    fn magnitude_scale_matches_full_rate_stft() {
        use crate::stft::{Stft, StftConfig};
        // A tone 100 Hz above the carrier with amplitude 0.02 (echo-like):
        // both front-ends should report comparable peak magnitudes.
        let fs = 44_100.0;
        let audio: Vec<f64> = (0..88_200)
            .map(|i| 0.02 * (std::f64::consts::TAU * 20_100.0 * i as f64 / fs).sin())
            .collect();

        let full = Stft::new(StftConfig::paper());
        let frames = full.process(&audio);
        let full_peak = frames[2].iter().cloned().fold(0.0f64, f64::max);

        let dc = Downconverter::paper(32);
        let bb = dc.process(&audio);
        let stft = BasebandStft::new(256, 32, 32.0);
        let cols = stft.process(&bb);
        let bb_peak = cols[2].iter().cloned().fold(0.0f64, f64::max);

        let ratio = bb_peak / full_peak;
        assert!(
            (0.8..1.25).contains(&ratio),
            "magnitude mismatch: full {full_peak}, baseband {bb_peak}"
        );
    }

    #[test]
    fn hop_alignment_matches_full_rate() {
        // 1024 input samples per hop = 32 baseband samples per hop at D=32:
        // frame counts should match the full-rate STFT.
        use crate::stft::{Stft, StftConfig};
        let audio = vec![0.0; 44_100];
        let full = Stft::new(StftConfig::paper());
        let n_full = full.process(&audio).len();
        let dc = Downconverter::paper(32);
        let bb = dc.process(&audio);
        let n_bb = BasebandStft::new(256, 32, 32.0).process(&bb).len();
        assert!(
            (n_full as i64 - n_bb as i64).abs() <= 1,
            "frame counts diverge: {n_full} vs {n_bb}"
        );
    }

    #[test]
    fn rows_into_matches_process_slices() {
        let dc = Downconverter::paper(32);
        let fs = 44_100.0;
        let audio: Vec<f64> = (0..88_200)
            .map(|i| {
                0.02 * (std::f64::consts::TAU * 20_100.0 * i as f64 / fs).sin()
                    + (std::f64::consts::TAU * 20_000.0 * i as f64 / fs).sin()
            })
            .collect();
        let bb = dc.process(&audio);
        let stft = BasebandStft::new(256, 32, 32.0);
        let reference = stft.process(&bb);

        let (lo, hi) = (110usize, 150usize);
        let frames = stft.frame_count(bb.len());
        assert_eq!(frames, reference.len());
        let band = hi - lo + 1;
        let mut flat = vec![0.0; frames * band];
        let mut scratch = stft.make_scratch();
        stft.process_rows_into(&bb, lo, hi, &mut scratch, &mut flat);
        for (f, cols) in reference.iter().enumerate() {
            for r in 0..band {
                assert_eq!(
                    flat[f * band + r],
                    cols[lo + r],
                    "frame {f} shifted row {}",
                    lo + r
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "row output length mismatch")]
    fn frame_rows_into_rejects_wrong_output_len() {
        let stft = BasebandStft::new(64, 16, 1.0);
        let frame = vec![Complex::ZERO; 64];
        let mut scratch = stft.make_scratch();
        let mut out = vec![0.0; 3];
        stft.frame_rows_into(&frame, 10, 20, &mut scratch, &mut out);
    }

    fn chirp(n: usize) -> Vec<f64> {
        let fs = 44_100.0;
        (0..n)
            .map(|i| {
                let t = i as f64 / fs;
                0.02 * (std::f64::consts::TAU * (20_000.0 + 120.0 * (3.0 * t).sin()) * t).sin()
                    + (std::f64::consts::TAU * 20_000.0 * t).sin()
            })
            .collect()
    }

    #[test]
    fn streaming_downconverter_matches_offline_bitwise() {
        let audio = chirp(70_001);
        let dc = Downconverter::paper(32);
        let offline = dc.process(&audio);

        for chunks in [
            vec![1usize, 7, 31, 97, 1024, 5000],
            vec![44_100],
            vec![3, 3, 3],
            vec![8192],
        ] {
            let mut stream = StreamingDownconverter::new(dc.clone());
            let mut out = Vec::new();
            let mut pos = 0usize;
            let mut ci = 0usize;
            while pos < audio.len() {
                let len = chunks[ci % chunks.len()].min(audio.len() - pos);
                ci += 1;
                stream.push(&audio[pos..pos + len], &mut out);
                pos += len;
            }
            stream.finish(&mut out);
            assert_eq!(out.len(), offline.len(), "chunking {chunks:?}");
            for (i, (s, o)) in out.iter().zip(&offline).enumerate() {
                assert!(
                    s.re == o.re && s.im == o.im,
                    "sample {i} diverges under chunking {chunks:?}: {s:?} vs {o:?}"
                );
            }
        }
    }

    #[test]
    fn streaming_downconverter_buffer_stays_bounded() {
        let dc = Downconverter::paper(32);
        let mut stream = StreamingDownconverter::new(dc);
        let chunk = vec![0.0; 4410];
        let mut out = Vec::new();
        for _ in 0..200 {
            stream.push(&chunk, &mut out);
            out.clear();
        }
        assert!(
            stream.buffer.len() < 20_000,
            "buffer grew to {}",
            stream.buffer.len()
        );
    }

    #[test]
    fn streaming_downconverter_reset_restarts_cleanly() {
        let audio = chirp(20_000);
        let dc = Downconverter::paper(32);
        let offline = dc.process(&audio);
        let mut stream = StreamingDownconverter::new(dc);
        let mut out = Vec::new();
        stream.push(&audio[..9_999], &mut out);
        stream.reset();
        out.clear();
        stream.push(&audio, &mut out);
        stream.finish(&mut out);
        assert_eq!(out.len(), offline.len());
        for (s, o) in out.iter().zip(&offline) {
            assert!(s.re == o.re && s.im == o.im);
        }
    }

    #[test]
    fn state_roundtrip_resumes_bitwise() {
        let audio = chirp(70_001);
        let dc = Downconverter::paper(32);
        let offline = dc.process(&audio);

        // Suspend/restore at points that straddle compaction and rotator
        // re-seed boundaries.
        for cut in [1_000usize, 33_000, 65_537] {
            let mut first = StreamingDownconverter::new(dc.clone());
            let mut out = Vec::new();
            for chunk in audio[..cut].chunks(997) {
                first.push(chunk, &mut out);
            }
            let state = first.export_state();
            drop(first);
            let mut resumed = StreamingDownconverter::new(dc.clone());
            resumed.restore_state(&state);
            for chunk in audio[cut..].chunks(997) {
                resumed.push(chunk, &mut out);
            }
            resumed.finish(&mut out);
            assert_eq!(out.len(), offline.len(), "cut {cut}");
            for (i, (s, o)) in out.iter().zip(&offline).enumerate() {
                assert!(
                    s.re == o.re && s.im == o.im,
                    "cut {cut} sample {i} diverges: {s:?} vs {o:?}"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "factor must be at least 2")]
    fn rejects_unit_factor() {
        Downconverter::new(20_000.0, 44_100.0, 1, 9);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn rejects_super_nyquist_carrier() {
        Downconverter::new(30_000.0, 44_100.0, 8, 9);
    }
}
