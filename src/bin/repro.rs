//! Regenerates every table and figure of the EchoWrite paper.
//!
//! Usage: `repro <experiment>` where `<experiment>` is one of
//! `fig4 fig5 fig6 table1 fig9 fig10 fig11 fig12 fig13 fig14 fig15 fig16
//! fig17 fig18 fig19 fig20 fig21 all`.

fn main() {
    let arg = std::env::args().nth(1).unwrap_or_else(|| "all".to_string());
    echowrite_sim::experiments::run_by_name(&arg);
}
