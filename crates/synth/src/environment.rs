//! Environment (room) interference profiles.
//!
//! The paper evaluates in three rooms (Sec. IV-B):
//! - **Meeting room** — air conditioners on, windows closed, 60–70 dB.
//! - **Lab area** — 8 m × 9 m, twenty students typing, chatting, and
//!   occasionally walking.
//! - **Resting zone** — open area beside a corridor; people walk within
//!   30–40 cm of the device and occasional wideband bursts (rubbing,
//!   knocking) overlap the probe band.
//!
//! A room's identity enters the signal chain only through these statistics.

use echowrite_gesture::Vec3;

/// Parameters of a person walking near the device — a large, slow scatterer
/// producing low-frequency Doppler clutter near the carrier.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WalkerParams {
    /// Closest approach distance in metres (paper: 0.3–0.4 m).
    pub distance: f64,
    /// Walking speed in m/s.
    pub speed: f64,
    /// Echo reflectivity (bodies are much larger than fingers).
    pub reflectivity: f64,
    /// Vertical gait bob amplitude in metres.
    pub bob_amplitude: f64,
    /// Gait frequency in Hz.
    pub bob_frequency: f64,
}

impl WalkerParams {
    /// A passer-by at 35 cm, strolling at 0.6 m/s — the paper's deliberate
    /// interference test in the resting zone.
    pub fn passer_by() -> Self {
        // Reflectivity: a torso's cross-section is huge, but clothing
        // absorbs 20 kHz strongly and the transducers point at the writer,
        // not sideways at the corridor — the received clutter stays below
        // the finger echo.
        WalkerParams {
            distance: 0.45,
            speed: 0.6,
            reflectivity: 0.055,
            bob_amplitude: 0.02,
            bob_frequency: 1.8,
        }
    }

    /// Walker position at time `t`, crossing laterally in front of the
    /// device: `x` sweeps through zero at `t = t_mid`.
    pub fn position(&self, t: f64, t_mid: f64) -> Vec3 {
        Vec3::new(
            self.speed * (t - t_mid),
            0.1 + self.bob_amplitude * (std::f64::consts::TAU * self.bob_frequency * t).sin(),
            self.distance,
        )
    }
}

/// Interference statistics of a room.
///
/// # Example
///
/// ```
/// use echowrite_synth::EnvironmentProfile;
/// let rooms = EnvironmentProfile::all_paper_rooms();
/// assert_eq!(rooms.len(), 3);
/// assert!(rooms[2].walker.is_some()); // the resting zone has a passer-by
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct EnvironmentProfile {
    /// Room name for reports.
    pub name: String,
    /// Standard deviation of the stationary ambient noise floor.
    pub ambient_sigma: f64,
    /// Keyboard click rate, events/second.
    pub click_rate: f64,
    /// Speech babble rate, events/second.
    pub babble_rate: f64,
    /// Wideband rubbing/knocking rate, events/second.
    pub rubbing_rate: f64,
    /// A walking interferer, if present.
    pub walker: Option<WalkerParams>,
}

impl EnvironmentProfile {
    /// The meeting room: steady HVAC floor, no transient activity.
    pub fn meeting_room() -> Self {
        EnvironmentProfile {
            name: "Meeting room".to_string(),
            ambient_sigma: 0.010,
            click_rate: 0.0,
            babble_rate: 0.05,
            rubbing_rate: 0.0,
            walker: None,
        }
    }

    /// The lab area: typing and chatting students.
    pub fn lab_area() -> Self {
        EnvironmentProfile {
            name: "Lab area".to_string(),
            ambient_sigma: 0.012,
            click_rate: 1.2,
            babble_rate: 0.5,
            rubbing_rate: 0.0,
            walker: None,
        }
    }

    /// The resting zone: corridor-side open area with a walking passer-by
    /// and occasional wideband bursts.
    pub fn resting_zone() -> Self {
        EnvironmentProfile {
            name: "Resting zone".to_string(),
            ambient_sigma: 0.014,
            click_rate: 0.3,
            babble_rate: 1.2,
            rubbing_rate: 0.12,
            walker: Some(WalkerParams::passer_by()),
        }
    }

    /// A noiseless anechoic reference (useful for tests and templates).
    pub fn silent() -> Self {
        EnvironmentProfile {
            name: "Silent".to_string(),
            ambient_sigma: 0.0,
            click_rate: 0.0,
            babble_rate: 0.0,
            rubbing_rate: 0.0,
            walker: None,
        }
    }

    /// The three paper rooms in the order of Fig. 12.
    pub fn all_paper_rooms() -> Vec<EnvironmentProfile> {
        vec![Self::meeting_room(), Self::lab_area(), Self::resting_zone()]
    }
}

impl Default for EnvironmentProfile {
    fn default() -> Self {
        EnvironmentProfile::meeting_room()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rooms_ordered_by_hostility() {
        let m = EnvironmentProfile::meeting_room();
        let l = EnvironmentProfile::lab_area();
        let r = EnvironmentProfile::resting_zone();
        assert!(m.ambient_sigma <= l.ambient_sigma);
        assert!(l.ambient_sigma <= r.ambient_sigma);
        assert!(r.rubbing_rate > 0.0 && m.rubbing_rate == 0.0);
        assert!(r.walker.is_some());
        assert!(m.walker.is_none() && l.walker.is_none());
    }

    #[test]
    fn walker_crosses_in_front() {
        let w = WalkerParams::passer_by();
        let before = w.position(0.0, 1.0);
        let mid = w.position(1.0, 1.0);
        let after = w.position(2.0, 1.0);
        assert!(before.x < 0.0 && after.x > 0.0);
        assert!(mid.x.abs() < 1e-12);
        // Stays at the configured distance.
        assert_eq!(before.z, 0.45);
        // Paper: passer-by 30–40 cm from the experiment site; the device at
        // the site centre is slightly farther from the walking line.
        assert!(w.distance >= 0.3 && w.distance <= 0.55);
    }

    #[test]
    fn walker_speed_is_pedestrian() {
        let w = WalkerParams::passer_by();
        let p0 = w.position(0.0, 0.0);
        let p1 = w.position(1.0, 0.0);
        let speed = p0.distance(p1);
        assert!(speed > 0.3 && speed < 1.5, "speed {speed}");
    }

    #[test]
    fn silent_room_is_noise_free() {
        let s = EnvironmentProfile::silent();
        assert_eq!(s.ambient_sigma, 0.0);
        assert_eq!(s.click_rate + s.babble_rate + s.rubbing_rate, 0.0);
        assert!(s.walker.is_none());
    }
}
