//! The six basic strokes of the EchoWrite input alphabet.

use std::fmt;
use std::str::FromStr;

/// One of the six basic strokes that uppercase English letters decompose
/// into (paper Fig. 2a).
///
/// The geometric convention used throughout this reproduction (writing plane
/// in front of the device, x lateral, y vertical):
///
/// | Stroke | Gesture | Motion |
/// |---|---|---|
/// | `S1` | `—` | horizontal line, left → right |
/// | `S2` | `\|` | vertical line, top → bottom |
/// | `S3` | `↙` | left-falling diagonal, top-right → bottom-left |
/// | `S4` | `↘` | right-falling diagonal, top-left → bottom-right |
/// | `S5` | `C` | left curve, counter-clockwise open-right arc |
/// | `S6` | `)` | right curve, clockwise open-left arc |
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Stroke {
    /// Horizontal line (`—`).
    S1,
    /// Vertical line (`|`).
    S2,
    /// Left-falling diagonal (`↙`).
    S3,
    /// Right-falling diagonal (`↘`).
    S4,
    /// Left curve (`C`).
    S5,
    /// Right curve (`)`).
    S6,
}

/// Number of strokes in the alphabet.
pub const STROKE_COUNT: usize = 6;

impl Stroke {
    /// All strokes in index order.
    pub const ALL: [Stroke; STROKE_COUNT] = [
        Stroke::S1,
        Stroke::S2,
        Stroke::S3,
        Stroke::S4,
        Stroke::S5,
        Stroke::S6,
    ];

    /// Zero-based index of the stroke (S1 → 0 … S6 → 5).
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Stroke from a zero-based index.
    ///
    /// Returns `None` if `idx >= 6`.
    pub fn from_index(idx: usize) -> Option<Stroke> {
        Stroke::ALL.get(idx).copied()
    }

    /// The glyph conventionally used to depict the stroke.
    pub fn glyph(self) -> char {
        match self {
            Stroke::S1 => '—',
            Stroke::S2 => '|',
            Stroke::S3 => '↙',
            Stroke::S4 => '↘',
            Stroke::S5 => 'C',
            Stroke::S6 => ')',
        }
    }

    /// A short human-readable description of the gesture.
    pub fn description(self) -> &'static str {
        match self {
            Stroke::S1 => "horizontal line, left to right",
            Stroke::S2 => "vertical line, top to bottom",
            Stroke::S3 => "left-falling diagonal, top-right to bottom-left",
            Stroke::S4 => "right-falling diagonal, top-left to bottom-right",
            Stroke::S5 => "left curve (C shape), counter-clockwise",
            Stroke::S6 => "right curve ()) shape), clockwise",
        }
    }

    /// Whether the stroke is curved (S5, S6) rather than straight.
    ///
    /// Curved strokes have longer arc length and, per the paper's Fig. 19,
    /// cost more processing time because they last longer.
    pub fn is_curved(self) -> bool {
        matches!(self, Stroke::S5 | Stroke::S6)
    }

    /// Nominal relative duration of the stroke compared to S1.
    ///
    /// The paper observes S4, S5 and S6 "last longer and consist of more
    /// samples than other strokes".
    pub fn relative_duration(self) -> f64 {
        match self {
            Stroke::S1 | Stroke::S2 => 1.0,
            Stroke::S3 => 1.1,
            Stroke::S4 => 1.25,
            Stroke::S5 => 1.4,
            Stroke::S6 => 1.35,
        }
    }
}

impl fmt::Display for Stroke {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "S{}", self.index() + 1)
    }
}

/// Error returned when parsing a stroke label fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseStrokeError(String);

impl fmt::Display for ParseStrokeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid stroke label: {:?} (expected S1..S6)", self.0)
    }
}

impl std::error::Error for ParseStrokeError {}

impl FromStr for Stroke {
    type Err = ParseStrokeError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim().to_ascii_uppercase().as_str() {
            "S1" => Ok(Stroke::S1),
            "S2" => Ok(Stroke::S2),
            "S3" => Ok(Stroke::S3),
            "S4" => Ok(Stroke::S4),
            "S5" => Ok(Stroke::S5),
            "S6" => Ok(Stroke::S6),
            other => Err(ParseStrokeError(other.to_string())),
        }
    }
}

/// Formats a stroke sequence as `"S1 S2 S3"`.
pub fn format_sequence(seq: &[Stroke]) -> String {
    seq.iter()
        .map(|s| s.to_string())
        .collect::<Vec<_>>()
        .join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_roundtrip() {
        for (i, s) in Stroke::ALL.iter().enumerate() {
            assert_eq!(s.index(), i);
            assert_eq!(Stroke::from_index(i), Some(*s));
        }
        assert_eq!(Stroke::from_index(6), None);
    }

    #[test]
    fn display_and_parse_roundtrip() {
        for s in Stroke::ALL {
            let label = s.to_string();
            assert_eq!(label.parse::<Stroke>().unwrap(), s);
            // Lowercase and padding are tolerated.
            assert_eq!(label.to_lowercase().parse::<Stroke>().unwrap(), s);
            assert_eq!(format!(" {label} ").parse::<Stroke>().unwrap(), s);
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!("S7".parse::<Stroke>().is_err());
        assert!("".parse::<Stroke>().is_err());
        assert!("stroke1".parse::<Stroke>().is_err());
        let err = "S9".parse::<Stroke>().unwrap_err();
        assert!(err.to_string().contains("S9"));
    }

    #[test]
    fn curved_classification() {
        assert!(!Stroke::S1.is_curved());
        assert!(!Stroke::S4.is_curved());
        assert!(Stroke::S5.is_curved());
        assert!(Stroke::S6.is_curved());
    }

    #[test]
    fn longer_strokes_have_longer_durations() {
        assert!(Stroke::S5.relative_duration() > Stroke::S1.relative_duration());
        assert!(Stroke::S4.relative_duration() > Stroke::S2.relative_duration());
    }

    #[test]
    fn glyphs_are_unique() {
        let mut glyphs: Vec<char> = Stroke::ALL.iter().map(|s| s.glyph()).collect();
        glyphs.sort_unstable();
        glyphs.dedup();
        assert_eq!(glyphs.len(), STROKE_COUNT);
    }

    #[test]
    fn format_sequence_layout() {
        assert_eq!(
            format_sequence(&[Stroke::S1, Stroke::S5, Stroke::S2]),
            "S1 S5 S2"
        );
        assert_eq!(format_sequence(&[]), "");
    }
}
