//! Property tests for the wire frame grammar: any frame sequence, sliced
//! into arbitrary read fragments — 1-byte reads up to whole-stream reads —
//! decodes to exactly the original frames. This is the contract the
//! server's read loop depends on: TCP makes no framing promises, so the
//! decoder must make them.

use echowrite_dtw::Classification;
use echowrite_gesture::stroke::STROKE_COUNT;
use echowrite_gesture::Stroke;
use echowrite_wire::{encode_request, encode_response, FrameDecoder, Request, Response};
use proptest::prelude::*;

/// Builds a request from a generated spec: selector picks the variant,
/// `session` the id, `n` the push payload size.
fn request_from_spec(selector: u8, session: u64, n: usize) -> Request {
    match selector % 3 {
        0 => Request::Open { session },
        1 => Request::Push {
            session,
            // Deterministic but varied sample bits, including negatives
            // and subnormal-ish magnitudes.
            samples: (0..n)
                .map(|i| ((i as f64) - (n as f64) / 2.0) * 1.37e-3 * if i % 2 == 0 { 1.0 } else { -1.0 })
                .collect(),
        },
        _ => Request::Finish { session },
    }
}

/// Builds a response from a generated spec. Verdict variants carry a
/// request id derived from the spec (events carry none by design).
fn response_from_spec(selector: u8, session: u64, n: usize) -> Response {
    let request_id = session.wrapping_mul(31).wrapping_add(n as u64);
    match selector % 6 {
        0 => Response::Enqueued { request_id, session },
        1 => Response::QueueFull { request_id, session, retry_after_chunks: n as u64 },
        2 => Response::Shedding { request_id, session },
        3 => {
            let classification = if n % 2 == 0 {
                let mut distances = [0.0f64; STROKE_COUNT];
                let mut scores = [0.0f64; STROKE_COUNT];
                for (i, d) in distances.iter_mut().enumerate() {
                    *d = (n as f64) * 0.1 + i as f64;
                }
                for (i, s) in scores.iter_mut().enumerate() {
                    *s = 1.0 / (i as f64 + 1.0);
                }
                Stroke::from_index(n % STROKE_COUNT)
                    .map(|stroke| Classification { stroke, distances, scores })
            } else {
                None
            };
            Response::Segment {
                session,
                start_frame: n as u64,
                end_frame: n as u64 + 40,
                classification,
            }
        }
        4 => Response::Finished { session },
        _ => Response::Reaped { session },
    }
}

/// Feeds `bytes` to a decoder in fragments of the sizes in `cuts`
/// (cycled), draining complete frames after every fragment via `pop`.
fn decode_fragmented<T>(
    bytes: &[u8],
    cuts: &[usize],
    mut pop: impl FnMut(&mut FrameDecoder) -> Option<T>,
) -> Vec<T> {
    let mut decoder = FrameDecoder::new();
    let mut got = Vec::new();
    let mut pos = 0usize;
    let mut k = 0usize;
    while pos < bytes.len() {
        let step = cuts[k % cuts.len()].max(1);
        k += 1;
        let end = (pos + step).min(bytes.len());
        decoder.extend(&bytes[pos..end]);
        pos = end;
        while let Some(frame) = pop(&mut decoder) {
            got.push(frame);
        }
    }
    assert_eq!(decoder.buffered(), 0, "no partial frame may remain");
    got
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Request streams survive arbitrary fragmentation bitwise.
    #[test]
    fn fragmented_request_stream_decodes_identically(
        specs in prop::collection::vec((0u8..255, 0u64..u64::MAX, 0usize..70), 1..24),
        cuts in prop::collection::vec(1usize..96, 1..32),
    ) {
        let frames: Vec<(u64, Request)> = specs
            .iter()
            .enumerate()
            .map(|(i, &(s, id, n))| (1_000 + i as u64, request_from_spec(s, id, n)))
            .collect();
        let mut bytes = Vec::new();
        for (req_id, f) in &frames {
            encode_request(&mut bytes, f, *req_id);
        }
        let got = decode_fragmented(&bytes, &cuts, |d| {
            d.next_request().expect("stream is well-formed")
        });
        prop_assert_eq!(got, frames);
    }

    /// Response streams survive arbitrary fragmentation bitwise.
    #[test]
    fn fragmented_response_stream_decodes_identically(
        specs in prop::collection::vec((0u8..255, 0u64..u64::MAX, 0usize..70), 1..24),
        cuts in prop::collection::vec(1usize..96, 1..32),
    ) {
        let frames: Vec<Response> =
            specs.iter().map(|&(s, id, n)| response_from_spec(s, id, n)).collect();
        let mut bytes = Vec::new();
        for f in &frames {
            encode_response(&mut bytes, f);
        }
        let got = decode_fragmented(&bytes, &cuts, |d| {
            d.next_response().expect("stream is well-formed")
        });
        prop_assert_eq!(got, frames);
    }

    /// One-byte reads — the worst fragmentation TCP can produce — still
    /// decode every frame.
    #[test]
    fn byte_at_a_time_reads_decode_every_frame(
        specs in prop::collection::vec((0u8..255, 0u64..1000, 0usize..12), 1..8),
    ) {
        let frames: Vec<(u64, Request)> = specs
            .iter()
            .enumerate()
            .map(|(i, &(s, id, n))| (i as u64, request_from_spec(s, id, n)))
            .collect();
        let mut bytes = Vec::new();
        for (req_id, f) in &frames {
            encode_request(&mut bytes, f, *req_id);
        }
        let got = decode_fragmented(&bytes, &[1], |d| {
            d.next_request().expect("stream is well-formed")
        });
        prop_assert_eq!(got, frames);
    }
}
