//! The bounded in-memory recording sink: a ring buffer of events with a
//! Chrome `trace_event` JSON export and a per-stage latency/counter
//! summary.
//!
//! Timestamp policy: the `ts` axis of the export is *logical audio time*
//! (microseconds derived from samples pushed / frames emitted), and span
//! durations are the caller-measured `wall_us` from the quarantined
//! `Stopwatch`. This module never reads a clock, so echolint's determinism
//! rule holds for the whole crate.

use crate::event::{EventKind, Stage, TraceEvent, TICK_UNSET};
use crate::sink::TraceSink;
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Default ring capacity in events (~4 MiB of `TraceEvent`).
pub const DEFAULT_CAPACITY: usize = 65_536;

struct Ring {
    events: VecDeque<TraceEvent>,
    capacity: usize,
    last_tick_us: u64,
}

/// Keeps the newest `capacity` events, counts what it evicts, and stamps
/// tickless events ([`TICK_UNSET`]) with the last tick seen on the stream.
pub struct RecordingSink {
    ring: Mutex<Ring>,
    dropped: AtomicU64,
}

impl RecordingSink {
    /// Creates a sink holding at most `capacity` events (floored at 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        RecordingSink {
            ring: Mutex::new(Ring {
                events: VecDeque::with_capacity(capacity.min(DEFAULT_CAPACITY)),
                capacity,
                last_tick_us: 0,
            }),
            dropped: AtomicU64::new(0),
        }
    }

    /// Events currently buffered.
    pub fn len(&self) -> usize {
        self.ring.lock().unwrap_or_else(|e| e.into_inner()).events.len()
    }

    /// True when nothing has been recorded (or everything was cleared).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        // ordering: Relaxed — a monotone statistic; the ring mutex orders the
        // event data itself.
        self.dropped.load(Ordering::Relaxed)
    }

    /// Discards all buffered events (the drop counter is kept).
    pub fn clear(&self) {
        self.ring.lock().unwrap_or_else(|e| e.into_inner()).events.clear();
    }

    /// A copy of the buffered events, oldest first.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.ring.lock().unwrap_or_else(|e| e.into_inner()).events.iter().copied().collect()
    }

    /// Serializes the buffer as Chrome `trace_event` JSON (open with
    /// `chrome://tracing` or <https://ui.perfetto.dev>). Spans become `ph:"X"`
    /// complete events, instants `ph:"i"`, counters `ph:"C"`; each pipeline
    /// stage is its own named lane.
    pub fn to_chrome_json(&self) -> String {
        let events = self.events();
        let mut out = String::with_capacity(events.len() * 96 + 1024);
        out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
        let mut first = true;
        for stage in Stage::ALL {
            push_sep(&mut out, &mut first);
            let _ = write!(
                out,
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{},\
                 \"args\":{{\"name\":\"{}\"}}}}",
                stage.index(),
                stage.as_str()
            );
        }
        for ev in &events {
            push_sep(&mut out, &mut first);
            let ts = if ev.tick_us == TICK_UNSET { 0 } else { ev.tick_us };
            let _ = write!(out, "{{\"name\":");
            escape_json(&mut out, ev.name);
            let _ = write!(
                out,
                ",\"cat\":\"{}\",\"pid\":1,\"tid\":{},\"ts\":{}",
                ev.stage.as_str(),
                ev.stage.index(),
                ts
            );
            match ev.kind {
                EventKind::Span => {
                    let _ = write!(out, ",\"ph\":\"X\",\"dur\":{}", ev.wall_us);
                    out.push_str(",\"args\":{");
                    let mut first_arg = true;
                    if ev.value != 0.0 {
                        out.push_str("\"value\":");
                        push_json_f64(&mut out, ev.value);
                        first_arg = false;
                    }
                    push_detail_arg(&mut out, ev, first_arg);
                    out.push('}');
                }
                EventKind::Instant => {
                    out.push_str(",\"ph\":\"i\",\"s\":\"t\",\"args\":{");
                    let mut first_arg = true;
                    if ev.value != 0.0 {
                        out.push_str("\"value\":");
                        push_json_f64(&mut out, ev.value);
                        first_arg = false;
                    }
                    push_detail_arg(&mut out, ev, first_arg);
                    out.push('}');
                }
                EventKind::Counter => {
                    out.push_str(",\"ph\":\"C\",\"args\":{");
                    escape_json(&mut out, ev.name);
                    out.push(':');
                    push_json_f64(&mut out, ev.value);
                    out.push('}');
                }
            }
            out.push('}');
        }
        out.push_str("]}");
        out
    }

    /// Per-stage aggregates over the buffered events, in pipeline order
    /// (all nine stages, including those that saw nothing).
    pub fn summary(&self) -> Vec<StageSummary> {
        let mut rows: Vec<StageSummary> =
            Stage::ALL.iter().map(|&stage| StageSummary::empty(stage)).collect();
        for ev in self.events() {
            if let Some(row) = rows.get_mut(ev.stage.index()) {
                match ev.kind {
                    EventKind::Span => {
                        row.spans += 1;
                        row.wall_us_total = row.wall_us_total.saturating_add(ev.wall_us);
                        row.wall_us_max = row.wall_us_max.max(ev.wall_us);
                    }
                    EventKind::Instant => row.instants += 1,
                    EventKind::Counter => {
                        row.counters += 1;
                        row.counter_sum += ev.value;
                    }
                }
            }
        }
        rows
    }

    /// The summary rendered as an aligned text table (stages with no
    /// events are omitted).
    pub fn summary_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<12} {:>7} {:>12} {:>10} {:>8} {:>9} {:>14}",
            "stage", "spans", "wall_us_sum", "wall_us_max", "instants", "counters", "counter_sum"
        );
        for row in self.summary() {
            if row.spans == 0 && row.instants == 0 && row.counters == 0 {
                continue;
            }
            let _ = writeln!(
                out,
                "{:<12} {:>7} {:>12} {:>10} {:>8} {:>9} {:>14.1}",
                row.stage.as_str(),
                row.spans,
                row.wall_us_total,
                row.wall_us_max,
                row.instants,
                row.counters,
                row.counter_sum
            );
        }
        out
    }
}

impl TraceSink for RecordingSink {
    fn record(&self, event: &TraceEvent) {
        let mut ring = self.ring.lock().unwrap_or_else(|e| e.into_inner());
        let mut ev = *event;
        if ev.tick_us == TICK_UNSET {
            ev.tick_us = ring.last_tick_us;
        } else {
            ring.last_tick_us = ev.tick_us;
        }
        if ring.events.len() >= ring.capacity {
            ring.events.pop_front();
            // ordering: Relaxed — counter only; the ring mutex already orders the
            // eviction it describes.
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        ring.events.push_back(ev);
    }
}

/// Aggregates for one stage over a recording.
#[derive(Debug, Clone, PartialEq)]
pub struct StageSummary {
    /// Stage these aggregates describe.
    pub stage: Stage,
    /// Completed spans seen.
    pub spans: u64,
    /// Total caller-measured wall time across spans, µs.
    pub wall_us_total: u64,
    /// Largest single-span wall time, µs.
    pub wall_us_max: u64,
    /// Instant markers seen.
    pub instants: u64,
    /// Counter samples seen.
    pub counters: u64,
    /// Sum of counter values.
    pub counter_sum: f64,
}

impl StageSummary {
    fn empty(stage: Stage) -> Self {
        StageSummary {
            stage,
            spans: 0,
            wall_us_total: 0,
            wall_us_max: 0,
            instants: 0,
            counters: 0,
            counter_sum: 0.0,
        }
    }
}

pub(crate) fn push_sep(out: &mut String, first: &mut bool) {
    if *first {
        *first = false;
    } else {
        out.push(',');
    }
}

pub(crate) fn push_detail_arg(out: &mut String, ev: &TraceEvent, first_arg: bool) {
    if ev.detail.is_empty() {
        return;
    }
    if !first_arg {
        out.push(',');
    }
    out.push_str("\"detail\":");
    escape_json(out, ev.detail.as_str());
}

/// Appends `s` as a JSON string literal (quoted, escaped).
pub(crate) fn escape_json(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends `v` as a JSON number (non-finite values become 0).
pub(crate) fn push_json_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push('0');
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::SmallStr;

    fn ev(kind: EventKind, stage: Stage, tick: u64, wall: u64, value: f64) -> TraceEvent {
        TraceEvent {
            stage,
            name: "t",
            kind,
            tick_us: tick,
            wall_us: wall,
            value,
            detail: SmallStr::empty(),
        }
    }

    #[test]
    fn ring_bounds_and_drop_count() {
        let sink = RecordingSink::new(3);
        for i in 0..5 {
            sink.record(&ev(EventKind::Instant, Stage::Stft, i, 0, 0.0));
        }
        assert_eq!(sink.len(), 3);
        assert_eq!(sink.dropped(), 2);
        let ticks: Vec<u64> = sink.events().iter().map(|e| e.tick_us).collect();
        assert_eq!(ticks, vec![2, 3, 4]); // oldest evicted first
        sink.clear();
        assert!(sink.is_empty());
        assert_eq!(sink.dropped(), 2);
    }

    #[test]
    fn tickless_events_inherit_last_tick() {
        let sink = RecordingSink::new(8);
        sink.record(&ev(EventKind::Instant, Stage::Stream, 500, 0, 0.0));
        sink.record(&ev(EventKind::Counter, Stage::Dtw, TICK_UNSET, 0, 3.0));
        let events = sink.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events.get(1).map(|e| e.tick_us), Some(500));
    }

    #[test]
    fn chrome_export_shape() {
        let sink = RecordingSink::new(8);
        sink.record(&ev(EventKind::Span, Stage::Stft, 100, 42, 0.0));
        sink.record(&ev(EventKind::Counter, Stage::Dtw, 100, 0, 2.0));
        let mut inst = ev(EventKind::Instant, Stage::Serve, 200, 0, 0.0);
        inst.detail = SmallStr::new("needs\"escape\\here");
        sink.record(&inst);
        let json = sink.to_chrome_json();
        assert!(json.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
        assert!(json.ends_with("]}"));
        assert!(json.contains("\"ph\":\"X\",\"dur\":42"));
        assert!(json.contains("\"ph\":\"C\""));
        assert!(json.contains("\"ph\":\"i\""));
        assert!(json.contains("needs\\\"escape\\\\here"));
        // Every stage lane is named via metadata events.
        for stage in Stage::ALL {
            assert!(json.contains(&format!("\"args\":{{\"name\":\"{}\"}}", stage.as_str())));
        }
        // Balanced braces/brackets (cheap well-formedness check).
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes);
    }

    #[test]
    fn summary_aggregates_per_stage() {
        let sink = RecordingSink::new(16);
        sink.record(&ev(EventKind::Span, Stage::Stream, 0, 10, 0.0));
        sink.record(&ev(EventKind::Span, Stage::Stream, 1, 30, 0.0));
        sink.record(&ev(EventKind::Counter, Stage::Dtw, 1, 0, 4.0));
        sink.record(&ev(EventKind::Instant, Stage::Segment, 2, 0, 0.0));
        let rows = sink.summary();
        let stream = rows.get(Stage::Stream.index()).expect("stream row");
        assert_eq!((stream.spans, stream.wall_us_total, stream.wall_us_max), (2, 40, 30));
        let dtw = rows.get(Stage::Dtw.index()).expect("dtw row");
        assert_eq!((dtw.counters, dtw.counter_sum), (1, 4.0));
        let text = sink.summary_text();
        assert!(text.contains("stream") && text.contains("dtw") && text.contains("segment"));
        assert!(!text.contains("downconvert")); // silent stages omitted
    }
}
