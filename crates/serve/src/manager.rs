//! The sharded multi-session manager.
//!
//! N worker shards (the [`Parallelism`](echowrite::Parallelism) knob) each
//! own a `SessionId → StreamingSession` map plus pooled scratch, with
//! sessions pinned to shards by id hash — all DSP state stays
//! thread-local, so per-session output is bitwise identical to an
//! isolated [`StreamingRecognizer`](echowrite::StreamingRecognizer) no
//! matter how many shards run or how sessions interleave.
//!
//! Workers drain their queue in batches (up to [`ServeConfig::batch_max`]
//! commands per round), running every push of a batch through one
//! shard-shared DSP scratch so the FFT workspace stays hot across sessions;
//! commands execute strictly in queue order, so the batch size never
//! changes any output bit.
//!
//! Ingress is a bounded MPSC queue per shard and **never blocks**:
//! [`SessionManager::submit`] returns a [`SubmitVerdict`] — enqueued, queue
//! full (with a drain hint), or shed by the admission controller. A push
//! that waits in a backlog past the configured deadline is degraded to
//! segment-only output (the DTW match is skipped, the DSP state still
//! advances) rather than stalling the shard. An idle reaper driven by the
//! shard's logical sample clock reclaims abandoned sessions; no wall clock
//! is read anywhere on the result path.

use crate::admission::AdmissionController;
use crate::config::ServeConfig;
use crate::metrics::ServeMetrics;
use echowrite::{EchoWrite, SegmentEvent, SharedDspScratch, StreamingSession};
use echowrite_profile::Stopwatch;
use echowrite_trace::{SmallStr, Stage, TICK_UNSET};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{self, Receiver, Sender, SyncSender, TrySendError};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// Scan for idle sessions every this many processed commands.
const REAP_SCAN_EVERY: u64 = 64;

/// Identifies one recognition session. Allocation is the caller's business
/// (connection id, user id hash, …); the manager only requires ids of live
/// sessions to be distinct.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct SessionId(pub u64);

/// The manager's answer to a [`SessionManager::submit`] — never a block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[must_use]
pub enum SubmitVerdict {
    /// Accepted; the shard will process it in submission order.
    Enqueued,
    /// The session's shard queue is full; try again after roughly this
    /// many queued commands have drained.
    QueueFull {
        /// Current depth of the rejecting shard's queue.
        retry_after_chunks: usize,
    },
    /// Rejected by the admission controller (opens past the high-water
    /// mark or the hard session cap), or the manager is shutting down.
    Shedding,
}

/// One unit of work for [`SessionManager::submit`].
#[derive(Debug)]
pub enum Request<'a> {
    /// Start a session (admission-controlled).
    Open(SessionId),
    /// Append an audio chunk to a live session.
    Push(SessionId, &'a [f64]),
    /// End a session, flushing every remaining segment.
    Finish(SessionId),
}

/// An output produced by a shard worker, drained via
/// [`SessionManager::try_events`]. Events of one session arrive in order;
/// events of different sessions interleave arbitrarily (shards run
/// concurrently).
#[derive(Debug, Clone)]
pub enum ServeEvent {
    /// A decided stroke segment. `segment.classification` is `None` when
    /// the producing push was degraded by a missed deadline.
    Segment {
        /// The session that produced the segment.
        session: SessionId,
        /// The segment, in the session's absolute frame clock.
        segment: SegmentEvent,
    },
    /// The session finished (explicit [`Request::Finish`]); all its
    /// segments have been emitted.
    Finished {
        /// The finished session.
        session: SessionId,
    },
    /// The idle reaper reclaimed the session.
    Reaped {
        /// The reaped session.
        session: SessionId,
    },
}

/// A command in flight to a shard worker.
enum Cmd {
    Open { id: u64 },
    Push { id: u64, chunk: Vec<f64>, seq: u64, timer: Stopwatch },
    Finish { id: u64 },
}

/// Outstanding-command counter backing [`SessionManager::quiesce`] —
/// a condvar, not a sleep loop, so no duration is ever chosen.
#[derive(Debug, Default)]
struct Pending {
    n: Mutex<u64>,
    zero: Condvar,
}

impl Pending {
    fn lock(&self) -> std::sync::MutexGuard<'_, u64> {
        self.n.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn inc(&self) {
        *self.lock() += 1;
    }

    fn dec(&self) {
        let mut g = self.lock();
        *g = g.saturating_sub(1);
        if *g == 0 {
            self.zero.notify_all();
        }
    }

    fn wait_zero(&self) {
        let mut g = self.lock();
        while *g > 0 {
            g = self.zero.wait(g).unwrap_or_else(|e| e.into_inner());
        }
    }
}

/// Manager-side handle to one shard.
struct ShardHandle {
    tx: Option<SyncSender<Cmd>>,
    depth: Arc<AtomicUsize>,
    /// Pushes enqueued to this shard so far (the deadline clock).
    pushes_enqueued: Arc<AtomicU64>,
    pending: Arc<Pending>,
    join: Option<JoinHandle<()>>,
    /// Audit log of every push seq the shard worker observed, for the
    /// unique-seq regression test (compiled out of release builds).
    #[cfg(test)]
    seq_log: Arc<Mutex<Vec<u64>>>,
}

impl std::fmt::Debug for ShardHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardHandle")
            // ordering: Relaxed — a debug snapshot; nothing is gated on it.
            .field("depth", &self.depth.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

/// The sharded multi-session recognition service. See the module docs for
/// the architecture; see [`ServeConfig`] for the knobs.
///
/// # Example
///
/// ```
/// use echowrite::{EchoWrite, EchoWriteConfig, Parallelism};
/// use echowrite_serve::{ServeConfig, SessionId, SessionManager, SubmitVerdict};
///
/// let engine = EchoWrite::with_config(EchoWriteConfig::streaming());
/// let cfg = ServeConfig { shards: Parallelism::Threads(2), ..ServeConfig::default() };
/// let manager = SessionManager::new(engine, cfg).expect("valid config");
/// let id = SessionId(7);
/// assert_eq!(manager.open(id), SubmitVerdict::Enqueued);
/// let _ = manager.push(id, &[0.0; 4096]);
/// let _ = manager.finish(id);
/// manager.quiesce();
/// ```
#[derive(Debug)]
pub struct SessionManager {
    shards: Vec<ShardHandle>,
    admission: Arc<AdmissionController>,
    metrics: Arc<ServeMetrics>,
    /// The output side of the event channel; `None` after
    /// [`SessionManager::detach_events`] hands it to an external consumer.
    events: Mutex<Option<Receiver<ServeEvent>>>,
    deadline_chunks: Option<u64>,
}

/// The detached output side of a manager's event channel (see
/// [`SessionManager::detach_events`]): a *blocking* event consumer for a
/// dedicated dispatcher thread, e.g. the wire front-end's router. Holds no
/// reference to the manager, so the manager can be shut down while a
/// dispatcher still drains the stream — `recv` returns `None` once every
/// shard worker has exited and the channel is empty.
#[derive(Debug)]
pub struct EventStream {
    rx: Receiver<ServeEvent>,
}

impl EventStream {
    /// Blocks for the next event; `None` means the manager has shut down
    /// and every remaining event has been delivered.
    pub fn recv(&self) -> Option<ServeEvent> {
        self.rx.recv().ok()
    }

    /// Non-blocking variant of [`EventStream::recv`].
    pub fn try_recv(&self) -> Option<ServeEvent> {
        self.rx.try_recv().ok()
    }
}

/// Everything [`SessionManager::shutdown`] hands back: the final metrics
/// snapshot plus every [`ServeEvent`] still sitting undrained in the
/// channel, so a caller that skipped [`SessionManager::try_events`] loses
/// nothing across shutdown.
#[derive(Debug)]
pub struct ShutdownReport {
    /// Final point-in-time copy of every metric.
    pub metrics: crate::metrics::MetricsSnapshot,
    /// Events that were still queued when the manager stopped (empty when
    /// the event receiver was detached — the [`EventStream`] holder owns
    /// the tail in that case).
    pub events: Vec<ServeEvent>,
}

impl SessionManager {
    /// Spawns the shard workers and returns the manager.
    ///
    /// # Errors
    ///
    /// Returns the [`ServeConfig::validate`] message when the
    /// configuration is invalid.
    pub fn new(engine: EchoWrite, config: ServeConfig) -> Result<Self, String> {
        config.validate()?;
        engine.config().validate()?;
        let engine = Arc::new(engine);
        let admission =
            Arc::new(AdmissionController::new(config.max_sessions, config.high_water));
        let metrics = Arc::new(ServeMetrics::new());
        let (evt_tx, evt_rx) = mpsc::channel();
        let mut shards = Vec::with_capacity(config.shard_count());
        for _ in 0..config.shard_count() {
            let (tx, rx) = mpsc::sync_channel(config.queue_capacity);
            let depth = Arc::new(AtomicUsize::new(0));
            let pushes_enqueued = Arc::new(AtomicU64::new(0));
            let pending = Arc::new(Pending::default());
            #[cfg(test)]
            let seq_log = Arc::new(Mutex::new(Vec::new()));
            let worker = Worker {
                engine: engine.clone(),
                rx,
                events: evt_tx.clone(),
                admission: admission.clone(),
                metrics: metrics.clone(),
                depth: depth.clone(),
                pushes_enqueued: pushes_enqueued.clone(),
                pending: pending.clone(),
                deadline_chunks: config.deadline_chunks,
                idle_timeout_samples: config.idle_timeout_samples,
                batch_max: config.batch_max,
                sessions: BTreeMap::new(),
                pool: Vec::new(),
                scratch: Vec::new(),
                dsp_scratch: SharedDspScratch::new(),
                clock_samples: 0,
                commands_done: 0,
                #[cfg(test)]
                seq_log: seq_log.clone(),
            };
            let join = std::thread::spawn(move || worker.run());
            shards.push(ShardHandle {
                tx: Some(tx),
                depth,
                pushes_enqueued,
                pending,
                join: Some(join),
                #[cfg(test)]
                seq_log,
            });
        }
        Ok(SessionManager {
            shards,
            admission,
            metrics,
            events: Mutex::new(Some(evt_rx)),
            deadline_chunks: config.deadline_chunks,
        })
    }

    /// The shard a session is pinned to (Fibonacci hash of the id).
    fn shard_of(&self, id: SessionId) -> usize {
        let h = id.0.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        ((h >> 32) as usize) % self.shards.len().max(1)
    }

    /// Submits one request; never blocks. Opens pass admission control;
    /// pushes and finishes go straight to the session's shard queue.
    pub fn submit(&self, request: Request<'_>) -> SubmitVerdict {
        match request {
            Request::Open(id) => {
                if !self.admission.try_admit() {
                    self.metrics.sessions_shed.inc();
                    if echowrite_trace::enabled() {
                        echowrite_trace::instant(
                            Stage::Serve,
                            "session_shed",
                            TICK_UNSET,
                            SmallStr::from_display(id.0),
                        );
                    }
                    return SubmitVerdict::Shedding;
                }
                let verdict = self.enqueue(id, Cmd::Open { id: id.0 });
                if verdict != SubmitVerdict::Enqueued {
                    // The slot reserved above was never used.
                    self.admission.release();
                }
                if verdict == SubmitVerdict::Enqueued {
                    self.metrics.sessions_live.inc();
                }
                verdict
            }
            Request::Push(id, chunk) => {
                let shard = self.shard_of(id);
                // Reserve the seq *before* the send (mirroring the `depth`
                // accounting in `enqueue`): a load-then-increment here would
                // let two concurrent submitters observe the same counter
                // value and stamp duplicate seqs, skewing the backlog `lag`
                // the deadline policy degrades on.
                // ordering: AcqRel — the reservation is both the publish
                // (a later submitter's reservation sees it) and the acquire
                // edge the worker's lag load pairs with.
                let seq = match self.shards.get(shard) {
                    Some(s) => s.pushes_enqueued.fetch_add(1, Ordering::AcqRel),
                    None => 0,
                };
                let cmd = Cmd::Push {
                    id: id.0,
                    chunk: chunk.to_vec(),
                    seq,
                    timer: Stopwatch::start(),
                };
                let verdict = self.enqueue(id, cmd);
                if verdict != SubmitVerdict::Enqueued {
                    // The reservation was never enqueued; return it so the
                    // backlog clock does not drift on rejected submissions.
                    // ordering: AcqRel — pairs with the reservation above.
                    if let Some(s) = self.shards.get(shard) {
                        s.pushes_enqueued.fetch_sub(1, Ordering::AcqRel);
                    }
                }
                verdict
            }
            Request::Finish(id) => self.enqueue(id, Cmd::Finish { id: id.0 }),
        }
    }

    /// [`Request::Open`] shorthand.
    pub fn open(&self, id: SessionId) -> SubmitVerdict {
        self.submit(Request::Open(id))
    }

    /// [`Request::Push`] shorthand.
    // echolint: entry
    pub fn push(&self, id: SessionId, chunk: &[f64]) -> SubmitVerdict {
        self.submit(Request::Push(id, chunk))
    }

    /// [`Request::Finish`] shorthand.
    pub fn finish(&self, id: SessionId) -> SubmitVerdict {
        self.submit(Request::Finish(id))
    }

    fn enqueue(&self, id: SessionId, cmd: Cmd) -> SubmitVerdict {
        let Some(shard) = self.shards.get(self.shard_of(id)) else {
            return SubmitVerdict::Shedding;
        };
        let Some(tx) = shard.tx.as_ref() else {
            return SubmitVerdict::Shedding;
        };
        // Count before sending so the worker can never observe a drain
        // below zero; undo on rejection.
        shard.pending.inc();
        // ordering: AcqRel keeps the depth add/sub pairs totally ordered with
        // the worker's drain decrement, and the Acquire load below reports a
        // retry hint no older than this rejected send.
        shard.depth.fetch_add(1, Ordering::AcqRel);
        self.metrics.queue_depth.inc();
        match tx.try_send(cmd) {
            Ok(()) => SubmitVerdict::Enqueued,
            Err(err) => {
                shard.pending.dec();
                shard.depth.fetch_sub(1, Ordering::AcqRel);
                self.metrics.queue_depth.dec();
                match err {
                    TrySendError::Full(_) => {
                        self.metrics.queue_full.inc();
                        if echowrite_trace::enabled() {
                            echowrite_trace::instant(
                                Stage::Serve,
                                "queue_full",
                                TICK_UNSET,
                                SmallStr::from_display(id.0),
                            );
                        }
                        SubmitVerdict::QueueFull {
                            retry_after_chunks: shard.depth.load(Ordering::Acquire).max(1),
                        }
                    }
                    TrySendError::Disconnected(_) => SubmitVerdict::Shedding,
                }
            }
        }
    }

    /// Blocks until every enqueued command has been processed (a condvar
    /// handshake — submissions arriving concurrently extend the wait).
    pub fn quiesce(&self) {
        for shard in &self.shards {
            shard.pending.wait_zero();
        }
    }

    /// Drains every currently available output event into `out`, returning
    /// how many were appended. Never blocks. Returns 0 after
    /// [`SessionManager::detach_events`] (the stream owner gets them).
    pub fn try_events(&self, out: &mut Vec<ServeEvent>) -> usize {
        let guard = self.events.lock().unwrap_or_else(|e| e.into_inner());
        let Some(rx) = guard.as_ref() else {
            return 0;
        };
        let before = out.len();
        while let Ok(ev) = rx.try_recv() {
            out.push(ev);
        }
        out.len() - before
    }

    /// Moves the event receiver out of the manager, for a dedicated
    /// dispatcher thread that wants *blocking* receives (e.g. the wire
    /// front-end's event router). After this, [`SessionManager::try_events`]
    /// always returns 0 and [`SessionManager::shutdown`] reports no
    /// residual events — the stream owner is responsible for the tail.
    /// Returns `None` if the stream was already detached.
    pub fn detach_events(&self) -> Option<EventStream> {
        let mut guard = self.events.lock().unwrap_or_else(|e| e.into_inner());
        guard.take().map(|rx| EventStream { rx })
    }

    /// The manager's metric registry.
    pub fn metrics(&self) -> &ServeMetrics {
        &self.metrics
    }

    /// Sessions currently live across all shards.
    pub fn live_sessions(&self) -> usize {
        self.admission.live()
    }

    /// Whether the admission controller is currently shedding new opens.
    pub fn is_shedding(&self) -> bool {
        self.admission.is_shedding()
    }

    /// The configured backlog deadline, if any.
    pub fn deadline_chunks(&self) -> Option<u64> {
        self.deadline_chunks
    }

    /// Drains the queues, stops every shard worker, and returns the final
    /// metrics snapshot together with every event still undrained in the
    /// channel. Workers send a command's events *before* acknowledging it
    /// to [`SessionManager::quiesce`], so after the quiesce every event of
    /// every processed command is in the channel — draining here means a
    /// caller that never polled [`SessionManager::try_events`] still loses
    /// no `Segment`/`Finished` across shutdown.
    pub fn shutdown(self) -> ShutdownReport {
        self.quiesce();
        let metrics = self.metrics.snapshot();
        let mut events = Vec::new();
        self.try_events(&mut events);
        drop(self);
        ShutdownReport { metrics, events }
    }
}

impl Drop for SessionManager {
    fn drop(&mut self) {
        // Closing the senders ends each worker's recv loop; then join.
        for shard in &mut self.shards {
            shard.tx = None;
        }
        for shard in &mut self.shards {
            if let Some(join) = shard.join.take() {
                let _ = join.join();
            }
        }
    }
}

/// One live session owned by a shard.
struct Slot {
    session: StreamingSession,
    /// Shard logical-clock stamp (samples processed) of the last command.
    last_active: u64,
}

/// A shard worker's whole state; `run` consumes it on its own thread.
struct Worker {
    engine: Arc<EchoWrite>,
    rx: Receiver<Cmd>,
    events: Sender<ServeEvent>,
    admission: Arc<AdmissionController>,
    metrics: Arc<ServeMetrics>,
    depth: Arc<AtomicUsize>,
    pushes_enqueued: Arc<AtomicU64>,
    pending: Arc<Pending>,
    deadline_chunks: Option<u64>,
    idle_timeout_samples: Option<u64>,
    /// Commands drained from the queue per batch round (1 = no batching).
    batch_max: usize,
    /// Live sessions pinned to this shard (ordered map: deterministic
    /// iteration for the reaper).
    sessions: BTreeMap<u64, Slot>,
    /// Finished/reaped session state kept for reuse — the arena that makes
    /// open/close cheap (a reset touches counters, not allocations).
    pool: Vec<StreamingSession>,
    /// Per-shard scratch for segment events.
    scratch: Vec<SegmentEvent>,
    /// Shard-shared DSP workspace: every push of a batch runs its STFT
    /// frames through this one arena, keeping the windowed-frame, FFT, and
    /// spectrum buffers hot across sessions.
    dsp_scratch: SharedDspScratch,
    /// Logical clock: total samples this shard has processed.
    clock_samples: u64,
    commands_done: u64,
    /// Mirror of [`ShardHandle::seq_log`] for the unique-seq regression
    /// test.
    #[cfg(test)]
    seq_log: Arc<Mutex<Vec<u64>>>,
}

impl Worker {
    /// Trace timestamp: the shard's logical sample clock, in audio-time µs.
    fn tick_us(&self) -> u64 {
        echowrite_trace::samples_to_us(self.clock_samples, self.engine.config().stft.sample_rate)
    }

    // echolint: entry
    fn run(mut self) {
        // Batched drain: block for the first command, then greedily pull up
        // to `batch_max − 1` more that are already queued. Commands execute
        // strictly in queue order with per-command accounting, so batching
        // changes cache behaviour (one shared DSP scratch pass over N
        // sessions' pushes) but never the output or the quiesce contract.
        let mut batch: Vec<Cmd> = Vec::with_capacity(self.batch_max);
        while let Ok(first) = self.rx.recv() {
            batch.push(first);
            while batch.len() < self.batch_max {
                match self.rx.try_recv() {
                    Ok(cmd) => batch.push(cmd),
                    Err(_) => break,
                }
            }
            self.metrics.batch_drains.inc();
            for cmd in batch.drain(..) {
                // ordering: AcqRel pairs with the manager's enqueue increment, so the
                // observed depth never dips below zero mid-handoff.
                self.depth.fetch_sub(1, Ordering::AcqRel);
                self.metrics.queue_depth.dec();
                match cmd {
                    Cmd::Open { id } => self.handle_open(id),
                    Cmd::Push { id, chunk, seq, timer } => self.handle_push(id, &chunk, seq, timer),
                    Cmd::Finish { id } => self.handle_finish(id),
                }
                self.commands_done += 1;
                if self.commands_done.is_multiple_of(REAP_SCAN_EVERY) {
                    self.reap_idle();
                }
                self.pending.dec();
            }
        }
    }

    fn handle_open(&mut self, id: u64) {
        if let Some(slot) = self.sessions.get_mut(&id) {
            // Re-open of a live id is idempotent: a wire client retrying an
            // `Open` whose ack was lost must not destroy its own in-flight
            // state (the old `reset()` here wiped the session). Touch the
            // idle clock, keep every buffer, and return the duplicate
            // admission slot reserved by submit().
            slot.last_active = self.clock_samples;
            self.admission.release();
            self.metrics.sessions_live.dec();
            self.metrics.sessions_reopened.inc();
            if echowrite_trace::enabled() {
                echowrite_trace::instant(
                    Stage::Serve,
                    "session_reopen",
                    self.tick_us(),
                    SmallStr::from_display(id),
                );
            }
            return;
        }
        let session = match self.pool.pop() {
            Some(mut s) => {
                s.reset(&self.engine);
                s
            }
            None => StreamingSession::new(&self.engine),
        };
        self.sessions.insert(id, Slot { session, last_active: self.clock_samples });
        self.metrics.sessions_opened.inc();
        if echowrite_trace::enabled() {
            echowrite_trace::instant(
                Stage::Serve,
                "session_open",
                self.tick_us(),
                SmallStr::from_display(id),
            );
        }
    }

    fn handle_push(&mut self, id: u64, chunk: &[f64], seq: u64, timer: Stopwatch) {
        #[cfg(test)]
        self.seq_log.lock().unwrap_or_else(|e| e.into_inner()).push(seq);
        let Some(slot) = self.sessions.get_mut(&id) else {
            self.metrics.orphan_commands.inc();
            return;
        };
        // Backlog lag: pushes enqueued to this shard after this one was.
        // ordering: Acquire pairs with the manager's AcqRel enqueue counter,
        // so lag counts every push enqueued before this command was sent.
        let lag = self
            .pushes_enqueued
            .load(Ordering::Acquire)
            .saturating_sub(seq.saturating_add(1));
        let degraded = self.deadline_chunks.is_some_and(|d| lag > d);
        self.scratch.clear();
        slot.session.push_events_shared(
            &self.engine,
            chunk,
            !degraded,
            &mut self.dsp_scratch,
            &mut self.scratch,
        );
        self.clock_samples += chunk.len() as u64;
        slot.last_active = self.clock_samples;
        self.metrics.pushes.inc();
        if degraded {
            self.metrics.pushes_degraded.inc();
        }
        self.metrics.events.add(self.scratch.len() as u64);
        let emitted = self.scratch.len();
        for segment in self.scratch.drain(..) {
            let _ = self.events.send(ServeEvent::Segment { session: SessionId(id), segment });
        }
        let wall_us = (timer.elapsed_ms() * 1_000.0) as u64;
        self.metrics.push_latency_us.observe(wall_us);
        if echowrite_trace::enabled() {
            // Span over the push's whole queue+process latency; the lag
            // counter exposes the backlog behind degraded decisions.
            echowrite_trace::span(
                Stage::Serve,
                if degraded { "push_degraded" } else { "push" },
                self.tick_us(),
                wall_us,
                emitted as f64,
            );
            echowrite_trace::counter(Stage::Serve, "backlog_chunks", self.tick_us(), lag as f64);
        }
    }

    fn handle_finish(&mut self, id: u64) {
        let Some(mut slot) = self.sessions.remove(&id) else {
            self.metrics.orphan_commands.inc();
            return;
        };
        self.scratch.clear();
        slot.session.finish_events(&self.engine, true, &mut self.scratch);
        self.metrics.events.add(self.scratch.len() as u64);
        for segment in self.scratch.drain(..) {
            let _ = self.events.send(ServeEvent::Segment { session: SessionId(id), segment });
        }
        let _ = self.events.send(ServeEvent::Finished { session: SessionId(id) });
        self.pool.push(slot.session);
        self.admission.release();
        self.metrics.sessions_finished.inc();
        self.metrics.sessions_live.dec();
        if echowrite_trace::enabled() {
            echowrite_trace::instant(
                Stage::Serve,
                "session_finish",
                self.tick_us(),
                SmallStr::from_display(id),
            );
        }
    }

    /// Reclaims sessions whose last command is older than the idle
    /// timeout on this shard's sample clock.
    fn reap_idle(&mut self) {
        let Some(timeout) = self.idle_timeout_samples else {
            return;
        };
        let clock = self.clock_samples;
        let stale: Vec<u64> = self
            .sessions
            .iter()
            .filter(|(_, slot)| clock.saturating_sub(slot.last_active) > timeout)
            .map(|(&id, _)| id)
            .collect();
        for id in stale {
            if let Some(slot) = self.sessions.remove(&id) {
                self.pool.push(slot.session);
                let _ = self.events.send(ServeEvent::Reaped { session: SessionId(id) });
                self.admission.release();
                self.metrics.sessions_reaped.inc();
                self.metrics.sessions_live.dec();
                if echowrite_trace::enabled() {
                    echowrite_trace::instant(
                        Stage::Serve,
                        "session_reaped",
                        self.tick_us(),
                        SmallStr::from_display(id),
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use echowrite::{EchoWriteConfig, Parallelism};

    fn manager(cfg: ServeConfig) -> SessionManager {
        let engine = EchoWrite::with_config(EchoWriteConfig::streaming());
        SessionManager::new(engine, cfg).expect("valid test config")
    }

    #[test]
    fn rejects_invalid_config() {
        let engine = EchoWrite::with_config(EchoWriteConfig::streaming());
        let bad = ServeConfig { shards: Parallelism::Threads(0), ..ServeConfig::default() };
        assert!(SessionManager::new(engine, bad).is_err());
    }

    #[test]
    fn open_push_finish_round_trip() {
        let m = manager(ServeConfig {
            shards: Parallelism::Threads(2),
            ..ServeConfig::default()
        });
        let id = SessionId(42);
        assert_eq!(m.open(id), SubmitVerdict::Enqueued);
        assert_eq!(m.push(id, &vec![0.0; 44_100]), SubmitVerdict::Enqueued);
        assert_eq!(m.finish(id), SubmitVerdict::Enqueued);
        m.quiesce();
        let mut events = Vec::new();
        m.try_events(&mut events);
        assert!(
            matches!(events.last(), Some(ServeEvent::Finished { session }) if *session == id),
            "expected Finished, got {events:?}"
        );
        let snap = m.shutdown().metrics;
        assert_eq!(snap.sessions_opened, 1);
        assert_eq!(snap.sessions_finished, 1);
        assert_eq!(snap.sessions_live, 0);
        assert_eq!(snap.pushes, 1);
        assert_eq!(snap.push_latency_count, 1);
    }

    #[test]
    fn admission_sheds_past_high_water() {
        let m = manager(ServeConfig {
            shards: Parallelism::Threads(1),
            max_sessions: 4,
            high_water: 2,
            ..ServeConfig::default()
        });
        assert_eq!(m.open(SessionId(1)), SubmitVerdict::Enqueued);
        assert_eq!(m.open(SessionId(2)), SubmitVerdict::Enqueued);
        assert_eq!(m.open(SessionId(3)), SubmitVerdict::Shedding);
        assert!(m.is_shedding());
        m.quiesce();
        assert_eq!(m.finish(SessionId(1)), SubmitVerdict::Enqueued);
        m.quiesce();
        // Hysteresis: low water for high_water=2 is 1, and 1 ≤ 1 clears it.
        assert_eq!(m.open(SessionId(3)), SubmitVerdict::Enqueued);
        assert_eq!(m.metrics().sessions_shed.get(), 1);
    }

    #[test]
    fn full_queue_returns_queue_full_not_block() {
        let m = manager(ServeConfig {
            shards: Parallelism::Threads(1),
            queue_capacity: 2,
            ..ServeConfig::default()
        });
        let id = SessionId(5);
        let _ = m.open(id);
        // Saturate the queue with a burst; at least one verdict must be
        // QueueFull (the worker cannot drain a 0.5 s chunk instantly).
        let chunk = vec![0.0; 22_050];
        let mut saw_full = false;
        for _ in 0..64 {
            match m.push(id, &chunk) {
                SubmitVerdict::QueueFull { retry_after_chunks } => {
                    assert!(retry_after_chunks >= 1);
                    saw_full = true;
                    break;
                }
                SubmitVerdict::Enqueued => {}
                SubmitVerdict::Shedding => panic!("push must not shed"),
            }
        }
        assert!(saw_full, "a capacity-2 queue must report QueueFull under a burst");
        assert!(m.metrics().queue_full.get() >= 1);
        m.quiesce();
    }

    #[test]
    fn orphan_commands_are_counted_not_fatal() {
        let m = manager(ServeConfig {
            shards: Parallelism::Threads(1),
            ..ServeConfig::default()
        });
        let _ = m.push(SessionId(99), &[0.0; 1024]);
        let _ = m.finish(SessionId(99));
        m.quiesce();
        assert_eq!(m.metrics().orphan_commands.get(), 2);
    }

    #[test]
    fn idle_reaper_reclaims_abandoned_sessions() {
        let m = manager(ServeConfig {
            shards: Parallelism::Threads(1),
            idle_timeout_samples: Some(10_000),
            ..ServeConfig::default()
        });
        let idle = SessionId(1);
        let busy = SessionId(2);
        let _ = m.open(idle);
        let _ = m.open(busy);
        let _ = m.push(idle, &[0.0; 1024]);
        // Push enough traffic through `busy` to trip a reap scan and age
        // `idle` past the timeout on the shard's sample clock.
        for _ in 0..(REAP_SCAN_EVERY + 8) {
            let _ = m.push(busy, &[0.0; 1024]);
            m.quiesce();
        }
        let mut events = Vec::new();
        m.try_events(&mut events);
        assert!(
            events
                .iter()
                .any(|e| matches!(e, ServeEvent::Reaped { session } if *session == idle)),
            "idle session must be reaped; events: {events:?}"
        );
        assert_eq!(m.metrics().sessions_reaped.get(), 1);
        assert_eq!(m.live_sessions(), 1, "busy session must survive");
    }

    #[test]
    fn reopen_of_live_id_is_idempotent() {
        let m = manager(ServeConfig {
            shards: Parallelism::Threads(1),
            ..ServeConfig::default()
        });
        let id = SessionId(8);
        let _ = m.open(id);
        let _ = m.push(id, &[0.0; 4096]);
        let _ = m.open(id); // duplicate open: a retry, not a restart
        m.quiesce();
        assert_eq!(m.live_sessions(), 1, "re-open must not leak an admission slot");
        assert_eq!(m.metrics().sessions_reopened.get(), 1);
        assert_eq!(m.metrics().sessions_opened.get(), 1, "a re-open is not a fresh open");
        let _ = m.finish(id);
        m.quiesce();
        assert_eq!(m.live_sessions(), 0);
    }

    /// Satellite regression (duplicate-`Open` semantics): a client that
    /// retries an `Open` after losing the ack must keep its in-flight
    /// recognition state — the transcript after `push → re-open → push →
    /// finish` must equal one continuous session's, bitwise.
    #[test]
    fn reopen_after_lost_ack_keeps_inflight_state() {
        use echowrite::StreamingRecognizer;
        // A deterministic non-silent signal long enough to freeze the
        // background and segment at least the session lead-in state.
        let audio: Vec<f64> = (0..6 * 4096)
            .map(|i| (f64::from(i as u32) * 0.013).sin() * 0.02)
            .collect();
        let (a, b) = audio.split_at(audio.len() / 2);

        // Oracle: one continuous recognizer over both halves.
        let engine = EchoWrite::with_config(EchoWriteConfig::streaming());
        let mut rec = StreamingRecognizer::new(&engine);
        let mut oracle: Vec<(usize, usize)> = Vec::new();
        for ev in rec.push(a) {
            oracle.push((ev.start_frame, ev.end_frame));
        }
        for ev in rec.push(b) {
            oracle.push((ev.start_frame, ev.end_frame));
        }
        for ev in rec.finish() {
            oracle.push((ev.start_frame, ev.end_frame));
        }

        let m = manager(ServeConfig {
            shards: Parallelism::Threads(1),
            ..ServeConfig::default()
        });
        let id = SessionId(3);
        assert_eq!(m.open(id), SubmitVerdict::Enqueued);
        assert_eq!(m.push(id, a), SubmitVerdict::Enqueued);
        // The ack was "lost": the client re-opens, then resumes pushing.
        assert_eq!(m.open(id), SubmitVerdict::Enqueued);
        assert_eq!(m.push(id, b), SubmitVerdict::Enqueued);
        assert_eq!(m.finish(id), SubmitVerdict::Enqueued);
        m.quiesce();
        let mut events = Vec::new();
        m.try_events(&mut events);
        let got: Vec<(usize, usize)> = events
            .iter()
            .filter_map(|e| match e {
                ServeEvent::Segment { segment, .. } => {
                    Some((segment.start_frame, segment.end_frame))
                }
                _ => None,
            })
            .collect();
        assert_eq!(got, oracle, "re-open wiped in-flight session state");
        assert_eq!(m.metrics().sessions_reopened.get(), 1);
    }

    /// Satellite regression (push `seq` race): submitters racing on one
    /// shard must never stamp two pushes with the same sequence number —
    /// a load-then-increment let both read the counter before either
    /// published, skewing the backlog lag the deadline policy degrades on.
    #[test]
    fn concurrent_pushes_reserve_unique_seqs_per_shard() {
        const THREADS: usize = 8;
        const PER_THREAD: usize = 64;
        let m = manager(ServeConfig {
            shards: Parallelism::Threads(1),
            // Deep enough that no push is rejected: the undo path is not
            // under test here, uniqueness of accepted reservations is.
            queue_capacity: THREADS * PER_THREAD + 8,
            ..ServeConfig::default()
        });
        let id = SessionId(1);
        assert_eq!(m.open(id), SubmitVerdict::Enqueued);
        m.quiesce();
        std::thread::scope(|s| {
            for _ in 0..THREADS {
                s.spawn(|| {
                    for _ in 0..PER_THREAD {
                        assert_eq!(m.push(id, &[0.0; 16]), SubmitVerdict::Enqueued);
                    }
                });
            }
        });
        m.quiesce();
        let mut seqs: Vec<u64> =
            m.shards[0].seq_log.lock().unwrap_or_else(|e| e.into_inner()).clone();
        seqs.sort_unstable();
        let want: Vec<u64> = (0..(THREADS * PER_THREAD) as u64).collect();
        assert_eq!(seqs, want, "duplicate or skipped push seqs on the shard");
    }

    /// Satellite regression (lossless shutdown): a caller that finishes a
    /// session and never polls `try_events` must still receive every
    /// `Segment` and `Finished` event from `shutdown()`.
    #[test]
    fn shutdown_returns_undrained_events() {
        let audio: Vec<f64> = (0..6 * 4096)
            .map(|i| (f64::from(i as u32) * 0.013).sin() * 0.02)
            .collect();
        let m = manager(ServeConfig {
            shards: Parallelism::Threads(2),
            ..ServeConfig::default()
        });
        let id = SessionId(11);
        assert_eq!(m.open(id), SubmitVerdict::Enqueued);
        assert_eq!(m.push(id, &audio), SubmitVerdict::Enqueued);
        assert_eq!(m.finish(id), SubmitVerdict::Enqueued);
        // Deliberately no try_events: everything must survive shutdown.
        let report = m.shutdown();
        assert!(
            report
                .events
                .iter()
                .any(|e| matches!(e, ServeEvent::Finished { session } if *session == id)),
            "Finished event lost across shutdown: {:?}",
            report.events
        );
        let emitted = report
            .events
            .iter()
            .filter(|e| matches!(e, ServeEvent::Segment { .. }))
            .count() as u64;
        assert_eq!(
            emitted, report.metrics.events,
            "every counted segment event must be returned by shutdown"
        );
    }

    /// `detach_events` hands the tail to the stream owner: `try_events`
    /// goes quiet, the blocking stream sees every event, and it
    /// disconnects (returns `None`) once the manager is gone.
    #[test]
    fn detached_event_stream_outlives_the_manager() {
        let m = manager(ServeConfig {
            shards: Parallelism::Threads(1),
            ..ServeConfig::default()
        });
        let stream = m.detach_events().expect("first detach succeeds");
        assert!(m.detach_events().is_none(), "second detach must fail");
        let id = SessionId(2);
        let _ = m.open(id);
        let _ = m.push(id, &[0.0; 4096]);
        let _ = m.finish(id);
        m.quiesce();
        let mut drained = Vec::new();
        assert_eq!(m.try_events(&mut drained), 0, "detached manager yields no events");
        let report = m.shutdown();
        assert!(report.events.is_empty(), "detached manager reports no residual events");
        // The stream still delivers the whole tail, then disconnects.
        let mut finished = false;
        while let Some(ev) = stream.recv() {
            if matches!(ev, ServeEvent::Finished { session } if session == id) {
                finished = true;
            }
        }
        assert!(finished, "detached stream must deliver the Finished event");
    }
}
