//! The wire frame grammar (DESIGN.md §6.9).
//!
//! Every frame is length-prefixed binary, all integers little-endian,
//! floats carried as raw IEEE-754 bit patterns (the wire path must be
//! bitwise-transparent to the DSP results):
//!
//! ```text
//! frame   := len:u32  kind:u8  payload
//! len     — byte length of `kind + payload` (so an empty-payload frame
//!           has len = 1); capped at MAX_FRAME_LEN
//! ```
//!
//! Request payloads (client → server) all begin with a *client-assigned*
//! `req:u64` correlation id (layout v2 — the id was added for the
//! observability plane's trace stitching, DESIGN.md §6.11):
//!
//! ```text
//! 0x01 Open      req:u64  session:u64
//! 0x02 Push      req:u64  session:u64  n:u32  samples:f64[n]
//! 0x03 Finish    req:u64  session:u64
//! 0x04 Export    req:u64  session:u64
//! 0x05 Import    req:u64  session:u64  n:u32  snapshot:u8[n]
//! ```
//!
//! Response payloads (server → client); verdict frames echo the request's
//! `req`, event frames carry none:
//!
//! ```text
//! 0x81 Enqueued   req:u64  session:u64
//! 0x82 QueueFull  req:u64  session:u64  retry_after_chunks:u64
//! 0x83 Shedding   req:u64  session:u64
//! 0x84 Segment    session:u64  start:u64  end:u64  flag:u8
//!                 [stroke:u8  distances:f64[6]  scores:f64[6]]  (flag = 1)
//! 0x85 Finished   session:u64
//! 0x86 Reaped     session:u64
//! 0x87 Exported   req:u64  session:u64  flag:u8  [n:u32  snapshot:u8[n]]  (flag = 1)
//! 0x88 Imported   req:u64  session:u64  ok:u8
//! ```
//!
//! `Enqueued`/`QueueFull`/`Shedding`/`Exported`/`Imported` are *verdict*
//! frames: exactly one is written per request, in request order, so a
//! client can correlate them positionally — the echoed `req` additionally
//! lets post-hoc tooling (flight-recorder dumps, stitched Chrome traces)
//! correlate without observing the order. `Segment`/`Finished`/`Reaped`
//! are *event* frames routed from the serve event channel; they interleave
//! arbitrarily with verdicts but carry their session id.
//!
//! `Export`/`Import` carry `echowrite-snapshot` session checkpoints for
//! cross-process migration: an `Export` removes the session from the
//! serving manager and returns its encoded snapshot (flag = 0 when the id
//! is unknown); an `Import` installs previously exported bytes under the
//! id (ok = 0 when the id is live, admission sheds it, or the bytes fail
//! to decode under the server's engine). Snapshots are a few hundred KiB
//! at most, comfortably under [`MAX_FRAME_LEN`].
//!
//! Anything that violates the grammar — a length past [`MAX_FRAME_LEN`], an
//! unknown kind byte, a payload whose size disagrees with its kind — is a
//! [`FrameError`]: the connection is counted malformed and closed rather
//! than resynchronized (a desynced length-prefixed stream cannot be trusted
//! again).

use echowrite_dtw::Classification;
use echowrite_gesture::stroke::STROKE_COUNT;
use echowrite_gesture::Stroke;
use echowrite_serve::{ServeEvent, SessionId, SubmitVerdict};

/// Hard cap on `len` (bytes after the length prefix). Generous for audio
/// pushes — 2 MiB is ~26 s of 8-byte samples at 10 kHz — while bounding
/// what a malformed or hostile length prefix can make the server buffer.
pub const MAX_FRAME_LEN: usize = 2 * 1024 * 1024;

/// A request frame, client → server.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Start (or idempotently re-open) a session.
    Open {
        /// The session to open.
        session: u64,
    },
    /// Append audio samples to a live session.
    Push {
        /// The session pushed to.
        session: u64,
        /// The audio chunk, bit-exact f64 samples.
        samples: Vec<f64>,
    },
    /// End a session, flushing every remaining segment.
    Finish {
        /// The session to finish.
        session: u64,
    },
    /// Remove the session from the server and return its encoded
    /// `echowrite-snapshot` checkpoint (migration source side).
    Export {
        /// The session to export.
        session: u64,
    },
    /// Install a previously exported checkpoint under the session id
    /// (migration destination side).
    Import {
        /// The session to install.
        session: u64,
        /// The exported snapshot bytes.
        snapshot: Vec<u8>,
    },
}

impl Request {
    /// The session id every request variant carries.
    pub fn session(&self) -> u64 {
        match self {
            Request::Open { session }
            | Request::Push { session, .. }
            | Request::Finish { session }
            | Request::Export { session }
            | Request::Import { session, .. } => *session,
        }
    }
}

/// A response frame, server → client.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Verdict: the request was accepted into its shard queue.
    Enqueued {
        /// Echo of the request's client-assigned correlation id.
        request_id: u64,
        /// Session the verdict answers for.
        session: u64,
    },
    /// Verdict: the shard queue was full; retry after roughly this many
    /// queued commands have drained.
    QueueFull {
        /// Echo of the request's client-assigned correlation id.
        request_id: u64,
        /// Session the verdict answers for.
        session: u64,
        /// Queue depth of the rejecting shard.
        retry_after_chunks: u64,
    },
    /// Verdict: rejected by admission control (or the server is shutting
    /// down).
    Shedding {
        /// Echo of the request's client-assigned correlation id.
        request_id: u64,
        /// Session the verdict answers for.
        session: u64,
    },
    /// Event: a decided stroke segment. `classification` is `None` when
    /// the producing push was degraded by a missed deadline.
    Segment {
        /// Session that produced the segment.
        session: u64,
        /// Segment start, in the session's absolute frame clock.
        start_frame: u64,
        /// Segment end, in the session's absolute frame clock.
        end_frame: u64,
        /// DTW classification, absent for degraded pushes.
        classification: Option<Classification>,
    },
    /// Event: the session finished; all its segments have been emitted.
    Finished {
        /// The finished session.
        session: u64,
    },
    /// Event: the idle reaper reclaimed the session.
    Reaped {
        /// The reaped session.
        session: u64,
    },
    /// Verdict for [`Request::Export`]: the session's snapshot bytes, or
    /// `None` when the id was unknown to the server.
    Exported {
        /// Echo of the request's client-assigned correlation id.
        request_id: u64,
        /// Session the verdict answers for.
        session: u64,
        /// The encoded snapshot; `None` for an unknown id.
        snapshot: Option<Vec<u8>>,
    },
    /// Verdict for [`Request::Import`]: whether the snapshot was
    /// installed.
    Imported {
        /// Echo of the request's client-assigned correlation id.
        request_id: u64,
        /// Session the verdict answers for.
        session: u64,
        /// `false` when the id is live, admission sheds it, or the bytes
        /// fail to decode under the server's engine.
        ok: bool,
    },
}

impl Response {
    /// Whether this is a verdict frame (one per request, in request
    /// order), as opposed to an asynchronous event frame.
    pub fn is_verdict(&self) -> bool {
        matches!(
            self,
            Response::Enqueued { .. }
                | Response::QueueFull { .. }
                | Response::Shedding { .. }
                | Response::Exported { .. }
                | Response::Imported { .. }
        )
    }

    /// Maps a submit verdict to its wire frame for `session`, echoing the
    /// request's correlation id.
    pub fn from_verdict(request_id: u64, session: u64, verdict: SubmitVerdict) -> Response {
        match verdict {
            SubmitVerdict::Enqueued => Response::Enqueued { request_id, session },
            SubmitVerdict::QueueFull { retry_after_chunks } => Response::QueueFull {
                request_id,
                session,
                retry_after_chunks: retry_after_chunks as u64,
            },
            SubmitVerdict::Shedding => Response::Shedding { request_id, session },
        }
    }

    /// Maps a serve event to its wire frame.
    pub fn from_event(event: ServeEvent) -> Response {
        match event {
            ServeEvent::Segment { session, segment } => Response::Segment {
                session: session.0,
                start_frame: segment.start_frame as u64,
                end_frame: segment.end_frame as u64,
                classification: segment.classification,
            },
            ServeEvent::Finished { session } => Response::Finished { session: session.0 },
            ServeEvent::Reaped { session } => Response::Reaped { session: session.0 },
        }
    }

    /// The session id of the frame. Mirrors [`SessionId`] on the serve
    /// side.
    pub fn session(&self) -> SessionId {
        match self {
            Response::Enqueued { session, .. }
            | Response::QueueFull { session, .. }
            | Response::Shedding { session, .. }
            | Response::Segment { session, .. }
            | Response::Finished { session }
            | Response::Reaped { session }
            | Response::Exported { session, .. }
            | Response::Imported { session, .. } => SessionId(*session),
        }
    }

    /// The echoed correlation id for verdict frames, `None` for events.
    pub fn request_id(&self) -> Option<u64> {
        match self {
            Response::Enqueued { request_id, .. }
            | Response::QueueFull { request_id, .. }
            | Response::Shedding { request_id, .. }
            | Response::Exported { request_id, .. }
            | Response::Imported { request_id, .. } => Some(*request_id),
            Response::Segment { .. } | Response::Finished { .. } | Response::Reaped { .. } => None,
        }
    }
}

/// Why a byte stream failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The length prefix exceeds [`MAX_FRAME_LEN`] or is zero.
    BadLength(usize),
    /// The kind byte names no known frame.
    UnknownKind(u8),
    /// The payload size disagrees with the frame kind's grammar.
    Truncated {
        /// The offending frame's kind byte.
        kind: u8,
    },
    /// A stroke byte outside the 6-stroke alphabet.
    BadStroke(u8),
    /// A boolean flag byte that is neither 0 nor 1.
    BadFlag(u8),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::BadLength(n) => write!(f, "frame length {n} outside 1..={MAX_FRAME_LEN}"),
            FrameError::UnknownKind(k) => write!(f, "unknown frame kind {k:#04x}"),
            FrameError::Truncated { kind } => {
                write!(f, "payload size disagrees with frame kind {kind:#04x}")
            }
            FrameError::BadStroke(b) => write!(f, "stroke byte {b} outside the 6-stroke alphabet"),
            FrameError::BadFlag(b) => write!(f, "flag byte {b} is neither 0 nor 1"),
        }
    }
}

impl std::error::Error for FrameError {}

const KIND_OPEN: u8 = 0x01;
const KIND_PUSH: u8 = 0x02;
const KIND_FINISH: u8 = 0x03;
const KIND_EXPORT: u8 = 0x04;
const KIND_IMPORT: u8 = 0x05;
const KIND_ENQUEUED: u8 = 0x81;
const KIND_QUEUE_FULL: u8 = 0x82;
const KIND_SHEDDING: u8 = 0x83;
const KIND_SEGMENT: u8 = 0x84;
const KIND_FINISHED: u8 = 0x85;
const KIND_REAPED: u8 = 0x86;
const KIND_EXPORTED: u8 = 0x87;
const KIND_IMPORTED: u8 = 0x88;

/// Little-endian payload writer over a growable byte buffer.
fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_bits().to_le_bytes());
}

/// Little-endian payload cursor; every read is length-checked so a
/// truncated payload surfaces as an error, never a panic.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
    kind: u8,
}

impl<'a> Cursor<'a> {
    fn new(kind: u8, buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0, kind }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], FrameError> {
        let end = self.pos.checked_add(n).ok_or(FrameError::Truncated { kind: self.kind })?;
        let Some(slice) = self.buf.get(self.pos..end) else {
            return Err(FrameError::Truncated { kind: self.kind });
        };
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, FrameError> {
        let b = self.take(1)?;
        b.first().copied().ok_or(FrameError::Truncated { kind: self.kind })
    }

    fn u32(&mut self) -> Result<u32, FrameError> {
        let b = self.take(4)?;
        let mut a = [0u8; 4];
        a.copy_from_slice(b);
        Ok(u32::from_le_bytes(a))
    }

    fn u64(&mut self) -> Result<u64, FrameError> {
        let b = self.take(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_le_bytes(a))
    }

    fn f64(&mut self) -> Result<f64, FrameError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// The payload must be fully consumed: trailing bytes mean the sender
    /// and receiver disagree on the grammar.
    fn done(&self) -> Result<(), FrameError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(FrameError::Truncated { kind: self.kind })
        }
    }
}

/// Appends the encoded frame (length prefix included) to `out`.
fn encode_frame(out: &mut Vec<u8>, kind: u8, payload: impl FnOnce(&mut Vec<u8>)) {
    let len_at = out.len();
    put_u32(out, 0); // patched below
    out.push(kind);
    payload(out);
    let len = (out.len() - len_at - 4) as u32;
    if let Some(slot) = out.get_mut(len_at..len_at + 4) {
        slot.copy_from_slice(&len.to_le_bytes());
    }
}

/// Appends `request` to `out` in wire encoding under the client-assigned
/// correlation id `request_id` (echoed by the answering verdict frame).
pub fn encode_request(out: &mut Vec<u8>, request: &Request, request_id: u64) {
    match request {
        Request::Open { session } => encode_frame(out, KIND_OPEN, |p| {
            put_u64(p, request_id);
            put_u64(p, *session);
        }),
        Request::Push { session, samples } => encode_frame(out, KIND_PUSH, |p| {
            put_u64(p, request_id);
            put_u64(p, *session);
            put_u32(p, samples.len() as u32);
            for &s in samples {
                put_f64(p, s);
            }
        }),
        Request::Finish { session } => encode_frame(out, KIND_FINISH, |p| {
            put_u64(p, request_id);
            put_u64(p, *session);
        }),
        Request::Export { session } => encode_frame(out, KIND_EXPORT, |p| {
            put_u64(p, request_id);
            put_u64(p, *session);
        }),
        Request::Import { session, snapshot } => encode_frame(out, KIND_IMPORT, |p| {
            put_u64(p, request_id);
            put_u64(p, *session);
            put_u32(p, snapshot.len() as u32);
            p.extend_from_slice(snapshot);
        }),
    }
}

/// Appends `response` to `out` in wire encoding.
pub fn encode_response(out: &mut Vec<u8>, response: &Response) {
    match response {
        Response::Enqueued { request_id, session } => {
            encode_frame(out, KIND_ENQUEUED, |p| {
                put_u64(p, *request_id);
                put_u64(p, *session);
            });
        }
        Response::QueueFull { request_id, session, retry_after_chunks } => {
            encode_frame(out, KIND_QUEUE_FULL, |p| {
                put_u64(p, *request_id);
                put_u64(p, *session);
                put_u64(p, *retry_after_chunks);
            });
        }
        Response::Shedding { request_id, session } => {
            encode_frame(out, KIND_SHEDDING, |p| {
                put_u64(p, *request_id);
                put_u64(p, *session);
            });
        }
        Response::Segment { session, start_frame, end_frame, classification } => {
            encode_frame(out, KIND_SEGMENT, |p| {
                put_u64(p, *session);
                put_u64(p, *start_frame);
                put_u64(p, *end_frame);
                match classification {
                    Some(cls) => {
                        p.push(1);
                        p.push(cls.stroke.index() as u8);
                        for &d in &cls.distances {
                            put_f64(p, d);
                        }
                        for &s in &cls.scores {
                            put_f64(p, s);
                        }
                    }
                    None => p.push(0),
                }
            });
        }
        Response::Finished { session } => {
            encode_frame(out, KIND_FINISHED, |p| put_u64(p, *session));
        }
        Response::Reaped { session } => encode_frame(out, KIND_REAPED, |p| put_u64(p, *session)),
        Response::Exported { request_id, session, snapshot } => {
            encode_frame(out, KIND_EXPORTED, |p| {
                put_u64(p, *request_id);
                put_u64(p, *session);
                match snapshot {
                    Some(bytes) => {
                        p.push(1);
                        put_u32(p, bytes.len() as u32);
                        p.extend_from_slice(bytes);
                    }
                    None => p.push(0),
                }
            });
        }
        Response::Imported { request_id, session, ok } => {
            encode_frame(out, KIND_IMPORTED, |p| {
                put_u64(p, *request_id);
                put_u64(p, *session);
                p.push(u8::from(*ok));
            });
        }
    }
}

fn decode_request(kind: u8, payload: &[u8]) -> Result<(u64, Request), FrameError> {
    let mut c = Cursor::new(kind, payload);
    let request_id = match kind {
        KIND_OPEN | KIND_PUSH | KIND_FINISH | KIND_EXPORT | KIND_IMPORT => c.u64()?,
        other => return Err(FrameError::UnknownKind(other)),
    };
    let req = match kind {
        KIND_OPEN => Request::Open { session: c.u64()? },
        KIND_PUSH => {
            let session = c.u64()?;
            let n = c.u32()? as usize;
            // The sample count must agree with the remaining payload size
            // before anything is allocated for it.
            if payload.len() != 8 + 8 + 4 + n * 8 {
                return Err(FrameError::Truncated { kind });
            }
            let mut samples = Vec::with_capacity(n);
            for _ in 0..n {
                samples.push(c.f64()?);
            }
            Request::Push { session, samples }
        }
        KIND_FINISH => Request::Finish { session: c.u64()? },
        KIND_EXPORT => Request::Export { session: c.u64()? },
        KIND_IMPORT => {
            let session = c.u64()?;
            let n = c.u32()? as usize;
            // Like Push: the byte count must agree with the remaining
            // payload size before anything is allocated for it.
            if payload.len() != 8 + 8 + 4 + n {
                return Err(FrameError::Truncated { kind });
            }
            let snapshot = c.take(n)?.to_vec();
            Request::Import { session, snapshot }
        }
        other => return Err(FrameError::UnknownKind(other)),
    };
    c.done()?;
    Ok((request_id, req))
}

fn decode_response(kind: u8, payload: &[u8]) -> Result<Response, FrameError> {
    let mut c = Cursor::new(kind, payload);
    let resp = match kind {
        KIND_ENQUEUED => Response::Enqueued { request_id: c.u64()?, session: c.u64()? },
        KIND_QUEUE_FULL => Response::QueueFull {
            request_id: c.u64()?,
            session: c.u64()?,
            retry_after_chunks: c.u64()?,
        },
        KIND_SHEDDING => Response::Shedding { request_id: c.u64()?, session: c.u64()? },
        KIND_SEGMENT => {
            let session = c.u64()?;
            let start_frame = c.u64()?;
            let end_frame = c.u64()?;
            let classification = match c.u8()? {
                0 => None,
                1 => {
                    let stroke_byte = c.u8()?;
                    let Some(stroke) = Stroke::from_index(stroke_byte as usize) else {
                        return Err(FrameError::BadStroke(stroke_byte));
                    };
                    let mut distances = [0.0f64; STROKE_COUNT];
                    for d in &mut distances {
                        *d = c.f64()?;
                    }
                    let mut scores = [0.0f64; STROKE_COUNT];
                    for s in &mut scores {
                        *s = c.f64()?;
                    }
                    Some(Classification { stroke, distances, scores })
                }
                other => return Err(FrameError::BadFlag(other)),
            };
            Response::Segment { session, start_frame, end_frame, classification }
        }
        KIND_FINISHED => Response::Finished { session: c.u64()? },
        KIND_REAPED => Response::Reaped { session: c.u64()? },
        KIND_EXPORTED => {
            let request_id = c.u64()?;
            let session = c.u64()?;
            let snapshot = match c.u8()? {
                0 => None,
                1 => {
                    let n = c.u32()? as usize;
                    if payload.len() != 8 + 8 + 1 + 4 + n {
                        return Err(FrameError::Truncated { kind });
                    }
                    Some(c.take(n)?.to_vec())
                }
                other => return Err(FrameError::BadFlag(other)),
            };
            Response::Exported { request_id, session, snapshot }
        }
        KIND_IMPORTED => {
            let request_id = c.u64()?;
            let session = c.u64()?;
            let ok = match c.u8()? {
                0 => false,
                1 => true,
                other => return Err(FrameError::BadFlag(other)),
            };
            Response::Imported { request_id, session, ok }
        }
        other => return Err(FrameError::UnknownKind(other)),
    };
    c.done()?;
    Ok(resp)
}

/// An incremental frame decoder over an arbitrarily fragmented byte
/// stream: feed it whatever a socket read returned — one byte or a dozen
/// frames — and pop complete frames as they materialize. Decoding is a
/// pure function of the byte sequence, so any fragmentation of the same
/// stream decodes to the same frames (property-tested in
/// `tests/framing.rs`).
#[derive(Debug, Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    /// Bytes of `buf` already consumed by popped frames; compacted
    /// wholesale once everything buffered has been consumed.
    pos: usize,
}

impl FrameDecoder {
    /// An empty decoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends raw socket bytes to the internal buffer.
    pub fn extend(&mut self, bytes: &[u8]) {
        // Compact before growing: everything before `pos` is dead.
        if self.pos > 0 {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet consumed by a popped frame.
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Pops the next complete raw frame as `(kind, payload)`, or `None`
    /// if the buffer holds only a partial frame.
    fn next_raw(&mut self) -> Result<Option<(u8, std::ops::Range<usize>)>, FrameError> {
        let avail = &self.buf[self.pos..];
        let Some(prefix) = avail.get(..4) else {
            return Ok(None);
        };
        let mut a = [0u8; 4];
        a.copy_from_slice(prefix);
        let len = u32::from_le_bytes(a) as usize;
        if len == 0 || len > MAX_FRAME_LEN {
            return Err(FrameError::BadLength(len));
        }
        let Some(frame) = avail.get(4..4 + len) else {
            return Ok(None);
        };
        let Some(&kind) = frame.first() else {
            return Err(FrameError::BadLength(len));
        };
        let payload = (self.pos + 5)..(self.pos + 4 + len);
        self.pos += 4 + len;
        Ok(Some((kind, payload)))
    }

    /// Pops the next complete request frame as `(request_id, request)`,
    /// `Ok(None)` when more bytes are needed.
    ///
    /// # Errors
    ///
    /// Any grammar violation; the stream must be abandoned afterwards.
    pub fn next_request(&mut self) -> Result<Option<(u64, Request)>, FrameError> {
        match self.next_raw()? {
            Some((kind, payload)) => {
                let payload = self.buf.get(payload).unwrap_or(&[]);
                decode_request(kind, payload).map(Some)
            }
            None => Ok(None),
        }
    }

    /// Pops the next complete response frame, `Ok(None)` when more bytes
    /// are needed.
    ///
    /// # Errors
    ///
    /// Any grammar violation; the stream must be abandoned afterwards.
    pub fn next_response(&mut self) -> Result<Option<Response>, FrameError> {
        match self.next_raw()? {
            Some((kind, payload)) => {
                let payload = self.buf.get(payload).unwrap_or(&[]);
                decode_response(kind, payload).map(Some)
            }
            None => Ok(None),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_request(req: &Request, request_id: u64) -> (u64, Request) {
        let mut bytes = Vec::new();
        encode_request(&mut bytes, req, request_id);
        let mut dec = FrameDecoder::new();
        dec.extend(&bytes);
        let got = dec.next_request().expect("valid frame").expect("complete frame");
        assert_eq!(dec.buffered(), 0);
        got
    }

    fn roundtrip_response(resp: &Response) -> Response {
        let mut bytes = Vec::new();
        encode_response(&mut bytes, resp);
        let mut dec = FrameDecoder::new();
        dec.extend(&bytes);
        let got = dec.next_response().expect("valid frame").expect("complete frame");
        assert_eq!(dec.buffered(), 0);
        got
    }

    #[test]
    fn request_frames_round_trip() {
        for (i, req) in [
            Request::Open { session: 7 },
            Request::Push { session: u64::MAX, samples: vec![0.0, -1.5, f64::MIN_POSITIVE] },
            Request::Push { session: 0, samples: Vec::new() },
            Request::Finish { session: 42 },
            Request::Export { session: 17 },
            Request::Import { session: 17, snapshot: vec![0x45, 0x57, 0x53, 0x4e, 0x01] },
            Request::Import { session: 0, snapshot: Vec::new() },
        ]
        .into_iter()
        .enumerate()
        {
            // The correlation id rides the header untouched, including the
            // extremes.
            let id = [0u64, 1, u64::MAX][i % 3];
            assert_eq!(roundtrip_request(&req, id), (id, req));
        }
    }

    #[test]
    fn response_frames_round_trip() {
        let cls = Classification {
            stroke: Stroke::S5,
            distances: [0.25, 1.0, -0.0, 3.5e-300, f64::MAX, 6.0],
            scores: [0.1, 0.2, 0.3, 0.15, 0.15, 0.1],
        };
        for resp in [
            Response::Enqueued { request_id: 901, session: 1 },
            Response::QueueFull { request_id: 902, session: 2, retry_after_chunks: 9 },
            Response::Shedding { request_id: u64::MAX, session: 3 },
            Response::Segment {
                session: 4,
                start_frame: 100,
                end_frame: 180,
                classification: Some(cls),
            },
            Response::Segment { session: 5, start_frame: 0, end_frame: 1, classification: None },
            Response::Finished { session: 6 },
            Response::Reaped { session: 7 },
            Response::Exported { request_id: 903, session: 8, snapshot: Some(vec![1, 2, 3, 255]) },
            Response::Exported { request_id: 0, session: 9, snapshot: None },
            Response::Imported { request_id: 904, session: 10, ok: true },
            Response::Imported { request_id: 905, session: 11, ok: false },
        ] {
            assert_eq!(roundtrip_response(&resp), resp);
        }
    }

    #[test]
    fn verdicts_echo_request_ids_and_events_carry_none() {
        assert_eq!(Response::Enqueued { request_id: 7, session: 1 }.request_id(), Some(7));
        assert_eq!(
            Response::Shedding { request_id: 8, session: 1 }.request_id(),
            Some(8)
        );
        assert_eq!(Response::Finished { session: 1 }.request_id(), None);
        assert_eq!(Response::Reaped { session: 1 }.request_id(), None);
    }

    #[test]
    fn snapshot_frames_are_verdicts() {
        assert!(Response::Exported { request_id: 1, session: 1, snapshot: None }.is_verdict());
        assert!(Response::Imported { request_id: 2, session: 1, ok: false }.is_verdict());
        assert!(!Response::Reaped { session: 1 }.is_verdict());
    }

    #[test]
    fn malformed_snapshot_frames_are_rejected() {
        // Import whose byte count disagrees with the payload size.
        let mut payload = Vec::new();
        payload.push(KIND_IMPORT);
        payload.extend_from_slice(&77u64.to_le_bytes()); // request id
        payload.extend_from_slice(&1u64.to_le_bytes());
        payload.extend_from_slice(&1000u32.to_le_bytes()); // claims 1000 bytes
        payload.push(0xab); // carries 1
        let mut dec = FrameDecoder::new();
        dec.extend(&(payload.len() as u32).to_le_bytes());
        dec.extend(&payload);
        assert!(matches!(dec.next_request(), Err(FrameError::Truncated { kind: KIND_IMPORT })));

        // Exported with a flag byte outside {0, 1}.
        let mut payload = Vec::new();
        payload.push(KIND_EXPORTED);
        payload.extend_from_slice(&77u64.to_le_bytes()); // request id
        payload.extend_from_slice(&1u64.to_le_bytes());
        payload.push(7);
        let mut dec = FrameDecoder::new();
        dec.extend(&(payload.len() as u32).to_le_bytes());
        dec.extend(&payload);
        assert!(matches!(dec.next_response(), Err(FrameError::BadFlag(7))));

        // Exported whose byte count disagrees with the payload size.
        let mut payload = Vec::new();
        payload.push(KIND_EXPORTED);
        payload.extend_from_slice(&77u64.to_le_bytes()); // request id
        payload.extend_from_slice(&1u64.to_le_bytes());
        payload.push(1);
        payload.extend_from_slice(&9u32.to_le_bytes()); // claims 9 bytes
        payload.push(0xcd); // carries 1
        let mut dec = FrameDecoder::new();
        dec.extend(&(payload.len() as u32).to_le_bytes());
        dec.extend(&payload);
        assert!(matches!(
            dec.next_response(),
            Err(FrameError::Truncated { kind: KIND_EXPORTED })
        ));

        // Imported with an ok byte outside {0, 1}.
        let mut payload = Vec::new();
        payload.push(KIND_IMPORTED);
        payload.extend_from_slice(&77u64.to_le_bytes()); // request id
        payload.extend_from_slice(&1u64.to_le_bytes());
        payload.push(2);
        let mut dec = FrameDecoder::new();
        dec.extend(&(payload.len() as u32).to_le_bytes());
        dec.extend(&payload);
        assert!(matches!(dec.next_response(), Err(FrameError::BadFlag(2))));
    }

    #[test]
    fn nan_sample_bits_survive_the_wire() {
        // f64 equality would pass NaN through as "not equal"; the wire
        // contract is on the *bits*.
        let pattern = f64::from_bits(0x7ff8_dead_beef_0001);
        let mut bytes = Vec::new();
        encode_request(&mut bytes, &Request::Push { session: 1, samples: vec![pattern] }, 1);
        let mut dec = FrameDecoder::new();
        dec.extend(&bytes);
        let Ok(Some((_, Request::Push { samples, .. }))) = dec.next_request() else {
            panic!("expected a push frame");
        };
        assert_eq!(samples[0].to_bits(), pattern.to_bits());
    }

    #[test]
    fn partial_frame_waits_for_more_bytes() {
        let mut bytes = Vec::new();
        encode_request(&mut bytes, &Request::Open { session: 9 }, 31);
        let mut dec = FrameDecoder::new();
        for &b in &bytes[..bytes.len() - 1] {
            dec.extend(&[b]);
            assert_eq!(dec.next_request().expect("no error on partial"), None);
        }
        dec.extend(&bytes[bytes.len() - 1..]);
        assert_eq!(
            dec.next_request().expect("valid"),
            Some((31, Request::Open { session: 9 }))
        );
    }

    #[test]
    fn malformed_frames_are_rejected() {
        // Oversized length prefix.
        let mut dec = FrameDecoder::new();
        dec.extend(&(MAX_FRAME_LEN as u32 + 1).to_le_bytes());
        dec.extend(&[0u8; 8]);
        assert!(matches!(dec.next_request(), Err(FrameError::BadLength(_))));

        // Zero length.
        let mut dec = FrameDecoder::new();
        dec.extend(&0u32.to_le_bytes());
        assert!(matches!(dec.next_request(), Err(FrameError::BadLength(0))));

        // Unknown kind.
        let mut dec = FrameDecoder::new();
        dec.extend(&9u32.to_le_bytes());
        dec.extend(&[0x77]);
        dec.extend(&7u64.to_le_bytes());
        assert!(matches!(dec.next_request(), Err(FrameError::UnknownKind(0x77))));

        // Truncated payload: an Open with a 4-byte session id.
        let mut dec = FrameDecoder::new();
        dec.extend(&5u32.to_le_bytes());
        dec.extend(&[0x01]);
        dec.extend(&[0u8; 4]);
        assert!(matches!(dec.next_request(), Err(FrameError::Truncated { kind: 0x01 })));

        // Push whose sample count disagrees with the payload size.
        let mut payload = Vec::new();
        payload.push(KIND_PUSH);
        payload.extend_from_slice(&77u64.to_le_bytes()); // request id
        payload.extend_from_slice(&1u64.to_le_bytes());
        payload.extend_from_slice(&1000u32.to_le_bytes()); // claims 1000 samples
        payload.extend_from_slice(&0f64.to_bits().to_le_bytes()); // carries 1
        let mut dec = FrameDecoder::new();
        dec.extend(&(payload.len() as u32).to_le_bytes());
        dec.extend(&payload);
        assert!(matches!(dec.next_request(), Err(FrameError::Truncated { kind: KIND_PUSH })));

        // Bad stroke byte in a Segment.
        let mut seg = Vec::new();
        encode_response(
            &mut seg,
            &Response::Segment {
                session: 1,
                start_frame: 0,
                end_frame: 1,
                classification: Some(Classification {
                    stroke: Stroke::S1,
                    distances: [0.0; STROKE_COUNT],
                    scores: [0.0; STROKE_COUNT],
                }),
            },
        );
        seg[4 + 1 + 24 + 1] = 6; // stroke byte → outside the alphabet
        let mut dec = FrameDecoder::new();
        dec.extend(&seg);
        assert!(matches!(dec.next_response(), Err(FrameError::BadStroke(6))));
    }

    #[test]
    fn pipelined_frames_pop_in_order() {
        let mut bytes = Vec::new();
        encode_request(&mut bytes, &Request::Open { session: 1 }, 10);
        encode_request(&mut bytes, &Request::Push { session: 1, samples: vec![1.0, 2.0] }, 11);
        encode_request(&mut bytes, &Request::Finish { session: 1 }, 12);
        let mut dec = FrameDecoder::new();
        dec.extend(&bytes);
        assert!(matches!(dec.next_request(), Ok(Some((10, Request::Open { session: 1 })))));
        assert!(matches!(dec.next_request(), Ok(Some((11, Request::Push { .. })))));
        assert!(matches!(dec.next_request(), Ok(Some((12, Request::Finish { session: 1 })))));
        assert!(matches!(dec.next_request(), Ok(None)));
    }
}
