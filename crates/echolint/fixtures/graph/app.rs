//! Graph fixture: the `app` crate — an entry point, a recursion cycle, and
//! a trait-object dispatch onto shadowed method names.

/// A pipeline stage behind a trait object.
pub trait Stage {
    /// Applies the stage to one sample.
    fn apply(&self, x: f64) -> f64;
}

/// The identity stage — its `apply` never panics.
pub struct Echo;

impl Stage for Echo {
    fn apply(&self, x: f64) -> f64 {
        x
    }
}

/// Declared entry point: seeds from `util`, dispatches through the trait
/// object, then descends into the recursive pair.
// echolint: entry
pub fn run(stage: &dyn Stage, input: &[f64]) -> f64 {
    let seeded = util::prepare(input);
    descend(stage.apply(seeded))
}

/// Half of a mutual recursion — the cycle the BFS must terminate through.
fn descend(x: f64) -> f64 {
    if x > 1.0 {
        rebound(x - 1.0)
    } else {
        util::finish(x)
    }
}

/// The other half of the cycle.
fn rebound(x: f64) -> f64 {
    descend(x * 0.5)
}
