//! Figs. 4–6 — the learnability-study workload.
//!
//! One iteration = simulating the full 6-participant, 15-minute
//! input-scheme study.

use criterion::{criterion_group, criterion_main, Criterion};
use echowrite_sim::experiments::{learnability, Scale};
use std::hint::black_box;

fn bench_study(c: &mut Criterion) {
    c.bench_function("fig4_6_learnability_study", |b| {
        b.iter(|| learnability::study(black_box(Scale::quick())))
    });
}

fn bench_tables(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig4_6_tables");
    g.bench_function("fig4", |b| b.iter(|| learnability::fig4(black_box(Scale::quick()))));
    g.bench_function("fig5", |b| b.iter(|| learnability::fig5(black_box(Scale::quick()))));
    g.bench_function("fig6", |b| b.iter(|| learnability::fig6(black_box(Scale::quick()))));
    g.finish();
}

criterion_group!(benches, bench_study, bench_tables);
criterion_main!(benches);
