//! Runtime-dispatched SIMD kernels for the pipeline's hottest inner loops.
//!
//! Every kernel has exactly one semantic definition — its `*_ref` scalar
//! reference — and up to three vectorized implementations selected once per
//! process by [`backend`]: AVX2 and SSE2 on `x86_64` (SSE2 is the
//! architectural baseline, so x86 never falls back to scalar unless forced)
//! and NEON on `aarch64`. Everything else runs the reference directly.
//!
//! # Equivalence policy (DESIGN.md §6.7)
//!
//! Kernels come in two accuracy classes, and every vectorized body is pinned
//! to its reference by tests in this module plus the workspace lane-remainder
//! property suite:
//!
//! * **bitwise** — elementwise maps (windowed multiply, complex-by-real
//!   scale, subtract-and-clamp, threshold, binarize, absolute difference),
//!   FFT butterfly passes, the RealFFT split, clamped 1-D convolution, and
//!   `axpy` perform *the same operations in the same per-element order* as
//!   the reference; no FMA contraction, no reassociation. Min/max folds are
//!   selections (no rounding), so they are bitwise on any association.
//! * **1e-9** — reductions that use multiple accumulators for throughput
//!   ([`fir_complex_dot`], [`envelope_charge`]) reassociate the sum and are
//!   pinned to the reference within `1e-9` relative error.
//!
//! # Dispatch
//!
//! The backend is detected once (cached in a `OnceLock`) from CPU features,
//! and can be overridden with the `ECHOWRITE_SIMD` environment variable
//! (`scalar`, `sse2`, `avx2`, `neon`); a request the hardware cannot honour
//! degrades to the best supported backend. CI runs the full tier-1 suite
//! with `ECHOWRITE_SIMD=scalar` so the fallback path stays exercised.
//!
//! `std::arch` intrinsics are confined to this module tree by echolint's
//! `simd-boundary` rule; the submodules carry the only sanctioned
//! `allow(unsafe_code)` override in the workspace, and every pointer access
//! is bounded by the slice lengths asserted in the safe wrappers here.

// SIMD intrinsics require `unsafe`; this module is the workspace's single
// sanctioned exception to the `unsafe_code = deny` wall. All pointer
// arithmetic is bounded by slice-length assertions in the safe wrappers.
#![allow(unsafe_code)]

use crate::complex::Complex;
use std::sync::OnceLock;

#[cfg(target_arch = "x86_64")]
mod x86;

#[cfg(target_arch = "aarch64")]
mod neon;

/// The instruction-set backend the kernels dispatch to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// Portable reference implementations (always available).
    Scalar,
    /// 128-bit x86 vectors (baseline on `x86_64`).
    Sse2,
    /// 256-bit x86 vectors (runtime-detected).
    Avx2,
    /// 128-bit ARM vectors (baseline on `aarch64`).
    Neon,
}

impl Backend {
    /// Stable lowercase name, as used by `ECHOWRITE_SIMD` and bench
    /// environment blocks.
    pub fn name(self) -> &'static str {
        match self {
            Backend::Scalar => "scalar",
            Backend::Sse2 => "sse2",
            Backend::Avx2 => "avx2",
            Backend::Neon => "neon",
        }
    }

    /// Number of `f64` lanes a vector register holds on this backend.
    pub fn f64_lanes(self) -> usize {
        match self {
            Backend::Scalar => 1,
            Backend::Sse2 | Backend::Neon => 2,
            Backend::Avx2 => 4,
        }
    }
}

/// SIMD feature sets the running CPU supports, independent of any
/// `ECHOWRITE_SIMD` override (for bench environment blocks).
pub fn detected_features() -> &'static [&'static str] {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            &["avx2", "sse2"]
        } else {
            &["sse2"]
        }
    }
    #[cfg(target_arch = "aarch64")]
    {
        &["neon"]
    }
    #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
    {
        &[]
    }
}

/// The best backend the running CPU supports.
fn best_supported() -> Backend {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            Backend::Avx2
        } else {
            Backend::Sse2
        }
    }
    #[cfg(target_arch = "aarch64")]
    {
        Backend::Neon
    }
    #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
    {
        Backend::Scalar
    }
}

/// Resolves the backend: an `ECHOWRITE_SIMD` override capped by what the
/// hardware supports, otherwise the best detected feature set.
fn resolve_backend() -> Backend {
    let best = best_supported();
    let Ok(requested) = std::env::var("ECHOWRITE_SIMD") else {
        return best;
    };
    match requested.trim().to_ascii_lowercase().as_str() {
        "scalar" => Backend::Scalar,
        "sse2" if cfg!(target_arch = "x86_64") => Backend::Sse2,
        // A narrower request than the hardware offers is honoured; a wider
        // or cross-architecture one degrades to the best supported.
        "avx2" if best == Backend::Avx2 => Backend::Avx2,
        "neon" if cfg!(target_arch = "aarch64") => Backend::Neon,
        _ => best,
    }
}

/// The process-wide kernel backend (detected once, then cached).
pub fn backend() -> Backend {
    static BACKEND: OnceLock<Backend> = OnceLock::new();
    *BACKEND.get_or_init(resolve_backend)
}

// ---------------------------------------------------------------------------
// Elementwise maps (bitwise class)
// ---------------------------------------------------------------------------

/// `dst[i] = a[i] * b[i]` — the STFT windowed multiply. Bitwise.
// echolint: hot entry
pub fn mul_into(dst: &mut [f64], a: &[f64], b: &[f64]) {
    assert_eq!(dst.len(), a.len());
    assert_eq!(dst.len(), b.len());
    // SAFETY: each arm runs only when backend() has verified the matching
    // CPU feature at runtime — exactly the contract the #[target_feature]
    // lane functions require; the slices pass through unchanged, so the
    // length assertions above keep every lane access in bounds.
    #[cfg(target_arch = "x86_64")]
    match backend() {
        Backend::Avx2 => return unsafe { x86::mul_into_avx2(dst, a, b) },
        Backend::Sse2 => return unsafe { x86::mul_into_sse2(dst, a, b) },
        _ => {}
    }
    #[cfg(target_arch = "aarch64")]
    if backend() == Backend::Neon {
        return unsafe { neon::mul_into_neon(dst, a, b) };
    }
    mul_into_ref(dst, a, b);
}

/// Scalar reference for [`mul_into`].
// echolint: hot entry
pub fn mul_into_ref(dst: &mut [f64], a: &[f64], b: &[f64]) {
    for ((d, &x), &y) in dst.iter_mut().zip(a).zip(b) {
        *d = x * y;
    }
}

/// `dst[i] = src[i].scale(w[i])` — the baseband windowed multiply
/// (complex-by-real). Bitwise.
// echolint: hot entry
pub fn scale_complex_into(dst: &mut [Complex], src: &[Complex], w: &[f64]) {
    assert_eq!(dst.len(), src.len());
    assert_eq!(dst.len(), w.len());
    // SAFETY: each arm runs only when backend() has verified the matching
    // CPU feature at runtime — exactly the contract the #[target_feature]
    // lane functions require; the slices pass through unchanged, so the
    // length assertions above keep every lane access in bounds.
    #[cfg(target_arch = "x86_64")]
    match backend() {
        Backend::Avx2 => return unsafe { x86::scale_complex_into_avx2(dst, src, w) },
        Backend::Sse2 => return unsafe { x86::scale_complex_into_sse2(dst, src, w) },
        _ => {}
    }
    #[cfg(target_arch = "aarch64")]
    if backend() == Backend::Neon {
        return unsafe { neon::scale_complex_into_neon(dst, src, w) };
    }
    scale_complex_into_ref(dst, src, w);
}

/// Scalar reference for [`scale_complex_into`].
// echolint: hot entry
pub fn scale_complex_into_ref(dst: &mut [Complex], src: &[Complex], w: &[f64]) {
    for ((d, &z), &k) in dst.iter_mut().zip(src).zip(w) {
        *d = z.scale(k);
    }
}

/// `dst[i] = (dst[i] - sub).max(0.0)` — static-background subtraction with
/// a per-row scalar. Bitwise (the clamp is a select, not an arithmetic op).
pub fn subtract_clamp(dst: &mut [f64], sub: f64) {
    // SAFETY: each arm runs only when backend() has verified the matching
    // CPU feature at runtime — exactly the contract the #[target_feature]
    // lane functions require; the slices pass through unchanged, so the
    // length assertions above keep every lane access in bounds.
    #[cfg(target_arch = "x86_64")]
    match backend() {
        Backend::Avx2 => return unsafe { x86::subtract_clamp_avx2(dst, sub) },
        Backend::Sse2 => return unsafe { x86::subtract_clamp_sse2(dst, sub) },
        _ => {}
    }
    #[cfg(target_arch = "aarch64")]
    if backend() == Backend::Neon {
        return unsafe { neon::subtract_clamp_neon(dst, sub) };
    }
    subtract_clamp_ref(dst, sub);
}

/// Scalar reference for [`subtract_clamp`].
pub fn subtract_clamp_ref(dst: &mut [f64], sub: f64) {
    for v in dst {
        *v = (*v - sub).max(0.0);
    }
}

/// `dst[i] = (dst[i] - bg[i]).max(0.0)` — per-element background
/// subtraction (streaming enhancement columns). Bitwise.
// echolint: hot entry
pub fn subtract_clamp_bg(dst: &mut [f64], bg: &[f64]) {
    assert_eq!(dst.len(), bg.len());
    // SAFETY: each arm runs only when backend() has verified the matching
    // CPU feature at runtime — exactly the contract the #[target_feature]
    // lane functions require; the slices pass through unchanged, so the
    // length assertions above keep every lane access in bounds.
    #[cfg(target_arch = "x86_64")]
    match backend() {
        Backend::Avx2 => return unsafe { x86::subtract_clamp_bg_avx2(dst, bg) },
        Backend::Sse2 => return unsafe { x86::subtract_clamp_bg_sse2(dst, bg) },
        _ => {}
    }
    #[cfg(target_arch = "aarch64")]
    if backend() == Backend::Neon {
        return unsafe { neon::subtract_clamp_bg_neon(dst, bg) };
    }
    subtract_clamp_bg_ref(dst, bg);
}

/// Scalar reference for [`subtract_clamp_bg`].
// echolint: hot entry
pub fn subtract_clamp_bg_ref(dst: &mut [f64], bg: &[f64]) {
    for (v, &b) in dst.iter_mut().zip(bg) {
        *v = (*v - b).max(0.0);
    }
}

/// `dst[i] = 0.0 if dst[i] < alpha` — the enhancement noise gate. Bitwise.
pub fn threshold_zero(dst: &mut [f64], alpha: f64) {
    // SAFETY: each arm runs only when backend() has verified the matching
    // CPU feature at runtime — exactly the contract the #[target_feature]
    // lane functions require; the slices pass through unchanged, so the
    // length assertions above keep every lane access in bounds.
    #[cfg(target_arch = "x86_64")]
    match backend() {
        Backend::Avx2 => return unsafe { x86::threshold_zero_avx2(dst, alpha) },
        Backend::Sse2 => return unsafe { x86::threshold_zero_sse2(dst, alpha) },
        _ => {}
    }
    #[cfg(target_arch = "aarch64")]
    if backend() == Backend::Neon {
        return unsafe { neon::threshold_zero_neon(dst, alpha) };
    }
    threshold_zero_ref(dst, alpha);
}

/// Scalar reference for [`threshold_zero`].
pub fn threshold_zero_ref(dst: &mut [f64], alpha: f64) {
    for v in dst {
        if *v < alpha {
            *v = 0.0;
        }
    }
}

/// `dst[i] = if dst[i] >= t { 1.0 } else { 0.0 }` — binarization. Bitwise.
pub fn binarize(dst: &mut [f64], t: f64) {
    // SAFETY: each arm runs only when backend() has verified the matching
    // CPU feature at runtime — exactly the contract the #[target_feature]
    // lane functions require; the slices pass through unchanged, so the
    // length assertions above keep every lane access in bounds.
    #[cfg(target_arch = "x86_64")]
    match backend() {
        Backend::Avx2 => return unsafe { x86::binarize_avx2(dst, t) },
        Backend::Sse2 => return unsafe { x86::binarize_sse2(dst, t) },
        _ => {}
    }
    #[cfg(target_arch = "aarch64")]
    if backend() == Backend::Neon {
        return unsafe { neon::binarize_neon(dst, t) };
    }
    binarize_ref(dst, t);
}

/// Scalar reference for [`binarize`].
pub fn binarize_ref(dst: &mut [f64], t: f64) {
    for v in dst {
        *v = if *v >= t { 1.0 } else { 0.0 };
    }
}

/// `out[j] = (x - b[j]).abs()` — the DTW local-cost row against one query
/// sample. Bitwise (`abs` clears the sign bit; no rounding).
// echolint: hot entry
pub fn abs_diff_broadcast_into(out: &mut [f64], x: f64, b: &[f64]) {
    assert_eq!(out.len(), b.len());
    // SAFETY: each arm runs only when backend() has verified the matching
    // CPU feature at runtime — exactly the contract the #[target_feature]
    // lane functions require; the slices pass through unchanged, so the
    // length assertions above keep every lane access in bounds.
    #[cfg(target_arch = "x86_64")]
    match backend() {
        Backend::Avx2 => return unsafe { x86::abs_diff_broadcast_into_avx2(out, x, b) },
        Backend::Sse2 => return unsafe { x86::abs_diff_broadcast_into_sse2(out, x, b) },
        _ => {}
    }
    #[cfg(target_arch = "aarch64")]
    if backend() == Backend::Neon {
        return unsafe { neon::abs_diff_broadcast_into_neon(out, x, b) };
    }
    abs_diff_broadcast_into_ref(out, x, b);
}

/// Scalar reference for [`abs_diff_broadcast_into`].
// echolint: hot entry
pub fn abs_diff_broadcast_into_ref(out: &mut [f64], x: f64, b: &[f64]) {
    for (o, &y) in out.iter_mut().zip(b) {
        *o = (x - y).abs();
    }
}

/// `acc[i] += w * src[i]` — one tap of a separable convolution accumulated
/// across stored columns. Bitwise (same per-element multiply-add order as
/// the reference; no FMA contraction).
// echolint: hot entry
pub fn axpy(acc: &mut [f64], src: &[f64], w: f64) {
    assert_eq!(acc.len(), src.len());
    // SAFETY: each arm runs only when backend() has verified the matching
    // CPU feature at runtime — exactly the contract the #[target_feature]
    // lane functions require; the slices pass through unchanged, so the
    // length assertions above keep every lane access in bounds.
    #[cfg(target_arch = "x86_64")]
    match backend() {
        Backend::Avx2 => return unsafe { x86::axpy_avx2(acc, src, w) },
        Backend::Sse2 => return unsafe { x86::axpy_sse2(acc, src, w) },
        _ => {}
    }
    #[cfg(target_arch = "aarch64")]
    if backend() == Backend::Neon {
        return unsafe { neon::axpy_neon(acc, src, w) };
    }
    axpy_ref(acc, src, w);
}

/// Scalar reference for [`axpy`].
// echolint: hot entry
pub fn axpy_ref(acc: &mut [f64], src: &[f64], w: f64) {
    for (a, &s) in acc.iter_mut().zip(src) {
        *a += w * s;
    }
}

// ---------------------------------------------------------------------------
// Structured passes (bitwise class)
// ---------------------------------------------------------------------------

/// One radix-2 butterfly pass: `t = w·v[k]; (u[k], v[k]) = (u[k]+t, u[k]−t)`
/// with `w = tw[k]` (conjugated when `inverse`). `u` and `v` are the two
/// halves of one FFT block. Bitwise: the complex multiply keeps the scalar
/// operand order and rounding (no FMA).
// echolint: hot entry
pub fn butterfly_pass(u: &mut [Complex], v: &mut [Complex], tw: &[Complex], inverse: bool) {
    assert_eq!(u.len(), v.len());
    assert_eq!(u.len(), tw.len());
    // SAFETY: each arm runs only when backend() has verified the matching
    // CPU feature at runtime — exactly the contract the #[target_feature]
    // lane functions require; the slices pass through unchanged, so the
    // length assertions above keep every lane access in bounds.
    #[cfg(target_arch = "x86_64")]
    match backend() {
        Backend::Avx2 => return unsafe { x86::butterfly_pass_avx2(u, v, tw, inverse) },
        Backend::Sse2 => return unsafe { x86::butterfly_pass_sse2(u, v, tw, inverse) },
        _ => {}
    }
    #[cfg(target_arch = "aarch64")]
    if backend() == Backend::Neon {
        return unsafe { neon::butterfly_pass_neon(u, v, tw, inverse) };
    }
    butterfly_pass_ref(u, v, tw, inverse);
}

/// Scalar reference for [`butterfly_pass`].
// echolint: hot entry
pub fn butterfly_pass_ref(u: &mut [Complex], v: &mut [Complex], tw: &[Complex], inverse: bool) {
    for ((a, b), &w) in u.iter_mut().zip(v).zip(tw) {
        let w = if inverse { w.conj() } else { w };
        let t = w * *b;
        let ua = *a;
        *a = ua + t;
        *b = ua - t;
    }
}

/// The RealFFT even/odd split for interior bins `k ∈ [1, m)`:
/// `out[k] = (z_k + conj(z_{m−k}))/2 + tw[k] · odd_k` with
/// `odd_k = (diff.im/2, −diff.re/2)`, `diff = z_k − conj(z_{m−k})`.
/// `packed` holds the `m` half-size complex bins; DC and Nyquist are the
/// caller's business. Bitwise: per-`k` independent, operand order preserved.
// echolint: hot entry
pub fn realfft_split(out: &mut [Complex], packed: &[Complex], tw: &[Complex]) {
    let m = packed.len();
    assert!(out.len() >= m);
    assert!(tw.len() >= m);
    // SAFETY: each arm runs only when backend() has verified the matching
    // CPU feature at runtime — exactly the contract the #[target_feature]
    // lane functions require; the slices pass through unchanged, so the
    // length assertions above keep every lane access in bounds.
    #[cfg(target_arch = "x86_64")]
    match backend() {
        Backend::Avx2 => return unsafe { x86::realfft_split_avx2(out, packed, tw) },
        Backend::Sse2 => return unsafe { x86::realfft_split_sse2(out, packed, tw) },
        _ => {}
    }
    #[cfg(target_arch = "aarch64")]
    if backend() == Backend::Neon {
        return unsafe { neon::realfft_split_neon(out, packed, tw) };
    }
    realfft_split_ref(out, packed, tw);
}

/// Scalar reference for [`realfft_split`].
// echolint: hot entry
pub fn realfft_split_ref(out: &mut [Complex], packed: &[Complex], tw: &[Complex]) {
    let m = packed.len();
    for k in 1..m {
        let zk = packed[k];
        let zc = packed[m - k].conj();
        let even = (zk + zc).scale(0.5);
        let diff = zk - zc;
        let odd = Complex::new(diff.im * 0.5, -diff.re * 0.5);
        out[k] = even + tw[k] * odd;
    }
}

/// Same-size 1-D convolution with clamp-to-edge boundary:
/// `out[i] = Σ_k taps[k] · src[clamp(i + k − taps.len()/2)]`. The interior
/// is vectorized across output positions with a sequential tap loop per
/// lane, so each output keeps the reference's accumulation order — bitwise.
// echolint: hot entry
pub fn conv1d_clamped_into(out: &mut [f64], src: &[f64], taps: &[f64]) {
    assert_eq!(out.len(), src.len());
    assert!(!taps.is_empty());
    // SAFETY: each arm runs only when backend() has verified the matching
    // CPU feature at runtime — exactly the contract the #[target_feature]
    // lane functions require; the slices pass through unchanged, so the
    // length assertions above keep every lane access in bounds.
    #[cfg(target_arch = "x86_64")]
    match backend() {
        Backend::Avx2 => return unsafe { x86::conv1d_clamped_into_avx2(out, src, taps) },
        Backend::Sse2 => return unsafe { x86::conv1d_clamped_into_sse2(out, src, taps) },
        _ => {}
    }
    #[cfg(target_arch = "aarch64")]
    if backend() == Backend::Neon {
        return unsafe { neon::conv1d_clamped_into_neon(out, src, taps) };
    }
    conv1d_clamped_into_ref(out, src, taps);
}

/// Scalar reference for [`conv1d_clamped_into`].
// echolint: hot entry
pub fn conv1d_clamped_into_ref(out: &mut [f64], src: &[f64], taps: &[f64]) {
    conv1d_clamped_range(out, src, taps, 0, src.len());
}

/// The clamped convolution over output positions `[from, to)` only — the
/// SIMD implementations reuse it for the boundary columns.
// echolint: hot entry
pub(crate) fn conv1d_clamped_range(
    out: &mut [f64],
    src: &[f64],
    taps: &[f64],
    from: usize,
    to: usize,
) {
    let n = src.len();
    let half = taps.len() / 2;
    for (i, o) in out.iter_mut().enumerate().take(to).skip(from) {
        let mut acc = 0.0;
        for (k, &kv) in taps.iter().enumerate() {
            let idx = (i + k).saturating_sub(half).min(n - 1);
            acc += kv * src[idx];
        }
        *o = acc;
    }
}

// ---------------------------------------------------------------------------
// Reductions
// ---------------------------------------------------------------------------

/// Complex FIR dot product `Σ_t taps[t] · x[t]` (taps complex, signal
/// real) — the downconvert mixer's inner loop. **1e-9 class**: multiple
/// accumulators reassociate the sum.
pub fn fir_complex_dot(taps: &[Complex], x: &[f64]) -> Complex {
    assert_eq!(taps.len(), x.len());
    // SAFETY: each arm runs only when backend() has verified the matching
    // CPU feature at runtime — exactly the contract the #[target_feature]
    // lane functions require; the slices pass through unchanged, so the
    // length assertions above keep every lane access in bounds.
    #[cfg(target_arch = "x86_64")]
    match backend() {
        Backend::Avx2 => return unsafe { x86::fir_complex_dot_avx2(taps, x) },
        Backend::Sse2 => return unsafe { x86::fir_complex_dot_sse2(taps, x) },
        _ => {}
    }
    #[cfg(target_arch = "aarch64")]
    if backend() == Backend::Neon {
        return unsafe { neon::fir_complex_dot_neon(taps, x) };
    }
    fir_complex_dot_ref(taps, x)
}

/// Scalar reference for [`fir_complex_dot`].
pub fn fir_complex_dot_ref(taps: &[Complex], x: &[f64]) -> Complex {
    let mut acc = Complex::ZERO;
    for (&ct, &s) in taps.iter().zip(x) {
        acc += ct.scale(s);
    }
    acc
}

/// Minimum over `xs` (identity `+∞`). Min is a selection — no rounding —
/// so any association yields the same value: bitwise for finite inputs.
pub fn fold_min(xs: &[f64]) -> f64 {
    // SAFETY: each arm runs only when backend() has verified the matching
    // CPU feature at runtime — exactly the contract the #[target_feature]
    // lane functions require; the slices pass through unchanged, so the
    // length assertions above keep every lane access in bounds.
    #[cfg(target_arch = "x86_64")]
    match backend() {
        Backend::Avx2 => return unsafe { x86::fold_min_avx2(xs) },
        Backend::Sse2 => return unsafe { x86::fold_min_sse2(xs) },
        _ => {}
    }
    #[cfg(target_arch = "aarch64")]
    if backend() == Backend::Neon {
        return unsafe { neon::fold_min_neon(xs) };
    }
    fold_min_ref(xs)
}

/// Scalar reference for [`fold_min`].
pub fn fold_min_ref(xs: &[f64]) -> f64 {
    let mut m = f64::INFINITY;
    for &v in xs {
        m = m.min(v);
    }
    m
}

/// Maximum over `xs` (identity `−∞`); see [`fold_min`].
pub fn fold_max(xs: &[f64]) -> f64 {
    // SAFETY: each arm runs only when backend() has verified the matching
    // CPU feature at runtime — exactly the contract the #[target_feature]
    // lane functions require; the slices pass through unchanged, so the
    // length assertions above keep every lane access in bounds.
    #[cfg(target_arch = "x86_64")]
    match backend() {
        Backend::Avx2 => return unsafe { x86::fold_max_avx2(xs) },
        Backend::Sse2 => return unsafe { x86::fold_max_sse2(xs) },
        _ => {}
    }
    #[cfg(target_arch = "aarch64")]
    if backend() == Backend::Neon {
        return unsafe { neon::fold_max_neon(xs) };
    }
    fold_max_ref(xs)
}

/// Scalar reference for [`fold_max`].
pub fn fold_max_ref(xs: &[f64]) -> f64 {
    let mut m = f64::NEG_INFINITY;
    for &v in xs {
        m = m.max(v);
    }
    m
}

/// LB_Keogh charge against a global envelope: `Σ max(v−hi, 0) + max(lo−v,
/// 0)`. **1e-9 class**: lane accumulators reassociate the sum (each term is
/// identical to the reference's branch arithmetic).
pub fn envelope_charge(xs: &[f64], lo: f64, hi: f64) -> f64 {
    // SAFETY: each arm runs only when backend() has verified the matching
    // CPU feature at runtime — exactly the contract the #[target_feature]
    // lane functions require; the slices pass through unchanged, so the
    // length assertions above keep every lane access in bounds.
    #[cfg(target_arch = "x86_64")]
    match backend() {
        Backend::Avx2 => return unsafe { x86::envelope_charge_avx2(xs, lo, hi) },
        Backend::Sse2 => return unsafe { x86::envelope_charge_sse2(xs, lo, hi) },
        _ => {}
    }
    #[cfg(target_arch = "aarch64")]
    if backend() == Backend::Neon {
        return unsafe { neon::envelope_charge_neon(xs, lo, hi) };
    }
    envelope_charge_ref(xs, lo, hi)
}

/// Scalar reference for [`envelope_charge`].
pub fn envelope_charge_ref(xs: &[f64], lo: f64, hi: f64) -> f64 {
    let mut total = 0.0;
    for &v in xs {
        if v > hi {
            total += v - hi;
        } else if v < lo {
            total += lo - v;
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic pseudo-random values spanning signs and magnitudes.
    fn values(n: usize, seed: u64) -> Vec<f64> {
        let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
        (0..n)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                // Map to roughly [-2, 2) with plenty of mantissa variety.
                (state as f64 / u64::MAX as f64) * 4.0 - 2.0
            })
            .collect()
    }

    fn complexes(n: usize, seed: u64) -> Vec<Complex> {
        let re = values(n, seed);
        let im = values(n, seed ^ 0xabcd);
        re.into_iter().zip(im).map(|(r, i)| Complex::new(r, i)).collect()
    }

    /// Lengths around every lane boundary (1, lane−1, lane, lane+1) plus
    /// odd ROI-band-like widths.
    const LENGTHS: &[usize] = &[0, 1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 23, 64, 101, 129];

    #[test]
    fn backend_is_cached_and_reports_lanes() {
        let b = backend();
        assert_eq!(b, backend());
        assert!(b.f64_lanes() >= 1);
        assert!(!b.name().is_empty());
        assert!(detected_features().iter().all(|f| !f.is_empty()));
    }

    #[test]
    fn mul_into_matches_reference_bitwise() {
        for &n in LENGTHS {
            let a = values(n, 1);
            let b = values(n, 2);
            let mut fast = vec![0.0; n];
            let mut reference = vec![0.0; n];
            mul_into(&mut fast, &a, &b);
            mul_into_ref(&mut reference, &a, &b);
            assert!(fast == reference, "n={n}");
        }
    }

    #[test]
    fn scale_complex_into_matches_reference_bitwise() {
        for &n in LENGTHS {
            let src = complexes(n, 3);
            let w = values(n, 4);
            let mut fast = vec![Complex::ZERO; n];
            let mut reference = vec![Complex::ZERO; n];
            scale_complex_into(&mut fast, &src, &w);
            scale_complex_into_ref(&mut reference, &src, &w);
            assert!(fast == reference, "n={n}");
        }
    }

    #[test]
    fn subtract_clamp_variants_match_reference_bitwise() {
        for &n in LENGTHS {
            let base = values(n, 5);
            let bg = values(n, 6);
            let mut fast = base.clone();
            let mut reference = base.clone();
            subtract_clamp(&mut fast, 0.25);
            subtract_clamp_ref(&mut reference, 0.25);
            assert!(fast == reference, "n={n}");

            let mut fast = base.clone();
            let mut reference = base.clone();
            subtract_clamp_bg(&mut fast, &bg);
            subtract_clamp_bg_ref(&mut reference, &bg);
            assert!(fast == reference, "n={n}");
        }
    }

    #[test]
    fn threshold_and_binarize_match_reference_bitwise() {
        for &n in LENGTHS {
            let base = values(n, 7);
            let mut fast = base.clone();
            let mut reference = base.clone();
            threshold_zero(&mut fast, 0.1);
            threshold_zero_ref(&mut reference, 0.1);
            assert!(fast == reference, "n={n}");

            let mut fast = base.clone();
            let mut reference = base;
            binarize(&mut fast, 0.5);
            binarize_ref(&mut reference, 0.5);
            assert!(fast == reference, "n={n}");
        }
    }

    #[test]
    fn abs_diff_and_axpy_match_reference_bitwise() {
        for &n in LENGTHS {
            let b = values(n, 8);
            let mut fast = vec![0.0; n];
            let mut reference = vec![0.0; n];
            abs_diff_broadcast_into(&mut fast, 0.7, &b);
            abs_diff_broadcast_into_ref(&mut reference, 0.7, &b);
            assert!(fast == reference, "n={n}");

            let src = values(n, 9);
            let mut fast = values(n, 10);
            let mut reference = fast.clone();
            axpy(&mut fast, &src, -1.37);
            axpy_ref(&mut reference, &src, -1.37);
            assert!(fast == reference, "n={n}");
        }
    }

    #[test]
    fn butterfly_pass_matches_reference_bitwise() {
        for &n in LENGTHS {
            for inverse in [false, true] {
                let tw = complexes(n, 11);
                let u0 = complexes(n, 12);
                let v0 = complexes(n, 13);
                let (mut uf, mut vf) = (u0.clone(), v0.clone());
                let (mut ur, mut vr) = (u0, v0);
                butterfly_pass(&mut uf, &mut vf, &tw, inverse);
                butterfly_pass_ref(&mut ur, &mut vr, &tw, inverse);
                assert!(uf == ur && vf == vr, "n={n} inverse={inverse}");
            }
        }
    }

    #[test]
    fn realfft_split_matches_reference_bitwise() {
        for &m in LENGTHS {
            if m == 0 {
                continue;
            }
            let packed = complexes(m, 14);
            let tw = complexes(m, 15);
            let mut fast = vec![Complex::ZERO; m + 1];
            let mut reference = vec![Complex::ZERO; m + 1];
            realfft_split(&mut fast, &packed, &tw);
            realfft_split_ref(&mut reference, &packed, &tw);
            assert!(fast == reference, "m={m}");
        }
    }

    #[test]
    fn conv1d_matches_reference_bitwise() {
        let taps = [0.1, 0.2, 0.4, 0.2, 0.1];
        for &n in LENGTHS {
            if n == 0 {
                continue;
            }
            let src = values(n, 16);
            let mut fast = vec![0.0; n];
            let mut reference = vec![0.0; n];
            conv1d_clamped_into(&mut fast, &src, &taps);
            conv1d_clamped_into_ref(&mut reference, &src, &taps);
            assert!(fast == reference, "n={n}");
        }
    }

    #[test]
    fn fir_complex_dot_matches_reference_to_1e9() {
        for &n in LENGTHS {
            let taps = complexes(n, 17);
            let x = values(n, 18);
            let fast = fir_complex_dot(&taps, &x);
            let reference = fir_complex_dot_ref(&taps, &x);
            let scale = reference.norm().max(1.0);
            assert!(
                (fast.re - reference.re).abs() / scale < 1e-9
                    && (fast.im - reference.im).abs() / scale < 1e-9,
                "n={n}: {fast} vs {reference}"
            );
        }
    }

    #[test]
    fn folds_match_reference_bitwise() {
        for &n in LENGTHS {
            let xs = values(n, 19);
            assert!(fold_min(&xs) == fold_min_ref(&xs), "n={n}");
            assert!(fold_max(&xs) == fold_max_ref(&xs), "n={n}");
        }
        assert_eq!(fold_min(&[]), f64::INFINITY);
        assert_eq!(fold_max(&[]), f64::NEG_INFINITY);
    }

    #[test]
    fn envelope_charge_matches_reference_to_1e9() {
        for &n in LENGTHS {
            let xs = values(n, 20);
            let fast = envelope_charge(&xs, -0.5, 0.5);
            let reference = envelope_charge_ref(&xs, -0.5, 0.5);
            assert!(
                (fast - reference).abs() / reference.max(1.0) < 1e-9,
                "n={n}: {fast} vs {reference}"
            );
        }
    }
}
