//! Text-entry speed experiments (paper Sec. V-B3/4, Figs. 16–18).
//!
//! Participants enter paragraphs from five two-paragraph phrase blocks with
//! EchoWrite (7.5 WPM / 25.6 LPM before practice) and with a smartwatch
//! soft keyboard (5.5 WPM / ≈ 6.8 LPM lower letter rate), and Fig. 18
//! tracks speed over 15 practice sessions (stabilizing at 16.6 WPM /
//! 55.3 LPM around session 13).

use super::strokes::shared_engine;
use super::Scale;
use crate::baseline::SmartwatchKeyboard;
use crate::calibrate::calibrate;
use crate::participant::Participant;
use crate::report::{f1, Table};
use crate::session::{SessionConfig, TextEntrySession};
use echowrite_corpus::phrases;
use echowrite_dtw::ConfusionMatrix;
use echowrite_lang::{NextWordPredictor, WordDecoder};
use std::sync::OnceLock;

/// Decoder + confusion shared by the entry experiments (calibrated once).
fn decoding() -> &'static (WordDecoder, ConfusionMatrix, NextWordPredictor) {
    static D: OnceLock<(WordDecoder, ConfusionMatrix, NextWordPredictor)> = OnceLock::new();
    D.get_or_init(|| {
        let engine = shared_engine();
        let cal = calibrate(engine, 30, 4242);
        let decoder = WordDecoder::new(engine.decoder().dictionary().clone())
            .with_confusion(cal.confusion.clone())
            .with_rules(cal.rules.clone())
            .with_top_k(5);
        (decoder, cal.confusion, NextWordPredictor::embedded())
    })
}

/// Per-participant entry speeds over the phrase blocks, first session
/// (unpractised).
pub fn echowrite_speeds(scale: Scale, session_no: usize) -> Vec<(String, f64, f64)> {
    let (decoder, confusion, predictor) = decoding();
    Participant::cohort(scale.seed)
        .iter()
        .map(|p| {
            let mut total = crate::session::SessionOutcome::default();
            for (bi, block) in phrases::blocks().iter().enumerate() {
                let mut s = TextEntrySession::new(
                    decoder,
                    confusion,
                    predictor,
                    SessionConfig::paper(),
                    scale.seed ^ ((p.id as u64) << 16) ^ (bi as u64),
                );
                let words = block.words();
                let o = s.enter_words(&words, p, session_no);
                total.seconds += o.seconds;
                total.words += o.words;
                total.letters += o.letters;
                total.word_errors += o.word_errors;
                total.predicted_words += o.predicted_words;
            }
            (p.name.clone(), total.wpm(), total.lpm())
        })
        .collect()
}

/// Per-participant smartwatch-keyboard speeds on the same text.
pub fn keyboard_speeds(scale: Scale) -> Vec<(String, f64, f64)> {
    let kb = SmartwatchKeyboard::typical();
    Participant::cohort(scale.seed)
        .iter()
        .map(|p| {
            let mut seconds = 0.0;
            let mut words = 0usize;
            let mut letters = 0usize;
            for (bi, block) in phrases::blocks().iter().enumerate() {
                let w = block.words();
                seconds += kb.type_words(&w, scale.seed ^ ((p.id as u64) << 8) ^ (bi as u64));
                words += w.len();
                letters += w.iter().map(|x| x.len()).sum::<usize>();
            }
            (
                p.name.clone(),
                words as f64 * 60.0 / seconds,
                letters as f64 * 60.0 / seconds,
            )
        })
        .collect()
}

/// Fig. 16 — words-entry speed, EchoWrite vs smartwatch keyboard
/// (paper: 7.5 vs 5.5 WPM).
pub fn fig16(scale: Scale) -> Table {
    let echo = echowrite_speeds(scale, 1);
    let kb = keyboard_speeds(scale);
    let mut t = Table::new(
        "Fig. 16 — words-entry speed (paper: EchoWrite 7.5 WPM, watch keyboard 5.5 WPM)",
        &["participant", "EchoWrite WPM", "keyboard WPM"],
    );
    for ((name, wpm, _), (_, kb_wpm, _)) in echo.iter().zip(&kb) {
        t.push_row(vec![name.clone(), f1(*wpm), f1(*kb_wpm)]);
    }
    let mean = |v: &[(String, f64, f64)]| v.iter().map(|x| x.1).sum::<f64>() / v.len() as f64;
    t.push_row(vec!["mean".into(), f1(mean(&echo)), f1(mean(&kb))]);
    t
}

/// Fig. 17 — letter-entry speed (paper: EchoWrite 25.6 LPM, keyboard lower).
pub fn fig17(scale: Scale) -> Table {
    let echo = echowrite_speeds(scale, 1);
    let kb = keyboard_speeds(scale);
    let mut t = Table::new(
        "Fig. 17 — letters-entry speed (paper: EchoWrite 25.6 LPM)",
        &["participant", "EchoWrite LPM", "keyboard LPM"],
    );
    for ((name, _, lpm), (_, _, kb_lpm)) in echo.iter().zip(&kb) {
        t.push_row(vec![name.clone(), f1(*lpm), f1(*kb_lpm)]);
    }
    let mean = |v: &[(String, f64, f64)]| v.iter().map(|x| x.2).sum::<f64>() / v.len() as f64;
    t.push_row(vec!["mean".into(), f1(mean(&echo)), f1(mean(&kb))]);
    t
}

/// Fig. 18 — WPM and LPM per practice session (paper: stabilizes at
/// ≈ 16.6 WPM / 55.3 LPM around session 13).
pub fn fig18(scale: Scale) -> Table {
    let (decoder, confusion, predictor) = decoding();
    let cohort = Participant::cohort(scale.seed);
    let block = &phrases::blocks()[0];
    let mut t = Table::new(
        "Fig. 18 — entry speed vs practice sessions (paper: →16.6 WPM / 55.3 LPM)",
        &["session", "WPM", "LPM"],
    );
    for session_no in 1..=15usize {
        let mut wpm = 0.0;
        let mut lpm = 0.0;
        for p in &cohort {
            let mut s = TextEntrySession::new(
                decoder,
                confusion,
                predictor,
                SessionConfig::paper(),
                scale.seed ^ ((p.id as u64) << 20) ^ (session_no as u64),
            );
            let o = s.enter_words(&block.words(), p, session_no);
            wpm += o.wpm();
            lpm += o.lpm();
        }
        t.push_row(vec![
            session_no.to_string(),
            f1(wpm / cohort.len() as f64),
            f1(lpm / cohort.len() as f64),
        ]);
    }
    t
}

/// Mean speeds at a session, for integration tests: `(wpm, lpm)`.
pub fn mean_speed_at_session(scale: Scale, session_no: usize) -> (f64, f64) {
    let echo = echowrite_speeds(scale, session_no);
    let n = echo.len() as f64;
    (
        echo.iter().map(|x| x.1).sum::<f64>() / n,
        echo.iter().map(|x| x.2).sum::<f64>() / n,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Scale {
        Scale { reps: 2, seed: 5 }
    }

    #[test]
    fn echowrite_beats_keyboard_in_wpm_and_lpm() {
        let echo = echowrite_speeds(tiny(), 1);
        let kb = keyboard_speeds(tiny());
        let mean = |v: &[(String, f64, f64)], f: fn(&(String, f64, f64)) -> f64| {
            v.iter().map(f).sum::<f64>() / v.len() as f64
        };
        let e_wpm = mean(&echo, |x| x.1);
        let k_wpm = mean(&kb, |x| x.1);
        assert!(
            e_wpm > k_wpm,
            "EchoWrite {e_wpm} WPM should beat keyboard {k_wpm} WPM"
        );
        let e_lpm = mean(&echo, |x| x.2);
        let k_lpm = mean(&kb, |x| x.2);
        assert!(e_lpm > k_lpm, "LPM: {e_lpm} vs {k_lpm}");
    }

    #[test]
    fn untrained_speed_in_paper_ballpark() {
        let (wpm, lpm) = mean_speed_at_session(tiny(), 1);
        assert!((5.0..11.0).contains(&wpm), "untrained WPM {wpm} (paper 7.5)");
        assert!((17.0..38.0).contains(&lpm), "untrained LPM {lpm} (paper 25.6)");
    }

    #[test]
    fn trained_speed_reaches_paper_ballpark() {
        let (wpm, lpm) = mean_speed_at_session(tiny(), 13);
        assert!((13.0..21.0).contains(&wpm), "trained WPM {wpm} (paper 16.6)");
        assert!((42.0..70.0).contains(&lpm), "trained LPM {lpm} (paper 55.3)");
    }

    #[test]
    fn fig18_speed_grows_with_sessions() {
        let t = fig18(tiny());
        assert_eq!(t.rows.len(), 15);
        let wpm1: f64 = t.rows[0][1].parse().unwrap();
        let wpm13: f64 = t.rows[12][1].parse().unwrap();
        assert!(wpm13 > 1.5 * wpm1, "{wpm1} → {wpm13}");
        // Diminishing returns: sessions 13..15 roughly flat.
        let wpm15: f64 = t.rows[14][1].parse().unwrap();
        assert!((wpm15 - wpm13).abs() < 0.25 * wpm13);
    }

    #[test]
    fn figures_render() {
        assert_eq!(fig16(tiny()).rows.len(), 7);
        assert_eq!(fig17(tiny()).rows.len(), 7);
    }
}
