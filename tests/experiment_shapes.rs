//! Shape assertions over the paper-reproduction experiments: these encode
//! the qualitative claims of each figure (who wins, what rises, what's
//! flat) at a reduced Monte-Carlo scale.

use echowrite_sim::experiments::{entry, learnability, strokes, system, words, Scale};

fn quick() -> Scale {
    Scale { reps: 3, seed: 2019 }
}

#[test]
fn fig4_shape_accuracy_rises_to_high_nineties() {
    let results = learnability::study(quick());
    let mean = |m: usize| {
        results.iter().map(|r| r.minute_accuracy[m]).sum::<f64>() / results.len() as f64
    };
    assert!(mean(14) > mean(0), "no learning effect");
    assert!(mean(14) > 0.95, "final accuracy {}", mean(14));
}

#[test]
fn fig5_shape_speed_near_eleven_wpm() {
    let results = learnability::study(quick());
    let mean: f64 = results.iter().map(|r| r.final_wpm).sum::<f64>() / results.len() as f64;
    assert!((8.0..15.0).contains(&mean), "WPM {mean} (paper ≈11)");
}

#[test]
fn fig6_shape_word_accuracy_around_ninety() {
    for r in learnability::study(quick()) {
        assert!(
            (0.80..=0.90).contains(&r.final_word_accuracy),
            "{}: {}",
            r.name,
            r.final_word_accuracy
        );
    }
}

#[test]
fn fig11_shape_watch_close_to_phone() {
    let trials = strokes::run_trials(quick());
    let phone = trials
        .accuracy(|r| r.device == "Huawei Mate 9" && r.environment == "Meeting room")
        .unwrap();
    let watch = trials
        .accuracy(|r| r.device == "Huawei Watch 2")
        .unwrap();
    assert!(phone > 0.8, "phone accuracy {phone}");
    assert!(watch > 0.75, "watch accuracy {watch}");
    assert!(
        (phone - watch).abs() < 0.12,
        "devices should be close: {phone} vs {watch}"
    );
}

#[test]
fn fig12_shape_resting_zone_is_not_best() {
    let trials = strokes::run_trials(quick());
    let acc = |env: &str| {
        trials
            .accuracy(|r| r.device == "Huawei Mate 9" && r.environment == env)
            .unwrap()
    };
    let meeting = acc("Meeting room");
    let lab = acc("Lab area");
    let resting = acc("Resting zone");
    assert!(meeting > 0.8 && lab > 0.8, "clean rooms {meeting}/{lab}");
    assert!(
        resting <= meeting.max(lab) + 0.02,
        "resting zone {resting} should not be best ({meeting}/{lab})"
    );
}

#[test]
fn fig13_shape_participants_cluster_tightly() {
    let trials = strokes::run_trials(quick());
    let mut accs = Vec::new();
    for pid in 1..=6 {
        accs.push(
            trials
                .accuracy(|r| r.device == "Huawei Mate 9" && r.participant == pid)
                .unwrap(),
        );
    }
    let mean = accs.iter().sum::<f64>() / accs.len() as f64;
    let spread = accs.iter().cloned().fold(0.0f64, f64::max)
        - accs.iter().cloned().fold(1.0f64, f64::min);
    assert!(mean > 0.8, "cohort mean {mean}");
    // Paper: max gap ≈ 2.6 %; at reduced reps allow more sampling noise.
    assert!(spread < 0.20, "participant spread {spread}");
}

#[test]
fn fig14_shape_topk_rises_then_saturates() {
    let trials = words::run_word_trials(quick());
    let t1 = trials.top_k_accuracy(None, 1, true);
    let t3 = trials.top_k_accuracy(None, 3, true);
    let t5 = trials.top_k_accuracy(None, 5, true);
    assert!(t1 <= t3 && t3 <= t5, "top-k not monotone: {t1}/{t3}/{t5}");
    assert!(t3 > 0.6, "top-3 {t3}");
    // Paper: beyond k = 3 the gain is small.
    assert!(t5 - t3 < 0.15, "top-5 gain over top-3 too large: {t3}→{t5}");
}

#[test]
fn fig15_shape_correction_helps() {
    let trials = words::run_word_trials(quick());
    let with = trials.top_k_accuracy(None, 5, true);
    let without = trials.top_k_accuracy(None, 5, false);
    assert!(with >= without, "correction hurt: {with} < {without}");
}

#[test]
fn fig16_fig17_shape_echowrite_beats_watch_keyboard() {
    let scale = quick();
    let echo = entry::echowrite_speeds(scale, 1);
    let kb = entry::keyboard_speeds(scale);
    let mean = |v: &[(String, f64, f64)], pick: fn(&(String, f64, f64)) -> f64| {
        v.iter().map(pick).sum::<f64>() / v.len() as f64
    };
    let (e_wpm, k_wpm) = (mean(&echo, |x| x.1), mean(&kb, |x| x.1));
    let (e_lpm, k_lpm) = (mean(&echo, |x| x.2), mean(&kb, |x| x.2));
    assert!(e_wpm > k_wpm, "WPM: {e_wpm} vs {k_wpm}");
    assert!(e_lpm > k_lpm, "LPM: {e_lpm} vs {k_lpm}");
    // Rough paper ratio: 7.5/5.5 ≈ 1.36.
    let ratio = e_wpm / k_wpm;
    assert!((1.05..2.2).contains(&ratio), "WPM ratio {ratio}");
}

#[test]
fn fig18_shape_practice_saturates() {
    let scale = quick();
    let (wpm1, _) = entry::mean_speed_at_session(scale, 1);
    let (wpm13, lpm13) = entry::mean_speed_at_session(scale, 13);
    let (wpm15, _) = entry::mean_speed_at_session(scale, 15);
    assert!(wpm13 > 1.5 * wpm1, "practice gain {wpm1} → {wpm13}");
    assert!((wpm15 - wpm13).abs() < 0.2 * wpm13, "no saturation: {wpm13} vs {wpm15}");
    assert!((40.0..75.0).contains(&lpm13), "trained LPM {lpm13} (paper 55.3)");
}

#[test]
fn fig19_shape_signal_processing_dominates() {
    let times = system::measure_stage_times(quick());
    for (stroke, t) in times {
        assert!(
            t.signal_processing_fraction() > 0.7,
            "{stroke}: {}",
            t.signal_processing_fraction()
        );
        assert!(t.total_ms() > 0.0);
    }
}

#[test]
fn fig20_shape_battery_nearly_linear_to_87() {
    let t = system::fig20();
    let level30: f64 = t.rows[6][1].parse().unwrap();
    assert!((85.0..89.5).contains(&level30), "30-min level {level30}");
}

#[test]
fn fig21_shape_cpu_mean_and_spread() {
    let t = system::fig21(quick());
    let mean: f64 = t.rows[0][1].trim_end_matches('%').parse().unwrap();
    let sd: f64 = t.rows[1][1].trim_end_matches('%').parse().unwrap();
    // Paper: 15.2 % ± 2.3 %. The measured desktop fraction varies with the
    // machine and test-runner load; assert the modelled share lands in a
    // sane band with spread well below the mean.
    assert!((4.0..45.0).contains(&mean), "CPU mean {mean}%");
    assert!(sd < mean, "σ {sd} should be well below the mean {mean}");
}

#[test]
fn table1_covers_all_strokes() {
    let t = words::table1();
    assert_eq!(t.rows.len(), 10);
    let mut seen = [false; 6];
    for row in &t.rows {
        for s in row[2].split_whitespace() {
            let idx: usize = s[1..].parse::<usize>().unwrap() - 1;
            seen[idx] = true;
        }
    }
    assert!(seen.iter().all(|&b| b), "stroke coverage {seen:?}");
}
