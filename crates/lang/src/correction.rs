//! Substitution-only stroke correction (paper Sec. III-C).
//!
//! Full correction (insert/delete/substitute anywhere) is exponential. The
//! paper prunes it with two empirical observations:
//!
//! 1. acceleration-based detection rarely inserts or drops strokes, so only
//!    **substitutions** are considered;
//! 2. at most **one** stroke in a sequence is wrong at a time (edit
//!    distance 1), and the errors concentrate in two confusion modes:
//!    S2/S4/S6 are mistaken *for* S1 and S5 is mistaken for S2/S6.
//!
//! So an observed S1 may really be S2, S4 or S6, and an observed S2 or S6
//! may really be S5.

use echowrite_dtw::ConfusionMatrix;
use echowrite_gesture::Stroke;

/// Correction rules: for each *observed* stroke, the true strokes it might
/// have been.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CorrectionRules {
    /// `alternatives[observed.index()]` lists candidate true strokes.
    alternatives: [Vec<Stroke>; 6],
}

impl CorrectionRules {
    /// The paper's rules: observed S1 → {S2, S4, S6}; observed S2 → {S5};
    /// observed S6 → {S5}.
    pub fn paper() -> Self {
        let mut alternatives: [Vec<Stroke>; 6] = Default::default();
        alternatives[Stroke::S1.index()] = vec![Stroke::S2, Stroke::S4, Stroke::S6];
        alternatives[Stroke::S2.index()] = vec![Stroke::S5];
        alternatives[Stroke::S6.index()] = vec![Stroke::S5];
        CorrectionRules { alternatives }
    }

    /// No correction at all (the ablation baseline of Fig. 15).
    pub fn none() -> Self {
        CorrectionRules { alternatives: Default::default() }
    }

    /// Derives rules from an empirical confusion matrix: for every pair
    /// with `P(observed|truth) ≥ min_rate` (truth ≠ observed), the observed
    /// stroke gains `truth` as an alternative — the self-adjusting variant
    /// the paper's Sec. VII-C (user-defined schemes) calls for.
    pub fn from_confusion(matrix: &ConfusionMatrix, min_rate: f64) -> Self {
        let mut alternatives: [Vec<Stroke>; 6] = Default::default();
        for truth in Stroke::ALL {
            let total = matrix.row_total(truth);
            if total == 0 {
                continue;
            }
            for observed in Stroke::ALL {
                if observed == truth {
                    continue;
                }
                let rate = matrix.count(truth, observed) as f64 / total as f64;
                if rate >= min_rate {
                    alternatives[observed.index()].push(truth);
                }
            }
        }
        CorrectionRules { alternatives }
    }

    /// Candidate true strokes for an observed stroke (excluding itself).
    pub fn alternatives(&self, observed: Stroke) -> &[Stroke] {
        &self.alternatives[observed.index()]
    }

    /// All corrected sequences at substitution edit distance exactly 1:
    /// each applies one rule at one position. The original sequence is not
    /// included.
    pub fn corrected_sequences(&self, observed: &[Stroke]) -> Vec<Vec<Stroke>> {
        let mut out = Vec::new();
        for (i, &s) in observed.iter().enumerate() {
            for &alt in self.alternatives(s) {
                let mut seq = observed.to_vec();
                seq[i] = alt;
                out.push(seq);
            }
        }
        out
    }

    /// Total number of rules (observed→truth pairs).
    pub fn rule_count(&self) -> usize {
        self.alternatives.iter().map(|v| v.len()).sum()
    }
}

impl Default for CorrectionRules {
    fn default() -> Self {
        CorrectionRules::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_rules_match_section_3c() {
        let r = CorrectionRules::paper();
        assert_eq!(r.alternatives(Stroke::S1), &[Stroke::S2, Stroke::S4, Stroke::S6]);
        assert_eq!(r.alternatives(Stroke::S2), &[Stroke::S5]);
        assert_eq!(r.alternatives(Stroke::S6), &[Stroke::S5]);
        assert!(r.alternatives(Stroke::S3).is_empty());
        assert!(r.alternatives(Stroke::S4).is_empty());
        assert!(r.alternatives(Stroke::S5).is_empty());
        assert_eq!(r.rule_count(), 5);
    }

    #[test]
    fn corrected_sequences_are_edit_distance_one() {
        let r = CorrectionRules::paper();
        let observed = vec![Stroke::S1, Stroke::S3, Stroke::S2];
        let variants = r.corrected_sequences(&observed);
        // S1 has 3 alternatives, S3 none, S2 one → 4 variants.
        assert_eq!(variants.len(), 4);
        for v in &variants {
            assert_eq!(v.len(), observed.len());
            let diff = v.iter().zip(&observed).filter(|(a, b)| a != b).count();
            assert_eq!(diff, 1, "variant {v:?} is not edit distance 1");
        }
        assert!(!variants.contains(&observed));
    }

    #[test]
    fn no_rules_means_no_variants() {
        let r = CorrectionRules::none();
        assert!(r.corrected_sequences(&[Stroke::S1, Stroke::S2]).is_empty());
        assert_eq!(r.rule_count(), 0);
    }

    #[test]
    fn empty_sequence_has_no_variants() {
        assert!(CorrectionRules::paper().corrected_sequences(&[]).is_empty());
    }

    #[test]
    fn variant_count_formula() {
        // Each observed S1 contributes 3 variants, S2 and S6 one each.
        let r = CorrectionRules::paper();
        let seq = vec![Stroke::S1, Stroke::S1, Stroke::S6];
        assert_eq!(r.corrected_sequences(&seq).len(), 3 + 3 + 1);
    }

    #[test]
    fn from_confusion_discovers_paper_like_rules() {
        let mut m = ConfusionMatrix::new();
        // S4 is recognized as S1 20% of the time.
        for _ in 0..80 {
            m.record(Stroke::S4, Stroke::S4);
        }
        for _ in 0..20 {
            m.record(Stroke::S4, Stroke::S1);
        }
        // S3 is nearly perfect — a single slip below the threshold.
        for _ in 0..99 {
            m.record(Stroke::S3, Stroke::S3);
        }
        m.record(Stroke::S3, Stroke::S2);
        let r = CorrectionRules::from_confusion(&m, 0.05);
        assert_eq!(r.alternatives(Stroke::S1), &[Stroke::S4]);
        assert!(r.alternatives(Stroke::S2).is_empty());
    }

    #[test]
    fn from_confusion_empty_matrix_has_no_rules() {
        let r = CorrectionRules::from_confusion(&ConfusionMatrix::new(), 0.05);
        assert_eq!(r.rule_count(), 0);
    }
}
