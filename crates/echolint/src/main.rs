//! The `echolint` CLI.
//!
//! ```text
//! cargo run -p echolint -- --workspace                 # lint the whole tree
//! cargo run -p echolint -- --workspace --format sarif  # SARIF 2.1.0 to stdout
//! cargo run -p echolint -- --workspace --graph dot     # call-graph dump
//! cargo run -p echolint -- --workspace --jobs 1        # force a serial scan
//! cargo run -p echolint -- crates/dsp/src/fft.rs       # lint specific files
//! ```
//!
//! Exits 0 when clean, 1 when any diagnostic fires, 2 on usage/I/O errors.
//! `--format json|sarif` prints the machine-readable document either way —
//! the exit code is the pass/fail signal, the document is the payload.

use echolint::{analyze_workspace, Parallelism};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

enum Format {
    Text,
    Json,
    Sarif,
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut root = PathBuf::from(".");
    let mut workspace = false;
    let mut format = Format::Text;
    let mut graph_dot = false;
    let mut par = Parallelism::Auto;
    let mut files: Vec<PathBuf> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--workspace" => workspace = true,
            "--root" => match it.next() {
                Some(r) => root = PathBuf::from(r),
                None => {
                    eprintln!("echolint: --root needs a path");
                    return ExitCode::from(2);
                }
            },
            "--format" => match it.next().map(String::as_str) {
                Some("text") => format = Format::Text,
                Some("json") => format = Format::Json,
                Some("sarif") => format = Format::Sarif,
                other => {
                    eprintln!("echolint: --format needs text|json|sarif, got {other:?}");
                    return ExitCode::from(2);
                }
            },
            "--graph" => match it.next().map(String::as_str) {
                Some("dot") => graph_dot = true,
                other => {
                    eprintln!("echolint: --graph needs `dot`, got {other:?}");
                    return ExitCode::from(2);
                }
            },
            "--jobs" => match it.next().and_then(|n| n.parse::<usize>().ok()) {
                Some(n) if n >= 1 => par = Parallelism::Threads(n),
                _ => {
                    eprintln!("echolint: --jobs needs a positive integer");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!(
                    "usage: echolint [--root DIR] --workspace [--format text|json|sarif] [--graph dot] [--jobs N]\n       echolint [--root DIR] FILE.rs…"
                );
                return ExitCode::SUCCESS;
            }
            f => files.push(PathBuf::from(f)),
        }
    }
    // When invoked via `cargo run -p echolint`, the cwd is the workspace
    // root already; fall back to the manifest's grandparent otherwise.
    if workspace && !root.join("crates").is_dir() {
        let from_manifest = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        if from_manifest.join("crates").is_dir() {
            root = from_manifest;
        }
    }

    if graph_dot && !workspace {
        eprintln!("echolint: --graph dot needs --workspace (the graph is workspace-wide)");
        return ExitCode::from(2);
    }

    let result = if workspace {
        analyze_workspace(&root, par)
    } else if files.is_empty() {
        eprintln!("echolint: pass --workspace or one or more .rs files (see --help)");
        return ExitCode::from(2);
    } else {
        files
            .iter()
            .try_fold(Vec::new(), |mut acc, f| {
                acc.extend(echolint::lint_file(&root, f)?);
                Ok(acc)
            })
            .map(|diags| echolint::Analysis { diags, graph: Default::default() })
    };

    match result {
        Ok(analysis) => {
            if graph_dot {
                print!("{}", analysis.graph.to_dot());
                return ExitCode::SUCCESS;
            }
            let diags = &analysis.diags;
            match format {
                Format::Text if diags.is_empty() => println!("echolint: clean"),
                Format::Text => {
                    for d in diags {
                        println!("{d}");
                    }
                    println!("echolint: {} diagnostic(s)", diags.len());
                }
                Format::Json => print!("{}", echolint::to_json(diags)),
                Format::Sarif => print!("{}", echolint::to_sarif(diags)),
            }
            if diags.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("echolint: {e}");
            ExitCode::from(2)
        }
    }
}
