//! Plain-text result tables for the experiment runners.

use std::fmt;

/// A printable result table (one per paper figure/table).
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    /// Title, e.g. `"Fig. 12 — stroke accuracy per environment"`.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows (already formatted).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row length differs from the header length.
    pub fn push_row(&mut self, row: Vec<String>) {
        assert_eq!(row.len(), self.headers.len(), "row/header length mismatch");
        self.rows.push(row);
    }

    /// Convenience for rows of displayable items.
    pub fn row<D: fmt::Display>(&mut self, items: &[D]) {
        self.push_row(items.iter().map(|i| i.to_string()).collect());
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        writeln!(f, "## {}", self.title)?;
        let line = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            write!(f, "|")?;
            for (i, c) in cells.iter().enumerate() {
                write!(f, " {:<w$} |", c, w = widths[i])?;
            }
            writeln!(f)
        };
        line(f, &self.headers)?;
        let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        line(f, &sep)?;
        for row in &self.rows {
            line(f, row)?;
        }
        Ok(())
    }
}

/// Formats a ratio as a percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", 100.0 * x)
}

/// Formats a float with one decimal.
pub fn f1(x: f64) -> String {
    format!("{x:.1}")
}

/// Formats a float with two decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_and_formats() {
        let mut t = Table::new("Demo", &["name", "value"]);
        t.row(&["a", "1"]);
        t.push_row(vec!["bb".into(), "22".into()]);
        let text = t.to_string();
        assert!(text.contains("## Demo"));
        assert!(text.contains("| name |"));
        assert!(text.contains("| bb   | 22    |") || text.contains("| bb"));
        assert_eq!(text.lines().count(), 5);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn rejects_ragged_rows() {
        let mut t = Table::new("x", &["a", "b"]);
        t.push_row(vec!["only-one".into()]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(pct(0.944), "94.4%");
        assert_eq!(f1(7.46), "7.5");
        assert_eq!(f2(7.456), "7.46");
    }
}
