//! Frame-at-a-time profile extraction and segmentation for the incremental
//! streaming path.
//!
//! Three cooperating pieces, each emitting values only once they are final
//! (bitwise equal to the batch pipeline run over the whole session):
//!
//! - [`ProfileBuilder`] — MVCE contour + guard deadzone + the window-3
//!   moving average. A smoothed value is final two frames behind the raw
//!   contour (the shrinking-edge values are resolved by
//!   [`ProfileBuilder::finish`]).
//! - [`IncrementalDiff`] — Holoborodko's noise-robust first difference.
//!   `acc[j]` is final three frames behind the smoothed profile; the
//!   replicated edge values and the `n < 5` all-zeros rule are resolved at
//!   finish.
//! - [`StreamingSegmenter`] — a resumable interpreter of
//!   [`Segmenter::segment`]'s scan loop. It consumes shift/acceleration
//!   frames one at a time, decides arm/end checks as soon as their windows
//!   are decidable for *every* possible session length, suspends otherwise,
//!   and on [`StreamingSegmenter::finish`] replays the batch loop verbatim
//!   from its checkpoint — so the concatenation of segments emitted early
//!   and at finish equals the offline segmentation exactly.

use crate::mvce::{column_contour_row, deadzone_hz};
use crate::segment::{SegmentConfig, StrokeSegment};

/// Incremental MVCE + moving average: push binary columns, receive final
/// smoothed Doppler shifts (Hz).
#[derive(Debug, Clone)]
pub struct ProfileBuilder {
    carrier_row: usize,
    guard_bins: usize,
    bin_hz: f64,
    /// Last raw (deadzoned) contour values, newest last; at most 3 kept.
    tail: [f64; 3],
    /// Raw contour values received.
    m: usize,
    finished: bool,
}

impl ProfileBuilder {
    /// Creates a builder. `bin_hz` converts contour rows to Hz (use 1.0 for
    /// metadata-free matrices, matching the batch extractor's fallback).
    pub fn new(carrier_row: usize, guard_bins: usize, bin_hz: f64) -> Self {
        ProfileBuilder {
            carrier_row,
            guard_bins,
            bin_hz,
            tail: [0.0; 3],
            m: 0,
            finished: false,
        }
    }

    /// Raw columns consumed so far.
    pub fn columns_in(&self) -> usize {
        self.m
    }

    /// Restores the builder to its fresh state in place (the carrier
    /// geometry and bin scale are session-invariant and kept).
    pub fn reset(&mut self) {
        self.tail = [0.0; 3];
        self.m = 0;
        self.finished = false;
    }

    /// Pushes one binary column; returns the next smoothed shift once it is
    /// final (the value at index `m − 2` after the `m`-th column).
    pub fn push_column(&mut self, column: &[f64]) -> Option<f64> {
        debug_assert!(!self.finished, "push_column after finish");
        let row = column_contour_row(column, self.carrier_row, self.guard_bins);
        let hz = deadzone_hz(row, self.guard_bins, self.bin_hz);
        // echolint: allow(no-panic-path) -- constant indices into a fixed [f64; 3] array are compile-checked
        self.tail = [self.tail[1], self.tail[2], hz];
        self.m += 1;
        let out = if self.m >= 2 {
            // smoothed[i] for i = m−2: window [max(i−1,0), i+2) is fully
            // available and can no longer grow on the right (i+2 = m ≤ n).
            let i = self.m - 2;
            if i == 0 {
                Some(self.mean_of_newest(2, 2))
            } else {
                Some(self.mean_of_newest(3, 3))
            }
        } else {
            None
        };
        if echowrite_trace::enabled() {
            if let Some(hz) = out {
                echowrite_trace::counter(
                    echowrite_trace::Stage::Profile,
                    "shift_hz",
                    echowrite_trace::TICK_UNSET,
                    hz,
                );
            }
        }
        out
    }

    /// Resolves the last smoothed value (the shrinking right edge);
    /// `None` only if no column was ever pushed.
    pub fn finish(&mut self) -> Option<f64> {
        if self.finished {
            return None;
        }
        self.finished = true;
        match self.m {
            0 => None,
            // smoothed[0] with n = 1: window [0, 1).
            1 => Some(self.mean_of_newest(1, 1)),
            // smoothed[n−1]: window [n−2, n).
            _ => Some(self.mean_of_newest(2, 2)),
        }
    }

    /// Mean of the newest `take` raw values over a window of `count`
    /// (ascending order, matching `x[lo..hi].iter().sum()`).
    fn mean_of_newest(&self, take: usize, count: usize) -> f64 {
        let mut sum = 0.0;
        for v in &self.tail[3 - take..] {
            sum += *v;
        }
        sum / count as f64
    }

    /// Captures the dynamic state (retained tail, column count, finish
    /// flag); the carrier geometry and bin scale are config-derived and not
    /// included.
    pub fn export_state(&self) -> ProfileBuilderState {
        ProfileBuilderState { tail: self.tail, m: self.m, finished: self.finished }
    }

    /// Overwrites the dynamic state with a previously exported one. Every
    /// field combination is memory-safe, so this cannot fail.
    pub fn restore_state(&mut self, state: &ProfileBuilderState) {
        self.tail = state.tail;
        self.m = state.m;
        self.finished = state.finished;
    }
}

/// Plan-independent dynamic state of a [`ProfileBuilder`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ProfileBuilderState {
    /// Last raw (deadzoned) contour values, newest last.
    pub tail: [f64; 3],
    /// Raw contour values received.
    pub m: usize,
    /// Whether `finish` has run.
    pub finished: bool,
}

/// Incremental Holoborodko first difference, bitwise equal to
/// [`echowrite_dsp::filters::holoborodko_diff`] over the full sequence.
#[derive(Debug, Clone)]
pub struct IncrementalDiff {
    /// Last five inputs, newest last.
    tail: [f64; 5],
    /// Inputs received.
    m: usize,
    /// Outputs emitted.
    emitted: usize,
    finished: bool,
}

impl IncrementalDiff {
    /// Creates a differentiator.
    pub fn new() -> Self {
        IncrementalDiff { tail: [0.0; 5], m: 0, emitted: 0, finished: false }
    }

    /// Restores the differentiator to its fresh state.
    pub fn reset(&mut self) {
        self.tail = [0.0; 5];
        self.m = 0;
        self.emitted = 0;
        self.finished = false;
    }

    /// The 5-point stencil on the retained tail: `y[m−5..m]`, index `j`
    /// being the stencil centre `m − 3`.
    fn stencil(&self) -> f64 {
        let y = &self.tail;
        // echolint: allow(no-panic-path) -- constant indices into a fixed [f64; 5] array are compile-checked
        (2.0 * (y[3] - y[1]) + (y[4] - y[0])) / 8.0
    }

    /// Pushes one smoothed shift, appending every newly final acceleration
    /// value to `out` (zero or more; three when the fifth input arrives,
    /// resolving the replicated left edge).
    pub fn push(&mut self, y: f64, out: &mut Vec<f64>) {
        debug_assert!(!self.finished, "push after finish");
        // echolint: allow(no-panic-path) -- constant indices into a fixed [f64; 5] array are compile-checked
        self.tail = [self.tail[1], self.tail[2], self.tail[3], self.tail[4], y];
        self.m += 1;
        if self.m == 5 {
            // acc[2] is the first interior value; acc[0] and acc[1]
            // replicate it.
            let v = self.stencil();
            out.push(v);
            out.push(v);
            out.push(v);
            self.emitted = 3;
        } else if self.m > 5 {
            out.push(self.stencil());
            self.emitted += 1;
        }
    }

    /// Flushes the right edge: for `n ≥ 5` the replicated `acc[n−2]` and
    /// `acc[n−1]`; for `n < 5` the all-zeros sequence.
    pub fn finish(&mut self, out: &mut Vec<f64>) {
        if self.finished {
            return;
        }
        self.finished = true;
        if self.m < 5 {
            debug_assert_eq!(self.emitted, 0);
            for _ in 0..self.m {
                out.push(0.0);
            }
            return;
        }
        // acc[n−2] = acc[n−1] = acc[n−3] (the newest interior value).
        let v = self.stencil();
        out.push(v);
        out.push(v);
        self.emitted += 2;
        debug_assert_eq!(self.emitted, self.m);
    }

    /// Captures the dynamic state (retained tail, input/output counts,
    /// finish flag).
    pub fn export_state(&self) -> IncrementalDiffState {
        IncrementalDiffState {
            tail: self.tail,
            m: self.m,
            emitted: self.emitted,
            finished: self.finished,
        }
    }

    /// Overwrites the dynamic state with a previously exported one. Every
    /// field combination is memory-safe, so this cannot fail.
    pub fn restore_state(&mut self, state: &IncrementalDiffState) {
        self.tail = state.tail;
        self.m = state.m;
        self.emitted = state.emitted;
        self.finished = state.finished;
    }
}

/// Dynamic state of an [`IncrementalDiff`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct IncrementalDiffState {
    /// Last five inputs, newest last.
    pub tail: [f64; 5],
    /// Inputs received.
    pub m: usize,
    /// Outputs emitted.
    pub emitted: usize,
    /// Whether `finish` has run.
    pub finished: bool,
}

impl Default for IncrementalDiff {
    fn default() -> Self {
        IncrementalDiff::new()
    }
}

/// A stroke segment decided by the streaming segmenter, carrying its own
/// copy of the smoothed shifts so the caller can classify it even after the
/// segmenter trims its internal windows.
#[derive(Debug, Clone, PartialEq)]
pub struct SegmentedStroke {
    /// The decided span in absolute frames.
    pub segment: StrokeSegment,
    /// `shifts[start..end]` of the session profile.
    pub shifts: Vec<f64>,
}

/// Absolute-indexed, lazily trimmed tape of f64 frames.
#[derive(Debug, Clone, Default)]
struct Tape {
    data: Vec<f64>,
    base: usize,
}

impl Tape {
    fn push(&mut self, v: f64) {
        self.data.push(v);
    }

    /// Total frames ever pushed (absolute length).
    fn len(&self) -> usize {
        self.base + self.data.len()
    }

    fn get(&self, i: usize) -> f64 {
        self.data[i - self.base]
    }

    fn range(&self, lo: usize, hi: usize) -> &[f64] {
        &self.data[lo - self.base..hi - self.base]
    }

    /// Marks frames below `lo` dead; physically compacts only when the dead
    /// prefix dominates, so the amortized cost is O(1) per frame.
    fn trim_to(&mut self, lo: usize) {
        if lo <= self.base {
            return;
        }
        let dead = lo - self.base;
        if dead > self.data.len() / 2 && dead > 256 {
            self.data.drain(..dead);
            self.base = lo;
        }
    }

    /// Retained physical length (for boundedness tests).
    fn retained(&self) -> usize {
        self.data.len()
    }

    /// Empties the tape in place, keeping its allocation.
    fn clear(&mut self) {
        self.data.clear();
        self.base = 0;
    }
}

/// Interpreter position inside the batch scan loop.
#[derive(Debug, Clone, Copy)]
enum SegState {
    /// Outer loop at index `i`, not armed.
    Scan { i: usize },
    /// Armed at `i` with backtracked `start`; forward search at `k`.
    Forward { i: usize, start: usize, k: usize },
    /// Segment ended at `end` (already emitted/filtered); waiting to learn
    /// `min(end_run, n − end)` for the resume index.
    Gap { end: usize },
}

/// A [`Segmenter`](crate::Segmenter) that consumes profile frames one at a
/// time.
///
/// Feed each frame with [`StreamingSegmenter::push_shift`] and (as they
/// become available from [`IncrementalDiff`])
/// [`StreamingSegmenter::push_acc`], then call
/// [`StreamingSegmenter::poll`]. Segments are emitted as soon as their end
/// is decidable for every possible continuation of the stream;
/// [`StreamingSegmenter::finish`] resolves the checks that needed the final
/// length. Emitted segments (early + finish) are exactly the offline
/// [`Segmenter::segment`](crate::Segmenter::segment) output.
#[derive(Debug, Clone)]
pub struct StreamingSegmenter {
    cfg: SegmentConfig,
    beta: f64,
    gamma: f64,
    t_gate: usize,
    /// Column period in µs — converts frame indices to trace ticks.
    hop_us: f64,
    shifts: Tape,
    acc: Tape,
    state: SegState,
    finished: bool,
}

impl StreamingSegmenter {
    /// Creates a streaming segmenter; `hop_s` is the profile's column
    /// period (thresholds scale with it exactly as in the batch segmenter).
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid or `hop_s` is not positive.
    pub fn new(cfg: SegmentConfig, hop_s: f64) -> Self {
        if let Err(msg) = cfg.validate() {
            // echolint: allow(no-panic-path) -- documented `# Panics` contract of StreamingSegmenter::new
            panic!("invalid segmenter config: {msg}");
        }
        assert!(hop_s > 0.0, "hop period must be positive, got {hop_s}");
        let beta = cfg.beta_hz_per_s * hop_s;
        StreamingSegmenter {
            beta,
            gamma: beta * cfg.gamma_ratio,
            t_gate: cfg.min_frames.max(5),
            hop_us: hop_s * 1_000_000.0,
            cfg,
            shifts: Tape::default(),
            acc: Tape::default(),
            state: SegState::Scan { i: 0 },
            finished: false,
        }
    }

    /// Restores the segmenter to its fresh state in place, reusing the tape
    /// allocations (the thresholds are config-derived and kept).
    pub fn reset(&mut self) {
        self.shifts.clear();
        self.acc.clear();
        self.state = SegState::Scan { i: 0 };
        self.finished = false;
    }

    /// Appends one smoothed shift frame (Hz).
    pub fn push_shift(&mut self, hz: f64) {
        debug_assert!(!self.finished, "push_shift after finish");
        self.shifts.push(hz);
    }

    /// Appends one acceleration frame (Hz/frame). Must be fed in order and
    /// must trail or match the shift tape.
    pub fn push_acc(&mut self, a: f64) {
        debug_assert!(!self.finished, "push_acc after finish");
        self.acc.push(a);
        debug_assert!(self.acc.len() <= self.shifts.len(), "acceleration ahead of shifts");
    }

    /// Shift frames consumed so far.
    pub fn frames(&self) -> usize {
        self.shifts.len()
    }

    /// Physically retained frames (both tapes), for boundedness checks.
    pub fn retained_frames(&self) -> usize {
        self.shifts.retained().max(self.acc.retained())
    }

    /// Advances the interpreter as far as mid-stream decidability allows,
    /// appending every newly decided (and filter-passing) segment.
    pub fn poll(&mut self, out: &mut Vec<SegmentedStroke>) {
        if self.finished || self.shifts.len() < self.t_gate {
            return;
        }
        let n_sh = self.shifts.len();
        let n_ac = self.acc.len();
        loop {
            match self.state {
                SegState::Scan { i } => {
                    let run_end = i + self.cfg.arm_run;
                    let avail = n_ac.min(run_end);
                    // Any below-β frame inside the window kills this arm
                    // point for every possible n.
                    let failed = i < avail
                        && self.acc.range(i, avail).iter().any(|a| a.abs() <= self.beta);
                    if failed {
                        self.state = SegState::Scan { i: i + 1 };
                        continue;
                    }
                    if n_ac < run_end {
                        return; // window incomplete, all hot so far
                    }
                    let (start, best) = self.backtrack(i);
                    if best > self.cfg.start_max_hz {
                        self.state = SegState::Scan { i: i + 1 };
                        continue;
                    }
                    self.state = SegState::Forward { i, start, k: i + 1 };
                }
                SegState::Forward { i, start, k } => {
                    // Quiet check: any hot frame in the available prefix
                    // fails it for every n; a complete all-quiet window
                    // passes it for every n.
                    let q_end = k + self.cfg.end_run;
                    let q_avail = n_ac.min(q_end);
                    let hot = k < q_avail
                        && self.acc.range(k, q_avail).iter().any(|a| a.abs() >= self.gamma);
                    let quiet_pass = !hot && n_ac >= q_end;
                    let end_decided = if quiet_pass {
                        true
                    } else {
                        // Rest check: a violation in the available prefix
                        // fails it whether or not the window fits before n;
                        // a complete violation-free window passes — and if
                        // the quiet window was truncated-but-clean, *either*
                        // check ends the stroke at k, so the end is decided
                        // even though the quiet check itself is not.
                        let r_end = k + self.cfg.rest_run;
                        let r_avail = n_sh.min(r_end);
                        let viol = k < r_avail
                            && self
                                .shifts
                                .range(k, r_avail)
                                .iter()
                                .any(|s| s.abs() > self.cfg.rest_max_hz);
                        let rest_pass = !viol && n_sh >= r_end;
                        if rest_pass && n_ac >= k {
                            true
                        } else if hot && viol {
                            self.state = SegState::Forward { i, start, k: k + 1 };
                            continue;
                        } else {
                            return; // undecidable until more data or finish
                        }
                    };
                    if end_decided {
                        let end = k;
                        self.emit(start, end, out);
                        self.state = SegState::Gap { end };
                    }
                }
                SegState::Gap { end } => {
                    // Resume index needs min(end_run, n − end); decidable
                    // once the full quiet run fits before the tape head.
                    if n_sh < end + self.cfg.end_run {
                        return;
                    }
                    let next = end + self.cfg.end_run;
                    self.state = SegState::Scan { i: next };
                    let low = next.saturating_sub(self.cfg.max_backtrack);
                    self.shifts.trim_to(low);
                    self.acc.trim_to(low);
                }
            }
        }
    }

    /// Ends the session: replays the batch loop verbatim from the
    /// checkpoint, with the final length known. All acceleration frames
    /// must have been fed (the diff's own `finish` output included).
    pub fn finish(&mut self, out: &mut Vec<SegmentedStroke>) {
        if self.finished {
            return;
        }
        self.finished = true;
        let n = self.shifts.len();
        if n < self.t_gate {
            return;
        }
        debug_assert_eq!(self.acc.len(), n, "acceleration not fully fed before finish");
        match self.state {
            SegState::Scan { i } => self.batch_from(i, n, out),
            SegState::Forward { i, start, k } => {
                let end = self.forward_from(k, n);
                self.emit(start, end, out);
                let next = end.max(i + 1) + self.cfg.end_run.min(n - end.min(n));
                self.batch_from(next, n, out);
            }
            SegState::Gap { end } => {
                let next = end + self.cfg.end_run.min(n - end);
                self.batch_from(next, n, out);
            }
        }
    }

    /// The batch backward search for the near-zero start (final data only).
    fn backtrack(&self, i: usize) -> (usize, f64) {
        let lo = i.saturating_sub(self.cfg.max_backtrack);
        let mut start = i;
        let mut best = self.shifts.get(i).abs();
        let mut j = i;
        while j > lo && best > self.cfg.zero_shift_eps {
            j -= 1;
            let v = self.shifts.get(j).abs();
            if v < best {
                best = v;
                start = j;
            } else {
                break;
            }
        }
        (start, best)
    }

    /// The batch forward end search from `k`, with the final `n` known.
    fn forward_from(&self, mut k: usize, n: usize) -> usize {
        let mut end = n;
        while k < n {
            let quiet_end = (k + self.cfg.end_run).min(n);
            if self.acc.range(k, quiet_end).iter().all(|a| a.abs() < self.gamma) {
                end = k;
                break;
            }
            let rest_end = k + self.cfg.rest_run;
            if rest_end <= n
                && self
                    .shifts
                    .range(k, rest_end)
                    .iter()
                    .all(|s| s.abs() <= self.cfg.rest_max_hz)
            {
                end = k;
                break;
            }
            k += 1;
        }
        end
    }

    /// The batch scan loop from `i` with the final `n` known.
    fn batch_from(&mut self, mut i: usize, n: usize, out: &mut Vec<SegmentedStroke>) {
        while i < n {
            let run_end = i + self.cfg.arm_run;
            if run_end > n || self.acc.range(i, run_end).iter().any(|a| a.abs() <= self.beta) {
                i += 1;
                continue;
            }
            let (start, best) = self.backtrack(i);
            if best > self.cfg.start_max_hz {
                i += 1;
                continue;
            }
            let end = self.forward_from(i + 1, n);
            self.emit(start, end, out);
            i = end.max(i + 1) + self.cfg.end_run.min(n - end.min(n));
        }
    }

    /// Captures the dynamic state of this segmenter (both tapes with their
    /// absolute bases, the interpreter position, and the finish flag); the
    /// thresholds are config-derived and not included.
    pub fn export_state(&self) -> StreamingSegmenterState {
        StreamingSegmenterState {
            shifts_base: self.shifts.base,
            shifts: self.shifts.data.clone(),
            acc_base: self.acc.base,
            acc: self.acc.data.clone(),
            phase: match self.state {
                SegState::Scan { i } => SegmenterPhase::Scan { i },
                SegState::Forward { i, start, k } => SegmenterPhase::Forward { i, start, k },
                SegState::Gap { end } => SegmenterPhase::Gap { end },
            },
            finished: self.finished,
        }
    }

    /// Overwrites this segmenter's dynamic state with a previously exported
    /// one, validating the interpreter position against the tapes first so
    /// a corrupted state is rejected instead of panicking on a later poll.
    /// The segmenter must have been built with the same config and hop the
    /// state was exported under.
    pub fn restore_state(&mut self, state: &StreamingSegmenterState) -> Result<(), &'static str> {
        let n_sh = state.shifts_base + state.shifts.len();
        let n_ac = state.acc_base + state.acc.len();
        if n_ac > n_sh {
            return Err("segmenter state: acceleration tape ahead of shifts");
        }
        let bases_ok = |limit: usize| state.shifts_base <= limit && state.acc_base <= limit;
        match state.phase {
            SegmenterPhase::Scan { i } => {
                if !bases_ok(i.saturating_sub(self.cfg.max_backtrack)) {
                    return Err("segmenter state: tapes trimmed past the scan window");
                }
            }
            SegmenterPhase::Forward { i, start, k } => {
                if start > i || k <= i || k > n_ac {
                    return Err("segmenter state: inconsistent forward-search position");
                }
                if !bases_ok(start.min(i.saturating_sub(self.cfg.max_backtrack))) {
                    return Err("segmenter state: tapes trimmed past the armed stroke");
                }
            }
            SegmenterPhase::Gap { end } => {
                if end > n_sh || !bases_ok(end.saturating_sub(self.cfg.max_backtrack)) {
                    return Err("segmenter state: inconsistent gap position");
                }
            }
        }
        self.shifts.data.clear();
        self.shifts.data.extend_from_slice(&state.shifts);
        self.shifts.base = state.shifts_base;
        self.acc.data.clear();
        self.acc.data.extend_from_slice(&state.acc);
        self.acc.base = state.acc_base;
        self.state = match state.phase {
            SegmenterPhase::Scan { i } => SegState::Scan { i },
            SegmenterPhase::Forward { i, start, k } => SegState::Forward { i, start, k },
            SegmenterPhase::Gap { end } => SegState::Gap { end },
        };
        self.finished = state.finished;
        Ok(())
    }

    /// The batch acceptance filters; pushes the segment (with its shifts)
    /// when they pass.
    fn emit(&mut self, start: usize, end: usize, out: &mut Vec<SegmentedStroke>) {
        let e = end.min(self.shifts.len());
        let active = self
            .acc
            .range(start, e)
            .iter()
            .filter(|a| a.abs() > self.gamma)
            .count();
        let peak = self.shifts.range(start, e).iter().fold(0.0f64, |m, s| m.max(s.abs()));
        let accepted = end - start >= self.cfg.min_frames
            && active >= self.cfg.min_active
            && peak >= self.cfg.min_peak_hz;
        if echowrite_trace::enabled() {
            let tick = (e as f64 * self.hop_us) as u64;
            let name = if accepted { "stroke_emitted" } else { "stroke_filtered" };
            echowrite_trace::annotated(
                echowrite_trace::Stage::Segment,
                name,
                tick,
                (end - start) as f64,
                echowrite_trace::SmallStr::from_display(format_args!("frames {start}..{end}")),
            );
        }
        if accepted {
            out.push(SegmentedStroke {
                segment: StrokeSegment { start, end },
                shifts: self.shifts.range(start, e).to_vec(),
            });
        }
    }
}

/// The streaming segmenter's interpreter position, mirrored into a public
/// shape for state export (see [`StreamingSegmenter::export_state`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SegmenterPhase {
    /// Outer loop at index `i`, not armed.
    Scan {
        /// Current scan index.
        i: usize,
    },
    /// Armed at `i` with backtracked `start`; forward end search at `k`.
    Forward {
        /// Arm index.
        i: usize,
        /// Backtracked stroke start.
        start: usize,
        /// Forward search position.
        k: usize,
    },
    /// Segment ended at `end`; waiting to learn the resume index.
    Gap {
        /// Frame the stroke ended at.
        end: usize,
    },
}

impl Default for SegmenterPhase {
    fn default() -> Self {
        SegmenterPhase::Scan { i: 0 }
    }
}

/// Plan-independent dynamic state of a [`StreamingSegmenter`]: both tapes
/// captured verbatim with their absolute base offsets (trimming is lazy, so
/// the physical window shape matters for bitwise replay), plus the
/// interpreter position.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct StreamingSegmenterState {
    /// Absolute frame index of the first retained shift.
    pub shifts_base: usize,
    /// Retained smoothed shift frames.
    pub shifts: Vec<f64>,
    /// Absolute frame index of the first retained acceleration frame.
    pub acc_base: usize,
    /// Retained acceleration frames.
    pub acc: Vec<f64>,
    /// Interpreter position inside the scan loop.
    pub phase: SegmenterPhase,
    /// Whether `finish` has run.
    pub finished: bool,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mvce::{extract_profile_with_guard, DEFAULT_GUARD_BINS};
    use crate::profile::DopplerProfile;
    use crate::segment::Segmenter;
    use echowrite_dsp::filters::holoborodko_diff;
    use echowrite_spectro::Spectrogram;

    const HOP: f64 = 0.0232;

    fn add_stroke(shifts: &mut [f64], at: usize, len: usize, peak: f64) {
        for i in 0..len {
            let tau = i as f64 / (len - 1) as f64;
            shifts[at + i] += peak * (std::f64::consts::PI * tau).sin();
        }
    }

    /// Runs the full incremental chain (diff + segmenter) over a smoothed
    /// profile and returns (early segments, finish segments).
    fn run_streaming(profile: &[f64]) -> (Vec<SegmentedStroke>, Vec<SegmentedStroke>) {
        let mut seg = StreamingSegmenter::new(SegmentConfig::paper(), HOP);
        let mut diff = IncrementalDiff::new();
        let mut accs = Vec::new();
        let mut early = Vec::new();
        for &s in profile {
            seg.push_shift(s);
            accs.clear();
            diff.push(s, &mut accs);
            for &a in &accs {
                seg.push_acc(a);
            }
            seg.poll(&mut early);
        }
        accs.clear();
        diff.finish(&mut accs);
        for &a in &accs {
            seg.push_acc(a);
        }
        let mut late = Vec::new();
        seg.finish(&mut late);
        (early, late)
    }

    fn assert_matches_batch(profile: &[f64], label: &str) {
        let batch =
            Segmenter::default().segment(&DopplerProfile::new(profile.to_vec(), HOP));
        let (early, late) = run_streaming(profile);
        let streamed: Vec<SegmentedStroke> =
            early.into_iter().chain(late).collect();
        let spans: Vec<StrokeSegment> = streamed.iter().map(|s| s.segment).collect();
        assert_eq!(spans, batch, "{label}: segment spans diverge");
        for s in &streamed {
            assert_eq!(
                s.shifts,
                &profile[s.segment.start..s.segment.end],
                "{label}: carried shifts diverge"
            );
        }
    }

    #[test]
    fn incremental_diff_matches_batch_bitwise() {
        for n in 0..40usize {
            let y: Vec<f64> = (0..n)
                .map(|i| (i as f64 * 0.7).sin() * 40.0 + (i as f64 * 2.3).cos() * 5.0)
                .collect();
            let batch = holoborodko_diff(&y);
            let mut diff = IncrementalDiff::new();
            let mut got = Vec::new();
            for &v in &y {
                diff.push(v, &mut got);
            }
            diff.finish(&mut got);
            assert_eq!(got.len(), batch.len(), "n = {n}");
            for (i, (a, b)) in got.iter().zip(&batch).enumerate() {
                assert!(a == b, "n = {n}, acc[{i}]: {a} vs {b}");
            }
        }
    }

    #[test]
    fn profile_builder_matches_batch_bitwise() {
        for cols in 0..25usize {
            let rows = 15;
            let mut spec = Spectrogram::zeros(rows, cols);
            for c in 0..cols {
                // A wandering blob above/below the carrier.
                let r = (7 + ((c * 5) % 11) as i64 - 5).clamp(0, rows as i64 - 1) as usize;
                spec.set(r, c, 1.0);
                if c % 3 == 0 && r + 1 < rows {
                    spec.set(r + 1, c, 1.0);
                }
            }
            let batch = extract_profile_with_guard(&spec, DEFAULT_GUARD_BINS);
            let mut builder =
                ProfileBuilder::new(spec.carrier_row(), DEFAULT_GUARD_BINS, 1.0);
            let mut got = Vec::new();
            for c in 0..cols {
                if let Some(v) = builder.push_column(&spec.column(c)) {
                    got.push(v);
                }
            }
            if let Some(v) = builder.finish() {
                got.push(v);
            }
            assert_eq!(got.len(), batch.len(), "cols = {cols}");
            for (i, (a, b)) in got.iter().zip(batch.shifts()).enumerate() {
                assert!(a == b, "cols = {cols}, smoothed[{i}]: {a} vs {b}");
            }
        }
    }

    #[test]
    fn quiet_profile_segments_match() {
        assert_matches_batch(&[0.0; 80], "quiet");
    }

    #[test]
    fn short_profiles_segments_match() {
        for n in 0..8usize {
            assert_matches_batch(&vec![100.0; n], &format!("short-{n}"));
        }
    }

    #[test]
    fn single_stroke_segments_match_and_emit_early() {
        let mut p = vec![0.0; 80];
        add_stroke(&mut p, 20, 14, 60.0);
        assert_matches_batch(&p, "single");
        // The stroke sits well before the tail: it must be decided early.
        let (early, late) = run_streaming(&p);
        assert_eq!(early.len(), 1, "stroke not emitted mid-stream");
        assert!(late.is_empty());
    }

    #[test]
    fn stroke_series_segments_match() {
        let mut p = vec![0.0; 300];
        for k in 0..5 {
            add_stroke(&mut p, 30 + k * 50, 14, if k % 2 == 0 { 55.0 } else { -65.0 });
        }
        assert_matches_batch(&p, "series");
    }

    #[test]
    fn stroke_at_stream_end_is_resolved_at_finish() {
        // The quiet window after the stroke is truncated by the session end:
        // only the finish replay can decide it.
        let mut p = vec![0.0; 40];
        add_stroke(&mut p, 24, 14, 60.0);
        assert_matches_batch(&p, "tail-stroke");
        let (early, late) = run_streaming(&p);
        assert_eq!(early.len() + late.len(), 1);
        assert_eq!(late.len(), 1, "tail stroke should resolve at finish");
    }

    #[test]
    fn rest_terminated_stroke_matches() {
        // After the stroke the shift jitters at ±5 Hz (inside rest_max) with
        // period-4 alternation, keeping |acc| above γ so the quiet check
        // keeps failing — only the rest rule can end the stroke.
        let mut p = vec![0.0; 120];
        add_stroke(&mut p, 20, 14, 60.0);
        for (j, v) in p.iter_mut().enumerate().skip(38).take(60) {
            *v = if (j / 2) % 2 == 0 { 5.0 } else { -5.0 };
        }
        assert_matches_batch(&p, "rest-tail");
    }

    #[test]
    fn interference_profiles_match() {
        let mut p = vec![0.0; 200];
        add_stroke(&mut p, 10, 70, 15.0); // slow drift
        add_stroke(&mut p, 100, 14, 65.0); // real stroke
        assert_matches_batch(&p, "interference");
        // Hot-everywhere profile: the forward search never breaks (end = n).
        let hot: Vec<f64> = (0..60).map(|i| ((i * 37) % 100) as f64 - 50.0).collect();
        assert_matches_batch(&hot, "hot-everywhere");
    }

    #[test]
    fn long_sessions_stay_bounded_and_match() {
        let mut p = vec![0.0; 4000];
        for k in 0..70 {
            add_stroke(&mut p, 25 + k * 55, 14, if k % 2 == 0 { 58.0 } else { -62.0 });
        }
        assert_matches_batch(&p, "long");
        // Retained window must not scale with session length.
        let mut seg = StreamingSegmenter::new(SegmentConfig::paper(), HOP);
        let mut diff = IncrementalDiff::new();
        let mut accs = Vec::new();
        let mut out = Vec::new();
        let mut max_retained = 0usize;
        for &s in &p {
            seg.push_shift(s);
            accs.clear();
            diff.push(s, &mut accs);
            for &a in &accs {
                seg.push_acc(a);
            }
            seg.poll(&mut out);
            max_retained = max_retained.max(seg.retained_frames());
        }
        assert_eq!(out.len(), 70);
        assert!(max_retained < 1200, "retained window grew to {max_retained}");
    }

    #[test]
    fn reset_stages_replay_bitwise() {
        let mut p = vec![0.0; 200];
        add_stroke(&mut p, 30, 14, 55.0);
        add_stroke(&mut p, 120, 14, -65.0);

        let mut seg = StreamingSegmenter::new(SegmentConfig::paper(), HOP);
        let mut diff = IncrementalDiff::new();
        let run = |seg: &mut StreamingSegmenter, diff: &mut IncrementalDiff| {
            let mut accs = Vec::new();
            let mut out = Vec::new();
            for &s in &p {
                seg.push_shift(s);
                accs.clear();
                diff.push(s, &mut accs);
                for &a in &accs {
                    seg.push_acc(a);
                }
                seg.poll(&mut out);
            }
            accs.clear();
            diff.finish(&mut accs);
            for &a in &accs {
                seg.push_acc(a);
            }
            seg.finish(&mut out);
            out
        };
        let first = run(&mut seg, &mut diff);
        seg.reset();
        diff.reset();
        let second = run(&mut seg, &mut diff);
        assert_eq!(first, second, "reset segmenter/diff must replay bitwise");
        assert_eq!(first.len(), 2);
    }

    #[test]
    fn state_roundtrip_resumes_bitwise() {
        let mut p = vec![0.0; 260];
        add_stroke(&mut p, 30, 14, 55.0);
        add_stroke(&mut p, 110, 14, -65.0);
        add_stroke(&mut p, 200, 14, 60.0);
        let (we, wl) = run_streaming(&p);
        let want: Vec<SegmentedStroke> = we.into_iter().chain(wl).collect();

        // Suspend while scanning, mid-stroke (armed), and inside the gap.
        for cut in [10usize, 36, 118, 205, 255] {
            let mut seg = StreamingSegmenter::new(SegmentConfig::paper(), HOP);
            let mut diff = IncrementalDiff::new();
            let mut builder_out = Vec::new();
            let mut accs = Vec::new();
            let mut feed = |seg: &mut StreamingSegmenter,
                            diff: &mut IncrementalDiff,
                            out: &mut Vec<SegmentedStroke>,
                            s: f64| {
                seg.push_shift(s);
                accs.clear();
                diff.push(s, &mut accs);
                for &a in &accs {
                    seg.push_acc(a);
                }
                seg.poll(out);
            };
            for &s in &p[..cut] {
                feed(&mut seg, &mut diff, &mut builder_out, s);
            }
            let seg_state = seg.export_state();
            let diff_state = diff.export_state();
            drop(seg);
            drop(diff);
            let mut seg = StreamingSegmenter::new(SegmentConfig::paper(), HOP);
            seg.restore_state(&seg_state).expect("valid exported state");
            let mut diff = IncrementalDiff::new();
            diff.restore_state(&diff_state);
            for &s in &p[cut..] {
                feed(&mut seg, &mut diff, &mut builder_out, s);
            }
            accs.clear();
            diff.finish(&mut accs);
            for &a in &accs {
                seg.push_acc(a);
            }
            seg.finish(&mut builder_out);
            assert_eq!(builder_out, want, "cut {cut} diverged after restore");
        }
    }

    #[test]
    fn segmenter_restore_rejects_corrupt_state() {
        let mut p = vec![0.0; 120];
        add_stroke(&mut p, 30, 14, 55.0);
        let mut seg = StreamingSegmenter::new(SegmentConfig::paper(), HOP);
        let mut diff = IncrementalDiff::new();
        let mut accs = Vec::new();
        let mut out = Vec::new();
        for &s in &p {
            seg.push_shift(s);
            accs.clear();
            diff.push(s, &mut accs);
            for &a in &accs {
                seg.push_acc(a);
            }
            seg.poll(&mut out);
        }
        let good = seg.export_state();
        let mut fresh = StreamingSegmenter::new(SegmentConfig::paper(), HOP);
        assert!(fresh.restore_state(&good).is_ok());

        let mut bad = good.clone();
        for _ in 0..4 {
            bad.acc.push(0.0);
        }
        assert!(fresh.restore_state(&bad).is_err(), "acc ahead of shifts accepted");

        let mut bad = good.clone();
        bad.shifts_base = usize::MAX / 2;
        assert!(fresh.restore_state(&bad).is_err(), "wild tape base accepted");

        let mut bad = good;
        bad.phase = SegmenterPhase::Forward { i: 5, start: 9, k: 6 };
        assert!(fresh.restore_state(&bad).is_err(), "start past arm accepted");
    }

    #[test]
    fn poll_before_gate_emits_nothing() {
        let mut seg = StreamingSegmenter::new(SegmentConfig::paper(), HOP);
        let mut out = Vec::new();
        for _ in 0..3 {
            seg.push_shift(100.0);
            seg.push_acc(100.0);
            seg.poll(&mut out);
        }
        assert!(out.is_empty());
    }

    #[test]
    #[should_panic(expected = "invalid segmenter config")]
    fn rejects_bad_config() {
        StreamingSegmenter::new(
            SegmentConfig { beta_hz_per_s: -1.0, ..SegmentConfig::paper() },
            HOP,
        );
    }
}
