//! `echowrite-serve` — the multi-session serving layer (DESIGN.md §6.4).
//!
//! One process, many concurrent recognition sessions: a sharded
//! [`SessionManager`] pins each session's DSP state to one worker thread
//! (deterministic, lock-free result path), bounded ingress queues give
//! explicit backpressure instead of blocking, an admission controller
//! sheds opens past a high-water mark, a deadline ladder degrades late
//! pushes to segment-only output, and a logical-clock reaper reclaims
//! abandoned sessions — dropping them, or (under
//! [`ReapPolicy::SuspendToStore`]) suspending them into an
//! `echowrite-snapshot` store from which the next command transparently
//! thaws them, bitwise-resumed. A lock-free [`metrics`] registry observes
//! all of it, with wall-clock reads quarantined to that module alone.
//!
//! Dependency-free by construction: std threads and channels only, plus
//! the workspace's own crates.
//!
//! ```
//! use echowrite::{EchoWrite, EchoWriteConfig, Parallelism};
//! use echowrite_serve::{ServeConfig, SessionId, SessionManager};
//!
//! let engine = EchoWrite::with_config(EchoWriteConfig::streaming());
//! let cfg = ServeConfig { shards: Parallelism::Threads(1), ..ServeConfig::default() };
//! let manager = SessionManager::new(engine, cfg).expect("valid config");
//! let _ = manager.open(SessionId(1));
//! let _ = manager.push(SessionId(1), &[0.0; 8192]);
//! let _ = manager.finish(SessionId(1));
//! manager.quiesce();
//! println!("{}", manager.metrics().to_prometheus());
//! ```

pub mod admission;
pub mod config;
pub mod manager;
pub mod metrics;

pub use admission::AdmissionController;
pub use config::{FlightOptions, ReapPolicy, ServeConfig};
pub use manager::{
    EventStream, FlightReason, Request, ServeEvent, SessionId, SessionInfo, SessionManager,
    ShutdownReport, SubmitVerdict,
};
pub use metrics::{MetricsSnapshot, ServeMetrics};
// The flight recorder's data types live in `echowrite-trace`; re-exported
// so serve/obs callers need no direct trace dependency to consume dumps.
pub use echowrite_trace::{flight_to_chrome_json, FlightEntry, FlightRing};
