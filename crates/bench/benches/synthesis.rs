//! Substrate benchmarks: the acoustic channel, kinematics, and DSP
//! primitives everything else stands on.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use echowrite_dsp::{Fft, Stft, StftConfig};
use echowrite_gesture::{Stroke, Writer, WriterParams};
use echowrite_synth::{DeviceProfile, EnvironmentProfile, Scene};
use std::hint::black_box;

fn bench_writer(c: &mut Criterion) {
    c.bench_function("substrate_writer_sequence", |b| {
        b.iter(|| {
            Writer::new(WriterParams::nominal(), 3)
                .write_sequence(black_box(&[Stroke::S5, Stroke::S3, Stroke::S6]))
        })
    });
}

fn bench_scene_render(c: &mut Criterion) {
    let perf = Writer::new(WriterParams::nominal(), 5).write_stroke(Stroke::S2);
    let mut g = c.benchmark_group("substrate_scene_render");
    g.sample_size(10);
    for env in EnvironmentProfile::all_paper_rooms() {
        let scene = Scene::new(DeviceProfile::mate9(), env.clone(), 5);
        g.bench_with_input(BenchmarkId::new("render", &env.name), &scene, |b, s| {
            b.iter(|| s.render(black_box(&perf.trajectory)))
        });
    }
    g.finish();
}

fn bench_fft(c: &mut Criterion) {
    let mut g = c.benchmark_group("substrate_fft");
    for size in [1024usize, 8192] {
        let fft = Fft::new(size);
        let signal: Vec<f64> = (0..size).map(|i| (i as f64 * 0.1).sin()).collect();
        g.bench_with_input(BenchmarkId::new("forward_real", size), &signal, |b, s| {
            b.iter(|| fft.forward_real(black_box(s)))
        });
    }
    g.finish();
}

fn bench_stft(c: &mut Criterion) {
    let stft = Stft::new(StftConfig::paper());
    let audio: Vec<f64> = (0..44_100)
        .map(|i| (2.0 * std::f64::consts::PI * 20_000.0 * i as f64 / 44_100.0).sin())
        .collect();
    c.bench_function("substrate_stft_1s_audio", |b| {
        b.iter(|| stft.process(black_box(&audio)))
    });
}

criterion_group!(benches, bench_writer, bench_scene_render, bench_fft, bench_stft);
criterion_main!(benches);
