//! Bad fixture: malformed and unknown allow markers.

fn f(xs: &[f64]) -> f64 {
    // echolint: allow(no-panic-path)
    xs[0]
}

fn g(xs: &[f64]) -> f64 {
    // echolint: allow(no-such-rule) -- the rule id is misspelled
    xs[0]
}
