//! Figs. 11–13 — the stroke-recognition workload unit.
//!
//! One iteration = recognizing a single written stroke from raw audio,
//! parameterised by stroke, environment (Fig. 12), and device (Fig. 11).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use echowrite_bench::{engine, stroke_trace};
use echowrite_gesture::{Stroke, Writer, WriterParams};
use echowrite_synth::{DeviceProfile, EnvironmentProfile, Scene};
use std::hint::black_box;

fn bench_per_stroke(c: &mut Criterion) {
    let e = engine();
    let mut g = c.benchmark_group("fig12_stroke_recognition");
    g.sample_size(10);
    for stroke in [Stroke::S1, Stroke::S3, Stroke::S5] {
        let audio = stroke_trace(stroke, EnvironmentProfile::meeting_room(), 3);
        g.bench_with_input(BenchmarkId::new("recognize", stroke), &audio, |b, a| {
            b.iter(|| e.recognize_strokes(black_box(a)))
        });
    }
    g.finish();
}

fn bench_per_environment(c: &mut Criterion) {
    let e = engine();
    let mut g = c.benchmark_group("fig12_environments");
    g.sample_size(10);
    for env in EnvironmentProfile::all_paper_rooms() {
        let audio = stroke_trace(Stroke::S2, env.clone(), 5);
        g.bench_with_input(BenchmarkId::new("recognize", &env.name), &audio, |b, a| {
            b.iter(|| e.recognize_strokes(black_box(a)))
        });
    }
    g.finish();
}

fn bench_per_device(c: &mut Criterion) {
    let e = engine();
    let mut g = c.benchmark_group("fig11_devices");
    g.sample_size(10);
    for device in [DeviceProfile::mate9(), DeviceProfile::watch2()] {
        let perf = Writer::new(WriterParams::nominal(), 9).write_stroke(Stroke::S2);
        let audio = Scene::new(device.clone(), EnvironmentProfile::meeting_room(), 9)
            .render(&perf.trajectory);
        g.bench_with_input(BenchmarkId::new("recognize", &device.name), &audio, |b, a| {
            b.iter(|| e.recognize_strokes(black_box(a)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_per_stroke, bench_per_environment, bench_per_device);
criterion_main!(benches);
