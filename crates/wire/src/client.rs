//! A blocking TCP client for the wire protocol — used by tests, the demo,
//! and the `wire_fleet` bench harness.
//!
//! The client is deliberately thin: one socket, one [`FrameDecoder`], no
//! threads. Callers choose their own concurrency (the fleet harness
//! multiplexes many sessions over one client per connection).

use crate::frame::{encode_request, FrameDecoder, FrameError, Request, Response};
use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// The socket failed or closed mid-frame.
    Io(std::io::Error),
    /// The server sent bytes violating the frame grammar.
    Frame(FrameError),
    /// The server closed the connection cleanly between frames.
    Closed,
    /// A verdict frame arrived when no request was outstanding.
    UnexpectedVerdict,
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "socket error: {e}"),
            ClientError::Frame(e) => write!(f, "protocol error: {e}"),
            ClientError::Closed => write!(f, "server closed the connection"),
            ClientError::UnexpectedVerdict => {
                write!(f, "verdict frame arrived with no request outstanding")
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> Self {
        ClientError::Frame(e)
    }
}

/// A blocking wire-protocol client over one TCP connection.
pub struct WireClient {
    stream: TcpStream,
    decoder: FrameDecoder,
    read_buf: Vec<u8>,
    write_buf: Vec<u8>,
    /// Event frames received while waiting for a verdict; drained by
    /// [`WireClient::next_event`] / [`WireClient::try_event`].
    buffered_events: VecDeque<Response>,
    /// The next auto-assigned correlation id (see
    /// [`WireClient::set_next_request_id`]).
    next_request_id: u64,
}

impl WireClient {
    /// Connects to a [`crate::server::WireServer`] at `addr`.
    ///
    /// # Errors
    ///
    /// Socket connect failures.
    pub fn connect(addr: SocketAddr) -> std::io::Result<WireClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(WireClient {
            stream,
            decoder: FrameDecoder::new(),
            read_buf: vec![0u8; 64 * 1024],
            write_buf: Vec::with_capacity(4096),
            buffered_events: VecDeque::new(),
            next_request_id: 1,
        })
    }

    /// Overrides the next auto-assigned correlation id. Ids are client
    /// chosen and only echoed by the server, so callers multiplexing many
    /// connections (e.g. the fleet harness) can carve out disjoint ranges
    /// per connection to keep ids globally unique across a run.
    pub fn set_next_request_id(&mut self, id: u64) {
        self.next_request_id = id;
    }

    /// The correlation id the next request frame will carry.
    pub fn peek_next_request_id(&self) -> u64 {
        self.next_request_id
    }

    /// Sends one request frame without waiting for anything back
    /// (pipelining building block). Returns the auto-assigned correlation
    /// id the frame carried; the answering verdict echoes it.
    ///
    /// # Errors
    ///
    /// Socket write failures.
    pub fn send(&mut self, request: &Request) -> std::io::Result<u64> {
        let id = self.next_request_id;
        self.next_request_id = self.next_request_id.wrapping_add(1);
        self.send_with_id(request, id)?;
        Ok(id)
    }

    /// Sends one request frame under an explicit correlation id.
    ///
    /// # Errors
    ///
    /// Socket write failures.
    pub fn send_with_id(&mut self, request: &Request, request_id: u64) -> std::io::Result<()> {
        self.write_buf.clear();
        encode_request(&mut self.write_buf, request, request_id);
        self.stream.write_all(&self.write_buf)
    }

    /// Receives the next frame of any kind, blocking until one decodes.
    /// Buffered events are returned first, in arrival order.
    ///
    /// # Errors
    ///
    /// Socket failures, grammar violations, or a clean server close.
    pub fn recv(&mut self) -> Result<Response, ClientError> {
        if let Some(ev) = self.buffered_events.pop_front() {
            return Ok(ev);
        }
        self.recv_from_wire()
    }

    /// Receives the next frame directly off the wire, ignoring the
    /// buffered-event queue.
    fn recv_from_wire(&mut self) -> Result<Response, ClientError> {
        loop {
            if let Some(resp) = self.decoder.next_response()? {
                return Ok(resp);
            }
            let n = self.stream.read(&mut self.read_buf)?;
            if n == 0 {
                return Err(ClientError::Closed);
            }
            let Some(bytes) = self.read_buf.get(..n) else {
                return Err(ClientError::Closed);
            };
            self.decoder.extend(bytes);
        }
    }

    /// Sends `request` and blocks until its verdict frame arrives,
    /// buffering any event frames that land in between. The server
    /// guarantees verdicts come back in request order, so with one
    /// request outstanding the next verdict is this request's.
    ///
    /// # Errors
    ///
    /// Socket failures, grammar violations, or a clean server close.
    pub fn request(&mut self, request: &Request) -> Result<Response, ClientError> {
        self.send(request)?;
        loop {
            let resp = self.recv_from_wire()?;
            if resp.is_verdict() {
                return Ok(resp);
            }
            self.buffered_events.push_back(resp);
        }
    }

    /// Like [`WireClient::request`] but under an explicit correlation id.
    ///
    /// # Errors
    ///
    /// Socket failures, grammar violations, or a clean server close.
    pub fn request_with_id(
        &mut self,
        request: &Request,
        request_id: u64,
    ) -> Result<Response, ClientError> {
        self.send_with_id(request, request_id)?;
        loop {
            let resp = self.recv_from_wire()?;
            if resp.is_verdict() {
                return Ok(resp);
            }
            self.buffered_events.push_back(resp);
        }
    }

    /// Blocks until the next *event* frame (`Segment`/`Finished`/
    /// `Reaped`), draining the buffer first.
    ///
    /// # Errors
    ///
    /// Socket failures, grammar violations, a clean server close, or a
    /// verdict frame arriving while no request is outstanding.
    pub fn next_event(&mut self) -> Result<Response, ClientError> {
        if let Some(ev) = self.buffered_events.pop_front() {
            return Ok(ev);
        }
        let resp = self.recv_from_wire()?;
        if resp.is_verdict() {
            return Err(ClientError::UnexpectedVerdict);
        }
        Ok(resp)
    }

    /// Pops a buffered event without touching the socket.
    pub fn try_event(&mut self) -> Option<Response> {
        self.buffered_events.pop_front()
    }

    /// Exports `session` off the server: the session is removed there and
    /// its `echowrite-snapshot` checkpoint returned, `None` for an
    /// unknown id. Events arriving while waiting are buffered as usual.
    ///
    /// # Errors
    ///
    /// Socket failures, grammar violations, a clean server close, or a
    /// non-`Exported` verdict answering the request.
    pub fn export(&mut self, session: u64) -> Result<Option<Vec<u8>>, ClientError> {
        match self.request(&Request::Export { session })? {
            Response::Exported { snapshot, .. } => Ok(snapshot),
            _ => Err(ClientError::UnexpectedVerdict),
        }
    }

    /// Installs an exported checkpoint under `session` on the server,
    /// returning whether it stuck (see [`Response::Imported`]).
    ///
    /// # Errors
    ///
    /// Socket failures, grammar violations, a clean server close, or a
    /// non-`Imported` verdict answering the request.
    pub fn import(&mut self, session: u64, snapshot: Vec<u8>) -> Result<bool, ClientError> {
        match self.request(&Request::Import { session, snapshot })? {
            Response::Imported { ok, .. } => Ok(ok),
            _ => Err(ClientError::UnexpectedVerdict),
        }
    }

    /// Half-closes the write side, telling the server this client is done
    /// sending (the server keeps streaming events until the client drops).
    ///
    /// # Errors
    ///
    /// Socket failures.
    pub fn finish_writes(&mut self) -> std::io::Result<()> {
        self.stream.shutdown(std::net::Shutdown::Write)
    }
}
