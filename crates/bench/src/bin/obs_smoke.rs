//! `obs_smoke` — the CI admin-plane smoke (DESIGN.md §6.11).
//!
//! Boots a serving manager with the flight recorder pointed at a real
//! artifact directory, mounts the [`ObsServer`] beside it, and then does
//! exactly what the `obs-smoke` CI job promises:
//!
//! 1. curls all five endpoint groups (`/healthz`, `/readyz`, `/metrics`,
//!    `/sessions`, `/flight`) plus the `/trace/start|stop|dump`
//!    lifecycle over real loopback sockets;
//! 2. validates the `/metrics` body against the Prometheus
//!    text-exposition contract (every family preceded by `# HELP` +
//!    `# TYPE`, histograms carrying the full cumulative ladder up to
//!    `+Inf` with `_sum`/`_count`, the interpolated quantile gauges
//!    present once observations exist) and writes it to disk for the
//!    job log;
//! 3. forces a shed through a deliberately tiny admission limit and
//!    waits for the flight recorder's Chrome-trace postmortem artifact
//!    to appear in the artifact directory, which CI then uploads.
//!
//! Exits non-zero on the first violated expectation, so a green run is
//! the whole live-introspection contract.

use echowrite::{EchoWrite, EchoWriteConfig, Parallelism};
use echowrite_obs::ObsServer;
use echowrite_serve::{
    FlightOptions, Request, ServeConfig, SessionId, SessionManager, SubmitVerdict,
};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;

/// Five STFT hops per push — the chunk an audio callback hands over.
const CHUNK: usize = 5 * 1024;

struct Args {
    /// Where flight-recorder postmortems land (uploaded by CI).
    artifact_dir: PathBuf,
    /// Where the validated `/metrics` body is written.
    metrics_out: PathBuf,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        artifact_dir: PathBuf::from("flight-artifacts"),
        metrics_out: PathBuf::from("metrics.prom"),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or(format!("{name} needs a value"));
        match flag.as_str() {
            "--artifact-dir" => args.artifact_dir = PathBuf::from(value("--artifact-dir")?),
            "--metrics-out" => args.metrics_out = PathBuf::from(value("--metrics-out")?),
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(args)
}

/// One blocking request against the admin plane; returns (status, body).
fn http(addr: SocketAddr, method: &str, path: &str) -> Result<(u16, String), String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let head = match method {
        "GET" => format!("GET {path} HTTP/1.1\r\nHost: smoke\r\n\r\n"),
        _ => format!("{method} {path} HTTP/1.1\r\nHost: smoke\r\nContent-Length: 0\r\n\r\n"),
    };
    stream.write_all(head.as_bytes()).map_err(|e| format!("{method} {path}: {e}"))?;
    let mut response = String::new();
    stream.read_to_string(&mut response).map_err(|e| format!("read {path}: {e}"))?;
    let status: u16 = response
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("{path}: unparseable status line"))?;
    let body = response.split("\r\n\r\n").nth(1).unwrap_or_default().to_string();
    eprintln!("obs_smoke: {method} {path} {status}");
    Ok((status, body))
}

fn get(addr: SocketAddr, path: &str) -> Result<(u16, String), String> {
    http(addr, "GET", path)
}

/// The Prometheus text-exposition checker: every sample's family must
/// have been announced by `# HELP` and `# TYPE` lines, and histogram
/// families must carry the full cumulative ladder (`+Inf` terminal
/// bucket, `_sum`, `_count`) even at zero observations.
fn validate_exposition(text: &str) -> Result<(), String> {
    use std::collections::BTreeSet;
    let mut helped = BTreeSet::new();
    let mut typed = BTreeSet::new();
    let mut histograms = BTreeSet::new();
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let name = rest.split(' ').next().unwrap_or_default();
            helped.insert(name.to_string());
        } else if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split(' ');
            let name = parts.next().unwrap_or_default().to_string();
            if !helped.contains(&name) {
                return Err(format!("`# TYPE {name}` without a preceding `# HELP`"));
            }
            if parts.next() == Some("histogram") {
                histograms.insert(name.clone());
            }
            typed.insert(name);
        } else if !line.is_empty() {
            let raw = line.split([' ', '{']).next().unwrap_or_default();
            let family = ["_bucket", "_sum", "_count"]
                .iter()
                .find_map(|s| raw.strip_suffix(s))
                .filter(|f| histograms.contains(*f))
                .unwrap_or(raw);
            if !typed.contains(family) {
                return Err(format!("sample `{raw}` has no `# TYPE` announcement"));
            }
        }
    }
    for h in &histograms {
        for part in ["_bucket{le=\"+Inf\"}", "_sum", "_count"] {
            if !text.contains(&format!("{h}{part}")) {
                return Err(format!("histogram {h} lacks {part} (zero-observation ladder bug?)"));
            }
        }
    }
    for required in [
        "echowrite_serve_pushes_total",
        "echowrite_serve_obs_requests_total",
        "echowrite_serve_obs_malformed_requests_total",
        "echowrite_serve_flight_dumps_total",
        "echowrite_serve_push_latency_us",
        "echowrite_serve_push_latency_p50_us",
        "echowrite_serve_push_latency_p95_us",
        "echowrite_serve_push_latency_p99_us",
    ] {
        if !typed.contains(required) {
            return Err(format!("required family {required} missing from exposition"));
        }
    }
    Ok(())
}

fn expect_status(
    which: &str,
    got: (u16, String),
    want: u16,
) -> Result<String, String> {
    if got.0 != want {
        return Err(format!("{which}: status {} (want {want}): {:?}", got.0, got.1));
    }
    Ok(got.1)
}

fn run(args: &Args) -> Result<(), String> {
    std::fs::create_dir_all(&args.artifact_dir)
        .map_err(|e| format!("create {}: {e}", args.artifact_dir.display()))?;

    let engine = EchoWrite::with_config(EchoWriteConfig::streaming_downsampled(32));
    let manager = Arc::new(
        SessionManager::new(
            engine,
            ServeConfig {
                shards: Parallelism::Threads(1),
                max_sessions: 1,
                high_water: 1,
                flight: FlightOptions {
                    artifact_dir: Some(args.artifact_dir.clone()),
                    ..FlightOptions::default()
                },
                ..ServeConfig::default()
            },
        )
        .map_err(|e| format!("serve config: {e}"))?,
    );
    let obs =
        ObsServer::bind("127.0.0.1:0", Arc::downgrade(&manager)).map_err(|e| format!("bind: {e}"))?;
    let addr = obs.local_addr();
    eprintln!("obs_smoke: admin plane on http://{addr}");

    // Tagged traffic so the session table, latency histogram, and flight
    // ring all have something to show.
    let chunk = vec![0.0f64; CHUNK];
    match manager.submit_tagged(Request::Open(SessionId(1)), 9_001) {
        SubmitVerdict::Enqueued => {}
        v => return Err(format!("open rejected: {v:?}")),
    }
    // On-demand trace capture brackets the pushes, proving the lifecycle
    // works against live traffic without a restart.
    expect_status("/trace/dump before start", get(addr, "/trace/dump")?, 404)?;
    expect_status("POST /trace/start", http(addr, "POST", "/trace/start")?, 200)?;
    for i in 0..8u64 {
        let _ = manager.submit_tagged(Request::Push(SessionId(1), &chunk), 9_002 + i);
        manager.quiesce();
    }
    expect_status("POST /trace/stop", http(addr, "POST", "/trace/stop")?, 200)?;
    let dump = expect_status("GET /trace/dump", get(addr, "/trace/dump")?, 200)?;
    if !dump.contains("\"traceEvents\"") || !dump.contains("push") {
        return Err(format!("/trace/dump: no push spans captured: {dump:?}"));
    }

    // The five endpoint groups.
    let body = expect_status("/healthz", get(addr, "/healthz")?, 200)?;
    if body != "ok\n" {
        return Err(format!("/healthz body: {body:?}"));
    }
    expect_status("/readyz", get(addr, "/readyz")?, 200)?;
    let sessions = expect_status("/sessions", get(addr, "/sessions")?, 200)?;
    if !sessions.contains("\"session\":1") || !sessions.contains("\"suspended\":false") {
        return Err(format!("/sessions: live session missing: {sessions}"));
    }
    let flight = expect_status("/flight", get(addr, "/flight")?, 200)?;
    if !flight.starts_with("{\"displayTimeUnit\"") || !flight.contains("\"req\":9002") {
        return Err(format!("/flight: tagged push spans missing: {flight}"));
    }
    let metrics = expect_status("/metrics", get(addr, "/metrics")?, 200)?;
    validate_exposition(&metrics)?;
    std::fs::write(&args.metrics_out, &metrics)
        .map_err(|e| format!("write {}: {e}", args.metrics_out.display()))?;
    eprintln!(
        "obs_smoke: /metrics exposition valid ({} families), wrote {}",
        metrics.lines().filter(|l| l.starts_with("# TYPE")).count(),
        args.metrics_out.display()
    );

    // Force a shed: the one-session admission limit rejects the second
    // open, latches the shed state, and the latch dumps the flight rings.
    match manager.submit_tagged(Request::Open(SessionId(2)), 9_100) {
        SubmitVerdict::Shedding => {}
        v => return Err(format!("second open must shed, got {v:?}")),
    }
    let body = expect_status("/readyz under shed", get(addr, "/readyz")?, 503)?;
    if body != "shedding\n" {
        return Err(format!("/readyz shed body: {body:?}"));
    }
    // One more push makes the shard worker poll the trigger.
    let _ = manager.submit_tagged(Request::Push(SessionId(1), &chunk), 9_101);
    manager.quiesce();
    let shed_artifact = wait_for_artifact(&args.artifact_dir, "-shed-")?;
    eprintln!("obs_smoke: flight artifact {}", shed_artifact.display());
    let dump = std::fs::read_to_string(&shed_artifact)
        .map_err(|e| format!("read {}: {e}", shed_artifact.display()))?;
    if !dump.starts_with("{\"displayTimeUnit\"")
        || dump.matches('{').count() != dump.matches('}').count()
    {
        return Err(format!("{}: not a Chrome trace", shed_artifact.display()));
    }

    obs.shutdown();
    // Shutdown is itself an anomaly trigger: the manager's final act
    // dumps one more postmortem beside the shed artifact.
    let report = Arc::try_unwrap(manager)
        .map_err(|_| "manager still referenced at shutdown".to_string())?
        .shutdown();
    if report.metrics.obs_malformed_requests != 0 {
        return Err(format!(
            "{} malformed admin requests in a clean smoke",
            report.metrics.obs_malformed_requests
        ));
    }
    wait_for_artifact(&args.artifact_dir, "-shutdown-")?;
    eprintln!(
        "obs_smoke: pushes={} flight_dumps={} obs_requests={} ok=true",
        report.metrics.pushes, report.metrics.flight_dumps, report.metrics.obs_requests
    );
    Ok(())
}

/// Polls the artifact directory for a flight dump whose name carries the
/// given trigger slug.
fn wait_for_artifact(dir: &std::path::Path, slug: &str) -> Result<PathBuf, String> {
    for _ in 0..500 {
        if let Ok(entries) = std::fs::read_dir(dir) {
            for entry in entries.flatten() {
                let name = entry.file_name().to_string_lossy().to_string();
                if name.starts_with("flight-") && name.contains(slug) {
                    return Ok(entry.path());
                }
            }
        }
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    Err(format!("no flight artifact matching {slug} appeared in {}", dir.display()))
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("obs_smoke: {e}");
            eprintln!("usage: obs_smoke [--artifact-dir DIR] [--metrics-out FILE]");
            return ExitCode::FAILURE;
        }
    };
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("obs_smoke: FAIL: {e}");
            ExitCode::FAILURE
        }
    }
}
