//! The loopback client fleet (DESIGN.md §6.9): replays N synthetic
//! recognition sessions over C real TCP connections against a
//! [`WireServer`], checks every wire transcript bitwise against the
//! isolated in-process recognizer, and reports aggregate realtime factor
//! plus request round-trip percentiles — the numbers in `BENCH_wire.json`.
//!
//! ```text
//! cargo run --release -p echowrite-bench --bin wire_fleet -- \
//!     --sessions 512 --conns 16 --shards 4 [--smoke] [--json out.json]
//! ```
//!
//! Each connection multiplexes `sessions / conns` sessions, driving them
//! round-robin one chunk at a time with at most one request outstanding
//! per connection (the server answers verdicts in request order, so the
//! next verdict always resolves the RTT of the request just sent). A
//! `QueueFull` verdict re-submits the same chunk after draining buffered
//! events; `Shedding` aborts the run — admission is configured to accept
//! the whole fleet, so a shed is a bug worth failing on.
//!
//! After the plain fleet, a second **suspend/resume** phase (DESIGN.md
//! §6.10) replays the same fleet against a `SuspendToStore` manager: every
//! odd session pauses mid-word, pump traffic ages it past the reap
//! threshold so the reaper suspends it into the snapshot store, and a bare
//! late `Push` thaws it. Transcripts must still match the oracle bitwise;
//! the numbers land in `BENCH_snapshot.json` together with in-process
//! snapshot/restore latency and bytes-per-session.

use echowrite::{EchoWrite, EchoWriteConfig, Parallelism, StreamingRecognizer, StreamingSession};
use echowrite_bench::stitch::{self, ClientTrace};
use echowrite_gesture::{Stroke, Writer, WriterParams};
use echowrite_obs::ObsServer;
use echowrite_profile::Stopwatch;
use echowrite_serve::{FlightOptions, ReapPolicy, ServeConfig, SessionManager};
use echowrite_snapshot::{restore_session, snapshot_session, MemoryStore, SnapshotStore};
use echowrite_synth::{DeviceProfile, EnvironmentProfile, Scene};
use echowrite_wire::{Request, Response, WireClient, WireServer};
use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::process::ExitCode;
use std::sync::{Arc, Barrier, OnceLock};

/// The Android app's 5-frame push size.
const CHUNK: usize = 5 * 1024;

/// Idle threshold for the suspend phase, on the shard's logical sample
/// clock. Large enough that round-robin resume traffic (≈ sessions/shard
/// × CHUNK samples between a session's consecutive pushes) never re-reaps
/// a session mid-resume, small against the pump phase's aging traffic.
const SUSPEND_IDLE_TIMEOUT: u64 = 1_000_000;

/// Throwaway sessions that push silence after the fleet's even half
/// finishes, advancing every shard's logical clock past
/// [`SUSPEND_IDLE_TIMEOUT`] so the reaper provably visits the idle half.
/// Spread across shards by the same id hash as real sessions.
const PUMP_SESSIONS: usize = 64;

/// Silence chunks each pump session pushes: per shard this is far more
/// than `SUSPEND_IDLE_TIMEOUT / CHUNK` commands and clock samples even if
/// the id hash distributes pump sessions unevenly.
const PUMP_PUSHES: usize = 80;

/// A transcript row, scores compared bitwise.
type Row = (u64, u64, Stroke, [f64; 6]);

struct Args {
    sessions: usize,
    conns: usize,
    shards: usize,
    json: Option<String>,
    snapshot_json: Option<String>,
    smoke: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        sessions: 512,
        conns: 16,
        shards: 4,
        json: None,
        snapshot_json: None,
        smoke: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--sessions" => {
                let v = it.next().ok_or("--sessions needs a value")?;
                args.sessions = v.parse().map_err(|e| format!("--sessions: {e}"))?;
            }
            "--conns" => {
                let v = it.next().ok_or("--conns needs a value")?;
                args.conns = v.parse().map_err(|e| format!("--conns: {e}"))?;
            }
            "--shards" => {
                let v = it.next().ok_or("--shards needs a value")?;
                args.shards = v.parse().map_err(|e| format!("--shards: {e}"))?;
            }
            "--json" => args.json = Some(it.next().ok_or("--json needs a path")?),
            "--snapshot-json" => {
                args.snapshot_json = Some(it.next().ok_or("--snapshot-json needs a path")?);
            }
            "--smoke" => args.smoke = true,
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if args.smoke {
        args.sessions = args.sessions.min(64);
        args.conns = args.conns.min(8);
    }
    if args.sessions == 0 || args.conns == 0 || args.conns > args.sessions {
        return Err("need sessions >= conns >= 1".into());
    }
    Ok(args)
}

/// The down-converted serving engine every fleet session runs.
fn engine() -> &'static EchoWrite {
    static E: OnceLock<EchoWrite> = OnceLock::new();
    E.get_or_init(|| EchoWrite::with_config(EchoWriteConfig::streaming_downsampled(32)))
}

fn render(strokes: &[Stroke], seed: u64, tail: f64) -> Vec<f64> {
    let perf = Writer::new(WriterParams::nominal(), seed).write_sequence(strokes);
    let mut traj = perf.trajectory;
    if tail > 0.0 {
        let last = *traj.points().last().expect("non-empty trajectory");
        traj.hold(last, tail);
    }
    Scene::new(DeviceProfile::mate9(), EnvironmentProfile::meeting_room(), seed).render(&traj)
}

/// The base audios sessions cycle through (session k plays base k % 4),
/// each with its isolated in-process oracle transcript.
fn bases() -> &'static Vec<(Vec<f64>, Vec<Row>)> {
    static B: OnceLock<Vec<(Vec<f64>, Vec<Row>)>> = OnceLock::new();
    B.get_or_init(|| {
        let audios = [
            render(&[Stroke::S2, Stroke::S5], 11, 1.2),
            render(&[Stroke::S4], 23, 1.0),
            render(&[Stroke::S3, Stroke::S6], 31, 0.0),
            render(&[Stroke::S1, Stroke::S2], 47, 1.1),
        ];
        audios
            .into_iter()
            .map(|audio| {
                let mut rec = StreamingRecognizer::new(engine());
                let mut rows: Vec<Row> = Vec::new();
                for chunk in audio.chunks(CHUNK) {
                    for ev in rec.push(chunk) {
                        rows.push((
                            ev.start_frame as u64,
                            ev.end_frame as u64,
                            ev.classification.stroke,
                            ev.classification.scores,
                        ));
                    }
                }
                for ev in rec.finish() {
                    rows.push((
                        ev.start_frame as u64,
                        ev.end_frame as u64,
                        ev.classification.stroke,
                        ev.classification.scores,
                    ));
                }
                (audio, rows)
            })
            .collect()
    })
}

/// What one connection thread brings home.
struct ConnReport {
    /// Round-trip times, one per request, in microseconds.
    rtts_us: Vec<u64>,
    /// `QueueFull` verdicts absorbed (each retried until enqueued).
    queue_full: u64,
    /// Wire transcripts per session id.
    transcripts: BTreeMap<u64, Vec<Row>>,
    /// Fatal error description, if the connection died.
    error: Option<String>,
}

/// One request outstanding at a time: send, block for the verdict,
/// retry on QueueFull. RTT covers send → verdict.
fn ask(client: &mut WireClient, req: &Request, report: &mut ConnReport) -> bool {
    loop {
        let timer = Stopwatch::start();
        match client.request(req) {
            Ok(Response::Enqueued { .. }) => {
                report.rtts_us.push((timer.elapsed_ms() * 1_000.0) as u64);
                return true;
            }
            Ok(Response::QueueFull { .. }) => {
                report.rtts_us.push((timer.elapsed_ms() * 1_000.0) as u64);
                report.queue_full += 1;
                // Back off briefly so retries don't saturate the wire
                // while the shard drains (bench crate is time-exempt).
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            Ok(other) => {
                report.error = Some(format!("unexpected verdict {other:?}"));
                return false;
            }
            Err(e) => {
                report.error = Some(format!("request: {e}"));
                return false;
            }
        }
    }
}

/// Drives this connection's sessions round-robin, one chunk per turn,
/// then drains events until every owned session has finished.
fn run_connection(addr: std::net::SocketAddr, ids: Vec<u64>) -> ConnReport {
    let mut report = ConnReport {
        rtts_us: Vec::new(),
        queue_full: 0,
        transcripts: ids.iter().map(|&id| (id, Vec::new())).collect(),
        error: None,
    };
    let mut client = match WireClient::connect(addr) {
        Ok(c) => c,
        Err(e) => {
            report.error = Some(format!("connect: {e}"));
            return report;
        }
    };
    for &id in &ids {
        if !ask(&mut client, &Request::Open { session: id }, &mut report) {
            return report;
        }
    }
    let mut cursors: BTreeMap<u64, usize> = ids.iter().map(|&id| (id, 0)).collect();
    let mut live: Vec<u64> = ids.clone();
    while !live.is_empty() {
        let mut still = Vec::with_capacity(live.len());
        for &id in &live {
            let audio = &bases()[(id as usize) % bases().len()].0;
            let pos = cursors[&id];
            let end = (pos + CHUNK).min(audio.len());
            let req = Request::Push { session: id, samples: audio[pos..end].to_vec() };
            if !ask(&mut client, &req, &mut report) {
                return report;
            }
            cursors.insert(id, end);
            if end == audio.len() {
                if !ask(&mut client, &Request::Finish { session: id }, &mut report) {
                    return report;
                }
            } else {
                still.push(id);
            }
        }
        live = still;
    }

    let mut finished = 0usize;
    while finished < ids.len() {
        match client.next_event() {
            Ok(Response::Segment { session, start_frame, end_frame, classification }) => {
                let Some(cls) = classification else {
                    report.error = Some(format!("degraded segment on session {session}"));
                    return report;
                };
                if let Some(rows) = report.transcripts.get_mut(&session) {
                    rows.push((start_frame, end_frame, cls.stroke, cls.scores));
                }
            }
            Ok(Response::Finished { .. }) => finished += 1,
            Ok(other) => {
                report.error = Some(format!("unexpected event {other:?}"));
                return report;
            }
            Err(e) => {
                report.error = Some(format!("event stream: {e}"));
                return report;
            }
        }
    }
    report
}

/// Pushes `ids` round-robin, one chunk per turn, from each id's cursor up
/// to its end position, finishing each as it drains. Returns false (with
/// `report.error` set) on any wire failure.
fn drive(
    client: &mut WireClient,
    report: &mut ConnReport,
    cursors: &mut BTreeMap<u64, usize>,
    ends: &BTreeMap<u64, usize>,
    finish: bool,
    ids: &[u64],
) -> bool {
    let mut live: Vec<u64> = ids.iter().copied().filter(|id| cursors[id] < ends[id]).collect();
    // An id already at its end still gets its Finish below.
    let mut done: Vec<u64> = ids.iter().copied().filter(|id| cursors[id] >= ends[id]).collect();
    while !live.is_empty() {
        let mut still = Vec::with_capacity(live.len());
        for &id in &live {
            let audio = &bases()[(id as usize) % bases().len()].0;
            let pos = cursors[&id];
            let end = (pos + CHUNK).min(ends[&id]);
            let req = Request::Push { session: id, samples: audio[pos..end].to_vec() };
            if !ask(client, &req, report) {
                return false;
            }
            cursors.insert(id, end);
            if end == ends[&id] {
                done.push(id);
            } else {
                still.push(id);
            }
        }
        live = still;
    }
    if finish {
        for id in done {
            if !ask(client, &Request::Finish { session: id }, report) {
                return false;
            }
        }
    }
    true
}

/// Blocks until `expected` sessions have finished, recording segment rows
/// for ids present in `report.transcripts` (pump sessions are not).
fn drain_events(client: &mut WireClient, report: &mut ConnReport, expected: usize) -> bool {
    let mut finished = 0usize;
    while finished < expected {
        match client.next_event() {
            Ok(Response::Segment { session, start_frame, end_frame, classification }) => {
                let Some(cls) = classification else {
                    report.error = Some(format!("degraded segment on session {session}"));
                    return false;
                };
                if let Some(rows) = report.transcripts.get_mut(&session) {
                    rows.push((start_frame, end_frame, cls.stroke, cls.scores));
                }
            }
            Ok(Response::Finished { .. }) => finished += 1,
            Ok(other) => {
                report.error = Some(format!("unexpected event {other:?}"));
                return false;
            }
            Err(e) => {
                report.error = Some(format!("event stream: {e}"));
                return false;
            }
        }
    }
    true
}

/// The suspend-phase connection driver. Even fleet ids run to completion;
/// odd ids pause at a mid-word push boundary and only resume after the
/// pump traffic has aged them past the reap threshold, so their resume
/// `Push` lands on a suspended session and must thaw it. The two barriers
/// order the phases *across* connections: all idle sessions quiet before
/// any pumping, all pumping done before any resume.
fn run_suspend_connection(
    addr: std::net::SocketAddr,
    ids: Vec<u64>,
    pump_ids: Vec<u64>,
    barrier: &Barrier,
) -> ConnReport {
    let mut report = ConnReport {
        rtts_us: Vec::new(),
        queue_full: 0,
        transcripts: ids.iter().map(|&id| (id, Vec::new())).collect(),
        error: None,
    };
    let mut client = match WireClient::connect(addr) {
        Ok(c) => c,
        Err(e) => {
            report.error = Some(format!("connect: {e}"));
            // Hold up our end of both barriers so healthy peers proceed.
            barrier.wait();
            barrier.wait();
            return report;
        }
    };
    let audio_len = |id: u64| bases()[(id as usize) % bases().len()].0.len();
    // Every odd session pauses at the last whole-chunk boundary before the
    // midpoint — mid-word, and mid-stroke for most of the base audios.
    let pause: BTreeMap<u64, usize> =
        ids.iter().map(|&id| (id, (audio_len(id) / 2 / CHUNK) * CHUNK)).collect();
    let full: BTreeMap<u64, usize> = ids.iter().map(|&id| (id, audio_len(id))).collect();
    let mut cursors: BTreeMap<u64, usize> = ids.iter().map(|&id| (id, 0)).collect();
    let busy: Vec<u64> = ids.iter().copied().filter(|id| id % 2 == 0).collect();
    let idle: Vec<u64> = ids.iter().copied().filter(|id| id % 2 == 1).collect();

    let mut ok = ids.iter().chain(&pump_ids).all(|&id| {
        ask(&mut client, &Request::Open { session: id }, &mut report)
    });
    // First half for everyone (the idle half's last activity), then the
    // busy half straight through to Finish.
    ok = ok && drive(&mut client, &mut report, &mut cursors, &pause, false, &ids);
    ok = ok && drive(&mut client, &mut report, &mut cursors, &full, true, &busy);
    barrier.wait();

    // Aging: silence through the pump sessions advances every shard's
    // logical clock and command count past the reap threshold while the
    // idle half stays quiet, so the reaper suspends it to the store.
    if ok {
        let silence = vec![0.0f64; CHUNK];
        'pump: for _ in 0..PUMP_PUSHES {
            for &id in &pump_ids {
                let req = Request::Push { session: id, samples: silence.clone() };
                if !ask(&mut client, &req, &mut report) {
                    ok = false;
                    break 'pump;
                }
            }
        }
        for &id in &pump_ids {
            if !(ok && ask(&mut client, &Request::Finish { session: id }, &mut report)) {
                ok = false;
                break;
            }
        }
    }
    barrier.wait();

    // Resume: a bare Push on a suspended id must thaw it transparently —
    // no re-Open, no replay of the first half.
    ok = ok && drive(&mut client, &mut report, &mut cursors, &full, true, &idle);
    if ok {
        drain_events(&mut client, &mut report, ids.len() + pump_ids.len());
    }
    report
}

/// In-process snapshot/restore micro-measurement: each base audio's
/// session is frozen at its mid-word pause point and checkpointed
/// repeatedly, timing `snapshot_session` and `restore_session` and
/// recording the encoded size.
fn checkpoint_micro() -> (Vec<f64>, Vec<f64>, Vec<usize>) {
    let engine = engine();
    let (mut snap_us, mut rest_us, mut sizes) = (Vec::new(), Vec::new(), Vec::new());
    for (audio, _) in bases() {
        let mut session = StreamingSession::new(engine);
        let mut sink = Vec::new();
        let pause = (audio.len() / 2 / CHUNK) * CHUNK;
        for chunk in audio[..pause].chunks(CHUNK) {
            session.push_events(engine, chunk, true, &mut sink);
        }
        for _ in 0..50 {
            let timer = Stopwatch::start();
            let bytes = snapshot_session(&session, engine);
            snap_us.push(timer.elapsed_ms() * 1_000.0);
            sizes.push(bytes.len());
            let timer = Stopwatch::start();
            let restored = restore_session(&bytes, engine).expect("own snapshot restores");
            rest_us.push(timer.elapsed_ms() * 1_000.0);
            drop(restored);
        }
    }
    (snap_us, rest_us, sizes)
}

fn percentile_f64(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Runs the suspend/resume fleet plus the checkpoint micro-measurement
/// and renders `BENCH_snapshot.json`. Returns `(json, ok)`.
fn run_suspend_phase(args: &Args) -> (String, bool) {
    let store = Arc::new(MemoryStore::new());
    let manager = SessionManager::with_snapshot_store(
        engine().clone(),
        ServeConfig {
            shards: Parallelism::Threads(args.shards),
            queue_capacity: 256,
            max_sessions: args.sessions + PUMP_SESSIONS + 8,
            high_water: args.sessions + PUMP_SESSIONS + 8,
            deadline_chunks: None,
            idle_timeout_samples: Some(SUSPEND_IDLE_TIMEOUT),
            batch_max: 8,
            reap_policy: ReapPolicy::SuspendToStore,
            ..ServeConfig::default()
        },
        store.clone(),
    )
    .expect("valid serve config");
    let server = WireServer::bind("127.0.0.1:0", manager).expect("loopback bind");
    let addr = server.local_addr();

    let barrier = Barrier::new(args.conns);
    let wall = Stopwatch::start();
    let reports: Vec<ConnReport> = std::thread::scope(|scope| {
        let barrier = &barrier;
        let handles: Vec<_> = (0..args.conns)
            .map(|c| {
                let ids: Vec<u64> =
                    (0..args.sessions).filter(|k| k % args.conns == c).map(|k| k as u64).collect();
                let pump_ids: Vec<u64> = (0..PUMP_SESSIONS)
                    .filter(|k| k % args.conns == c)
                    .map(|k| (args.sessions + k) as u64)
                    .collect();
                scope.spawn(move || run_suspend_connection(addr, ids, pump_ids, barrier))
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("connection thread")).collect()
    });
    let wall_s = wall.elapsed_ms() / 1e3;
    let report = server.shutdown();
    let m = &report.metrics;
    let residual = store.sessions().map(|s| s.len()).unwrap_or(usize::MAX);

    let mut ok = true;
    let mut mismatches = 0usize;
    let mut checked = 0usize;
    let mut requests = 0usize;
    let mut queue_full_retries = 0u64;
    for r in &reports {
        if let Some(e) = &r.error {
            eprintln!("wire_fleet[suspend]: connection error: {e}");
            ok = false;
        }
        requests += r.rtts_us.len();
        queue_full_retries += r.queue_full;
        for (&id, rows) in &r.transcripts {
            checked += 1;
            if rows != &bases()[(id as usize) % bases().len()].1 {
                mismatches += 1;
                if mismatches <= 3 {
                    eprintln!(
                        "wire_fleet[suspend]: session {id} transcript diverged across suspend/resume"
                    );
                }
            }
        }
    }
    let idle_half = args.sessions / 2;
    if mismatches > 0 || checked != args.sessions {
        ok = false;
    }
    // Every idle session must actually have been suspended and thawed —
    // otherwise the phase silently measured nothing.
    if m.sessions_suspended < idle_half as u64 || m.sessions_resumed < idle_half as u64 {
        eprintln!(
            "wire_fleet[suspend]: only {}/{idle_half} suspended, {} resumed",
            m.sessions_suspended, m.sessions_resumed
        );
        ok = false;
    }
    if m.orphan_commands != 0 || residual != 0 {
        eprintln!(
            "wire_fleet[suspend]: {} orphan commands, {residual} snapshots left in the store",
            m.orphan_commands
        );
        ok = false;
    }

    let (mut snap_us, mut rest_us, mut sizes) = checkpoint_micro();
    snap_us.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    rest_us.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    sizes.sort_unstable();
    let bytes_mean = sizes.iter().sum::<usize>() as f64 / sizes.len().max(1) as f64;

    let env = echowrite_bench::bench_environment();
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"crates/bench/src/bin/wire_fleet.rs\",\n",
            "  \"command\": \"cargo run --release -p echowrite-bench --bin wire_fleet -- ",
            "--sessions {sessions} --conns {conns} --shards {shards} ",
            "--snapshot-json BENCH_snapshot.json\",\n",
            "  \"environment\": {{\n",
            "    \"cpus\": {cpus},\n",
            "    \"effective_parallelism\": {par},\n",
            "    \"simd_backend\": \"{simd}\",\n",
            "    \"simd_features\": [{features}]\n",
            "  }},\n",
            "  \"suspend_fleet\": {{\n",
            "    \"sessions\": {sessions},\n",
            "    \"suspend_candidates\": {idle_half},\n",
            "    \"connections\": {conns},\n",
            "    \"shards\": {shards},\n",
            "    \"pump_sessions\": {pump},\n",
            "    \"chunk_samples\": {chunk},\n",
            "    \"idle_timeout_samples\": {timeout},\n",
            "    \"wall_seconds\": {wall_s:.3},\n",
            "    \"requests\": {requests},\n",
            "    \"queue_full_retries\": {qf},\n",
            "    \"transcripts_checked\": {checked},\n",
            "    \"transcript_mismatches\": {mismatches},\n",
            "    \"sessions_suspended\": {suspended},\n",
            "    \"sessions_resumed\": {resumed},\n",
            "    \"sessions_reaped\": {reaped},\n",
            "    \"orphan_commands\": {orphans},\n",
            "    \"store_residual_snapshots\": {residual}\n",
            "  }},\n",
            "  \"checkpoint\": {{\n",
            "    \"iterations\": {iters},\n",
            "    \"snapshot_p50_us\": {sp50:.1},\n",
            "    \"snapshot_p99_us\": {sp99:.1},\n",
            "    \"restore_p50_us\": {rp50:.1},\n",
            "    \"restore_p99_us\": {rp99:.1},\n",
            "    \"bytes_per_session_min\": {bmin},\n",
            "    \"bytes_per_session_mean\": {bmean:.0},\n",
            "    \"bytes_per_session_max\": {bmax}\n",
            "  }}\n",
            "}}\n",
        ),
        sessions = args.sessions,
        conns = args.conns,
        shards = args.shards,
        cpus = env.cpus,
        par = env.effective_parallelism,
        simd = env.simd_backend,
        features = env
            .simd_features
            .iter()
            .map(|f| format!("\"{f}\""))
            .collect::<Vec<_>>()
            .join(", "),
        idle_half = idle_half,
        pump = PUMP_SESSIONS,
        chunk = CHUNK,
        timeout = SUSPEND_IDLE_TIMEOUT,
        wall_s = wall_s,
        requests = requests,
        qf = queue_full_retries,
        checked = checked,
        mismatches = mismatches,
        suspended = m.sessions_suspended,
        resumed = m.sessions_resumed,
        reaped = m.sessions_reaped,
        orphans = m.orphan_commands,
        residual = residual,
        iters = snap_us.len(),
        sp50 = percentile_f64(&snap_us, 0.50),
        sp99 = percentile_f64(&snap_us, 0.99),
        rp50 = percentile_f64(&rest_us, 0.50),
        rp99 = percentile_f64(&rest_us, 0.99),
        bmin = sizes.first().copied().unwrap_or(0),
        bmean = bytes_mean,
        bmax = sizes.last().copied().unwrap_or(0),
    );
    eprintln!(
        "wire_fleet[suspend]: suspended={} resumed={} mismatches={mismatches}/{checked} ok={ok}",
        m.sessions_suspended, m.sessions_resumed
    );
    (json, ok)
}

/// One blocking HTTP GET against the admin plane; returns (status, body).
fn http_get(addr: std::net::SocketAddr, path: &str) -> Result<(u16, String), String> {
    let mut stream =
        std::net::TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    stream
        .write_all(format!("GET {path} HTTP/1.1\r\nHost: fleet\r\n\r\n").as_bytes())
        .map_err(|e| format!("GET {path}: {e}"))?;
    let mut response = String::new();
    stream.read_to_string(&mut response).map_err(|e| format!("read {path}: {e}"))?;
    let status: u16 = response
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("{path}: unparseable status line"))?;
    let body = response.split("\r\n\r\n").nth(1).unwrap_or_default().to_string();
    Ok((status, body))
}

/// Hits every admin endpoint against a live fleet and sanity-checks the
/// bodies. Returns an error description on the first failure.
fn check_obs_endpoints(addr: std::net::SocketAddr, sessions: usize) -> Result<(), String> {
    let (status, body) = http_get(addr, "/healthz")?;
    if status != 200 || body != "ok\n" {
        return Err(format!("/healthz: {status} {body:?}"));
    }
    let (status, _) = http_get(addr, "/readyz")?;
    if status != 200 {
        return Err(format!("/readyz: {status} (fleet admission must not be shedding)"));
    }
    let (status, body) = http_get(addr, "/metrics")?;
    if status != 200
        || !body.contains("# TYPE echowrite_serve_pushes_total counter")
        || !body.contains("echowrite_serve_obs_requests_total")
    {
        return Err(format!("/metrics: {status}, exposition incomplete"));
    }
    let (status, body) = http_get(addr, "/sessions")?;
    if status != 200 || !body.starts_with('[') || !body.ends_with(']') {
        return Err(format!("/sessions: {status} {body:?}"));
    }
    // The fleet has finished every session by the time this runs, so the
    // table may be empty — but it must list no more than the fleet drove.
    let rows = body.matches("\"session\":").count();
    if rows > sessions {
        return Err(format!("/sessions: {rows} rows for a {sessions}-session fleet"));
    }
    let (status, body) = http_get(addr, "/flight")?;
    if status != 200 || !body.starts_with("{\"displayTimeUnit\"") {
        return Err(format!("/flight: {status}, not a Chrome trace"));
    }
    Ok(())
}

/// The stitched-trace acceptance phase: a deliberately tiny admission
/// limit forces a shed, the shed latch dumps the flight rings as a
/// Chrome-trace artifact, and every nonzero server-side request id in
/// that artifact must stitch 1:1 against the ids the client assigned.
fn run_obs_stitch_phase() -> bool {
    let dir = std::env::temp_dir().join(format!("ewsn-fleet-flight-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let manager = SessionManager::new(
        engine().clone(),
        ServeConfig {
            shards: Parallelism::Threads(1),
            max_sessions: 1,
            high_water: 1,
            flight: FlightOptions { artifact_dir: Some(dir.clone()), ..FlightOptions::default() },
            ..ServeConfig::default()
        },
    )
    .expect("valid serve config");
    let server = WireServer::bind("127.0.0.1:0", manager).expect("loopback bind");
    let obs = ObsServer::bind("127.0.0.1:0", server.manager_handle()).expect("obs bind");
    let addr = server.local_addr();

    let mut trace = ClientTrace::new();
    let mut client = match WireClient::connect(addr) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("wire_fleet[obs]: connect: {e}");
            return false;
        }
    };
    client.set_next_request_id(9_000);
    let audio = &bases()[0].0;
    let mut ts_us = 0u64;
    let mut ok = true;
    // Open + two pushes on the admitted session, then an open that must
    // shed, then one more push so the shard polls the dump trigger.
    let chunk_at = |k: usize| {
        let pos = (k * CHUNK).min(audio.len());
        let end = (pos + CHUNK).min(audio.len());
        audio[pos..end].to_vec()
    };
    let script: Vec<(&str, Request)> = vec![
        ("open", Request::Open { session: 71 }),
        ("push", Request::Push { session: 71, samples: chunk_at(0) }),
        ("push", Request::Push { session: 71, samples: chunk_at(1) }),
        ("open_shed", Request::Open { session: 72 }),
        ("push", Request::Push { session: 71, samples: chunk_at(2) }),
        ("finish", Request::Finish { session: 71 }),
    ];
    for (name, req) in &script {
        let id = client.peek_next_request_id();
        let timer = Stopwatch::start();
        match client.request(req) {
            Ok(Response::Shedding { request_id, .. }) => {
                trace.instant("shed_verdict", request_id, ts_us);
                if *name != "open_shed" {
                    eprintln!("wire_fleet[obs]: unexpected shed on {name}");
                    ok = false;
                }
            }
            Ok(_) => trace.span(name, id, ts_us, (timer.elapsed_ms() * 1_000.0) as u64),
            Err(e) => {
                eprintln!("wire_fleet[obs]: {name}: {e}");
                ok = false;
            }
        }
        ts_us += 1_000;
    }
    // Drain until the admitted session finishes so its spans are in the
    // rings before shutdown.
    while ok {
        match client.next_event() {
            Ok(Response::Finished { .. }) => break,
            Ok(_) => {}
            Err(e) => {
                eprintln!("wire_fleet[obs]: event stream: {e}");
                ok = false;
            }
        }
    }
    // The shed artifact lands asynchronously (the worker polls between
    // batches); wait for it (bench crate is time-exempt).
    let shed_artifact = |dir: &std::path::Path| -> Option<std::path::PathBuf> {
        std::fs::read_dir(dir).ok()?.flatten().map(|e| e.path()).find(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("flight-") && n.contains("-shed-"))
        })
    };
    let mut artifact = None;
    for _ in 0..500 {
        artifact = shed_artifact(&dir);
        if artifact.is_some() {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    // The admin plane serves the same rings live.
    if let Err(e) = http_get(obs.local_addr(), "/flight")
        .and_then(|(status, body)| match status {
            200 if body.contains("\"req\":") => Ok(()),
            _ => Err(format!("/flight: {status}, no correlation args")),
        })
    {
        eprintln!("wire_fleet[obs]: {e}");
        ok = false;
    }
    obs.shutdown();
    let _ = server.shutdown();

    let Some(artifact) = artifact else {
        eprintln!("wire_fleet[obs]: no shed flight artifact in {}", dir.display());
        let _ = std::fs::remove_dir_all(&dir);
        return false;
    };
    let server_json = std::fs::read_to_string(&artifact).unwrap_or_default();
    let client_json = trace.to_chrome_json();
    let merged = match stitch::stitch_traces(&client_json, &server_json) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("wire_fleet[obs]: stitch: {e}");
            let _ = std::fs::remove_dir_all(&dir);
            return false;
        }
    };
    if merged.matches('{').count() != merged.matches('}').count() {
        eprintln!("wire_fleet[obs]: merged trace is not well-formed");
        ok = false;
    }
    let report = stitch::correlate(&client_json, &server_json);
    if !report.is_one_to_one() {
        eprintln!(
            "wire_fleet[obs]: stitch not 1:1 — {} matched, server-only ids {:?}",
            report.matched, report.server_only
        );
        ok = false;
    }
    eprintln!(
        "wire_fleet[obs]: shed artifact {} stitched {}/{} client ids ok={ok}",
        artifact.file_name().and_then(|n| n.to_str()).unwrap_or("?"),
        report.matched,
        report.client_total
    );
    let _ = std::fs::remove_dir_all(&dir);
    ok
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("wire_fleet: {e}");
            return ExitCode::FAILURE;
        }
    };
    echowrite_bench::print_bench_environment();
    eprintln!(
        "wire_fleet: sessions={} conns={} shards={} smoke={}",
        args.sessions, args.conns, args.shards, args.smoke
    );

    // Render audio + oracles before the clock starts.
    let total_audio_samples: u64 = (0..args.sessions)
        .map(|k| bases()[k % bases().len()].0.len() as u64)
        .sum();
    let sample_rate = engine().config().stft.sample_rate;

    let manager = SessionManager::new(
        engine().clone(),
        ServeConfig {
            shards: Parallelism::Threads(args.shards),
            // Shallow queues keep enqueue→processed latency bounded; the
            // fleet absorbs the extra QueueFull verdicts with backoff.
            queue_capacity: 256,
            max_sessions: args.sessions + 8,
            high_water: args.sessions + 8,
            deadline_chunks: None,
            idle_timeout_samples: None,
            batch_max: 8,
            reap_policy: ReapPolicy::Drop,
            ..ServeConfig::default()
        },
    )
    .expect("valid serve config");
    let server = WireServer::bind("127.0.0.1:0", manager).expect("loopback bind");
    let addr = server.local_addr();
    // The admin plane rides beside the wire listener for the whole run,
    // observing the manager through a weak handle.
    let obs = ObsServer::bind("127.0.0.1:0", server.manager_handle()).expect("obs bind");

    // Partition sessions across connections and replay.
    let wall = Stopwatch::start();
    let reports: Vec<ConnReport> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..args.conns)
            .map(|c| {
                let ids: Vec<u64> =
                    (0..args.sessions).filter(|k| k % args.conns == c).map(|k| k as u64).collect();
                scope.spawn(move || run_connection(addr, ids))
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("connection thread")).collect()
    });
    let wall_s = wall.elapsed_ms() / 1e3;

    // With the fleet complete but the server still live, every admin
    // endpoint must answer.
    let obs_endpoints_ok = match check_obs_endpoints(obs.local_addr(), args.sessions) {
        Ok(()) => true,
        Err(e) => {
            eprintln!("wire_fleet: obs endpoint check: {e}");
            false
        }
    };
    obs.shutdown();

    let report = server.shutdown();
    let m = &report.metrics;

    // Verify every wire transcript bitwise against its in-process oracle.
    let mut mismatches = 0usize;
    let mut checked = 0usize;
    let mut errors = Vec::new();
    let mut rtts: Vec<u64> = Vec::new();
    let mut queue_full_retries = 0u64;
    for r in &reports {
        if let Some(e) = &r.error {
            errors.push(e.clone());
        }
        queue_full_retries += r.queue_full;
        rtts.extend_from_slice(&r.rtts_us);
        for (&id, rows) in &r.transcripts {
            let want = &bases()[(id as usize) % bases().len()].1;
            checked += 1;
            if rows != want {
                mismatches += 1;
                if mismatches <= 3 {
                    eprintln!("wire_fleet: session {id} transcript diverged from in-process oracle");
                }
            }
        }
    }
    rtts.sort_unstable();
    let p50 = percentile(&rtts, 0.50);
    let p99 = percentile(&rtts, 0.99);
    let audio_s = total_audio_samples as f64 / sample_rate;
    let realtime_factor = if wall_s > 0.0 { audio_s / wall_s } else { 0.0 };

    let env = echowrite_bench::bench_environment();
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"crates/bench/src/bin/wire_fleet.rs\",\n",
            "  \"command\": \"cargo run --release -p echowrite-bench --bin wire_fleet -- ",
            "--sessions {sessions} --conns {conns} --shards {shards}\",\n",
            "  \"environment\": {{\n",
            "    \"cpus\": {cpus},\n",
            "    \"effective_parallelism\": {par},\n",
            "    \"simd_backend\": \"{simd}\",\n",
            "    \"simd_features\": [{features}]\n",
            "  }},\n",
            "  \"fleet\": {{\n",
            "    \"sessions\": {sessions},\n",
            "    \"connections\": {conns},\n",
            "    \"shards\": {shards},\n",
            "    \"chunk_samples\": {chunk},\n",
            "    \"audio_seconds_total\": {audio_s:.3},\n",
            "    \"wall_seconds\": {wall_s:.3},\n",
            "    \"aggregate_realtime_factor\": {rtf:.2},\n",
            "    \"rtt_p50_us\": {p50},\n",
            "    \"rtt_p99_us\": {p99},\n",
            "    \"requests\": {requests},\n",
            "    \"queue_full_retries\": {qf},\n",
            "    \"transcripts_checked\": {checked},\n",
            "    \"transcript_mismatches\": {mismatches}\n",
            "  }},\n",
            "  \"server_metrics\": {{\n",
            "    \"sessions_opened\": {opened},\n",
            "    \"sessions_finished\": {finished},\n",
            "    \"sessions_shed\": {shed},\n",
            "    \"pushes\": {pushes},\n",
            "    \"queue_full\": {queue_full},\n",
            "    \"wire_connections\": {wconns},\n",
            "    \"wire_frames_read\": {wread},\n",
            "    \"wire_frames_written\": {wwritten},\n",
            "    \"wire_malformed_frames\": {wmal},\n",
            "    \"wire_write_stalls\": {wstall},\n",
            "    \"push_latency_p99_us\": {push_p99}\n",
            "  }}\n",
            "}}\n",
        ),
        sessions = args.sessions,
        conns = args.conns,
        shards = args.shards,
        cpus = env.cpus,
        par = env.effective_parallelism,
        simd = env.simd_backend,
        features = env
            .simd_features
            .iter()
            .map(|f| format!("\"{f}\""))
            .collect::<Vec<_>>()
            .join(", "),
        chunk = CHUNK,
        audio_s = audio_s,
        wall_s = wall_s,
        rtf = realtime_factor,
        p50 = p50,
        p99 = p99,
        requests = rtts.len(),
        qf = queue_full_retries,
        checked = checked,
        mismatches = mismatches,
        opened = m.sessions_opened,
        finished = m.sessions_finished,
        shed = m.sessions_shed,
        pushes = m.pushes,
        queue_full = m.queue_full,
        wconns = m.wire_connections,
        wread = m.wire_frames_read,
        wwritten = m.wire_frames_written,
        wmal = m.wire_malformed_frames,
        wstall = m.wire_write_stalls,
        push_p99 = m.push_latency_p99_us.map_or_else(|| "null".to_string(), |v| v.to_string()),
    );
    match &args.json {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &json) {
                eprintln!("wire_fleet: writing {path}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("wire_fleet: wrote {path}");
        }
        None => print!("{json}"),
    }

    let mut ok = obs_endpoints_ok;
    for e in &errors {
        eprintln!("wire_fleet: connection error: {e}");
        ok = false;
    }
    if mismatches > 0 {
        eprintln!("wire_fleet: {mismatches}/{checked} transcripts diverged");
        ok = false;
    }
    if checked != args.sessions {
        eprintln!("wire_fleet: only {checked}/{} transcripts collected", args.sessions);
        ok = false;
    }
    if m.wire_malformed_frames != 0 {
        eprintln!("wire_fleet: {} malformed frames on a clean fleet", m.wire_malformed_frames);
        ok = false;
    }
    if m.sessions_finished != args.sessions as u64 {
        eprintln!(
            "wire_fleet: {}/{} sessions finished",
            m.sessions_finished, args.sessions
        );
        ok = false;
    }
    eprintln!(
        "wire_fleet: realtime_factor={realtime_factor:.2} rtt_p50_us={p50} rtt_p99_us={p99} \
         queue_full_retries={queue_full_retries} ok={ok}"
    );

    // Observability acceptance: forced shed → flight artifact → stitched
    // 1:1 against the client-assigned request ids.
    ok &= run_obs_stitch_phase();

    // Second pass: the same fleet with suspension enabled (BENCH_snapshot).
    let (snapshot_json, suspend_ok) = run_suspend_phase(&args);
    ok &= suspend_ok;
    match &args.snapshot_json {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &snapshot_json) {
                eprintln!("wire_fleet: writing {path}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("wire_fleet: wrote {path}");
        }
        None => print!("{snapshot_json}"),
    }

    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
