//! The versioned binary snapshot codec.
//!
//! # Wire grammar
//!
//! All integers are little-endian; `f64` values are their IEEE-754 bit
//! patterns as `u64` (bitwise, not lossy-printed); `usize` counters travel
//! as `u64`. A `vec` is a `u64` element count followed by that many
//! elements; decode pre-checks the count against the remaining payload
//! before allocating, so a forged count cannot balloon memory.
//!
//! ```text
//! snapshot    := header body
//! header      := magic:"EWSN" version:u16 fingerprint:u64
//!                flavor:u8 finished:u8 samples_in:u64
//! body        := replay | incremental          -- selected by flavor
//!
//! replay      := buffer:vec<f64> background:opt<vec<f64>> dropped:u64
//!                emitted:vec<(u64,u64)> emitted_until:u64 max_samples:u64
//!
//! incremental := front chain frames_in:u64 emitted_until:u64
//! front       := 0x01 stft | 0x02 down
//! stft        := pending:vec<f64> total_in:u64
//! down        := sdc baseband:vec<complex> base:u64 next_frame:u64
//! sdc         := buffer:vec<f64> base:u64 total_in:u64 k:u64 rotator:complex
//! chain       := enhancer builder diff segmenter
//! enhancer    := raw_base:u64 raw_cols:vec<vec<f64>> raw_n:u64 med_n:u64
//!                pre_bg:vec<vec<f64>> background:opt<vec<f64>>
//!                thr_base:u64 thr_cols:vec<vec<f64>> thr_n:u64 h_n:u64
//!                holes finished:bool
//! holes       := parent:vec<u64> border:vec<bool> last_col:vec<u64>
//!                frontier:vec<(u64,u64,u64)>
//!                pending:vec<(vec<f64>, vec<(u64,u64,u64)>)>
//!                pushed:u64 next_emit:u64
//! builder     := tail:f64[3] m:u64 finished:bool
//! diff        := tail:f64[5] m:u64 emitted:u64 finished:bool
//! segmenter   := shifts_base:u64 shifts:vec<f64> acc_base:u64 acc:vec<f64>
//!                phase finished:bool
//! phase       := 0x01 i:u64 | 0x02 i:u64 start:u64 k:u64 | 0x03 end:u64
//! complex     := re:f64 im:f64
//! opt<T>      := 0x00 | 0x01 T
//! bool        := 0x00 | 0x01
//! ```
//!
//! # Version and compatibility policy
//!
//! The header carries a format [`VERSION`] and a fingerprint of the engine
//! configuration that produced the state ([`config_fingerprint`]). Decoding
//! refuses any version other than the current one
//! ([`SnapshotError::UnsupportedVersion`]) and any fingerprint that
//! disagrees with the restoring engine's
//! ([`SnapshotError::ConfigMismatch`]): a snapshot only guarantees bitwise
//! resumption under the exact configuration that produced it, so silently
//! restoring across configs would trade a loud error for wrong output. The
//! format has no forward- or backward-compat shims by design — a version
//! bump is a migration event, not a negotiation.
//!
//! Decoding is strict: every section length-checks before reading, trailing
//! bytes are an error, and no input — truncated, bit-flipped, or
//! adversarial — panics. Structural invariants (cursor monotonicity,
//! window geometry, cross-stage accounting) are then re-validated by
//! [`StreamingSession::restore_state`], whose refusals surface as
//! [`SnapshotError::Restore`].

use echowrite::{
    ChainState, DownState, EchoWrite, EchoWriteConfig, FrontState, IncrementalState, ReplayState,
    RestoreError, SessionBody, SessionState, SnapshotState, StreamingSession,
};
use echowrite_dsp::downconvert::StreamingDownconverterState;
use echowrite_dsp::stft::StreamingStftState;
use echowrite_dsp::Complex;
use echowrite_profile::{
    IncrementalDiffState, ProfileBuilderState, SegmenterPhase, StreamingSegmenterState,
};
use echowrite_spectro::{EnhancerState, HoleFillerState};
use echowrite_trace::{samples_to_us, span, Stage};
use std::fmt;

/// The four magic bytes opening every snapshot: `"EWSN"`.
pub const MAGIC: [u8; 4] = *b"EWSN";

/// Current snapshot format version. Bumped on any grammar change; decode
/// accepts exactly this version.
pub const VERSION: u16 = 1;

const FLAVOR_REPLAY: u8 = 0x01;
const FLAVOR_INCREMENTAL: u8 = 0x02;
const FRONT_FULL: u8 = 0x01;
const FRONT_DOWN: u8 = 0x02;
const PHASE_SCAN: u8 = 0x01;
const PHASE_FORWARD: u8 = 0x02;
const PHASE_GAP: u8 = 0x03;

/// Why a snapshot could not be decoded or restored.
#[derive(Debug)]
pub enum SnapshotError {
    /// The payload does not start with [`MAGIC`].
    BadMagic,
    /// The header's format version is not [`VERSION`].
    UnsupportedVersion(u16),
    /// The header's configuration fingerprint disagrees with the restoring
    /// engine's — the snapshot was taken under a different configuration.
    ConfigMismatch {
        /// Fingerprint of the restoring engine's configuration.
        expected: u64,
        /// Fingerprint recorded in the snapshot header.
        found: u64,
    },
    /// The header's flavor byte is neither replay nor incremental.
    BadFlavor(u8),
    /// The payload ended before a section was complete, or a length prefix
    /// exceeded the remaining payload.
    Truncated,
    /// A section decoded but carried an ill-formed value; the message names
    /// the offending field.
    Malformed(&'static str),
    /// The state decoded cleanly but the session refused to restore it.
    Restore(RestoreError),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::BadMagic => write!(f, "not a snapshot: bad magic"),
            SnapshotError::UnsupportedVersion(v) => {
                write!(f, "unsupported snapshot version {v} (expected {VERSION})")
            }
            SnapshotError::ConfigMismatch { expected, found } => write!(
                f,
                "snapshot was taken under a different configuration \
                 (fingerprint {found:#018x}, engine has {expected:#018x})"
            ),
            SnapshotError::BadFlavor(b) => write!(f, "unknown snapshot flavor byte {b:#04x}"),
            SnapshotError::Truncated => write!(f, "snapshot truncated"),
            SnapshotError::Malformed(what) => write!(f, "malformed snapshot field: {what}"),
            SnapshotError::Restore(e) => write!(f, "snapshot refused by session: {e}"),
        }
    }
}

impl std::error::Error for SnapshotError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnapshotError::Restore(e) => Some(e),
            _ => None,
        }
    }
}

impl From<RestoreError> for SnapshotError {
    fn from(e: RestoreError) -> Self {
        SnapshotError::Restore(e)
    }
}

/// FNV-1a 64 fingerprint of an engine configuration's `Debug` rendering.
///
/// Every field of [`EchoWriteConfig`] (including nested sub-configs)
/// participates via `#[derive(Debug)]`, so any configuration change — even
/// one added after this crate was written — perturbs the fingerprint
/// without this function knowing the field exists. The rendering is
/// deterministic (no pointers, no hash iteration) and `f64` fields print
/// with round-trip precision, so equal configs always fingerprint equally.
pub fn config_fingerprint(config: &EchoWriteConfig) -> u64 {
    let repr = format!("{config:?}");
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in repr.as_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

// ---------------------------------------------------------------------------
// Writer

fn put_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_usize(out: &mut Vec<u8>, v: usize) {
    put_u64(out, v as u64);
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_bits().to_le_bytes());
}

fn put_bool(out: &mut Vec<u8>, v: bool) {
    put_u8(out, u8::from(v));
}

fn put_complex(out: &mut Vec<u8>, c: Complex) {
    put_f64(out, c.re);
    put_f64(out, c.im);
}

fn put_f64s(out: &mut Vec<u8>, v: &[f64]) {
    put_u64(out, v.len() as u64);
    for &x in v {
        put_f64(out, x);
    }
}

fn put_usizes(out: &mut Vec<u8>, v: &[usize]) {
    put_u64(out, v.len() as u64);
    for &x in v {
        put_usize(out, x);
    }
}

fn put_cols(out: &mut Vec<u8>, cols: &[Vec<f64>]) {
    put_u64(out, cols.len() as u64);
    for col in cols {
        put_f64s(out, col);
    }
}

fn put_opt_f64s(out: &mut Vec<u8>, v: Option<&Vec<f64>>) {
    match v {
        None => put_u8(out, 0),
        Some(xs) => {
            put_u8(out, 1);
            put_f64s(out, xs);
        }
    }
}

fn put_triples(out: &mut Vec<u8>, v: &[(usize, usize, usize)]) {
    put_u64(out, v.len() as u64);
    for &(a, b, c) in v {
        put_usize(out, a);
        put_usize(out, b);
        put_usize(out, c);
    }
}

// ---------------------------------------------------------------------------
// Reader

/// Length-checked sequential reader over the snapshot payload. Every read
/// validates bounds first; no method panics on any input.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len().saturating_sub(self.pos)
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        let end = self.pos.checked_add(n).ok_or(SnapshotError::Truncated)?;
        let bytes = self.buf.get(self.pos..end).ok_or(SnapshotError::Truncated)?;
        self.pos = end;
        Ok(bytes)
    }

    fn u8(&mut self) -> Result<u8, SnapshotError> {
        let b = self.take(1)?;
        b.first().copied().ok_or(SnapshotError::Truncated)
    }

    fn u16(&mut self) -> Result<u16, SnapshotError> {
        let b = <[u8; 2]>::try_from(self.take(2)?).map_err(|_| SnapshotError::Truncated)?;
        Ok(u16::from_le_bytes(b))
    }

    fn u64(&mut self) -> Result<u64, SnapshotError> {
        let b = <[u8; 8]>::try_from(self.take(8)?).map_err(|_| SnapshotError::Truncated)?;
        Ok(u64::from_le_bytes(b))
    }

    fn usize_(&mut self, what: &'static str) -> Result<usize, SnapshotError> {
        usize::try_from(self.u64()?).map_err(|_| SnapshotError::Malformed(what))
    }

    fn f64(&mut self) -> Result<f64, SnapshotError> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn bool_(&mut self, what: &'static str) -> Result<bool, SnapshotError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(SnapshotError::Malformed(what)),
        }
    }

    fn complex(&mut self) -> Result<Complex, SnapshotError> {
        let re = self.f64()?;
        let im = self.f64()?;
        Ok(Complex { re, im })
    }

    /// Reads a length prefix and checks `n * elem_size` fits in the
    /// remaining payload, so the caller can `Vec::with_capacity(n)` safely.
    fn len(&mut self, elem_size: usize, what: &'static str) -> Result<usize, SnapshotError> {
        let n = self.usize_(what)?;
        match n.checked_mul(elem_size) {
            Some(bytes) if bytes <= self.remaining() => Ok(n),
            _ => Err(SnapshotError::Truncated),
        }
    }

    fn f64s(&mut self, what: &'static str) -> Result<Vec<f64>, SnapshotError> {
        let n = self.len(8, what)?;
        let mut v = Vec::with_capacity(n);
        for _ in 0..n {
            v.push(self.f64()?);
        }
        Ok(v)
    }

    fn usizes(&mut self, what: &'static str) -> Result<Vec<usize>, SnapshotError> {
        let n = self.len(8, what)?;
        let mut v = Vec::with_capacity(n);
        for _ in 0..n {
            v.push(self.usize_(what)?);
        }
        Ok(v)
    }

    fn bools(&mut self, what: &'static str) -> Result<Vec<bool>, SnapshotError> {
        let n = self.len(1, what)?;
        let mut v = Vec::with_capacity(n);
        for _ in 0..n {
            v.push(self.bool_(what)?);
        }
        Ok(v)
    }

    fn cols(&mut self, what: &'static str) -> Result<Vec<Vec<f64>>, SnapshotError> {
        // Each column costs at least its own 8-byte length prefix.
        let n = self.len(8, what)?;
        let mut v = Vec::with_capacity(n);
        for _ in 0..n {
            v.push(self.f64s(what)?);
        }
        Ok(v)
    }

    fn opt_f64s(&mut self, what: &'static str) -> Result<Option<Vec<f64>>, SnapshotError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.f64s(what)?)),
            _ => Err(SnapshotError::Malformed(what)),
        }
    }

    fn triples(
        &mut self,
        what: &'static str,
    ) -> Result<Vec<(usize, usize, usize)>, SnapshotError> {
        let n = self.len(24, what)?;
        let mut v = Vec::with_capacity(n);
        for _ in 0..n {
            let a = self.usize_(what)?;
            let b = self.usize_(what)?;
            let c = self.usize_(what)?;
            v.push((a, b, c));
        }
        Ok(v)
    }

    fn done(&self) -> Result<(), SnapshotError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(SnapshotError::Malformed("trailing bytes after body"))
        }
    }
}

// ---------------------------------------------------------------------------
// Section encoders

fn encode_replay(out: &mut Vec<u8>, s: &ReplayState) {
    put_f64s(out, &s.buffer);
    put_opt_f64s(out, s.background.as_ref());
    put_u64(out, s.dropped_frames);
    put_u64(out, s.emitted.len() as u64);
    for &(a, b) in &s.emitted {
        put_u64(out, a);
        put_u64(out, b);
    }
    put_u64(out, s.emitted_until);
    put_u64(out, s.max_samples);
}

fn encode_stft(out: &mut Vec<u8>, s: &StreamingStftState) {
    put_f64s(out, &s.pending);
    put_u64(out, s.total_in);
}

fn encode_sdc(out: &mut Vec<u8>, s: &StreamingDownconverterState) {
    put_f64s(out, &s.buffer);
    put_u64(out, s.base);
    put_u64(out, s.total_in);
    put_u64(out, s.k);
    put_complex(out, s.rotator);
}

fn encode_down(out: &mut Vec<u8>, s: &DownState) {
    encode_sdc(out, &s.sdc);
    put_u64(out, s.baseband.len() as u64);
    for &c in &s.baseband {
        put_complex(out, c);
    }
    put_u64(out, s.base);
    put_u64(out, s.next_frame);
}

fn encode_holes(out: &mut Vec<u8>, s: &HoleFillerState) {
    put_usizes(out, &s.parent);
    put_u64(out, s.border.len() as u64);
    for &b in &s.border {
        put_bool(out, b);
    }
    put_usizes(out, &s.last_col);
    put_triples(out, &s.frontier);
    put_u64(out, s.pending.len() as u64);
    for (col, runs) in &s.pending {
        put_f64s(out, col);
        put_triples(out, runs);
    }
    put_usize(out, s.pushed);
    put_usize(out, s.next_emit);
}

fn encode_enhancer(out: &mut Vec<u8>, s: &EnhancerState) {
    put_usize(out, s.raw_base);
    put_cols(out, &s.raw_cols);
    put_usize(out, s.raw_n);
    put_usize(out, s.med_n);
    put_cols(out, &s.pre_bg);
    put_opt_f64s(out, s.background.as_ref());
    put_usize(out, s.thr_base);
    put_cols(out, &s.thr_cols);
    put_usize(out, s.thr_n);
    put_usize(out, s.h_n);
    encode_holes(out, &s.holes);
    put_bool(out, s.finished);
}

fn encode_builder(out: &mut Vec<u8>, s: &ProfileBuilderState) {
    for &x in &s.tail {
        put_f64(out, x);
    }
    put_usize(out, s.m);
    put_bool(out, s.finished);
}

fn encode_diff(out: &mut Vec<u8>, s: &IncrementalDiffState) {
    for &x in &s.tail {
        put_f64(out, x);
    }
    put_usize(out, s.m);
    put_usize(out, s.emitted);
    put_bool(out, s.finished);
}

fn encode_segmenter(out: &mut Vec<u8>, s: &StreamingSegmenterState) {
    put_usize(out, s.shifts_base);
    put_f64s(out, &s.shifts);
    put_usize(out, s.acc_base);
    put_f64s(out, &s.acc);
    match s.phase {
        SegmenterPhase::Scan { i } => {
            put_u8(out, PHASE_SCAN);
            put_usize(out, i);
        }
        SegmenterPhase::Forward { i, start, k } => {
            put_u8(out, PHASE_FORWARD);
            put_usize(out, i);
            put_usize(out, start);
            put_usize(out, k);
        }
        SegmenterPhase::Gap { end } => {
            put_u8(out, PHASE_GAP);
            put_usize(out, end);
        }
    }
    put_bool(out, s.finished);
}

fn encode_incremental(out: &mut Vec<u8>, s: &IncrementalState) {
    match &s.front {
        FrontState::Full(stft) => {
            put_u8(out, FRONT_FULL);
            encode_stft(out, stft);
        }
        FrontState::Down(down) => {
            put_u8(out, FRONT_DOWN);
            encode_down(out, down);
        }
    }
    encode_enhancer(out, &s.chain.enhancer);
    encode_builder(out, &s.chain.builder);
    encode_diff(out, &s.chain.diff);
    encode_segmenter(out, &s.chain.segmenter);
    put_u64(out, s.frames_in);
    put_u64(out, s.emitted_until);
}

/// Encodes a session state into the versioned binary snapshot form, stamped
/// with the fingerprint of `config`.
pub fn encode(state: &SessionState, config: &EchoWriteConfig) -> Vec<u8> {
    let mut out = Vec::with_capacity(4096);
    out.extend_from_slice(&MAGIC);
    put_u16(&mut out, VERSION);
    put_u64(&mut out, config_fingerprint(config));
    let flavor = match &state.body {
        SessionBody::Replay(_) => FLAVOR_REPLAY,
        SessionBody::Incremental(_) => FLAVOR_INCREMENTAL,
    };
    put_u8(&mut out, flavor);
    put_bool(&mut out, state.finished);
    put_u64(&mut out, state.samples_in);
    match &state.body {
        SessionBody::Replay(r) => encode_replay(&mut out, r),
        SessionBody::Incremental(i) => encode_incremental(&mut out, i),
    }
    out
}

// ---------------------------------------------------------------------------
// Section decoders

fn decode_replay(r: &mut Reader<'_>) -> Result<ReplayState, SnapshotError> {
    let buffer = r.f64s("replay.buffer")?;
    let background = r.opt_f64s("replay.background")?;
    let dropped_frames = r.u64()?;
    let n = r.len(16, "replay.emitted")?;
    let mut emitted = Vec::with_capacity(n);
    for _ in 0..n {
        let a = r.u64()?;
        let b = r.u64()?;
        emitted.push((a, b));
    }
    let emitted_until = r.u64()?;
    let max_samples = r.u64()?;
    Ok(ReplayState { buffer, background, dropped_frames, emitted, emitted_until, max_samples })
}

fn decode_stft(r: &mut Reader<'_>) -> Result<StreamingStftState, SnapshotError> {
    let pending = r.f64s("stft.pending")?;
    let total_in = r.u64()?;
    Ok(StreamingStftState { pending, total_in })
}

fn decode_sdc(r: &mut Reader<'_>) -> Result<StreamingDownconverterState, SnapshotError> {
    let buffer = r.f64s("sdc.buffer")?;
    let base = r.u64()?;
    let total_in = r.u64()?;
    let k = r.u64()?;
    let rotator = r.complex()?;
    Ok(StreamingDownconverterState { buffer, base, total_in, k, rotator })
}

fn decode_down(r: &mut Reader<'_>) -> Result<DownState, SnapshotError> {
    let sdc = decode_sdc(r)?;
    let n = r.len(16, "down.baseband")?;
    let mut baseband = Vec::with_capacity(n);
    for _ in 0..n {
        baseband.push(r.complex()?);
    }
    let base = r.u64()?;
    let next_frame = r.u64()?;
    Ok(DownState { sdc, baseband, base, next_frame })
}

fn decode_holes(r: &mut Reader<'_>) -> Result<HoleFillerState, SnapshotError> {
    let parent = r.usizes("holes.parent")?;
    let border = r.bools("holes.border")?;
    let last_col = r.usizes("holes.last_col")?;
    let frontier = r.triples("holes.frontier")?;
    // Each pending entry costs at least two 8-byte length prefixes.
    let n = r.len(16, "holes.pending")?;
    let mut pending = Vec::with_capacity(n);
    for _ in 0..n {
        let col = r.f64s("holes.pending.col")?;
        let runs = r.triples("holes.pending.runs")?;
        pending.push((col, runs));
    }
    let pushed = r.usize_("holes.pushed")?;
    let next_emit = r.usize_("holes.next_emit")?;
    Ok(HoleFillerState { parent, border, last_col, frontier, pending, pushed, next_emit })
}

fn decode_enhancer(r: &mut Reader<'_>) -> Result<EnhancerState, SnapshotError> {
    let raw_base = r.usize_("enhancer.raw_base")?;
    let raw_cols = r.cols("enhancer.raw_cols")?;
    let raw_n = r.usize_("enhancer.raw_n")?;
    let med_n = r.usize_("enhancer.med_n")?;
    let pre_bg = r.cols("enhancer.pre_bg")?;
    let background = r.opt_f64s("enhancer.background")?;
    let thr_base = r.usize_("enhancer.thr_base")?;
    let thr_cols = r.cols("enhancer.thr_cols")?;
    let thr_n = r.usize_("enhancer.thr_n")?;
    let h_n = r.usize_("enhancer.h_n")?;
    let holes = decode_holes(r)?;
    let finished = r.bool_("enhancer.finished")?;
    Ok(EnhancerState {
        raw_base,
        raw_cols,
        raw_n,
        med_n,
        pre_bg,
        background,
        thr_base,
        thr_cols,
        thr_n,
        h_n,
        holes,
        finished,
    })
}

fn decode_builder(r: &mut Reader<'_>) -> Result<ProfileBuilderState, SnapshotError> {
    let mut tail = [0.0; 3];
    for t in &mut tail {
        *t = r.f64()?;
    }
    let m = r.usize_("builder.m")?;
    let finished = r.bool_("builder.finished")?;
    Ok(ProfileBuilderState { tail, m, finished })
}

fn decode_diff(r: &mut Reader<'_>) -> Result<IncrementalDiffState, SnapshotError> {
    let mut tail = [0.0; 5];
    for t in &mut tail {
        *t = r.f64()?;
    }
    let m = r.usize_("diff.m")?;
    let emitted = r.usize_("diff.emitted")?;
    let finished = r.bool_("diff.finished")?;
    Ok(IncrementalDiffState { tail, m, emitted, finished })
}

fn decode_segmenter(r: &mut Reader<'_>) -> Result<StreamingSegmenterState, SnapshotError> {
    let shifts_base = r.usize_("segmenter.shifts_base")?;
    let shifts = r.f64s("segmenter.shifts")?;
    let acc_base = r.usize_("segmenter.acc_base")?;
    let acc = r.f64s("segmenter.acc")?;
    let phase = match r.u8()? {
        PHASE_SCAN => SegmenterPhase::Scan { i: r.usize_("segmenter.phase.i")? },
        PHASE_FORWARD => {
            let i = r.usize_("segmenter.phase.i")?;
            let start = r.usize_("segmenter.phase.start")?;
            let k = r.usize_("segmenter.phase.k")?;
            SegmenterPhase::Forward { i, start, k }
        }
        PHASE_GAP => SegmenterPhase::Gap { end: r.usize_("segmenter.phase.end")? },
        _ => return Err(SnapshotError::Malformed("segmenter.phase tag")),
    };
    let finished = r.bool_("segmenter.finished")?;
    Ok(StreamingSegmenterState { shifts_base, shifts, acc_base, acc, phase, finished })
}

fn decode_incremental(r: &mut Reader<'_>) -> Result<IncrementalState, SnapshotError> {
    let front = match r.u8()? {
        FRONT_FULL => FrontState::Full(decode_stft(r)?),
        FRONT_DOWN => FrontState::Down(decode_down(r)?),
        _ => return Err(SnapshotError::Malformed("front tag")),
    };
    let enhancer = decode_enhancer(r)?;
    let builder = decode_builder(r)?;
    let diff = decode_diff(r)?;
    let segmenter = decode_segmenter(r)?;
    let frames_in = r.u64()?;
    let emitted_until = r.u64()?;
    Ok(IncrementalState {
        front,
        chain: ChainState { enhancer, builder, diff, segmenter },
        frames_in,
        emitted_until,
    })
}

/// Decodes a snapshot back into a session state, verifying the header
/// against `config` (the configuration of the engine that will restore it).
///
/// Strict on every axis: wrong magic, version, fingerprint, flavor,
/// truncation, ill-formed values, and trailing bytes each produce their
/// own [`SnapshotError`]; no input panics.
pub fn decode(bytes: &[u8], config: &EchoWriteConfig) -> Result<SessionState, SnapshotError> {
    let mut r = Reader::new(bytes);
    if r.take(4)? != MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    let version = r.u16()?;
    if version != VERSION {
        return Err(SnapshotError::UnsupportedVersion(version));
    }
    let found = r.u64()?;
    let expected = config_fingerprint(config);
    if found != expected {
        return Err(SnapshotError::ConfigMismatch { expected, found });
    }
    let flavor = r.u8()?;
    let finished = r.bool_("header.finished")?;
    let samples_in = r.u64()?;
    let body = match flavor {
        FLAVOR_REPLAY => SessionBody::Replay(decode_replay(&mut r)?),
        FLAVOR_INCREMENTAL => SessionBody::Incremental(decode_incremental(&mut r)?),
        other => return Err(SnapshotError::BadFlavor(other)),
    };
    r.done()?;
    Ok(SessionState { finished, samples_in, body })
}

// ---------------------------------------------------------------------------
// Session conveniences

/// Captures `session`'s complete dynamic state and encodes it under
/// `engine`'s configuration fingerprint.
pub fn snapshot_session(session: &StreamingSession, engine: &EchoWrite) -> Vec<u8> {
    let state = session.export_state();
    let bytes = encode(&state, engine.config());
    span(
        Stage::Snapshot,
        "encode",
        samples_to_us(state.samples_in, engine.config().stft.sample_rate),
        0,
        bytes.len() as f64,
    );
    bytes
}

/// Decodes `bytes` and builds a fresh session that resumes bitwise where
/// the snapshotted one left off.
pub fn restore_session(bytes: &[u8], engine: &EchoWrite) -> Result<StreamingSession, SnapshotError> {
    let state = decode(bytes, engine.config())?;
    let session = StreamingSession::from_state(engine, &state)?;
    span(
        Stage::Snapshot,
        "restore",
        samples_to_us(state.samples_in, engine.config().stft.sample_rate),
        0,
        bytes.len() as f64,
    );
    Ok(session)
}

/// Decodes `bytes` into an existing (e.g. pooled) session, overwriting its
/// state in place. On error the session is unspecified and must be reset
/// before reuse.
pub fn restore_in_place(
    session: &mut StreamingSession,
    bytes: &[u8],
    engine: &EchoWrite,
) -> Result<(), SnapshotError> {
    let state = decode(bytes, engine.config())?;
    session.restore_state(engine, &state)?;
    span(
        Stage::Snapshot,
        "restore",
        samples_to_us(state.samples_in, engine.config().stft.sample_rate),
        0,
        bytes.len() as f64,
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use echowrite::SegmentEvent;
    use echowrite_gesture::{Stroke, Writer, WriterParams};
    use echowrite_synth::{DeviceProfile, EnvironmentProfile, Scene};

    fn render(strokes: &[Stroke], seed: u64) -> Vec<f64> {
        let perf = Writer::new(WriterParams::nominal(), seed).write_sequence(strokes);
        Scene::new(DeviceProfile::mate9(), EnvironmentProfile::meeting_room(), seed)
            .render(&perf.trajectory)
    }

    fn engines() -> Vec<EchoWrite> {
        vec![
            EchoWrite::with_config(EchoWriteConfig::streaming()),
            EchoWrite::new(),
            EchoWrite::with_config(EchoWriteConfig::streaming_downsampled(32)),
        ]
    }

    fn mid_session_state(engine: &EchoWrite, audio: &[f64]) -> SessionState {
        let mut s = StreamingSession::new(engine);
        let mut ev = Vec::new();
        // Stop mid-stream so the captured state is as "live" as possible.
        for chunk in audio[..2 * audio.len() / 3].chunks(5 * 1024) {
            s.push_events(engine, chunk, true, &mut ev);
        }
        s.export_state()
    }

    fn assert_events_bitwise(got: &[SegmentEvent], want: &[SegmentEvent]) {
        assert_eq!(got.len(), want.len(), "event counts differ");
        for (g, w) in got.iter().zip(want) {
            assert_eq!(g.start_frame, w.start_frame);
            assert_eq!(g.end_frame, w.end_frame);
            let (gc, wc) = match (&g.classification, &w.classification) {
                (Some(gc), Some(wc)) => (gc, wc),
                _ => panic!("classified runs must classify every event"),
            };
            assert_eq!(gc.stroke, wc.stroke);
            assert_eq!(gc.distances, wc.distances, "DTW distances must be bitwise equal");
            assert_eq!(gc.scores, wc.scores, "DTW scores must be bitwise equal");
        }
    }

    #[test]
    fn roundtrip_is_identity_for_all_engine_flavors() {
        let audio = render(&[Stroke::S2, Stroke::S6], 7);
        for engine in engines() {
            let state = mid_session_state(&engine, &audio);
            let bytes = encode(&state, engine.config());
            let back = decode(&bytes, engine.config()).expect("decode");
            assert_eq!(back, state);
        }
    }

    #[test]
    fn roundtrip_of_fresh_and_finished_sessions() {
        let audio = render(&[Stroke::S1], 3);
        let engine = EchoWrite::with_config(EchoWriteConfig::streaming());
        let fresh = StreamingSession::new(&engine).export_state();
        let bytes = encode(&fresh, engine.config());
        assert_eq!(decode(&bytes, engine.config()).expect("fresh"), fresh);

        let mut s = StreamingSession::new(&engine);
        let mut ev = Vec::new();
        s.push_events(&engine, &audio, true, &mut ev);
        s.finish_events(&engine, true, &mut ev);
        let done = s.export_state();
        let bytes = encode(&done, engine.config());
        let back = decode(&bytes, engine.config()).expect("finished");
        assert!(back.finished);
        assert_eq!(back, done);
    }

    #[test]
    fn truncation_at_every_prefix_is_a_typed_error() {
        let audio = render(&[Stroke::S4], 11);
        for engine in engines() {
            let state = mid_session_state(&engine, &audio);
            let bytes = encode(&state, engine.config());
            // Every strict prefix must fail loudly — never panic, never
            // succeed (no section is self-delimiting short of the full
            // payload).
            let step = (bytes.len() / 257).max(1);
            for cut in (0..bytes.len()).step_by(step) {
                let err = decode(&bytes[..cut], engine.config())
                    .expect_err("truncated prefix decoded");
                assert!(
                    matches!(
                        err,
                        SnapshotError::Truncated
                            | SnapshotError::Malformed(_)
                            | SnapshotError::BadMagic
                    ),
                    "unexpected error at cut {cut}: {err:?}"
                );
            }
        }
    }

    #[test]
    fn header_corruption_is_rejected() {
        let engine = EchoWrite::with_config(EchoWriteConfig::streaming());
        let state = StreamingSession::new(&engine).export_state();
        let good = encode(&state, engine.config());

        let mut bad = good.clone();
        bad[0] = b'X';
        assert!(matches!(decode(&bad, engine.config()), Err(SnapshotError::BadMagic)));

        let mut bad = good.clone();
        bad[4] = 0xFF; // version
        assert!(matches!(
            decode(&bad, engine.config()),
            Err(SnapshotError::UnsupportedVersion(_))
        ));

        let mut bad = good.clone();
        bad[6] ^= 0x01; // fingerprint
        assert!(matches!(
            decode(&bad, engine.config()),
            Err(SnapshotError::ConfigMismatch { .. })
        ));

        let mut bad = good.clone();
        bad[14] = 0x7F; // flavor
        assert!(matches!(decode(&bad, engine.config()), Err(SnapshotError::BadFlavor(0x7F))));

        let mut bad = good.clone();
        bad[15] = 9; // finished must be 0/1
        assert!(matches!(decode(&bad, engine.config()), Err(SnapshotError::Malformed(_))));

        let mut bad = good;
        bad.push(0);
        assert!(matches!(decode(&bad, engine.config()), Err(SnapshotError::Malformed(_))));
    }

    #[test]
    fn forged_length_prefix_cannot_balloon_memory() {
        let engine = EchoWrite::with_config(EchoWriteConfig::streaming());
        let state = StreamingSession::new(&engine).export_state();
        let mut bytes = encode(&state, engine.config());
        // The streaming() flavor body is front tag (byte 24) then the
        // STFT pending-vec length; forge that length to an absurd count
        // and require a loud, allocation-free error.
        let forged = u64::MAX / 2;
        bytes[25..33].copy_from_slice(&forged.to_le_bytes());
        assert!(matches!(
            decode(&bytes, engine.config()),
            Err(SnapshotError::Truncated | SnapshotError::Malformed(_))
        ));
    }

    #[test]
    fn config_mismatch_is_detected_across_engines() {
        let a = EchoWrite::with_config(EchoWriteConfig::streaming());
        let b = EchoWrite::with_config(EchoWriteConfig::streaming_downsampled(32));
        assert_ne!(config_fingerprint(a.config()), config_fingerprint(b.config()));
        let bytes = encode(&StreamingSession::new(&a).export_state(), a.config());
        assert!(matches!(
            decode(&bytes, b.config()),
            Err(SnapshotError::ConfigMismatch { .. })
        ));
    }

    #[test]
    fn session_convenience_roundtrip_resumes_bitwise() {
        let audio = render(&[Stroke::S3, Stroke::S5], 21);
        let engine = EchoWrite::with_config(EchoWriteConfig::streaming());

        let mut oracle = StreamingSession::new(&engine);
        let mut live = StreamingSession::new(&engine);
        let mut ev_o = Vec::new();
        let mut ev_r = Vec::new();
        let cut = audio.len() / 2 + 13; // deliberately frame-misaligned
        for chunk in audio[..cut].chunks(997) {
            oracle.push_events(&engine, chunk, true, &mut ev_o);
            live.push_events(&engine, chunk, true, &mut ev_r);
        }
        let bytes = snapshot_session(&live, &engine);
        drop(live);
        let mut resumed = restore_session(&bytes, &engine).expect("restore");
        for chunk in audio[cut..].chunks(501) {
            oracle.push_events(&engine, chunk, true, &mut ev_o);
            resumed.push_events(&engine, chunk, true, &mut ev_r);
        }
        oracle.finish_events(&engine, true, &mut ev_o);
        resumed.finish_events(&engine, true, &mut ev_r);
        assert!(!ev_o.is_empty(), "scenario must produce strokes");
        assert_events_bitwise(&ev_r, &ev_o);
    }

    #[test]
    fn restore_in_place_overwrites_a_dirty_session() {
        let audio = render(&[Stroke::S2], 5);
        let engine = EchoWrite::with_config(EchoWriteConfig::streaming());
        let mut ev = Vec::new();
        let mut clean = StreamingSession::new(&engine);
        clean.push_events(&engine, &audio[..audio.len() / 3], true, &mut ev);
        let bytes = snapshot_session(&clean, &engine);

        let mut dirty = StreamingSession::new(&engine);
        dirty.push_events(&engine, &audio, true, &mut ev); // unrelated state
        restore_in_place(&mut dirty, &bytes, &engine).expect("restore_in_place");
        assert_eq!(dirty.export_state(), clean.export_state());
    }
}
