//! Serving metrics on the shared `echowrite_trace::metrics` registry
//! primitives: lock-free counters, gauges, and a fixed-bucket latency
//! histogram, so the ingress path and the shard workers never contend on a
//! lock to record an observation. The same primitives back the offline
//! evaluation harness (`crates/bench`), keeping the two vocabularies in
//! sync.
//!
//! This module is the serving layer's *only* sanctioned wall-clock
//! quarantine, mirroring `crates/profile::timing`: the uptime gauge below
//! reads `std::time::Instant` behind reasoned `echolint: allow` markers.
//! Everything that can influence a recognition result — queue order,
//! deadlines, the idle reaper — runs on logical clocks (enqueue sequence
//! numbers and pushed-sample counts) and never touches this clock.

pub use echowrite_trace::metrics::{Counter, Gauge, Histogram, PromWriter};
use echowrite_trace::metrics::quantile_from_buckets;
// echolint: allow(determinism) -- metrics-only uptime clock, quarantined like crates/profile::timing; never feeds recognition results
use std::time::Instant;

/// Upper bounds (µs) of the push-latency histogram buckets; observations
/// above the last bound land in the explicit `+Inf` bucket (counted, never
/// dropped).
///
/// The ladder extends to 2.5 s: under multi-session queueing a push's
/// end-to-end latency (enqueue to processed) routinely exceeds the old
/// 250 ms ceiling, which pinned every loaded p99 readout at the `+Inf`
/// bucket instead of resolving a real tail.
pub const LATENCY_BUCKETS_US: [u64; 15] = [
    50, 100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000, 250_000, 500_000,
    1_000_000, 2_500_000,
];

/// The serving layer's metric registry: one instance per
/// [`SessionManager`](crate::SessionManager), shared by the ingress path
/// and every shard worker.
#[derive(Debug)]
pub struct ServeMetrics {
    /// Sessions admitted and opened.
    pub sessions_opened: Counter,
    /// Sessions ended by an explicit finish.
    pub sessions_finished: Counter,
    /// Sessions reclaimed by the idle reaper.
    pub sessions_reaped: Counter,
    /// Sessions suspended into the snapshot store (reaper eviction,
    /// explicit export, or a shutdown drain).
    pub sessions_suspended: Counter,
    /// Sessions resumed from the snapshot store (a thaw on `Open`/`Push`/
    /// `Finish`, or an explicit import).
    pub sessions_resumed: Counter,
    /// Idempotent re-opens of an already-live session id (a retrying
    /// client re-sending an `Open` whose ack it lost).
    pub sessions_reopened: Counter,
    /// Open attempts rejected by the admission controller.
    pub sessions_shed: Counter,
    /// Sessions currently live across all shards.
    pub sessions_live: Gauge,
    /// Audio chunks processed by shard workers.
    pub pushes: Counter,
    /// Pushes degraded to segment-only output by a missed deadline.
    pub pushes_degraded: Counter,
    /// Batched drain rounds executed by shard workers (each round runs up
    /// to `batch_max` queued commands through one shared DSP scratch).
    pub batch_drains: Counter,
    /// Submissions rejected because the shard queue was full.
    pub queue_full: Counter,
    /// Commands addressed to a session no shard knows (never opened, shed,
    /// already finished, or reaped).
    pub orphan_commands: Counter,
    /// Segment events emitted across all sessions.
    pub events: Counter,
    /// Commands currently sitting in shard queues.
    pub queue_depth: Gauge,
    /// TCP connections accepted by the wire front-end.
    pub wire_connections: Counter,
    /// Request frames decoded off wire sockets.
    pub wire_frames_read: Counter,
    /// Response frames written to wire sockets.
    pub wire_frames_written: Counter,
    /// Wire frames rejected as malformed (bad length, unknown kind,
    /// truncated payload); each one closes its connection.
    pub wire_malformed_frames: Counter,
    /// Times a wire response had to wait because its connection's write
    /// queue was full (a slow-reading client).
    pub wire_write_stalls: Counter,
    /// HTTP requests served by the `echowrite-obs` introspection plane.
    pub obs_requests: Counter,
    /// HTTP requests the introspection plane rejected as malformed; each
    /// one closes only its own connection.
    pub obs_malformed_requests: Counter,
    /// Flight-recorder dump artifacts written by shard workers.
    pub flight_dumps: Counter,
    /// End-to-end push latency (enqueue to processed), µs.
    pub push_latency_us: Histogram,
    started: Instant,
}

impl Default for ServeMetrics {
    fn default() -> Self {
        Self::new()
    }
}

impl ServeMetrics {
    /// Creates a zeroed registry.
    pub fn new() -> Self {
        ServeMetrics {
            sessions_opened: Counter::default(),
            sessions_finished: Counter::default(),
            sessions_reaped: Counter::default(),
            sessions_suspended: Counter::default(),
            sessions_resumed: Counter::default(),
            sessions_reopened: Counter::default(),
            sessions_shed: Counter::default(),
            sessions_live: Gauge::default(),
            pushes: Counter::default(),
            pushes_degraded: Counter::default(),
            batch_drains: Counter::default(),
            queue_full: Counter::default(),
            orphan_commands: Counter::default(),
            events: Counter::default(),
            queue_depth: Gauge::default(),
            wire_connections: Counter::default(),
            wire_frames_read: Counter::default(),
            wire_frames_written: Counter::default(),
            wire_malformed_frames: Counter::default(),
            wire_write_stalls: Counter::default(),
            obs_requests: Counter::default(),
            obs_malformed_requests: Counter::default(),
            flight_dumps: Counter::default(),
            push_latency_us: Histogram::new(&LATENCY_BUCKETS_US),
            // echolint: allow(determinism) -- observability-only uptime stamp; nothing downstream branches on it
            started: Instant::now(),
        }
    }

    /// Seconds since the registry was created (wall clock; observability
    /// only).
    pub fn uptime_seconds(&self) -> f64 {
        // echolint: allow(determinism) -- observability-only uptime read, quarantined in this module
        self.started.elapsed().as_secs_f64()
    }

    /// A point-in-time copy of every metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            sessions_opened: self.sessions_opened.get(),
            sessions_finished: self.sessions_finished.get(),
            sessions_reaped: self.sessions_reaped.get(),
            sessions_suspended: self.sessions_suspended.get(),
            sessions_resumed: self.sessions_resumed.get(),
            sessions_reopened: self.sessions_reopened.get(),
            sessions_shed: self.sessions_shed.get(),
            sessions_live: self.sessions_live.get(),
            pushes: self.pushes.get(),
            pushes_degraded: self.pushes_degraded.get(),
            batch_drains: self.batch_drains.get(),
            queue_full: self.queue_full.get(),
            orphan_commands: self.orphan_commands.get(),
            events: self.events.get(),
            queue_depth: self.queue_depth.get(),
            wire_connections: self.wire_connections.get(),
            wire_frames_read: self.wire_frames_read.get(),
            wire_frames_written: self.wire_frames_written.get(),
            wire_malformed_frames: self.wire_malformed_frames.get(),
            wire_write_stalls: self.wire_write_stalls.get(),
            obs_requests: self.obs_requests.get(),
            obs_malformed_requests: self.obs_malformed_requests.get(),
            flight_dumps: self.flight_dumps.get(),
            push_latency_count: self.push_latency_us.count(),
            push_latency_sum_us: self.push_latency_us.sum(),
            push_latency_buckets: self.push_latency_us.bucket_counts(),
            push_latency_overflow: self.push_latency_us.overflow_count(),
            push_latency_p99_us: self.push_latency_us.quantile_upper_bound(0.99),
            uptime_seconds: self.uptime_seconds(),
        }
    }

    /// Prometheus-style text exposition of the whole registry.
    pub fn to_prometheus(&self) -> String {
        self.snapshot().to_prometheus()
    }
}

/// A point-in-time copy of [`ServeMetrics`].
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// Sessions admitted and opened.
    pub sessions_opened: u64,
    /// Sessions ended by an explicit finish.
    pub sessions_finished: u64,
    /// Sessions reclaimed by the idle reaper.
    pub sessions_reaped: u64,
    /// Sessions suspended into the snapshot store.
    pub sessions_suspended: u64,
    /// Sessions resumed from the snapshot store.
    pub sessions_resumed: u64,
    /// Idempotent re-opens of an already-live session id.
    pub sessions_reopened: u64,
    /// Open attempts rejected by the admission controller.
    pub sessions_shed: u64,
    /// Sessions currently live across all shards.
    pub sessions_live: u64,
    /// Audio chunks processed by shard workers.
    pub pushes: u64,
    /// Pushes degraded to segment-only output by a missed deadline.
    pub pushes_degraded: u64,
    /// Batched drain rounds executed by shard workers.
    pub batch_drains: u64,
    /// Submissions rejected because the shard queue was full.
    pub queue_full: u64,
    /// Commands addressed to a session no shard knows.
    pub orphan_commands: u64,
    /// Segment events emitted across all sessions.
    pub events: u64,
    /// Commands currently sitting in shard queues.
    pub queue_depth: u64,
    /// TCP connections accepted by the wire front-end.
    pub wire_connections: u64,
    /// Request frames decoded off wire sockets.
    pub wire_frames_read: u64,
    /// Response frames written to wire sockets.
    pub wire_frames_written: u64,
    /// Wire frames rejected as malformed.
    pub wire_malformed_frames: u64,
    /// Wire responses that waited on a full connection write queue.
    pub wire_write_stalls: u64,
    /// HTTP requests served by the introspection plane.
    pub obs_requests: u64,
    /// HTTP requests the introspection plane rejected as malformed.
    pub obs_malformed_requests: u64,
    /// Flight-recorder dump artifacts written by shard workers.
    pub flight_dumps: u64,
    /// Push-latency observation count.
    pub push_latency_count: u64,
    /// Push-latency sum, µs (saturating).
    pub push_latency_sum_us: u64,
    /// Push-latency per-bucket counts (non-cumulative, `+Inf` last).
    pub push_latency_buckets: Vec<u64>,
    /// Observations that exceeded every finite bucket bound.
    pub push_latency_overflow: u64,
    /// Upper bound (µs) of the bucket holding the p99 push latency.
    pub push_latency_p99_us: Option<u64>,
    /// Seconds since the registry was created.
    pub uptime_seconds: f64,
}

impl MetricsSnapshot {
    /// Prometheus text exposition: `# HELP`/`# TYPE` preambles for every
    /// family, escaped label values, and the latency histogram with
    /// cumulative `le` buckets ending in `+Inf`.
    pub fn to_prometheus(&self) -> String {
        let mut w = PromWriter::new();
        w.info(
            "echowrite_serve_build_info",
            "Build metadata for the serving layer.",
            &[("crate", "echowrite-serve"), ("version", env!("CARGO_PKG_VERSION"))],
        );
        let counters: [(&str, &str, u64); 21] = [
            (
                "echowrite_serve_sessions_opened_total",
                "Sessions admitted and opened.",
                self.sessions_opened,
            ),
            (
                "echowrite_serve_sessions_finished_total",
                "Sessions ended by an explicit finish.",
                self.sessions_finished,
            ),
            (
                "echowrite_serve_sessions_reaped_total",
                "Sessions reclaimed by the idle reaper.",
                self.sessions_reaped,
            ),
            (
                "echowrite_serve_sessions_suspended_total",
                "Sessions suspended into the snapshot store.",
                self.sessions_suspended,
            ),
            (
                "echowrite_serve_sessions_resumed_total",
                "Sessions resumed from the snapshot store.",
                self.sessions_resumed,
            ),
            (
                "echowrite_serve_sessions_reopened_total",
                "Idempotent re-opens of an already-live session id.",
                self.sessions_reopened,
            ),
            (
                "echowrite_serve_sessions_shed_total",
                "Open attempts rejected by the admission controller.",
                self.sessions_shed,
            ),
            ("echowrite_serve_pushes_total", "Audio chunks processed.", self.pushes),
            (
                "echowrite_serve_pushes_degraded_total",
                "Pushes degraded to segment-only output by a missed deadline.",
                self.pushes_degraded,
            ),
            (
                "echowrite_serve_batch_drains_total",
                "Batched drain rounds executed by shard workers.",
                self.batch_drains,
            ),
            (
                "echowrite_serve_queue_full_total",
                "Submissions rejected because the shard queue was full.",
                self.queue_full,
            ),
            (
                "echowrite_serve_orphan_commands_total",
                "Commands addressed to a session no shard knows.",
                self.orphan_commands,
            ),
            ("echowrite_serve_events_total", "Segment events emitted.", self.events),
            (
                "echowrite_serve_wire_connections_total",
                "TCP connections accepted by the wire front-end.",
                self.wire_connections,
            ),
            (
                "echowrite_serve_wire_frames_read_total",
                "Request frames decoded off wire sockets.",
                self.wire_frames_read,
            ),
            (
                "echowrite_serve_wire_frames_written_total",
                "Response frames written to wire sockets.",
                self.wire_frames_written,
            ),
            (
                "echowrite_serve_wire_malformed_frames_total",
                "Wire frames rejected as malformed.",
                self.wire_malformed_frames,
            ),
            (
                "echowrite_serve_wire_write_stalls_total",
                "Wire responses that waited on a full connection write queue.",
                self.wire_write_stalls,
            ),
            (
                "echowrite_serve_obs_requests_total",
                "HTTP requests served by the introspection plane.",
                self.obs_requests,
            ),
            (
                "echowrite_serve_obs_malformed_requests_total",
                "HTTP requests the introspection plane rejected as malformed.",
                self.obs_malformed_requests,
            ),
            (
                "echowrite_serve_flight_dumps_total",
                "Flight-recorder dump artifacts written by shard workers.",
                self.flight_dumps,
            ),
        ];
        for (name, help, v) in counters {
            w.counter(name, help, v);
        }
        w.gauge(
            "echowrite_serve_sessions_live",
            "Sessions currently live across all shards.",
            self.sessions_live,
        );
        w.gauge(
            "echowrite_serve_queue_depth",
            "Commands currently sitting in shard queues.",
            self.queue_depth,
        );
        w.gauge_f64(
            "echowrite_serve_uptime_seconds",
            "Seconds since the metrics registry was created.",
            self.uptime_seconds,
        );
        // Interpolated latency quantiles: estimated inside the histogram's
        // buckets by linear interpolation (quantile_from_buckets), so a
        // scrape gets a usable p50/p95/p99 without PromQL. Omitted until
        // the first observation lands — an absent gauge is honest, a fake
        // zero is not.
        let quantiles: [(f64, &str, &str); 3] = [
            (0.50, "echowrite_serve_push_latency_p50_us", "Estimated p50"),
            (0.95, "echowrite_serve_push_latency_p95_us", "Estimated p95"),
            (0.99, "echowrite_serve_push_latency_p99_us", "Estimated p99"),
        ];
        for (q, name, which) in quantiles {
            if let Some(v) =
                quantile_from_buckets(&LATENCY_BUCKETS_US, &self.push_latency_buckets, q)
            {
                let help = format!(
                    "{which} push latency in microseconds, interpolated from histogram buckets."
                );
                w.gauge_f64(name, &help, v);
            }
        }
        w.histogram(
            "echowrite_serve_push_latency_us",
            "End-to-end push latency (enqueue to processed), microseconds.",
            &LATENCY_BUCKETS_US,
            &self.push_latency_buckets,
            self.push_latency_sum_us,
            self.push_latency_count,
        );
        w.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::default();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let g = Gauge::default();
        g.inc();
        g.inc();
        g.dec();
        assert_eq!(g.get(), 1);
        g.dec();
        g.dec(); // saturates, no wrap
        assert_eq!(g.get(), 0);
    }

    #[test]
    fn histogram_buckets_and_p99() {
        let h = Histogram::new(&LATENCY_BUCKETS_US);
        for _ in 0..99 {
            h.observe(40); // first bucket (le 50)
        }
        h.observe(200_000); // second-to-last bucket
        assert_eq!(h.count(), 100);
        assert_eq!(h.quantile_upper_bound(0.5), Some(50));
        assert_eq!(h.quantile_upper_bound(0.99), Some(50));
        assert_eq!(h.quantile_upper_bound(1.0), Some(250_000));
        let h2 = Histogram::new(&LATENCY_BUCKETS_US);
        assert_eq!(h2.quantile_upper_bound(0.99), None);
        h2.observe(u64::MAX); // overflow bucket
        assert_eq!(h2.quantile_upper_bound(0.99), Some(u64::MAX));
    }

    /// Regression: over-range observations land in the `+Inf` bucket and
    /// the sum saturates — nothing is silently dropped or wrapped.
    #[test]
    fn histogram_over_range_is_counted_not_dropped() {
        let h = Histogram::new(&LATENCY_BUCKETS_US);
        h.observe(2_500_001); // one past the last finite bound
        h.observe(u64::MAX);
        assert_eq!(h.count(), 2);
        assert_eq!(h.overflow_count(), 2);
        assert_eq!(h.sum(), u64::MAX); // saturated, not wrapped
        let buckets = h.bucket_counts();
        assert_eq!(buckets.len(), LATENCY_BUCKETS_US.len() + 1);
        assert_eq!(buckets.last().copied(), Some(2));
        assert_eq!(buckets.iter().take(LATENCY_BUCKETS_US.len()).sum::<u64>(), 0);
    }

    /// Regression for the bucket-ladder extension: a queueing-shaped load
    /// (most pushes fast, the backlogged tail between 250 ms and 2.5 s)
    /// must resolve a real finite p99 instead of saturating at the old
    /// 250 ms ceiling's `+Inf` bucket.
    #[test]
    fn queueing_tail_resolves_finite_p99() {
        assert_eq!(
            &LATENCY_BUCKETS_US[12..],
            &[500_000, 1_000_000, 2_500_000],
            "the ladder must extend past 250 ms to cover queueing tails"
        );
        let h = Histogram::new(&LATENCY_BUCKETS_US);
        for _ in 0..90 {
            h.observe(400); // uncontended pushes
        }
        for _ in 0..9 {
            h.observe(180_000); // mild backlog
        }
        h.observe(800_000); // deep multi-session backlog: 0.8 s
        assert_eq!(h.overflow_count(), 0, "a 0.8 s push must land in a finite bucket");
        assert_eq!(h.quantile_upper_bound(0.99), Some(250_000));
        assert_eq!(h.quantile_upper_bound(1.0), Some(1_000_000), "tail resolves, not +Inf");
    }

    #[test]
    fn prometheus_dump_has_every_family() {
        let m = ServeMetrics::new();
        m.pushes.inc();
        m.push_latency_us.observe(123);
        m.queue_depth.set(7);
        let text = m.to_prometheus();
        for family in [
            "echowrite_serve_sessions_opened_total",
            "echowrite_serve_sessions_suspended_total",
            "echowrite_serve_sessions_resumed_total",
            "echowrite_serve_sessions_reopened_total",
            "echowrite_serve_sessions_shed_total",
            "echowrite_serve_wire_connections_total",
            "echowrite_serve_wire_malformed_frames_total",
            "echowrite_serve_wire_write_stalls_total",
            "echowrite_serve_pushes_total 1",
            "echowrite_serve_queue_depth 7",
            "echowrite_serve_push_latency_us_bucket{le=\"250\"} 1",
            "echowrite_serve_push_latency_us_bucket{le=\"+Inf\"} 1",
            "echowrite_serve_push_latency_us_count 1",
        ] {
            assert!(text.contains(family), "missing {family} in:\n{text}");
        }
    }

    /// The exposition format satellite: every family carries `# HELP` and
    /// `# TYPE` preambles, and label values are escaped.
    #[test]
    fn prometheus_exposition_format() {
        let m = ServeMetrics::new();
        m.push_latency_us.observe(9_999_999); // over-range → +Inf bucket
        let text = m.to_prometheus();
        // One HELP and one TYPE line per family, HELP immediately before TYPE.
        for family in [
            ("echowrite_serve_sessions_opened_total", "counter"),
            ("echowrite_serve_pushes_total", "counter"),
            ("echowrite_serve_sessions_live", "gauge"),
            ("echowrite_serve_uptime_seconds", "gauge"),
            ("echowrite_serve_push_latency_us", "histogram"),
        ] {
            let (name, kind) = family;
            assert!(text.contains(&format!("# HELP {name} ")), "no HELP for {name}:\n{text}");
            assert!(
                text.contains(&format!("# TYPE {name} {kind}")),
                "no TYPE {kind} for {name}:\n{text}"
            );
        }
        // Build-info labels present and quoted.
        assert!(text.contains("echowrite_serve_build_info{crate=\"echowrite-serve\","));
        // The over-range observation shows up in +Inf but no finite bucket.
        assert!(text.contains("echowrite_serve_push_latency_us_bucket{le=\"250000\"} 0"));
        assert!(text.contains("echowrite_serve_push_latency_us_bucket{le=\"2500000\"} 0"));
        assert!(text.contains("echowrite_serve_push_latency_us_bucket{le=\"+Inf\"} 1"));
        // Label escaping is exercised directly on the writer.
        assert_eq!(PromWriter::escape_label("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    /// Satellite regression (interpolated quantiles): once observations
    /// land, `/metrics` carries p50/p95/p99 gauges estimated inside the
    /// histogram buckets; with no observations the gauges are absent
    /// rather than a misleading zero.
    #[test]
    fn interpolated_quantile_gauges_exposed() {
        let empty = ServeMetrics::new();
        assert!(
            !empty.to_prometheus().contains("echowrite_serve_push_latency_p95_us"),
            "quantile gauges must be absent before the first observation"
        );
        let m = ServeMetrics::new();
        for _ in 0..95 {
            m.push_latency_us.observe(40); // le=50 bucket
        }
        for _ in 0..5 {
            m.push_latency_us.observe(2_000); // le=2500 bucket
        }
        let text = m.to_prometheus();
        for name in [
            "echowrite_serve_push_latency_p50_us",
            "echowrite_serve_push_latency_p95_us",
            "echowrite_serve_push_latency_p99_us",
        ] {
            assert!(text.contains(&format!("# TYPE {name} gauge")), "missing {name}:\n{text}");
        }
        // p50 sits inside the first bucket (interpolated below its 50 µs
        // bound), p99 inside the 1000..2500 bucket — not pinned at bounds.
        let p50 = quantile_from_buckets(&LATENCY_BUCKETS_US, &m.push_latency_us.bucket_counts(), 0.5)
            .expect("p50");
        assert!(p50 > 0.0 && p50 <= 50.0, "p50 {p50} outside its bucket");
        let p99 = quantile_from_buckets(&LATENCY_BUCKETS_US, &m.push_latency_us.bucket_counts(), 0.99)
            .expect("p99");
        assert!((1_000.0..=2_500.0).contains(&p99), "p99 {p99} outside its bucket");
    }

    #[test]
    fn snapshot_reflects_registry() {
        let m = ServeMetrics::new();
        m.sessions_opened.add(3);
        m.sessions_live.set(2);
        m.push_latency_us.observe(60);
        let snap = m.snapshot();
        assert_eq!(snap.sessions_opened, 3);
        assert_eq!(snap.sessions_live, 2);
        assert_eq!(snap.push_latency_count, 1);
        assert_eq!(snap.push_latency_overflow, 0);
        assert_eq!(snap.push_latency_p99_us, Some(100));
        assert!(snap.uptime_seconds >= 0.0);
    }
}
