//! Dynamic time warping over one-dimensional series.

/// Configuration for a DTW computation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DtwConfig {
    /// Sakoe-Chiba band half-width in samples; `None` runs unconstrained
    /// DTW. A band speeds up matching and forbids pathological warps.
    pub band: Option<usize>,
    /// Divide the accumulated cost by the warping-path length, making
    /// distances comparable across profile durations.
    pub normalize: bool,
}

impl DtwConfig {
    /// Unconstrained, path-normalized DTW — the configuration used for
    /// stroke matching.
    pub fn stroke_matching() -> Self {
        DtwConfig { band: None, normalize: true }
    }
}

impl Default for DtwConfig {
    fn default() -> Self {
        DtwConfig::stroke_matching()
    }
}

/// Computes the DTW distance between two series with absolute-difference
/// local cost.
///
/// Returns `f64::INFINITY` if either series is empty or the band is too
/// narrow to connect the corners.
///
/// # Example
///
/// ```
/// use echowrite_dtw::{dtw_distance, DtwConfig};
/// let a = [0.0, 1.0, 2.0, 1.0, 0.0];
/// let b = [0.0, 0.0, 1.0, 2.0, 2.0, 1.0, 0.0]; // same shape, stretched
/// let d = dtw_distance(&a, &b, DtwConfig::default());
/// assert!(d < 0.2, "stretched copy should match closely: {d}");
/// ```
pub fn dtw_distance(a: &[f64], b: &[f64], config: DtwConfig) -> f64 {
    match dtw_with_path(a, b, config) {
        Some((d, _)) => d,
        None => f64::INFINITY,
    }
}

/// DTW distance together with the optimal alignment path (pairs of indices
/// into `a` and `b`).
///
/// Returns `None` when no alignment exists (empty input or over-tight band).
pub fn dtw_with_path(a: &[f64], b: &[f64], config: DtwConfig) -> Option<(f64, Vec<(usize, usize)>)> {
    let (n, m) = (a.len(), b.len());
    if n == 0 || m == 0 {
        return None;
    }
    // Effective band: at least |n − m| so the corners connect.
    let band = config
        .band
        .map(|w| w.max(n.abs_diff(m)))
        .unwrap_or(usize::MAX);

    let inf = f64::INFINITY;
    // Accumulated-cost matrix, (n+1) × (m+1), row 0/col 0 as borders.
    let mut cost = vec![inf; (n + 1) * (m + 1)];
    let idx = |i: usize, j: usize| i * (m + 1) + j;
    cost[idx(0, 0)] = 0.0;

    for i in 1..=n {
        let j_lo = if band == usize::MAX { 1 } else { i.saturating_sub(band).max(1) };
        let j_hi = if band == usize::MAX { m } else { (i + band).min(m) };
        for j in j_lo..=j_hi {
            let local = (a[i - 1] - b[j - 1]).abs();
            let best = cost[idx(i - 1, j)]
                .min(cost[idx(i, j - 1)])
                .min(cost[idx(i - 1, j - 1)]);
            if best < inf {
                cost[idx(i, j)] = local + best;
            }
        }
    }
    if cost[idx(n, m)] == inf {
        return None;
    }

    // Backtrack the optimal path.
    let mut path = Vec::with_capacity(n + m);
    let (mut i, mut j) = (n, m);
    while i > 0 && j > 0 {
        path.push((i - 1, j - 1));
        let diag = cost[idx(i - 1, j - 1)];
        let up = cost[idx(i - 1, j)];
        let left = cost[idx(i, j - 1)];
        if diag <= up && diag <= left {
            i -= 1;
            j -= 1;
        } else if up <= left {
            i -= 1;
        } else {
            j -= 1;
        }
    }
    path.reverse();

    let total = cost[idx(n, m)];
    let d = if config.normalize { total / path.len() as f64 } else { total };
    Some((d, path))
}

/// Z-normalizes a series (zero mean, unit variance) — useful when matching
/// should ignore amplitude scale. A constant series becomes all zeros.
pub fn z_normalize(x: &[f64]) -> Vec<f64> {
    if x.is_empty() {
        return Vec::new();
    }
    let mean = x.iter().sum::<f64>() / x.len() as f64;
    let var = x.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / x.len() as f64;
    let sd = var.sqrt();
    if sd < 1e-12 {
        return vec![0.0; x.len()];
    }
    x.iter().map(|v| (v - mean) / sd).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(a: &[f64], b: &[f64]) -> f64 {
        dtw_distance(a, b, DtwConfig::default())
    }

    #[test]
    fn identity_distance_is_zero() {
        let x = [1.0, 3.0, 2.0, 5.0];
        assert_eq!(d(&x, &x), 0.0);
    }

    #[test]
    fn symmetric() {
        let a = [0.0, 1.0, 4.0, 2.0];
        let b = [0.0, 2.0, 3.0, 1.0, 0.5];
        assert!((d(&a, &b) - d(&b, &a)).abs() < 1e-12);
    }

    #[test]
    fn empty_inputs_are_infinite() {
        assert_eq!(d(&[], &[1.0]), f64::INFINITY);
        assert_eq!(d(&[1.0], &[]), f64::INFINITY);
        assert!(dtw_with_path(&[], &[], DtwConfig::default()).is_none());
    }

    #[test]
    fn time_stretching_is_forgiven() {
        let a: Vec<f64> = (0..20).map(|i| (i as f64 / 19.0 * std::f64::consts::PI).sin()).collect();
        // The same half-sine at double length.
        let b: Vec<f64> = (0..40).map(|i| (i as f64 / 39.0 * std::f64::consts::PI).sin()).collect();
        // And a different shape (ramp) of the same length as a.
        let c: Vec<f64> = (0..20).map(|i| i as f64 / 19.0).collect();
        assert!(d(&a, &b) < 0.05, "stretched match {}", d(&a, &b));
        assert!(d(&a, &b) < d(&a, &c) / 3.0, "shape must dominate duration");
    }

    #[test]
    fn distance_scales_with_offset() {
        let a = [0.0; 10];
        let b = [1.0; 10];
        let c = [2.0; 10];
        assert!((d(&a, &b) - 1.0).abs() < 1e-12); // normalized per path step
        assert!((d(&a, &c) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn unnormalized_accumulates() {
        let a = [0.0; 10];
        let b = [1.0; 10];
        let cfg = DtwConfig { band: None, normalize: false };
        assert!((dtw_distance(&a, &b, cfg) - 10.0).abs() < 1e-12);
    }

    #[test]
    fn band_widens_to_connect_corners() {
        // Length mismatch 5 vs 15 with a 1-wide band: band must expand to
        // |n−m| = 10 so a path still exists.
        let a = [1.0; 5];
        let b = [1.0; 15];
        let cfg = DtwConfig { band: Some(1), normalize: true };
        assert_eq!(dtw_distance(&a, &b, cfg), 0.0);
    }

    #[test]
    fn band_restricts_warping() {
        // A series and its heavily shifted copy: full DTW aligns them well,
        // a tight band cannot.
        let mut a = vec![0.0; 30];
        let mut b = vec![0.0; 30];
        a[5] = 10.0;
        b[25] = 10.0;
        let full = dtw_distance(&a, &b, DtwConfig { band: None, normalize: false });
        let banded = dtw_distance(&a, &b, DtwConfig { band: Some(3), normalize: false });
        assert!(full < banded, "full {full} banded {banded}");
    }

    #[test]
    fn path_is_monotone_and_complete() {
        let a = [0.0, 1.0, 2.0, 3.0];
        let b = [0.0, 2.0, 3.0];
        let (_, path) = dtw_with_path(&a, &b, DtwConfig::default()).unwrap();
        assert_eq!(*path.first().unwrap(), (0, 0));
        assert_eq!(*path.last().unwrap(), (3, 2));
        for w in path.windows(2) {
            let (i0, j0) = w[0];
            let (i1, j1) = w[1];
            assert!(i1 >= i0 && j1 >= j0);
            assert!(i1 - i0 <= 1 && j1 - j0 <= 1);
            assert!(i1 + j1 > i0 + j0);
        }
    }

    #[test]
    fn triangle_like_behaviour_on_constants() {
        // DTW is not a metric, but on constant series it reduces to the
        // absolute difference, which is.
        let a = [1.0; 4];
        let b = [3.0; 4];
        let c = [6.0; 4];
        assert!(d(&a, &c) <= d(&a, &b) + d(&b, &c) + 1e-12);
    }

    #[test]
    fn z_normalize_properties() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let z = z_normalize(&x);
        let mean: f64 = z.iter().sum::<f64>() / z.len() as f64;
        let var: f64 = z.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / z.len() as f64;
        assert!(mean.abs() < 1e-12);
        assert!((var - 1.0).abs() < 1e-12);
        assert_eq!(z_normalize(&[5.0; 3]), vec![0.0; 3]);
        assert!(z_normalize(&[]).is_empty());
    }

    #[test]
    fn single_element_series() {
        assert_eq!(d(&[2.0], &[5.0]), 3.0);
        assert_eq!(d(&[2.0], &[2.0, 2.0, 2.0]), 0.0);
    }
}
