//! Dynamic time warping over one-dimensional series.

/// Configuration for a DTW computation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DtwConfig {
    /// Sakoe-Chiba band half-width in samples; `None` runs unconstrained
    /// DTW. A band speeds up matching and forbids pathological warps.
    pub band: Option<usize>,
    /// Divide the accumulated cost by the warping-path length, making
    /// distances comparable across profile durations.
    pub normalize: bool,
}

impl DtwConfig {
    /// Unconstrained, path-normalized DTW — the configuration used for
    /// stroke matching.
    pub fn stroke_matching() -> Self {
        DtwConfig { band: None, normalize: true }
    }
}

impl Default for DtwConfig {
    fn default() -> Self {
        DtwConfig::stroke_matching()
    }
}

/// Computes the DTW distance between two series with absolute-difference
/// local cost.
///
/// Returns `f64::INFINITY` if either series is empty or the band is too
/// narrow to connect the corners.
///
/// # Example
///
/// ```
/// use echowrite_dtw::{dtw_distance, DtwConfig};
/// let a = [0.0, 1.0, 2.0, 1.0, 0.0];
/// let b = [0.0, 0.0, 1.0, 2.0, 2.0, 1.0, 0.0]; // same shape, stretched
/// let d = dtw_distance(&a, &b, DtwConfig::default());
/// assert!(d < 0.2, "stretched copy should match closely: {d}");
/// ```
pub fn dtw_distance(a: &[f64], b: &[f64], config: DtwConfig) -> f64 {
    dtw_distance_pruned(a, b, config, None).unwrap_or(f64::INFINITY)
}

/// Distance-only DTW with a rolling two-row cost matrix and optional early
/// abandoning, O(band) memory instead of the full `(n+1)×(m+1)` matrix of
/// [`dtw_with_path`].
///
/// The normalized distance divides by the *same* warping-path length that
/// [`dtw_with_path`] would backtrack (the path length is propagated forward
/// with the backtrack's exact diagonal/up/left tie-break), so the two
/// entry points agree to the last bit.
///
/// When `abandon_above` is set, the computation stops as soon as every cell
/// of a row proves the final distance must exceed the threshold (for
/// normalized DTW the row minimum is divided by the maximum possible path
/// length `n + m − 1`, keeping the abandon conservative and the result
/// exact). Returns `None` when no alignment exists **or** the distance is
/// provably above the threshold; otherwise the exact distance.
pub fn dtw_distance_pruned(
    a: &[f64],
    b: &[f64],
    config: DtwConfig,
    abandon_above: Option<f64>,
) -> Option<f64> {
    let (n, m) = (a.len(), b.len());
    if n == 0 || m == 0 {
        return None;
    }
    let band = config
        .band
        .map(|w| w.max(n.abs_diff(m)))
        .unwrap_or(usize::MAX);
    let inf = f64::INFINITY;
    let max_plen = (n + m - 1) as f64;

    // Rolling rows over j = 0..=m; `*_len` carries the backtrack path length.
    let mut prev_cost = vec![inf; m + 1];
    let mut cur_cost = vec![inf; m + 1];
    let mut prev_len = vec![0usize; m + 1];
    let mut cur_len = vec![0usize; m + 1];
    // Local-cost row |a[i−1] − b[j−1]|, precomputed per row by the SIMD
    // kernel so the recurrence below only chases dependencies.
    let mut local = vec![0.0; m];
    // echolint: allow(no-panic-path) -- rows allocated with m + 1 >= 1 elements above
    prev_cost[0] = 0.0; // cell (0, 0)

    for i in 1..=n {
        let j_lo = if band == usize::MAX { 1 } else { i.saturating_sub(band).max(1) };
        let j_hi = if band == usize::MAX { m } else { (i + band).min(m) };
        cur_cost.fill(inf);
        echowrite_dsp::kernels::abs_diff_broadcast_into(
            &mut local[j_lo - 1..j_hi],
            a[i - 1],
            &b[j_lo - 1..j_hi],
        );
        for j in j_lo..=j_hi {
            let diag = prev_cost[j - 1];
            let up = prev_cost[j];
            let left = cur_cost[j - 1];
            let best = diag.min(up).min(left);
            if best < inf {
                cur_cost[j] = local[j - 1] + best;
                // Identical tie-break to the backtrack in `dtw_with_path`:
                // diagonal first, then up, then left.
                cur_len[j] = 1 + if diag <= up && diag <= left {
                    prev_len[j - 1]
                } else if up <= left {
                    prev_len[j]
                } else {
                    cur_len[j - 1]
                };
            }
        }
        if let Some(thr) = abandon_above {
            // Unreached cells stay +∞ and drop out of the fold naturally.
            let row_min = echowrite_dsp::kernels::fold_min(&cur_cost[j_lo..=j_hi]);
            let bound = if config.normalize { row_min / max_plen } else { row_min };
            if bound > thr {
                return None;
            }
        }
        std::mem::swap(&mut prev_cost, &mut cur_cost);
        std::mem::swap(&mut prev_len, &mut cur_len);
    }
    if prev_cost[m] == inf {
        return None;
    }
    let d = if config.normalize {
        prev_cost[m] / prev_len[m] as f64
    } else {
        prev_cost[m]
    };
    Some(d)
}

/// LB_Keogh lower bound on `dtw_distance(a, b, config)`.
///
/// For every probe sample the bound charges the distance to the envelope of
/// `b` over the effective Sakoe–Chiba window (which any legal warping path
/// stays inside); envelopes are computed with monotonic deques in
/// O(n + m). Normalized DTW divides by the maximum possible path length, so
/// `lb_keogh(a, b, c) <= dtw_distance(a, b, c)` always holds — the bound is
/// cheap to compute and lets a nearest-template search skip exact DTW on
/// most candidates.
pub fn lb_keogh(a: &[f64], b: &[f64], config: DtwConfig) -> f64 {
    let (n, m) = (a.len(), b.len());
    if n == 0 || m == 0 {
        return f64::INFINITY;
    }
    let band = config
        .band
        .map(|w| w.max(n.abs_diff(m)))
        .unwrap_or(usize::MAX);
    let mut total = 0.0;
    if band >= m {
        // Window always spans all of `b`: one global envelope, folded and
        // charged by the SIMD kernels (the charge reassociates the sum —
        // 1e-9 class, still a valid lower bound).
        let lo = echowrite_dsp::kernels::fold_min(b);
        let hi = echowrite_dsp::kernels::fold_max(b);
        total += echowrite_dsp::kernels::envelope_charge(a, lo, hi);
    } else {
        // Sliding min/max over the window [i − band, i + band] of `b`,
        // maintained with monotonic deques.
        use std::collections::VecDeque;
        let mut min_dq: VecDeque<usize> = VecDeque::new();
        let mut max_dq: VecDeque<usize> = VecDeque::new();
        let mut next = 0usize;
        for (i, &v) in a.iter().enumerate() {
            let w_lo = i.saturating_sub(band);
            let w_hi = (i + band).min(m - 1);
            while next <= w_hi {
                while min_dq.back().is_some_and(|&k| b[k] >= b[next]) {
                    min_dq.pop_back();
                }
                min_dq.push_back(next);
                while max_dq.back().is_some_and(|&k| b[k] <= b[next]) {
                    max_dq.pop_back();
                }
                max_dq.push_back(next);
                next += 1;
            }
            while min_dq.front().is_some_and(|&k| k < w_lo) {
                min_dq.pop_front();
            }
            while max_dq.front().is_some_and(|&k| k < w_lo) {
                max_dq.pop_front();
            }
            // echolint: allow(no-panic-path) -- the deque always holds at least index w_hi (pushed above, k >= w_lo retained)
            let lo = b[*min_dq.front().expect("non-empty window")];
            // echolint: allow(no-panic-path) -- same invariant as the min deque
            let hi = b[*max_dq.front().expect("non-empty window")];
            if v > hi {
                total += v - hi;
            } else if v < lo {
                total += lo - v;
            }
        }
    }
    if config.normalize {
        total / (n + m - 1) as f64
    } else {
        total
    }
}

/// DTW distance together with the optimal alignment path (pairs of indices
/// into `a` and `b`).
///
/// Returns `None` when no alignment exists (empty input or over-tight band).
pub fn dtw_with_path(a: &[f64], b: &[f64], config: DtwConfig) -> Option<(f64, Vec<(usize, usize)>)> {
    let (n, m) = (a.len(), b.len());
    if n == 0 || m == 0 {
        return None;
    }
    // Effective band: at least |n − m| so the corners connect.
    let band = config
        .band
        .map(|w| w.max(n.abs_diff(m)))
        .unwrap_or(usize::MAX);

    let inf = f64::INFINITY;
    // Accumulated-cost matrix, (n+1) × (m+1), row 0/col 0 as borders.
    let mut cost = vec![inf; (n + 1) * (m + 1)];
    let idx = |i: usize, j: usize| i * (m + 1) + j;
    cost[idx(0, 0)] = 0.0;

    for i in 1..=n {
        let j_lo = if band == usize::MAX { 1 } else { i.saturating_sub(band).max(1) };
        let j_hi = if band == usize::MAX { m } else { (i + band).min(m) };
        for j in j_lo..=j_hi {
            let local = (a[i - 1] - b[j - 1]).abs();
            let best = cost[idx(i - 1, j)]
                .min(cost[idx(i, j - 1)])
                .min(cost[idx(i - 1, j - 1)]);
            if best < inf {
                cost[idx(i, j)] = local + best;
            }
        }
    }
    if cost[idx(n, m)] == inf {
        return None;
    }

    // Backtrack the optimal path.
    let mut path = Vec::with_capacity(n + m);
    let (mut i, mut j) = (n, m);
    while i > 0 && j > 0 {
        path.push((i - 1, j - 1));
        let diag = cost[idx(i - 1, j - 1)];
        let up = cost[idx(i - 1, j)];
        let left = cost[idx(i, j - 1)];
        if diag <= up && diag <= left {
            i -= 1;
            j -= 1;
        } else if up <= left {
            i -= 1;
        } else {
            j -= 1;
        }
    }
    path.reverse();

    let total = cost[idx(n, m)];
    let d = if config.normalize { total / path.len() as f64 } else { total };
    Some((d, path))
}

/// Z-normalizes a series (zero mean, unit variance) — useful when matching
/// should ignore amplitude scale. A constant series becomes all zeros.
pub fn z_normalize(x: &[f64]) -> Vec<f64> {
    if x.is_empty() {
        return Vec::new();
    }
    let mean = x.iter().sum::<f64>() / x.len() as f64;
    let var = x.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / x.len() as f64;
    let sd = var.sqrt();
    if sd < 1e-12 {
        return vec![0.0; x.len()];
    }
    x.iter().map(|v| (v - mean) / sd).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(a: &[f64], b: &[f64]) -> f64 {
        dtw_distance(a, b, DtwConfig::default())
    }

    #[test]
    fn identity_distance_is_zero() {
        let x = [1.0, 3.0, 2.0, 5.0];
        assert_eq!(d(&x, &x), 0.0);
    }

    #[test]
    fn symmetric() {
        let a = [0.0, 1.0, 4.0, 2.0];
        let b = [0.0, 2.0, 3.0, 1.0, 0.5];
        assert!((d(&a, &b) - d(&b, &a)).abs() < 1e-12);
    }

    #[test]
    fn empty_inputs_are_infinite() {
        assert_eq!(d(&[], &[1.0]), f64::INFINITY);
        assert_eq!(d(&[1.0], &[]), f64::INFINITY);
        assert!(dtw_with_path(&[], &[], DtwConfig::default()).is_none());
    }

    #[test]
    fn time_stretching_is_forgiven() {
        let a: Vec<f64> = (0..20).map(|i| (i as f64 / 19.0 * std::f64::consts::PI).sin()).collect();
        // The same half-sine at double length.
        let b: Vec<f64> = (0..40).map(|i| (i as f64 / 39.0 * std::f64::consts::PI).sin()).collect();
        // And a different shape (ramp) of the same length as a.
        let c: Vec<f64> = (0..20).map(|i| i as f64 / 19.0).collect();
        assert!(d(&a, &b) < 0.05, "stretched match {}", d(&a, &b));
        assert!(d(&a, &b) < d(&a, &c) / 3.0, "shape must dominate duration");
    }

    #[test]
    fn distance_scales_with_offset() {
        let a = [0.0; 10];
        let b = [1.0; 10];
        let c = [2.0; 10];
        assert!((d(&a, &b) - 1.0).abs() < 1e-12); // normalized per path step
        assert!((d(&a, &c) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn unnormalized_accumulates() {
        let a = [0.0; 10];
        let b = [1.0; 10];
        let cfg = DtwConfig { band: None, normalize: false };
        assert!((dtw_distance(&a, &b, cfg) - 10.0).abs() < 1e-12);
    }

    #[test]
    fn band_widens_to_connect_corners() {
        // Length mismatch 5 vs 15 with a 1-wide band: band must expand to
        // |n−m| = 10 so a path still exists.
        let a = [1.0; 5];
        let b = [1.0; 15];
        let cfg = DtwConfig { band: Some(1), normalize: true };
        assert_eq!(dtw_distance(&a, &b, cfg), 0.0);
    }

    #[test]
    fn band_restricts_warping() {
        // A series and its heavily shifted copy: full DTW aligns them well,
        // a tight band cannot.
        let mut a = vec![0.0; 30];
        let mut b = vec![0.0; 30];
        a[5] = 10.0;
        b[25] = 10.0;
        let full = dtw_distance(&a, &b, DtwConfig { band: None, normalize: false });
        let banded = dtw_distance(&a, &b, DtwConfig { band: Some(3), normalize: false });
        assert!(full < banded, "full {full} banded {banded}");
    }

    #[test]
    fn path_is_monotone_and_complete() {
        let a = [0.0, 1.0, 2.0, 3.0];
        let b = [0.0, 2.0, 3.0];
        let (_, path) = dtw_with_path(&a, &b, DtwConfig::default()).unwrap();
        assert_eq!(*path.first().unwrap(), (0, 0));
        assert_eq!(*path.last().unwrap(), (3, 2));
        for w in path.windows(2) {
            let (i0, j0) = w[0];
            let (i1, j1) = w[1];
            assert!(i1 >= i0 && j1 >= j0);
            assert!(i1 - i0 <= 1 && j1 - j0 <= 1);
            assert!(i1 + j1 > i0 + j0);
        }
    }

    #[test]
    fn triangle_like_behaviour_on_constants() {
        // DTW is not a metric, but on constant series it reduces to the
        // absolute difference, which is.
        let a = [1.0; 4];
        let b = [3.0; 4];
        let c = [6.0; 4];
        assert!(d(&a, &c) <= d(&a, &b) + d(&b, &c) + 1e-12);
    }

    #[test]
    fn z_normalize_properties() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let z = z_normalize(&x);
        let mean: f64 = z.iter().sum::<f64>() / z.len() as f64;
        let var: f64 = z.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / z.len() as f64;
        assert!(mean.abs() < 1e-12);
        assert!((var - 1.0).abs() < 1e-12);
        assert_eq!(z_normalize(&[5.0; 3]), vec![0.0; 3]);
        assert!(z_normalize(&[]).is_empty());
    }

    #[test]
    fn single_element_series() {
        assert_eq!(d(&[2.0], &[5.0]), 3.0);
        assert_eq!(d(&[2.0], &[2.0, 2.0, 2.0]), 0.0);
    }

    /// Deterministic pseudo-random series for kernel-equivalence sweeps.
    fn wave(n: usize, phase: f64) -> Vec<f64> {
        (0..n)
            .map(|i| {
                let t = i as f64;
                30.0 * (t * 0.37 + phase).sin() + 10.0 * (t * 1.13 + 2.0 * phase).cos()
            })
            .collect()
    }

    #[test]
    fn rolling_kernel_matches_with_path_exactly() {
        for (n, m) in [(1, 1), (5, 5), (17, 9), (40, 60), (33, 33)] {
            for trial in 0..4 {
                let a = wave(n, trial as f64);
                let b = wave(m, trial as f64 * 2.3 + 1.0);
                for band in [None, Some(0), Some(3), Some(10), Some(n.max(m))] {
                    for normalize in [false, true] {
                        let cfg = DtwConfig { band, normalize };
                        let reference = dtw_with_path(&a, &b, cfg).map(|(d, _)| d);
                        let fast = dtw_distance_pruned(&a, &b, cfg, None);
                        assert_eq!(
                            fast, reference,
                            "n={n} m={m} band={band:?} normalize={normalize}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn abandoning_never_lies() {
        // Abandoned ⇒ the exact distance really is above the threshold;
        // not abandoned ⇒ the exact distance is returned unchanged.
        for trial in 0..6 {
            let a = wave(30, trial as f64);
            let b = wave(45, trial as f64 + 0.7);
            let cfg = DtwConfig::stroke_matching();
            let exact = dtw_distance(&a, &b, cfg);
            for thr in [0.0, exact * 0.5, exact, exact * 2.0] {
                match dtw_distance_pruned(&a, &b, cfg, Some(thr)) {
                    Some(d) => assert_eq!(d, exact),
                    None => assert!(exact > thr, "abandoned at {thr} but exact is {exact}"),
                }
            }
        }
    }

    #[test]
    fn lb_keogh_is_a_lower_bound() {
        for (n, m) in [(10, 10), (25, 40), (60, 20)] {
            for trial in 0..5 {
                let a = wave(n, trial as f64 * 1.7);
                let b = wave(m, trial as f64 * 0.9 + 2.0);
                for band in [None, Some(2), Some(8), Some(100)] {
                    for normalize in [false, true] {
                        let cfg = DtwConfig { band, normalize };
                        let lb = lb_keogh(&a, &b, cfg);
                        let exact = dtw_distance(&a, &b, cfg);
                        assert!(
                            lb <= exact + 1e-12,
                            "lb {lb} > exact {exact} (band={band:?} norm={normalize})"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn lb_keogh_is_zero_on_identity_and_infinite_on_empty() {
        let a = wave(20, 0.0);
        assert_eq!(lb_keogh(&a, &a, DtwConfig::default()), 0.0);
        assert_eq!(lb_keogh(&[], &a, DtwConfig::default()), f64::INFINITY);
        assert_eq!(lb_keogh(&a, &[], DtwConfig::default()), f64::INFINITY);
    }

    #[test]
    fn lb_keogh_tightens_with_narrower_band() {
        let a = wave(40, 0.3);
        let b = wave(40, 2.9);
        let wide = lb_keogh(&a, &b, DtwConfig { band: Some(30), normalize: false });
        let tight = lb_keogh(&a, &b, DtwConfig { band: Some(2), normalize: false });
        assert!(tight >= wide, "tight {tight} < wide {wide}");
        assert!(tight > 0.0);
    }
}
