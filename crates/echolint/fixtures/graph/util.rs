//! Graph fixture: the `util` crate — cross-crate callees, the shadowing
//! `Gain::apply`, and a hot kernel whose helper allocates.

/// Seeds the pipeline (called cross-crate as `util::prepare`).
pub fn prepare(input: &[f64]) -> f64 {
    input.iter().sum()
}

/// Tail of the pipeline — the panic the reachability sweep must surface.
pub fn finish(x: f64) -> f64 {
    checked(x).unwrap()
}

fn checked(x: f64) -> Option<f64> {
    Some(x)
}

/// A gain stage whose `apply` shadows `app::Echo::apply`.
pub struct Gain {
    /// Optional multiplier.
    pub k: Option<f64>,
}

impl Gain {
    /// Applies the gain — reached through the trait-object union.
    pub fn apply(&self, x: f64) -> f64 {
        self.scale(x)
    }

    fn scale(&self, x: f64) -> f64 {
        x * self.k.expect("gain multiplier set")
    }
}

/// Hot kernel: blends through a helper chain that ends in an allocation.
pub fn mix_into(out: &mut [f64], x: f64) {
    for o in out.iter_mut() {
        *o = blend(*o, x);
    }
}

fn blend(a: f64, b: f64) -> f64 {
    let lut = grow();
    lut[0] * a + b
}

fn grow() -> Vec<f64> {
    vec![0.25, 0.75]
}
