//! Tracing overhead benchmarks (DESIGN.md §6.5): the same steady-state
//! streaming push measured with tracing disabled, with the discarding
//! no-op sink, with the bounded recording sink, and with the always-on
//! flight-recorder ring (DESIGN.md §6.11).
//!
//! The contract being measured: the disabled path costs one relaxed
//! atomic load per instrumentation site (indistinguishable from the
//! pre-observability build), and both the recording sink and the flight
//! ring stay within the 5% per-push overhead budget enforced by the
//! `trace_gate` CI job. The flight ring is *not* behind the global gate —
//! it records on every serve push unconditionally — so its point is
//! measured with the gate off: the delta against `disabled` is the whole
//! cost of the always-on recorder.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use echowrite::{EchoWrite, EchoWriteConfig, StreamingRecognizer};
use echowrite_gesture::{Stroke, Writer, WriterParams};
use echowrite_synth::{DeviceProfile, EnvironmentProfile, Scene};
use echowrite_trace::{
    EventKind, FlightRing, ScopedMode, SmallStr, Stage, TraceEvent, DEFAULT_FLIGHT_CAPACITY,
};
use std::sync::OnceLock;

const SAMPLE_RATE: usize = 44_100;
const SESSION_SECONDS: usize = 12;
/// Five STFT hops per push — the chunk an audio callback would hand over.
const CHUNK: usize = 5 * 1024;

/// A 12 s writing session: four strokes, then held still to the 12 s mark.
fn session_audio() -> &'static Vec<f64> {
    static A: OnceLock<Vec<f64>> = OnceLock::new();
    A.get_or_init(|| {
        let strokes = [Stroke::S2, Stroke::S4, Stroke::S1, Stroke::S3];
        let perf = Writer::new(WriterParams::nominal(), 7).write_sequence(&strokes);
        let mut audio = Scene::new(DeviceProfile::mate9(), EnvironmentProfile::meeting_room(), 7)
            .render(&perf.trajectory);
        audio.resize(SESSION_SECONDS * SAMPLE_RATE, 0.0);
        audio
    })
}

fn engine() -> &'static EchoWrite {
    static E: OnceLock<EchoWrite> = OnceLock::new();
    E.get_or_init(|| EchoWrite::with_config(EchoWriteConfig::streaming()))
}

/// Steady-state pushes (6 s prefill) under one sink mode.
fn bench_mode(g: &mut criterion::BenchmarkGroup<'_>, name: &str, mode: ScopedMode) {
    g.bench_function(BenchmarkId::new(name, "push"), |b| {
        let _scope = echowrite_trace::scoped(mode);
        let audio = session_audio();
        let mut stream = StreamingRecognizer::new(engine());
        let mut pos = 0;
        while pos < 6 * SAMPLE_RATE {
            let end = (pos + CHUNK).min(audio.len());
            black_box(stream.push(&audio[pos..end]));
            pos = end;
        }
        b.iter(|| {
            if pos + CHUNK > audio.len() {
                pos = 0; // keep streaming: cycle the session audio
            }
            let events = stream.push(black_box(&audio[pos..pos + CHUNK])).len();
            pos += CHUNK;
            events
        })
    });
}

/// Whole sessions under one sink mode (includes finish + decode-free tail).
fn bench_session_mode(g: &mut criterion::BenchmarkGroup<'_>, name: &str, mode: ScopedMode) {
    g.bench_function(BenchmarkId::new(name, "12s"), |b| {
        let _scope = echowrite_trace::scoped(mode);
        b.iter(|| {
            let mut stream = StreamingRecognizer::new(engine());
            let mut events = 0;
            for chunk in session_audio().chunks(CHUNK) {
                events += stream.push(black_box(chunk)).len();
            }
            events + stream.finish().len()
        })
    });
}

/// The per-push span a serve shard worker records into its always-on
/// flight ring (same shape the worker emits: serve stage, chunk length
/// as the value, logical-tick timestamp).
fn flight_event(tick_us: u64, wall_us: u64) -> TraceEvent {
    TraceEvent {
        stage: Stage::Serve,
        name: "push",
        kind: EventKind::Span,
        tick_us,
        wall_us,
        value: CHUNK as f64,
        detail: SmallStr::empty(),
    }
}

/// Steady-state pushes with the global trace gate off but a per-shard
/// flight ring recording one span per push — the production serve
/// configuration, where the recorder is always on.
fn bench_flight_push(g: &mut criterion::BenchmarkGroup<'_>) {
    g.bench_function(BenchmarkId::new("flight", "push"), |b| {
        let _scope = echowrite_trace::scoped(ScopedMode::Disabled);
        let audio = session_audio();
        let mut stream = StreamingRecognizer::new(engine());
        let mut ring = FlightRing::new(DEFAULT_FLIGHT_CAPACITY);
        let mut pos = 0;
        let mut tick = 0u64;
        while pos < 6 * SAMPLE_RATE {
            let end = (pos + CHUNK).min(audio.len());
            black_box(stream.push(&audio[pos..end]));
            pos = end;
        }
        b.iter(|| {
            if pos + CHUNK > audio.len() {
                pos = 0; // keep streaming: cycle the session audio
            }
            let events = stream.push(black_box(&audio[pos..pos + CHUNK])).len();
            pos += CHUNK;
            tick += 1;
            ring.record(7, tick, flight_event(tick * 116, 0));
            black_box(ring.dropped());
            events
        })
    });
}

fn bench_push_overhead(c: &mut Criterion) {
    echowrite_bench::print_bench_environment();
    let mut g = c.benchmark_group("trace_push");
    g.sample_size(10);
    bench_mode(&mut g, "disabled", ScopedMode::Disabled);
    bench_mode(&mut g, "noop", ScopedMode::Noop);
    bench_mode(&mut g, "recording", ScopedMode::Recording(1 << 16));
    bench_flight_push(&mut g);
    g.finish();
}

/// The raw per-record cost of the flight ring in steady state (ring full,
/// every record an in-place overwrite) — the absolute number the 5%
/// budget claim rests on: nanoseconds against a ~0.4 ms push.
fn bench_flight_record(c: &mut Criterion) {
    let mut g = c.benchmark_group("trace_flight");
    g.bench_function(BenchmarkId::new("ring", "record"), |b| {
        let mut ring = FlightRing::new(DEFAULT_FLIGHT_CAPACITY);
        let mut i = 0u64;
        // Prefill so the measured path is the overwrite branch.
        for _ in 0..DEFAULT_FLIGHT_CAPACITY {
            i += 1;
            ring.record(i & 7, i, flight_event(i, 3));
        }
        b.iter(|| {
            i += 1;
            ring.record(i & 7, i, flight_event(i, 3));
            ring.dropped()
        })
    });
    g.finish();
}

fn bench_session_overhead(c: &mut Criterion) {
    let mut g = c.benchmark_group("trace_session");
    g.sample_size(10);
    bench_session_mode(&mut g, "disabled", ScopedMode::Disabled);
    bench_session_mode(&mut g, "recording", ScopedMode::Recording(1 << 16));
    g.finish();
}

criterion_group!(
    benches,
    bench_push_overhead,
    bench_session_overhead,
    bench_flight_record
);
criterion_main!(benches);
