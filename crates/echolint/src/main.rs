//! The `echolint` CLI.
//!
//! ```text
//! cargo run -p echolint -- --workspace            # lint the whole tree
//! cargo run -p echolint -- --root /path --workspace
//! cargo run -p echolint -- crates/dsp/src/fft.rs  # lint specific files
//! ```
//!
//! Exits 0 when clean, 1 when any diagnostic fires, 2 on usage/I/O errors.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut root = PathBuf::from(".");
    let mut workspace = false;
    let mut files: Vec<PathBuf> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--workspace" => workspace = true,
            "--root" => match it.next() {
                Some(r) => root = PathBuf::from(r),
                None => {
                    eprintln!("echolint: --root needs a path");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!(
                    "usage: echolint [--root DIR] --workspace\n       echolint [--root DIR] FILE.rs…"
                );
                return ExitCode::SUCCESS;
            }
            f => files.push(PathBuf::from(f)),
        }
    }
    // When invoked via `cargo run -p echolint`, the cwd is the workspace
    // root already; fall back to the manifest's grandparent otherwise.
    if workspace && !root.join("crates").is_dir() {
        let from_manifest = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        if from_manifest.join("crates").is_dir() {
            root = from_manifest;
        }
    }

    let result = if workspace {
        echolint::lint_workspace(&root)
    } else if files.is_empty() {
        eprintln!("echolint: pass --workspace or one or more .rs files (see --help)");
        return ExitCode::from(2);
    } else {
        files.iter().try_fold(Vec::new(), |mut acc, f| {
            acc.extend(echolint::lint_file(&root, f)?);
            Ok(acc)
        })
    };

    match result {
        Ok(diags) if diags.is_empty() => {
            println!("echolint: clean");
            ExitCode::SUCCESS
        }
        Ok(diags) => {
            for d in &diags {
                println!("{d}");
            }
            println!("echolint: {} diagnostic(s)", diags.len());
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("echolint: {e}");
            ExitCode::from(2)
        }
    }
}
