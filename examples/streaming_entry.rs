//! Streaming recognition: feed microphone chunks like the Android app's
//! 5-frame buffers and watch strokes stabilize in real time.
//!
//! ```sh
//! cargo run --release --example streaming_entry -- because
//! ```

use echowrite::{EchoWrite, StreamingRecognizer};
use echowrite_gesture::{Writer, WriterParams};
use echowrite_synth::{DeviceProfile, EnvironmentProfile, Scene};

fn main() {
    let word = std::env::args().nth(1).unwrap_or_else(|| "because".to_string());
    let engine = EchoWrite::new();
    let strokes = engine.scheme().encode_word(&word).unwrap_or_else(|e| {
        eprintln!("cannot encode {word:?}: {e}");
        std::process::exit(1);
    });

    // Render the performance plus a rest tail so the last stroke stabilizes.
    let perf = Writer::new(WriterParams::nominal(), 11).write_sequence(&strokes);
    let mut traj = perf.trajectory;
    let last = *traj.points().last().expect("non-empty trajectory");
    traj.hold(last, 1.0);
    let mic = Scene::new(DeviceProfile::mate9(), EnvironmentProfile::meeting_room(), 11)
        .render(&traj);

    // Stream in app-sized buffers (5 hops = 5 × 1024 samples ≈ 116 ms).
    let mut stream = StreamingRecognizer::new(&engine);
    let mut observed = Vec::new();
    let chunk_len = 5 * engine.config().stft.hop;
    for (i, chunk) in mic.chunks(chunk_len).enumerate() {
        for event in stream.push(chunk) {
            let t = i as f64 * chunk_len as f64 / 44_100.0;
            println!(
                "t={t:5.2}s  stroke {} stabilized (frames {}–{}, margin {:.1})",
                event.classification.stroke,
                event.start_frame,
                event.end_frame,
                event.classification.margin()
            );
            observed.push(event.classification.stroke);
        }
    }

    println!(
        "\nstreamed strokes: [{}] (wrote [{}])",
        echowrite_gesture::stroke::format_sequence(&observed),
        echowrite_gesture::stroke::format_sequence(&strokes),
    );
    let candidates = engine.decode_sequence(&observed);
    println!("decoded candidates:");
    for (i, c) in candidates.iter().enumerate() {
        let marker = if c.word == word { "  <-- target" } else { "" };
        println!("  {}. {}{}", i + 1, c.word, marker);
    }
}
