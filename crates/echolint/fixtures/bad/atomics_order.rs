//! Fixture: atomic orderings without rationale comments, covered sites,
//! and a Relaxed store that survives only behind an explicit allow.

fn publish(flag: &AtomicBool, n: &AtomicUsize) -> usize {
    flag.store(true, Ordering::Release);
    n.load(Ordering::Acquire)
}

fn covered(n: &AtomicUsize) -> usize {
    // ordering: Acquire pairs with the Release store in publish().
    n.load(Ordering::Acquire)
}

fn lossy(hint: &AtomicUsize) {
    // ordering: Relaxed — a monotonic hint; nothing is gated by it.
    hint.store(1, Ordering::Relaxed);
}

fn sanctioned(hint: &AtomicUsize) {
    // ordering: Relaxed — a standalone hint counter.
    // echolint: allow(atomics-order) -- publishes nothing; pure statistic
    hint.store(2, Ordering::Relaxed);
}
