//! A minimal complex-number type sufficient for FFT work.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with `f64` components.
///
/// Only the operations the FFT and spectral code need are implemented; this
/// is deliberately not a general-purpose numeric tower.
///
/// # Example
///
/// ```
/// use echowrite_dsp::Complex;
/// let z = Complex::new(3.0, 4.0);
/// assert_eq!(z.norm(), 5.0);
/// ```
///
/// The layout is `repr(C)` — `re` then `im`, no padding — so a `[Complex]`
/// slice is an interleaved `[f64]` sequence the SIMD kernels in
/// [`crate::kernels`] can load directly.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[repr(C)]
pub struct Complex {
    /// Real component.
    pub re: f64,
    /// Imaginary component.
    pub im: f64,
}

impl Complex {
    /// The additive identity.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    /// The multiplicative identity.
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };
    /// The imaginary unit.
    pub const I: Complex = Complex { re: 0.0, im: 1.0 };

    /// Creates a complex number from rectangular components.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// Creates a complex number on the unit circle at angle `theta` (radians).
    #[inline]
    pub fn from_angle(theta: f64) -> Self {
        Complex::new(theta.cos(), theta.sin())
    }

    /// Creates a complex number from polar coordinates.
    #[inline]
    pub fn from_polar(r: f64, theta: f64) -> Self {
        Complex::new(r * theta.cos(), r * theta.sin())
    }

    /// Returns the complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Complex::new(self.re, -self.im)
    }

    /// Returns the magnitude (Euclidean norm).
    #[inline]
    pub fn norm(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Returns the squared magnitude, avoiding the square root.
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Returns the argument (phase angle) in radians, in `(-PI, PI]`.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Multiplies by a real scalar.
    #[inline]
    pub fn scale(self, k: f64) -> Self {
        Complex::new(self.re * k, self.im * k)
    }
}

impl From<f64> for Complex {
    fn from(re: f64) -> Self {
        Complex::new(re, 0.0)
    }
}

impl Add for Complex {
    type Output = Complex;
    #[inline]
    fn add(self, rhs: Complex) -> Complex {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl AddAssign for Complex {
    #[inline]
    fn add_assign(&mut self, rhs: Complex) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for Complex {
    type Output = Complex;
    #[inline]
    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl SubAssign for Complex {
    #[inline]
    fn sub_assign(&mut self, rhs: Complex) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl Mul for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: Complex) -> Complex {
        Complex::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl MulAssign for Complex {
    #[inline]
    fn mul_assign(&mut self, rhs: Complex) {
        *self = *self * rhs;
    }
}

impl Mul<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: f64) -> Complex {
        self.scale(rhs)
    }
}

impl Div<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn div(self, rhs: f64) -> Complex {
        Complex::new(self.re / rhs, self.im / rhs)
    }
}

impl Div for Complex {
    type Output = Complex;
    #[inline]
    fn div(self, rhs: Complex) -> Complex {
        let d = rhs.norm_sqr();
        Complex::new(
            (self.re * rhs.re + self.im * rhs.im) / d,
            (self.im * rhs.re - self.re * rhs.im) / d,
        )
    }
}

impl Neg for Complex {
    type Output = Complex;
    #[inline]
    fn neg(self) -> Complex {
        Complex::new(-self.re, -self.im)
    }
}

impl fmt::Display for Complex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-12;

    #[test]
    fn construction_and_constants() {
        assert_eq!(Complex::ZERO, Complex::new(0.0, 0.0));
        assert_eq!(Complex::ONE.re, 1.0);
        assert_eq!(Complex::I.im, 1.0);
        let z: Complex = 2.5.into();
        assert_eq!(z, Complex::new(2.5, 0.0));
    }

    #[test]
    fn arithmetic() {
        let a = Complex::new(1.0, 2.0);
        let b = Complex::new(3.0, -1.0);
        assert_eq!(a + b, Complex::new(4.0, 1.0));
        assert_eq!(a - b, Complex::new(-2.0, 3.0));
        // (1+2i)(3-i) = 3 - i + 6i - 2i^2 = 5 + 5i
        assert_eq!(a * b, Complex::new(5.0, 5.0));
        assert_eq!(-a, Complex::new(-1.0, -2.0));
    }

    #[test]
    fn division_roundtrip() {
        let a = Complex::new(1.0, 2.0);
        let b = Complex::new(3.0, -1.0);
        let q = (a * b) / b;
        assert!((q.re - a.re).abs() < EPS && (q.im - a.im).abs() < EPS);
    }

    #[test]
    fn conj_and_norm() {
        let z = Complex::new(3.0, 4.0);
        assert_eq!(z.conj(), Complex::new(3.0, -4.0));
        assert_eq!(z.norm(), 5.0);
        assert_eq!(z.norm_sqr(), 25.0);
        // z * conj(z) is |z|^2 on the real axis.
        let p = z * z.conj();
        assert!((p.re - 25.0).abs() < EPS && p.im.abs() < EPS);
    }

    #[test]
    fn polar_forms() {
        let z = Complex::from_polar(2.0, std::f64::consts::FRAC_PI_2);
        assert!(z.re.abs() < EPS);
        assert!((z.im - 2.0).abs() < EPS);
        assert!((z.arg() - std::f64::consts::FRAC_PI_2).abs() < EPS);
        let u = Complex::from_angle(1.0);
        assert!((u.norm() - 1.0).abs() < EPS);
    }

    #[test]
    fn compound_assignment() {
        let mut z = Complex::new(1.0, 1.0);
        z += Complex::new(2.0, 3.0);
        assert_eq!(z, Complex::new(3.0, 4.0));
        z -= Complex::new(1.0, 1.0);
        assert_eq!(z, Complex::new(2.0, 3.0));
        z *= Complex::I;
        assert_eq!(z, Complex::new(-3.0, 2.0));
    }

    #[test]
    fn display_formats_sign() {
        assert_eq!(Complex::new(1.0, 2.0).to_string(), "1+2i");
        assert_eq!(Complex::new(1.0, -2.0).to_string(), "1-2i");
    }

    #[test]
    fn scalar_ops() {
        let z = Complex::new(1.0, -2.0);
        assert_eq!(z * 2.0, Complex::new(2.0, -4.0));
        assert_eq!(z / 2.0, Complex::new(0.5, -1.0));
        assert_eq!(z.scale(3.0), Complex::new(3.0, -6.0));
    }
}
