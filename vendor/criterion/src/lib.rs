//! Offline stand-in for `criterion`: a minimal wall-clock benchmark harness.
//!
//! Implements the API surface this workspace's benches use — `Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`, `BenchmarkId`,
//! `Bencher::iter`, and the `criterion_group!` / `criterion_main!` macros.
//!
//! Run modes (decided from CLI args, mirroring how cargo drives bench
//! binaries):
//! - `--bench` (what `cargo bench` passes): warm up, then time each closure
//!   and print `<name>  <mean> ns/iter (N iters)` plus a machine-readable
//!   `BENCH_JSON {..}` line per benchmark.
//! - anything else (e.g. `cargo test` running the harness-less binary):
//!   execute each closure once as a smoke test so the suite stays fast.

use std::time::{Duration, Instant};

/// Names one benchmark: an optional function name plus a parameter string.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id combining a function name and one parameter value.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function.into(), parameter) }
    }

    /// An id carrying only a parameter value.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Times one closure; handed to benchmark functions.
pub struct Bencher<'a> {
    mode: Mode,
    /// Mean nanoseconds per iteration, filled in by [`Bencher::iter`].
    result: &'a mut Option<BenchResult>,
}

#[derive(Clone, Copy, Debug)]
struct BenchResult {
    mean_ns: f64,
    iters: u64,
}

#[derive(Clone, Copy, Debug, PartialEq)]
enum Mode {
    /// Run each closure once (smoke test; used under `cargo test`).
    Test,
    /// Warm up and measure (used under `cargo bench`).
    Measure,
}

impl Bencher<'_> {
    /// Runs `routine` repeatedly and records its mean wall-clock time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        match self.mode {
            Mode::Test => {
                std::hint::black_box(routine());
                *self.result = Some(BenchResult { mean_ns: 0.0, iters: 1 });
            }
            Mode::Measure => {
                // Warm-up: at least 3 iters or 50 ms, whichever is longer.
                let warm_start = Instant::now();
                let mut warm_iters = 0u64;
                while warm_iters < 3 || warm_start.elapsed() < Duration::from_millis(50) {
                    std::hint::black_box(routine());
                    warm_iters += 1;
                    if warm_iters >= 1_000_000 {
                        break;
                    }
                }
                let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;
                // Measure for ~300 ms, capped at 10k iters, floor of 10.
                let target = (0.3 / per_iter.max(1e-9)) as u64;
                let iters = target.clamp(10, 10_000);
                let start = Instant::now();
                for _ in 0..iters {
                    std::hint::black_box(routine());
                }
                let mean_ns = start.elapsed().as_secs_f64() * 1e9 / iters as f64;
                *self.result = Some(BenchResult { mean_ns, iters });
            }
        }
    }
}

/// The top-level benchmark driver.
pub struct Criterion {
    mode: Mode,
}

impl Default for Criterion {
    fn default() -> Self {
        let measure = std::env::args().any(|a| a == "--bench");
        Criterion { mode: if measure { Mode::Measure } else { Mode::Test } }
    }
}

impl Criterion {
    /// Applies CLI configuration (mode detection happens in `default`).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(self.mode, None, &id.into(), f);
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into() }
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; sampling is time-driven here.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(self.criterion.mode, Some(&self.name), &id.into(), f);
        self
    }

    /// Runs one benchmark that borrows a fixed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(self.criterion.mode, Some(&self.name), &id.into(), |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(mode: Mode, group: Option<&str>, id: &BenchmarkId, mut f: F) {
    let full = match group {
        Some(g) => format!("{g}/{}", id.id),
        None => id.id.clone(),
    };
    let mut result = None;
    let mut bencher = Bencher { mode, result: &mut result };
    f(&mut bencher);
    match (mode, result) {
        (Mode::Test, _) => println!("test {full} ... ok"),
        (Mode::Measure, Some(r)) => {
            println!("{full:<56} {:>14.1} ns/iter ({} iters)", r.mean_ns, r.iters);
            println!(
                "BENCH_JSON {{\"name\":\"{full}\",\"mean_ns\":{:.1},\"iters\":{}}}",
                r.mean_ns, r.iters
            );
        }
        (Mode::Measure, None) => println!("{full:<56} (no measurement)"),
    }
}

/// Re-export so benches can `use criterion::black_box`.
pub use std::hint::black_box;

/// Bundles benchmark functions into one runner fn.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_mode_runs_each_closure_once() {
        let mut c = Criterion { mode: Mode::Test };
        let mut runs = 0;
        c.bench_function("unit", |b| b.iter(|| runs += 1));
        assert_eq!(runs, 1);
    }

    #[test]
    fn groups_and_ids_compose() {
        let mut c = Criterion { mode: Mode::Test };
        let mut g = c.benchmark_group("grp");
        g.sample_size(10);
        let mut hits = 0;
        g.bench_function(BenchmarkId::new("f", 3), |b| b.iter(|| hits += 1));
        g.bench_with_input(BenchmarkId::from_parameter("p"), &5, |b, &x| {
            b.iter(|| hits += x)
        });
        g.finish();
        assert_eq!(hits, 6);
    }

    #[test]
    fn measure_mode_records_timing() {
        let mut result = None;
        let mut b = Bencher { mode: Mode::Measure, result: &mut result };
        b.iter(|| std::hint::black_box(1 + 1));
        let r = result.expect("measurement recorded");
        assert!(r.iters >= 10);
        assert!(r.mean_ns >= 0.0);
    }
}
