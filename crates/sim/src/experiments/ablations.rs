//! Ablation studies beyond the paper's published figures.
//!
//! Three design dimensions the paper discusses but does not evaluate:
//!
//! 1. **Front-end decimation** (Sec. VII-A): the proposed down-sampling
//!    optimization — recognition accuracy and processing cost versus the
//!    full-rate STFT.
//! 2. **Burst suppression** (Sec. VII-B): the proposed short-duration
//!    wideband-noise defence, tested in a burst-heavy resting zone.
//! 3. **Candidate-list length k**: the paper fixes k = 5 and observes
//!    saturation beyond k = 3; the sweep quantifies it.

use super::strokes::shared_engine;
use super::words::run_word_trials;
use super::Scale;
use crate::calibrate::stroke_trial;
use crate::report::{f2, pct, Table};
use echowrite::{EchoWrite, EchoWriteConfig};
use echowrite_gesture::{Stroke, WriterParams};
use echowrite_spectro::EnhanceConfig;
use echowrite_synth::{DeviceProfile, EnvironmentProfile, Scene};
use std::time::Instant;

/// Accuracy and mean per-trial processing time of an engine on
/// single-stroke trials.
fn engine_accuracy(
    engine: &EchoWrite,
    environment: &EnvironmentProfile,
    scale: Scale,
) -> (f64, f64) {
    let device = DeviceProfile::mate9();
    let writer = WriterParams::nominal();
    let mut ok = 0usize;
    let mut total = 0usize;
    let mut proc_ms = 0.0;
    for stroke in Stroke::ALL {
        for rep in 0..scale.reps as u64 {
            let seed = scale.seed.wrapping_add(stroke.index() as u64 * 971 + rep * 13);
            let t0 = Instant::now();
            let observed = stroke_trial(engine, &writer, &device, environment, stroke, seed);
            proc_ms += t0.elapsed().as_secs_f64() * 1e3;
            total += 1;
            if observed == Some(stroke) {
                ok += 1;
            }
        }
    }
    (ok as f64 / total as f64, proc_ms / total as f64)
}

/// Front-end ablation result: `(label, accuracy, mean pipeline ms)`.
pub fn frontend_ablation(scale: Scale) -> Vec<(String, f64, f64)> {
    let env = EnvironmentProfile::meeting_room();
    let mut out = Vec::new();
    let full = shared_engine();
    let (acc, _) = engine_accuracy(full, &env, scale);
    out.push(("full STFT".to_string(), acc, mean_pipeline_ms(full, scale)));
    for factor in [8usize, 16, 32] {
        let engine = EchoWrite::with_config(EchoWriteConfig::downsampled(factor));
        let (acc, _) = engine_accuracy(&engine, &env, scale);
        out.push((format!("decimated ÷{factor}"), acc, mean_pipeline_ms(&engine, scale)));
    }
    out
}

/// Mean *pipeline-only* time (excludes synthesis) on a fixed stroke trace,
/// min-of-runs to reject scheduler noise.
fn mean_pipeline_ms(engine: &EchoWrite, scale: Scale) -> f64 {
    let perf = echowrite_gesture::Writer::new(WriterParams::nominal(), scale.seed)
        .write_stroke(Stroke::S3);
    let mic = Scene::new(
        DeviceProfile::mate9(),
        EnvironmentProfile::meeting_room(),
        scale.seed,
    )
    .render(&perf.trajectory);
    (0..3)
        .map(|_| {
            let rec = engine.recognize_strokes(&mic);
            rec.timing.total_ms()
        })
        .fold(f64::INFINITY, f64::min)
}

/// Fig. A1 — accuracy and cost per front-end.
pub fn ablation_frontend(scale: Scale) -> Table {
    let mut t = Table::new(
        "Ablation A1 — Sec. VII-A down-sampling: accuracy and pipeline cost per front-end",
        &["front-end", "stroke accuracy", "pipeline ms/stroke"],
    );
    for (label, acc, ms) in frontend_ablation(scale) {
        t.push_row(vec![label, pct(acc), f2(ms)]);
    }
    t
}

/// Burst-suppression ablation in a burst-heavy room:
/// `(label, accuracy)`.
///
/// The hostile room is the meeting room plus frequent knocks, so the
/// measured difference isolates the burst defence (the resting zone's
/// walker would confound it).
pub fn burst_ablation(scale: Scale) -> Vec<(String, f64)> {
    let mut hostile = EnvironmentProfile::meeting_room();
    hostile.rubbing_rate = 1.2; // knock-heavy table

    let baseline = shared_engine();
    let mut cfg = EchoWriteConfig::paper();
    cfg.enhance = EnhanceConfig::with_burst_suppression();
    let suppressed = EchoWrite::with_config(cfg);

    let (acc_base, _) = engine_accuracy(baseline, &hostile, scale);
    let (acc_supp, _) = engine_accuracy(&suppressed, &hostile, scale);
    vec![
        ("paper pipeline".to_string(), acc_base),
        ("with burst suppression".to_string(), acc_supp),
    ]
}

/// Fig. A2 — burst suppression on/off under knock-heavy interference.
pub fn ablation_burst(scale: Scale) -> Table {
    let mut t = Table::new(
        "Ablation A2 — Sec. VII-B burst suppression under knock-heavy interference",
        &["pipeline", "stroke accuracy"],
    );
    for (label, acc) in burst_ablation(scale) {
        t.push_row(vec![label, pct(acc)]);
    }
    t
}

/// Fig. A4 — substitution-only correction (the paper's pruning) versus
/// general edit-distance-1 decoding (insertions + deletions + substitutions).
///
/// The paper argues the general case is not worth its cost; this table
/// quantifies both sides: accuracy gained and decode work per word.
pub fn ablation_full_edit(scale: Scale) -> Table {
    let trials = run_word_trials(scale);
    let mut t = Table::new(
        "Ablation A4 — substitution-only vs general edit-distance-1 decoding",
        &["k", "substitution-only (paper)", "general edit-1"],
    );
    for k in 1..=5 {
        t.push_row(vec![
            k.to_string(),
            pct(trials.top_k_accuracy(None, k, true)),
            pct(trials.top_k_full_edit(None, k)),
        ]);
    }
    t
}

/// Fig. A3 — top-k saturation (reuses the Fig. 14 word trials).
pub fn ablation_topk(scale: Scale) -> Table {
    let trials = run_word_trials(scale);
    let mut t = Table::new(
        "Ablation A3 — candidate-list length: top-k word accuracy",
        &["k", "accuracy", "gain over k−1"],
    );
    let mut prev = 0.0;
    for k in 1..=5 {
        let acc = trials.top_k_accuracy(None, k, true);
        t.push_row(vec![k.to_string(), pct(acc), pct(acc - prev)]);
        prev = acc;
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Scale {
        Scale { reps: 2, seed: 3 }
    }

    #[test]
    fn decimated_frontends_hold_accuracy() {
        let results = frontend_ablation(tiny());
        assert_eq!(results.len(), 4);
        let full_acc = results[0].1;
        for (label, acc, _) in &results[1..] {
            assert!(
                *acc >= full_acc - 0.25,
                "{label} accuracy collapsed: {acc} vs full {full_acc}"
            );
        }
        // The paper's motivation: decimation must reduce pipeline cost.
        let full_ms = results[0].2;
        let d32_ms = results[3].2;
        assert!(
            d32_ms < full_ms,
            "decimation did not reduce cost: {d32_ms} vs {full_ms}"
        );
    }

    #[test]
    fn burst_suppression_does_not_hurt() {
        let results = burst_ablation(tiny());
        let base = results[0].1;
        let supp = results[1].1;
        assert!(
            supp >= base - 0.10,
            "suppression made things notably worse: {supp} vs {base}"
        );
    }

    #[test]
    fn tables_render() {
        assert_eq!(ablation_burst(tiny()).rows.len(), 2);
        assert_eq!(ablation_topk(tiny()).rows.len(), 5);
        assert_eq!(ablation_full_edit(tiny()).rows.len(), 5);
    }

    #[test]
    fn general_edit_decoding_is_at_least_as_accurate() {
        let trials = run_word_trials(tiny());
        let sub_only = trials.top_k_accuracy(None, 5, true);
        let general = trials.top_k_full_edit(None, 5);
        assert!(
            general >= sub_only - 0.05,
            "general edit-1 {general} clearly below substitution-only {sub_only}"
        );
    }
}
