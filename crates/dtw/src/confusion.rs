//! Stroke confusion statistics.
//!
//! The paper's word decoder needs `P(s|l)` — the probability that stroke
//! `s` is observed when the letter's true stroke is written — "obtained
//! from \[the\] confusion matrix in \[the\] stroke-recognition stage"
//! (Sec. III-C). Its stroke-correction rules come from the same matrix's
//! dominant error modes.

use echowrite_gesture::stroke::{Stroke, STROKE_COUNT};
use std::fmt;

/// A 6×6 stroke confusion matrix: `counts[true][observed]`.
///
/// # Example
///
/// ```
/// use echowrite_dtw::ConfusionMatrix;
/// use echowrite_gesture::Stroke;
/// let mut m = ConfusionMatrix::new();
/// m.record(Stroke::S2, Stroke::S2);
/// m.record(Stroke::S2, Stroke::S1);
/// assert_eq!(m.class_accuracy(Stroke::S2), Some(0.5));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ConfusionMatrix {
    counts: [[u64; STROKE_COUNT]; STROKE_COUNT],
}

impl ConfusionMatrix {
    /// Creates an empty matrix.
    pub fn new() -> Self {
        ConfusionMatrix::default()
    }

    /// Records one trial: `truth` was written, `observed` was recognized.
    pub fn record(&mut self, truth: Stroke, observed: Stroke) {
        self.counts[truth.index()][observed.index()] += 1;
    }

    /// Raw count for a `(truth, observed)` cell.
    pub fn count(&self, truth: Stroke, observed: Stroke) -> u64 {
        self.counts[truth.index()][observed.index()]
    }

    /// Number of trials with this true stroke.
    pub fn row_total(&self, truth: Stroke) -> u64 {
        self.counts[truth.index()].iter().sum()
    }

    /// Total number of recorded trials.
    pub fn total(&self) -> u64 {
        self.counts.iter().flatten().sum()
    }

    /// Per-class accuracy `P(observed = truth | truth)`; `None` if the class
    /// has no trials.
    pub fn class_accuracy(&self, truth: Stroke) -> Option<f64> {
        let total = self.row_total(truth);
        if total == 0 {
            None
        } else {
            Some(self.count(truth, truth) as f64 / total as f64)
        }
    }

    /// Overall accuracy across all recorded trials; `None` when empty.
    pub fn overall_accuracy(&self) -> Option<f64> {
        let total = self.total();
        if total == 0 {
            return None;
        }
        let correct: u64 = Stroke::ALL.iter().map(|&s| self.count(s, s)).sum();
        Some(correct as f64 / total as f64)
    }

    /// `P(observed | truth)` with add-one (Laplace) smoothing so unseen
    /// confusions keep non-zero probability — required by the Bayesian
    /// decoder, which multiplies these terms.
    pub fn likelihood(&self, observed: Stroke, truth: Stroke) -> f64 {
        let row = self.row_total(truth);
        (self.count(truth, observed) as f64 + 1.0) / (row as f64 + STROKE_COUNT as f64)
    }

    /// Raw empirical `P(observed | truth)` without smoothing — the correct
    /// distribution to *sample* synthetic observations from (smoothing
    /// would systematically understate the diagonal for small counts).
    /// Uniform when the row has no trials.
    pub fn rate(&self, observed: Stroke, truth: Stroke) -> f64 {
        let row = self.row_total(truth);
        if row == 0 {
            1.0 / STROKE_COUNT as f64
        } else {
            self.count(truth, observed) as f64 / row as f64
        }
    }

    /// Merges another matrix's counts into this one.
    pub fn merge(&mut self, other: &ConfusionMatrix) {
        for t in 0..STROKE_COUNT {
            for o in 0..STROKE_COUNT {
                self.counts[t][o] += other.counts[t][o];
            }
        }
    }

    /// The most common misrecognition target for each stroke (excluding
    /// itself), or `None` if the stroke was never confused. This is how the
    /// paper identifies its substitution rules (S2/S4/S6 → S1, S5 → S2/S6).
    pub fn dominant_confusion(&self, truth: Stroke) -> Option<Stroke> {
        Stroke::ALL
            .iter()
            .filter(|&&o| o != truth)
            .map(|&o| (o, self.count(truth, o)))
            .filter(|&(_, c)| c > 0)
            .max_by_key(|&(_, c)| c)
            .map(|(o, _)| o)
    }
}

impl fmt::Display for ConfusionMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "truth\\obs")?;
        for o in Stroke::ALL {
            write!(f, "{o:>7}")?;
        }
        writeln!(f)?;
        for t in Stroke::ALL {
            write!(f, "{t:>9}")?;
            for o in Stroke::ALL {
                write!(f, "{:>7}", self.count(t, o))?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_count() {
        let mut m = ConfusionMatrix::new();
        m.record(Stroke::S1, Stroke::S1);
        m.record(Stroke::S1, Stroke::S3);
        m.record(Stroke::S3, Stroke::S3);
        assert_eq!(m.count(Stroke::S1, Stroke::S1), 1);
        assert_eq!(m.count(Stroke::S1, Stroke::S3), 1);
        assert_eq!(m.row_total(Stroke::S1), 2);
        assert_eq!(m.total(), 3);
    }

    #[test]
    fn accuracies() {
        let mut m = ConfusionMatrix::new();
        for _ in 0..9 {
            m.record(Stroke::S2, Stroke::S2);
        }
        m.record(Stroke::S2, Stroke::S1);
        assert_eq!(m.class_accuracy(Stroke::S2), Some(0.9));
        assert_eq!(m.class_accuracy(Stroke::S5), None);
        assert_eq!(m.overall_accuracy(), Some(0.9));
        assert_eq!(ConfusionMatrix::new().overall_accuracy(), None);
    }

    #[test]
    fn likelihood_is_smoothed_and_normalized() {
        let mut m = ConfusionMatrix::new();
        for _ in 0..10 {
            m.record(Stroke::S4, Stroke::S4);
        }
        // Unseen confusion still has positive probability.
        assert!(m.likelihood(Stroke::S1, Stroke::S4) > 0.0);
        // Likelihoods over observed strokes sum to 1 for a given truth.
        let sum: f64 = Stroke::ALL.iter().map(|&o| m.likelihood(o, Stroke::S4)).sum();
        assert!((sum - 1.0).abs() < 1e-12);
        // Empty rows are uniform.
        assert!((m.likelihood(Stroke::S1, Stroke::S2) - 1.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = ConfusionMatrix::new();
        a.record(Stroke::S1, Stroke::S1);
        let mut b = ConfusionMatrix::new();
        b.record(Stroke::S1, Stroke::S2);
        b.record(Stroke::S1, Stroke::S1);
        a.merge(&b);
        assert_eq!(a.count(Stroke::S1, Stroke::S1), 2);
        assert_eq!(a.count(Stroke::S1, Stroke::S2), 1);
    }

    #[test]
    fn dominant_confusion_finds_main_error_mode() {
        let mut m = ConfusionMatrix::new();
        for _ in 0..20 {
            m.record(Stroke::S5, Stroke::S5);
        }
        for _ in 0..3 {
            m.record(Stroke::S5, Stroke::S6);
        }
        m.record(Stroke::S5, Stroke::S2);
        assert_eq!(m.dominant_confusion(Stroke::S5), Some(Stroke::S6));
        assert_eq!(m.dominant_confusion(Stroke::S1), None);
    }

    #[test]
    fn display_contains_all_labels() {
        let m = ConfusionMatrix::new();
        let text = m.to_string();
        for s in Stroke::ALL {
            assert!(text.contains(&s.to_string()));
        }
    }
}
