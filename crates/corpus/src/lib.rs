//! Corpus data for the EchoWrite reproduction.
//!
//! The paper builds its dictionary from the Corpus of Contemporary American
//! English (COCA): the 5,000 most frequent words with frequency attributes,
//! 2-gram data for next-word prediction, and Fry Instant Phrases for the
//! text-entry speed studies. COCA and the Fry sheets are proprietary /
//! external resources, so this crate embeds functional substitutes:
//!
//! - [`Lexicon`]: ~1,000 common English words in frequency order with
//!   Zipf-law frequencies (any word/frequency list can be loaded instead),
//! - [`BigramModel`]: a successor table seeded with common English bigrams,
//!   falling back to unigram frequency,
//! - [`phrases`]: short everyday phrase blocks with the same length
//!   statistics as Fry Instant Phrases, grouped like the paper's five
//!   two-paragraph blocks (Fig. 16),
//! - [`table1_words`]: the ten test words of Table I — short, medium, and
//!   long words that jointly cover all six strokes.

pub mod bigram;
pub mod error;
pub mod lexicon;
mod lexicon_data;
pub mod phrases;

pub use bigram::BigramModel;
pub use error::CorpusError;
pub use lexicon::{Lexicon, WordEntry};

/// The ten evaluation words of Table I (reconstructed: the paper's table
/// image is not in the text; these satisfy its stated constraints — short,
/// medium and long common words that jointly cover all six strokes).
pub const TABLE1_WORDS: [&str; 10] = [
    "me", "can", "the", "and", "time", "water", "people", "because", "morning", "question",
];

/// Returns the Table I words as owned strings.
pub fn table1_words() -> Vec<String> {
    TABLE1_WORDS.iter().map(|w| w.to_string()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use echowrite_gesture::InputScheme;

    #[test]
    fn table1_words_exist_in_lexicon() {
        let lex = Lexicon::embedded();
        for w in TABLE1_WORDS {
            assert!(lex.contains(w), "table-1 word {w:?} missing from lexicon");
        }
    }

    #[test]
    fn table1_covers_all_strokes_and_lengths() {
        let scheme = InputScheme::paper();
        let mut seen = [false; 6];
        for w in TABLE1_WORDS {
            for s in scheme.encode_word(w).unwrap() {
                seen[s.index()] = true;
            }
        }
        assert!(seen.iter().all(|&b| b), "stroke coverage {seen:?}");
        let lens: Vec<usize> = TABLE1_WORDS.iter().map(|w| w.len()).collect();
        assert!(lens.iter().any(|&l| l <= 3), "needs short words");
        assert!(lens.iter().any(|&l| (4..=5).contains(&l)), "needs medium words");
        assert!(lens.iter().any(|&l| l >= 7), "needs long words");
    }
}
