//! Bad fixture: undocumented public API.

pub struct Window;

pub fn hann(n: usize) -> usize {
    n
}

/// Documented — no diagnostic.
pub fn blackman(n: usize) -> usize {
    n
}
