//! Figs. 16–18 — text-entry session throughput.
//!
//! One iteration = a participant entering a full phrase block with
//! EchoWrite (session simulation over the real decoder), or typing it on
//! the smartwatch-keyboard baseline, at unpractised and practised levels.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use echowrite_bench::engine;
use echowrite_corpus::phrases;
use echowrite_dtw::ConfusionMatrix;
use echowrite_gesture::Stroke;
use echowrite_lang::NextWordPredictor;
use echowrite_sim::baseline::SmartwatchKeyboard;
use echowrite_sim::participant::Participant;
use echowrite_sim::session::{SessionConfig, TextEntrySession};
use std::hint::black_box;

fn reliable_confusion() -> ConfusionMatrix {
    let mut m = ConfusionMatrix::new();
    for t in Stroke::ALL {
        for _ in 0..94 {
            m.record(t, t);
        }
        for o in Stroke::ALL {
            if o != t {
                m.record(t, o);
            }
        }
        m.record(t, Stroke::ALL[(t.index() + 1) % 6]);
    }
    m
}

fn bench_echowrite_sessions(c: &mut Criterion) {
    let e = engine();
    let confusion = reliable_confusion();
    let predictor = NextWordPredictor::embedded();
    let participant = Participant::new(1, 2019);
    let block = &phrases::blocks()[0];
    let words = block.words();

    let mut g = c.benchmark_group("fig16_18_text_entry");
    for session_no in [1usize, 13] {
        g.bench_with_input(
            BenchmarkId::new("echowrite_block_session", session_no),
            &session_no,
            |b, &s| {
                b.iter(|| {
                    let mut sess = TextEntrySession::new(
                        e.decoder(),
                        &confusion,
                        &predictor,
                        SessionConfig::paper(),
                        9,
                    );
                    sess.enter_words(black_box(&words), &participant, s)
                })
            },
        );
    }
    g.finish();
}

fn bench_keyboard_baseline(c: &mut Criterion) {
    let kb = SmartwatchKeyboard::typical();
    let block = &phrases::blocks()[0];
    let words = block.words();
    c.bench_function("fig16_keyboard_block", |b| {
        b.iter(|| kb.type_words(black_box(&words), 5))
    });
}

criterion_group!(benches, bench_echowrite_sessions, bench_keyboard_baseline);
criterion_main!(benches);
