//! Spectrogram representation and the Doppler-enhancement image pipeline.
//!
//! After the STFT, EchoWrite treats the spectrogram as an image and applies
//! (paper Sec. III-A, Fig. 8):
//!
//! 1. region-of-interest cropping to `[19 530, 20 470]` Hz (350 of 8192 bins),
//! 2. a 3×3 median filter against random noise,
//! 3. spectral subtraction of the average of the first 5 static frames,
//!    suppressing the carrier, direct leak, and static multipath,
//! 4. an energy threshold `α` that zeroes bursty hardware-noise residue,
//! 5. a Gaussian blur with kernel size 5,
//! 6. zero-one normalization and binarization at 0.15,
//! 7. flood-fill hole filling on the binary image.
//!
//! The [`Spectrogram`] type carries its frequency/time metadata so later
//! stages can convert rows to Doppler shifts. [`enhance::Enhancer`] runs the
//! chain and exposes every intermediate stage (the panels of Fig. 8).

pub mod burst;
pub mod enhance;
pub mod image;
pub mod incremental;
pub mod spectrogram;

pub use burst::BurstConfig;
pub use enhance::{EnhanceConfig, EnhanceStages, Enhancer, Normalization};
pub use incremental::{EnhancerState, HoleFillerState, IncrementalEnhancer};
pub use spectrogram::Spectrogram;
