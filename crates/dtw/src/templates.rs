//! The pre-stored stroke template library.
//!
//! Templates are Doppler profiles "intrinsically related with strokes
//! themselves, while irrelevant with who performs them and how fast they
//! are performed" (Sec. III-C) — which is what makes EchoWrite
//! training-free. The library here is label-indexed storage; the canonical
//! template *profiles* are produced by running the ideal (jitter-free)
//! writer through the full signal pipeline, which lives in the `echowrite`
//! core crate to keep this crate's dependencies minimal.

use echowrite_gesture::stroke::{Stroke, STROKE_COUNT};
use std::fmt;

/// Errors building a template library.
#[derive(Debug, Clone, PartialEq)]
pub enum TemplateError {
    /// A stroke has no template.
    Missing(Stroke),
    /// A template series is empty.
    Empty(Stroke),
}

impl fmt::Display for TemplateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TemplateError::Missing(s) => write!(f, "no template supplied for stroke {s}"),
            TemplateError::Empty(s) => write!(f, "template for stroke {s} is empty"),
        }
    }
}

impl std::error::Error for TemplateError {}

/// A labeled library of one Doppler-profile template per stroke.
///
/// # Example
///
/// ```
/// use echowrite_dtw::TemplateLibrary;
/// use echowrite_gesture::Stroke;
/// let lib = TemplateLibrary::new(
///     Stroke::ALL.iter().map(|&s| (s, vec![s.index() as f64; 8])),
/// ).unwrap();
/// assert_eq!(lib.template(Stroke::S3)[0], 2.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TemplateLibrary {
    templates: [Vec<f64>; STROKE_COUNT],
}

impl TemplateLibrary {
    /// Builds a library from `(stroke, profile)` pairs. Later pairs replace
    /// earlier ones for the same stroke.
    ///
    /// # Errors
    ///
    /// Returns an error if any stroke lacks a template or a template is
    /// empty.
    pub fn new<I>(pairs: I) -> Result<Self, TemplateError>
    where
        I: IntoIterator<Item = (Stroke, Vec<f64>)>,
    {
        let mut slots: [Option<Vec<f64>>; STROKE_COUNT] = Default::default();
        for (stroke, profile) in pairs {
            slots[stroke.index()] = Some(profile);
        }
        let mut templates: [Vec<f64>; STROKE_COUNT] = Default::default();
        for (i, slot) in slots.into_iter().enumerate() {
            // echolint: allow(no-panic-path) -- i enumerates a fixed [_; STROKE_COUNT] array
            let stroke = Stroke::from_index(i).expect("index < 6");
            match slot {
                None => return Err(TemplateError::Missing(stroke)),
                Some(p) if p.is_empty() => return Err(TemplateError::Empty(stroke)),
                Some(p) => templates[i] = p,
            }
        }
        Ok(TemplateLibrary { templates })
    }

    /// The template profile for a stroke.
    pub fn template(&self, stroke: Stroke) -> &[f64] {
        &self.templates[stroke.index()]
    }

    /// Iterates over `(stroke, template)` pairs in stroke order.
    pub fn iter(&self) -> impl Iterator<Item = (Stroke, &[f64])> {
        Stroke::ALL
            .iter()
            .map(move |&s| (s, self.template(s)))
    }

    /// Length of the longest template.
    pub fn max_len(&self) -> usize {
        self.templates.iter().map(|t| t.len()).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full_pairs() -> Vec<(Stroke, Vec<f64>)> {
        Stroke::ALL
            .iter()
            .map(|&s| (s, vec![s.index() as f64 + 1.0; 4 + s.index()]))
            .collect()
    }

    #[test]
    fn builds_and_looks_up() {
        let lib = TemplateLibrary::new(full_pairs()).unwrap();
        for s in Stroke::ALL {
            assert_eq!(lib.template(s)[0], s.index() as f64 + 1.0);
            assert_eq!(lib.template(s).len(), 4 + s.index());
        }
        assert_eq!(lib.max_len(), 9);
    }

    #[test]
    fn missing_template_is_an_error() {
        let mut pairs = full_pairs();
        pairs.retain(|(s, _)| *s != Stroke::S4);
        assert_eq!(
            TemplateLibrary::new(pairs).unwrap_err(),
            TemplateError::Missing(Stroke::S4)
        );
    }

    #[test]
    fn empty_template_is_an_error() {
        let mut pairs = full_pairs();
        pairs.push((Stroke::S2, vec![]));
        assert_eq!(
            TemplateLibrary::new(pairs).unwrap_err(),
            TemplateError::Empty(Stroke::S2)
        );
    }

    #[test]
    fn later_pairs_replace_earlier() {
        let mut pairs = full_pairs();
        pairs.push((Stroke::S1, vec![9.0, 9.0]));
        let lib = TemplateLibrary::new(pairs).unwrap();
        assert_eq!(lib.template(Stroke::S1), &[9.0, 9.0]);
    }

    #[test]
    fn iter_visits_all_in_order() {
        let lib = TemplateLibrary::new(full_pairs()).unwrap();
        let strokes: Vec<Stroke> = lib.iter().map(|(s, _)| s).collect();
        assert_eq!(strokes, Stroke::ALL);
    }

    #[test]
    fn error_messages_name_the_stroke() {
        let err = TemplateError::Missing(Stroke::S5).to_string();
        assert!(err.contains("S5"));
    }
}
