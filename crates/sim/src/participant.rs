//! Participant models: per-user writing variability plus practice effects.
//!
//! The paper recruits six participants (3 female, 3 male) whose stroke
//! accuracies spread over ~2.6 % with σ ≈ 1.1 % (Fig. 13), and whose entry
//! speed grows with practice from 7.5 WPM to a stable 16.6 WPM after ~13
//! sessions (Fig. 18). Both effects are modelled here: a seeded draw of
//! writer parameters per participant, and a power law of practice scaling
//! speed and error behaviour with the session count.

use echowrite_gesture::WriterParams;
use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// A power law of practice: `value(s) = floor + (initial − floor)·s^(−rate)`
/// for session number `s ≥ 1`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LearningCurve {
    /// Value at the first session.
    pub initial: f64,
    /// Asymptotic value after unlimited practice.
    pub floor: f64,
    /// Learning rate exponent (higher = faster learning).
    pub rate: f64,
}

impl LearningCurve {
    /// Value at session `s` (1-based). Session 0 is clamped to 1.
    pub fn at(&self, session: usize) -> f64 {
        let s = session.max(1) as f64;
        self.floor + (self.initial - self.floor) * s.powf(-self.rate)
    }

    /// Validates monotonic-improvement parameters.
    ///
    /// # Errors
    ///
    /// Returns a message when the curve could not describe learning
    /// (non-positive rate).
    pub fn validate(&self) -> Result<(), String> {
        if self.rate <= 0.0 {
            return Err(format!("learning rate must be positive, got {}", self.rate));
        }
        Ok(())
    }
}

/// One simulated participant.
#[derive(Debug, Clone, PartialEq)]
pub struct Participant {
    /// Participant number, 1-based (paper: P1..P6).
    pub id: usize,
    /// Label, e.g. "P3".
    pub name: String,
    /// Base writer parameters (first-session, unpractised).
    pub writer: WriterParams,
    /// Probability of writing a wrong stroke from memory-recall slip,
    /// before any practice.
    pub slip_rate: LearningCurve,
    /// Per-stroke thinking/recall pause in seconds.
    pub think_time: LearningCurve,
    /// Multiplier on motion durations (stroke, withdraw, pause); practice
    /// makes motion brisker.
    pub tempo: LearningCurve,
    /// Seed driving this participant's randomness.
    pub seed: u64,
}

impl Participant {
    /// The standard six-participant cohort with seeded diversity.
    pub fn cohort(seed: u64) -> Vec<Participant> {
        (1..=6).map(|id| Participant::new(id, seed)).collect()
    }

    /// Creates participant `id` (1-based) from a cohort seed.
    pub fn new(id: usize, cohort_seed: u64) -> Participant {
        let mut rng = ChaCha8Rng::seed_from_u64(cohort_seed.wrapping_mul(6364136223846793005).wrapping_add(id as u64));
        let mut writer = WriterParams::nominal();
        // Individual writing style: speed, size, steadiness. The spreads
        // are modest — the paper's participants differed by ≤ 2.6 % in
        // recognition accuracy after the same instruction (Fig. 13).
        writer.base_duration *= rng.gen_range(0.92..1.11);
        writer.amplitude *= rng.gen_range(0.92..1.11);
        writer.duration_jitter = rng.gen_range(0.06..0.09);
        writer.amplitude_jitter = rng.gen_range(0.06..0.09);
        writer.tremor = rng.gen_range(0.0005..0.0009);
        writer.centre_jitter = rng.gen_range(0.003..0.005);

        let slip0 = rng.gen_range(0.02..0.05);
        let think0 = rng.gen_range(0.55..0.95);
        Participant {
            id,
            name: format!("P{id}"),
            writer,
            slip_rate: LearningCurve { initial: slip0, floor: 0.004, rate: 0.9 },
            think_time: LearningCurve { initial: think0, floor: 0.14, rate: 0.75 },
            tempo: LearningCurve { initial: 1.0, floor: 0.65, rate: 0.45 },
            seed: cohort_seed ^ (id as u64) << 32,
        }
    }

    /// Writer parameters after `session` practice sessions: motion gets
    /// brisker while staying within the validated speed envelope. Practice
    /// compresses the *transitions* (withdraw, pause) fastest — experts
    /// chunk movements — so those scale with tempo².
    pub fn writer_at(&self, session: usize) -> WriterParams {
        let tempo = self.tempo.at(session);
        let mut w = self.writer.clone();
        w.base_duration = (w.base_duration * tempo).max(0.18);
        w.pause = (w.pause * tempo * tempo).max(0.06);
        w.withdraw_duration = (w.withdraw_duration * tempo * tempo).max(0.30);
        w.lead_in = self.writer.lead_in; // the pipeline still needs static frames
        w
    }

    /// Probability of a memory-slip (writing the wrong stroke) at a given
    /// session.
    pub fn slip_at(&self, session: usize) -> f64 {
        self.slip_rate.at(session)
    }

    /// Thinking/recall time per stroke at a given session (seconds).
    pub fn think_at(&self, session: usize) -> f64 {
        self.think_time.at(session)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learning_curve_monotone_decreasing() {
        let c = LearningCurve { initial: 1.0, floor: 0.2, rate: 0.5 };
        let mut prev = f64::INFINITY;
        for s in 1..=20 {
            let v = c.at(s);
            assert!(v < prev);
            assert!(v >= 0.2);
            prev = v;
        }
        assert!((c.at(1) - 1.0).abs() < 1e-12);
        assert_eq!(c.at(0), c.at(1), "session 0 clamps to 1");
    }

    #[test]
    fn learning_curve_approaches_floor() {
        let c = LearningCurve { initial: 1.0, floor: 0.3, rate: 1.0 };
        assert!((c.at(1000) - 0.3).abs() < 0.001);
        c.validate().unwrap();
        assert!(LearningCurve { rate: 0.0, ..c }.validate().is_err());
    }

    #[test]
    fn cohort_is_six_distinct_deterministic_participants() {
        let a = Participant::cohort(7);
        let b = Participant::cohort(7);
        assert_eq!(a.len(), 6);
        assert_eq!(a, b, "cohort must be deterministic");
        for (i, p) in a.iter().enumerate() {
            assert_eq!(p.id, i + 1);
            assert_eq!(p.name, format!("P{}", i + 1));
            p.writer.validate().expect("participant writers must be valid");
        }
        // Distinct styles.
        assert_ne!(a[0].writer, a[1].writer);
        let other = Participant::cohort(8);
        assert_ne!(a[0].writer, other[0].writer);
    }

    #[test]
    fn practice_speeds_up_motion() {
        let p = Participant::new(1, 3);
        let w1 = p.writer_at(1);
        let w13 = p.writer_at(13);
        assert!(w13.base_duration < w1.base_duration);
        assert!(w13.pause < w1.pause);
        w13.validate().expect("practised writer must stay valid");
        // Lead-in is pipeline infrastructure and must not shrink.
        assert_eq!(w13.lead_in, w1.lead_in);
    }

    #[test]
    fn practice_reduces_slips_and_thinking() {
        let p = Participant::new(2, 3);
        assert!(p.slip_at(15) < p.slip_at(1));
        assert!(p.think_at(15) < p.think_at(1));
        assert!(p.slip_at(1) <= 0.15, "initial slip rate plausible");
        assert!(p.slip_at(15) >= 0.0);
    }

    #[test]
    fn participants_spread_but_not_wildly() {
        // Paper Fig. 13: per-participant accuracies within ~2.6 % of each
        // other. The writer-parameter spread here is the driver; sanity
        // check its bounds.
        for p in Participant::cohort(1) {
            let w = &p.writer;
            assert!(w.base_duration > 0.2 && w.base_duration < 0.4);
            assert!(w.amplitude > 0.08 && w.amplitude < 0.12);
        }
    }
}
