//! Per-file symbol extraction — the front half of the workspace analysis.
//!
//! For every non-test function in a source file this pass records a
//! qualified name (`crate::Type::method` or `crate::module::fn`), the calls
//! its body makes (plain, path-qualified, and method calls with a
//! receiver-type hint), and its *unsanctioned* panic and allocation sites.
//! The [`crate::callgraph`] pass stitches the per-file symbol tables into a
//! workspace call graph; [`crate::reach`] runs the transitive rules over it.
//!
//! A site is *sanctioned* — and therefore invisible to the reachability
//! rules — when a reasoned allow marker covers it: `allow(no-panic-path)` or
//! `allow(panic-reach)` for panic sites, `allow(no-alloc-hot)` or
//! `allow(alloc-reach)` for allocation sites. The per-site rules audit those
//! markers; the graph rules trust them.

use crate::lexer::{lex, Lexed, TokKind, Token};
use crate::rules::{
    alloc_site_at, panic_site_at, parse_markers, site_allowed, AllowMarker, FileScope, Rule,
};
use crate::scanner::{scan, Scan};

/// An unsanctioned panic or allocation site inside a function body.
#[derive(Debug, Clone)]
pub struct Site {
    /// 1-based source line.
    pub line: u32,
    /// The per-site rule's message for this site.
    pub what: String,
}

/// How a call site names its callee.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CallTarget {
    /// `foo(…)` or `qual::foo(…)` — only the innermost qualifier segment is
    /// kept (`kernels::mul_into` and `dsp::kernels::mul_into` both resolve
    /// through `qual == "kernels"`).
    Path {
        /// The segment directly before the called name, if any.
        qualifier: Option<String>,
        /// The called name.
        name: String,
    },
    /// `recv.foo(…)` — resolved by the receiver-type heuristic.
    Method {
        /// The method name.
        name: String,
        /// Whether the receiver is literally `self` (resolves within the
        /// enclosing impl type first).
        self_receiver: bool,
    },
}

/// One call site inside a function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// 1-based source line of the callee name.
    pub line: u32,
    /// The named callee.
    pub target: CallTarget,
}

/// A function symbol: identity plus everything the graph rules need.
#[derive(Debug, Clone)]
pub struct FnSym {
    /// Workspace-relative file path (as used in diagnostics).
    pub file: String,
    /// Short crate name (`dsp`, `serve`, …; `root` for the suite's `src/`).
    pub crate_name: String,
    /// Module path inside the crate (`kernels::x86`, empty for `lib.rs`).
    pub module: String,
    /// Bare function name.
    pub name: String,
    /// Enclosing impl/trait type, when the fn is a method.
    pub type_ctx: Option<String>,
    /// Display name: `crate::Type::name` or `crate::module::name`.
    pub qual: String,
    /// Line of the `fn` keyword.
    pub line: u32,
    /// Hot kernel (`*_into` naming or `// echolint: hot`).
    pub hot: bool,
    /// Declared reachability root (`// echolint: entry`).
    pub entry: bool,
    /// Declared `unsafe fn`.
    pub is_unsafe: bool,
    /// Defined inside `crates/dsp/src/kernels/`.
    pub simd_kernels: bool,
    /// Defined in a kernels *lane* file (`kernels/` but not `mod.rs`) — must
    /// be reachable only through the module's safe wrappers.
    pub simd_lane: bool,
    /// Calls the body makes, in source order.
    pub calls: Vec<CallSite>,
    /// Unsanctioned panic sites in the body.
    pub panic_sites: Vec<Site>,
    /// Unsanctioned allocation sites in the body.
    pub alloc_sites: Vec<Site>,
}

/// The symbol table of one file.
#[derive(Debug, Clone)]
pub struct FileSymbols {
    /// Workspace-relative path.
    pub file: String,
    /// The file's rule scope.
    pub scope: FileScope,
    /// Non-test functions, in source order.
    pub fns: Vec<FnSym>,
    /// Reasoned allow markers, for suppression of graph diagnostics whose
    /// site falls in this file.
    pub(crate) allows: Vec<AllowMarker>,
}

impl FileSymbols {
    /// Whether an allow marker sanctions `rule` at `line` in this file.
    pub fn allows_at(&self, rule: Rule, line: u32) -> bool {
        site_allowed(&self.allows, rule, line)
    }
}

/// Keywords that look like calls when followed by `(`.
fn is_keywordish(s: &str) -> bool {
    matches!(
        s,
        "if" | "while"
            | "for"
            | "match"
            | "return"
            | "loop"
            | "fn"
            | "let"
            | "else"
            | "in"
            | "as"
            | "move"
            | "ref"
            | "mut"
            | "pub"
            | "where"
            | "impl"
            | "dyn"
            | "use"
            | "break"
            | "continue"
            | "unsafe"
            | "await"
    )
}

/// The module path of `rel` inside its crate: directories after `src/` plus
/// the file stem, with `lib.rs` / `mod.rs` / `main.rs` stems dropped.
fn module_path(rel: &str) -> String {
    let comps: Vec<&str> = rel.split('/').collect();
    let after_src = match comps.iter().position(|c| *c == "src") {
        Some(p) => &comps[p + 1..],
        None => return String::new(),
    };
    let mut parts: Vec<String> = Vec::new();
    for (k, c) in after_src.iter().enumerate() {
        if k + 1 == after_src.len() {
            let stem = c.strip_suffix(".rs").unwrap_or(c);
            if !matches!(stem, "lib" | "mod" | "main") {
                parts.push(stem.to_string());
            }
        } else {
            parts.push((*c).to_string());
        }
    }
    parts.join("::")
}

/// Extracts the symbol table of one file. `file` is used verbatim in
/// diagnostics; marker-parse diagnostics are NOT re-emitted here (the
/// per-file rule pass owns them), so the scratch vec is discarded.
pub fn file_symbols(file: &str, source: &str, scope: &FileScope) -> FileSymbols {
    let lexed = lex(source);
    let scanned = scan(&lexed);
    file_symbols_lexed(file, &lexed, &scanned, scope)
}

/// Like [`file_symbols`], over an already lexed+scanned file — the workspace
/// walker lexes each file exactly once and shares the result between the
/// per-file rule pass and this symbol pass.
pub fn file_symbols_lexed(
    file: &str,
    lexed: &Lexed,
    scanned: &Scan,
    scope: &FileScope,
) -> FileSymbols {
    let mut marker_diags = Vec::new();
    let allows = parse_markers(&lexed.comments, file, &mut marker_diags);
    let crate_name =
        if scope.crate_name.is_empty() { "root".to_string() } else { scope.crate_name.clone() };
    let module = module_path(file);
    let lane = scope.simd_kernels && !file.ends_with("mod.rs") && !file.ends_with("kernels.rs");

    let mut fns = Vec::new();
    for f in &scanned.fns {
        let (s, e) = f.body;
        // Skip test-only functions entirely: they are outside the graph.
        if s < lexed.tokens.len() && scanned.is_test(s) {
            continue;
        }
        let qual = match &f.type_ctx {
            Some(ty) => format!("{crate_name}::{ty}::{}", f.name),
            None if module.is_empty() => format!("{crate_name}::{}", f.name),
            None => format!("{crate_name}::{module}::{}", f.name),
        };
        let mut sym = FnSym {
            file: file.to_string(),
            crate_name: crate_name.clone(),
            module: module.clone(),
            name: f.name.clone(),
            type_ctx: f.type_ctx.clone(),
            qual,
            line: f.line,
            hot: f.marked_hot || f.name.ends_with("_into"),
            entry: f.marked_entry,
            is_unsafe: f.is_unsafe,
            simd_kernels: scope.simd_kernels,
            simd_lane: lane,
            calls: Vec::new(),
            panic_sites: Vec::new(),
            alloc_sites: Vec::new(),
        };
        body_facts(lexed, scanned, (s, e.min(lexed.tokens.len())), &allows, &mut sym);
        fns.push(sym);
    }
    FileSymbols { file: file.to_string(), scope: scope.clone(), fns, allows }
}

/// Walks one body's token range, collecting calls and unsanctioned sites.
fn body_facts(
    lexed: &Lexed,
    scanned: &Scan,
    (s, e): (usize, usize),
    allows: &[AllowMarker],
    sym: &mut FnSym,
) {
    let toks = &lexed.tokens;
    for i in s..e {
        if scanned.is_test(i) {
            continue;
        }
        let t = &toks[i];
        if let Some(what) = panic_site_at(toks, i) {
            if !site_allowed(allows, Rule::NoPanicPath, t.line)
                && !site_allowed(allows, Rule::PanicReach, t.line)
            {
                sym.panic_sites.push(Site { line: t.line, what });
            }
        }
        if let Some(what) = alloc_site_at(toks, i) {
            if !site_allowed(allows, Rule::NoAllocHot, t.line)
                && !site_allowed(allows, Rule::AllocReach, t.line)
            {
                sym.alloc_sites.push(Site { line: t.line, what });
            }
        }
        if let Some(target) = call_at(toks, i) {
            sym.calls.push(CallSite { line: t.line, target });
        }
    }
}

/// Recognizes a call whose callee name is the token at `i`.
fn call_at(toks: &[Token], i: usize) -> Option<CallTarget> {
    let t = &toks[i];
    if t.kind != TokKind::Ident
        || is_keywordish(&t.text)
        || !toks.get(i + 1).is_some_and(|n| n.is_punct('('))
    {
        return None;
    }
    if i == 0 {
        return Some(CallTarget::Path { qualifier: None, name: t.text.clone() });
    }
    let prev = &toks[i - 1];
    // Macro invocations (`name!(…)`) never reach here: `!` sits between the
    // name and `(`. A name directly after `fn` is a declaration, not a call.
    if prev.is_ident("fn") {
        return None;
    }
    if prev.is_punct('.') {
        let self_receiver = i >= 2 && toks[i - 2].is_ident("self");
        return Some(CallTarget::Method { name: t.text.clone(), self_receiver });
    }
    if prev.is_punct(':') && i >= 2 && toks[i - 2].is_punct(':') {
        let qualifier = toks
            .get(i.wrapping_sub(3))
            .filter(|q| q.kind == TokKind::Ident)
            .map(|q| q.text.clone());
        return Some(CallTarget::Path { qualifier, name: t.text.clone() });
    }
    Some(CallTarget::Path { qualifier: None, name: t.text.clone() })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::classify;
    use std::path::Path;

    fn syms(rel: &str, src: &str) -> FileSymbols {
        file_symbols(rel, src, &classify(Path::new(rel)))
    }

    #[test]
    fn qualified_names_cover_methods_modules_and_lib() {
        let s = syms(
            "crates/dsp/src/stft.rs",
            "impl Stft { fn fill(&self) {} }\nfn free() {}\n",
        );
        assert_eq!(s.fns[0].qual, "dsp::Stft::fill");
        assert_eq!(s.fns[1].qual, "dsp::stft::free");
        let l = syms("crates/dsp/src/lib.rs", "fn top() {}\n");
        assert_eq!(l.fns[0].qual, "dsp::top");
        let k = syms("crates/dsp/src/kernels/x86.rs", "fn lane() {}\n");
        assert_eq!(k.fns[0].qual, "dsp::kernels::x86::lane");
        assert!(k.fns[0].simd_lane);
        let m = syms("crates/dsp/src/kernels/mod.rs", "fn wrap() {}\n");
        assert_eq!(m.fns[0].qual, "dsp::kernels::wrap");
        assert!(m.fns[0].simd_kernels && !m.fns[0].simd_lane);
    }

    #[test]
    fn calls_are_classified_by_shape() {
        let s = syms(
            "crates/core/src/engine.rs",
            "impl Engine { fn go(&self) { self.step(); other.run(); helper(); dsp::stft::plan(); Stroke::from_index(0); } }\nfn helper() {}\n",
        );
        let calls = &s.fns[0].calls;
        assert_eq!(
            calls[0].target,
            CallTarget::Method { name: "step".into(), self_receiver: true }
        );
        assert_eq!(
            calls[1].target,
            CallTarget::Method { name: "run".into(), self_receiver: false }
        );
        assert_eq!(calls[2].target, CallTarget::Path { qualifier: None, name: "helper".into() });
        assert_eq!(
            calls[3].target,
            CallTarget::Path { qualifier: Some("stft".into()), name: "plan".into() }
        );
        assert_eq!(
            calls[4].target,
            CallTarget::Path { qualifier: Some("Stroke".into()), name: "from_index".into() }
        );
    }

    #[test]
    fn sanctioned_sites_are_invisible_to_the_graph() {
        let src = "fn a() {\n// echolint: allow(no-panic-path) -- bounded above\nx.unwrap();\ny.unwrap();\n}\n";
        let s = syms("crates/dtw/src/dtw.rs", src);
        assert_eq!(s.fns[0].panic_sites.len(), 1);
        assert_eq!(s.fns[0].panic_sites[0].line, 4);
    }

    #[test]
    fn test_fns_and_macros_are_excluded() {
        let src = "fn live() { assert_eq!(a, b); go(); }\n#[cfg(test)]\nmod t { fn x() { boom.unwrap(); } }\n";
        let s = syms("crates/core/src/lib.rs", src);
        assert_eq!(s.fns.len(), 1);
        let names: Vec<String> = s.fns[0]
            .calls
            .iter()
            .map(|c| match &c.target {
                CallTarget::Path { name, .. } | CallTarget::Method { name, .. } => name.clone(),
            })
            .collect();
        assert_eq!(names, vec!["go"]);
    }
}
