//! Workspace-level umbrella for the EchoWrite reproduction.
//!
//! This crate hosts the integration test suite (`tests/`), the runnable
//! examples (`examples/`), and the `repro` binary that regenerates every
//! table and figure of the paper. The actual functionality lives in the
//! `echowrite-*` crates; see the workspace `README.md` for the map.

pub use echowrite as core;
pub use echowrite_corpus as corpus;
pub use echowrite_dsp as dsp;
pub use echowrite_dtw as dtw;
pub use echowrite_gesture as gesture;
pub use echowrite_lang as lang;
pub use echowrite_profile as profile;
pub use echowrite_sim as sim;
pub use echowrite_spectro as spectro;
pub use echowrite_synth as synth;
