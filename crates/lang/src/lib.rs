//! Word and text inference from stroke sequences (paper Sec. III-C).
//!
//! Recognized strokes are fuzzy, T9-style codes: each stroke stands for a
//! whole letter group. This crate turns stroke sequences into ranked word
//! candidates:
//!
//! - [`dictionary::Dictionary`]: the paper's customized dictionary of
//!   frequency-ranked words with attributes
//!   `{word, frequency, length, strokeSeq}`, indexed by stroke sequence,
//! - [`correction`]: substitution-only stroke correction at edit distance 1,
//!   restricted to the confusion modes that dominate in practice
//!   (observed S1 may really be S2/S4/S6; observed S2/S6 may really be S5),
//! - [`decoder::WordDecoder`]: Algorithm 2 — candidates from the observed
//!   and corrected sequences, ranked by the posterior
//!   `P(w|I) ∝ P(w)·∏ᵢ P(sᵢ|lᵢ)`, returning the top-k list,
//! - [`predictor::NextWordPredictor`]: 2-gram next-word suggestions after a
//!   committed word.

pub mod correction;
pub mod decoder;
pub mod dictionary;
pub mod predictor;

pub use correction::CorrectionRules;
pub use decoder::{Candidate, WordDecoder};
pub use dictionary::{DictEntry, Dictionary};
pub use predictor::NextWordPredictor;
