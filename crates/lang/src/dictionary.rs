//! The stroke-indexed frequency dictionary.

use echowrite_corpus::Lexicon;
use echowrite_gesture::{InputScheme, Stroke};
use std::collections::BTreeMap;

/// One dictionary entry — the paper's
/// `{word, frequency, length, strokeSeq}` record.
#[derive(Debug, Clone, PartialEq)]
pub struct DictEntry {
    /// The word (lowercase).
    pub word: String,
    /// Corpus frequency (per million).
    pub frequency: f64,
    /// Word length in letters.
    pub length: usize,
    /// The word's stroke sequence under the input scheme.
    pub stroke_seq: Vec<Stroke>,
}

/// A dictionary of words indexed by their stroke sequences.
///
/// # Example
///
/// ```
/// use echowrite_corpus::Lexicon;
/// use echowrite_gesture::InputScheme;
/// use echowrite_lang::Dictionary;
///
/// let dict = Dictionary::build(Lexicon::embedded(), &InputScheme::paper());
/// let seq = InputScheme::paper().encode_word("the").unwrap();
/// let hits = dict.find(&seq);
/// assert!(hits.iter().any(|e| e.word == "the"));
/// ```
#[derive(Debug, Clone)]
pub struct Dictionary {
    entries: Vec<DictEntry>,
    // Ordered by stroke sequence so collision-group iteration is
    // deterministic (echolint: determinism).
    by_sequence: BTreeMap<Vec<Stroke>, Vec<usize>>,
    scheme: InputScheme,
}

impl Dictionary {
    /// Builds the dictionary from a lexicon under an input scheme.
    ///
    /// Entries within a stroke sequence are stored in descending frequency
    /// order. Words containing non-letters are skipped.
    pub fn build(lexicon: &Lexicon, scheme: &InputScheme) -> Self {
        let mut entries = Vec::with_capacity(lexicon.len());
        let mut by_sequence: BTreeMap<Vec<Stroke>, Vec<usize>> = BTreeMap::new();
        for we in lexicon.iter() {
            let Ok(stroke_seq) = scheme.encode_word(&we.word) else {
                continue;
            };
            let idx = entries.len();
            by_sequence.entry(stroke_seq.clone()).or_default().push(idx);
            entries.push(DictEntry {
                word: we.word.clone(),
                frequency: we.frequency,
                length: we.word.len(),
                stroke_seq,
            });
        }
        // Lexicon iteration is already frequency-descending, so per-sequence
        // index lists inherit that order.
        Dictionary { entries, by_sequence, scheme: scheme.clone() }
    }

    /// The input scheme the dictionary was built with.
    pub fn scheme(&self) -> &InputScheme {
        &self.scheme
    }

    /// Number of words.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the dictionary is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// All words whose stroke sequence equals `seq`, most frequent first.
    pub fn find(&self, seq: &[Stroke]) -> Vec<&DictEntry> {
        self.by_sequence
            .get(seq)
            .map(|idxs| idxs.iter().map(|&i| &self.entries[i]).collect())
            .unwrap_or_default()
    }

    /// The entry for a specific word, if present.
    pub fn entry(&self, word: &str) -> Option<&DictEntry> {
        let w = word.to_ascii_lowercase();
        self.entries.iter().find(|e| e.word == w)
    }

    /// Iterates all entries in frequency order.
    pub fn iter(&self) -> impl Iterator<Item = &DictEntry> {
        self.entries.iter()
    }

    /// Number of distinct stroke sequences (collision groups).
    pub fn sequence_count(&self) -> usize {
        self.by_sequence.len()
    }

    /// Mean number of words per stroke sequence — the T9-style collision
    /// factor that the Bayesian ranking must resolve.
    pub fn mean_collision(&self) -> f64 {
        if self.by_sequence.is_empty() {
            return 0.0;
        }
        self.entries.len() as f64 / self.by_sequence.len() as f64
    }

    /// All words whose stroke sequence is within **general** edit distance
    /// `max_dist` of `seq` (substitutions, insertions, and deletions) —
    /// the unrestricted correction the paper rules out as exponential when
    /// expanded generatively. Probing the dictionary directly makes it
    /// linear in dictionary size instead; the paper's question of whether
    /// the extra coverage is *worth it* is answered by ablation A4.
    pub fn find_within_edit(&self, seq: &[Stroke], max_dist: usize) -> Vec<(&DictEntry, usize)> {
        let mut out = Vec::new();
        for entry in &self.entries {
            if entry.stroke_seq.len().abs_diff(seq.len()) > max_dist {
                continue;
            }
            let d = edit_distance_bounded(seq, &entry.stroke_seq, max_dist);
            if let Some(d) = d {
                out.push((entry, d));
            }
        }
        out
    }
}

/// Banded Levenshtein distance between stroke sequences, returning `None`
/// when the distance exceeds `bound`.
fn edit_distance_bounded(a: &[Stroke], b: &[Stroke], bound: usize) -> Option<usize> {
    let (n, m) = (a.len(), b.len());
    if n.abs_diff(m) > bound {
        return None;
    }
    // One-row DP with a diagonal band of half-width `bound`.
    let big = usize::MAX / 2;
    let mut prev: Vec<usize> = (0..=m).collect();
    let mut cur = vec![big; m + 1];
    for i in 1..=n {
        let lo = i.saturating_sub(bound);
        let hi = (i + bound).min(m);
        if let Some(edge) = cur.first_mut() {
            *edge = if i <= bound { i } else { big };
        }
        for j in lo.max(1)..=hi {
            let sub = prev[j - 1] + usize::from(a[i - 1] != b[j - 1]);
            let del = prev[j] + 1;
            let ins = cur[j - 1] + 1;
            cur[j] = sub.min(del).min(ins);
        }
        if lo > 1 {
            cur[lo - 1] = big;
        }
        std::mem::swap(&mut prev, &mut cur);
        cur.iter_mut().for_each(|v| *v = big);
        if prev.iter().all(|&v| v > bound) {
            return None;
        }
    }
    if prev[m] <= bound {
        Some(prev[m])
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dict() -> Dictionary {
        Dictionary::build(Lexicon::embedded(), &InputScheme::paper())
    }

    #[test]
    fn builds_all_lexicon_words() {
        let d = dict();
        assert_eq!(d.len(), Lexicon::embedded().len());
        assert!(!d.is_empty());
    }

    #[test]
    fn entries_carry_paper_attributes() {
        let d = dict();
        let e = d.entry("water").unwrap();
        assert_eq!(e.length, 5);
        assert_eq!(e.stroke_seq.len(), 5);
        assert!(e.frequency > 0.0);
        assert_eq!(
            e.stroke_seq,
            InputScheme::paper().encode_word("water").unwrap()
        );
    }

    #[test]
    fn find_returns_collision_group_sorted_by_frequency() {
        let d = dict();
        let seq = InputScheme::paper().encode_word("the").unwrap();
        let hits = d.find(&seq);
        assert!(hits.iter().any(|e| e.word == "the"));
        for w in hits.windows(2) {
            assert!(w[0].frequency >= w[1].frequency);
        }
        // All hits share the same stroke sequence and length.
        for h in &hits {
            assert_eq!(h.stroke_seq, seq);
            assert_eq!(h.length, 3);
        }
    }

    #[test]
    fn unknown_sequence_finds_nothing() {
        let d = dict();
        // A 12-stroke sequence is longer than any common word here.
        let seq = vec![Stroke::S3; 12];
        assert!(d.find(&seq).is_empty());
    }

    #[test]
    fn collisions_exist_like_t9() {
        let d = dict();
        assert!(d.sequence_count() < d.len(), "expected stroke collisions");
        let c = d.mean_collision();
        assert!(c > 1.05 && c < 5.0, "collision factor {c}");
    }

    #[test]
    fn entry_lookup_case_insensitive() {
        let d = dict();
        assert!(d.entry("The").is_some());
        assert!(d.entry("zzzzzz").is_none());
    }

    #[test]
    fn edit_distance_bounded_basics() {
        use Stroke::*;
        assert_eq!(edit_distance_bounded(&[S1, S2], &[S1, S2], 1), Some(0));
        assert_eq!(edit_distance_bounded(&[S1, S2], &[S1, S3], 1), Some(1));
        assert_eq!(edit_distance_bounded(&[S1, S2], &[S1], 1), Some(1)); // deletion
        assert_eq!(edit_distance_bounded(&[S1], &[S1, S2, S3], 1), None); // too far
        assert_eq!(edit_distance_bounded(&[], &[S1], 1), Some(1));
        assert_eq!(edit_distance_bounded(&[S1, S2, S3], &[S3, S2, S1], 1), None);
        assert_eq!(edit_distance_bounded(&[S1, S2, S3], &[S3, S2, S1], 2), Some(2));
    }

    #[test]
    fn find_within_edit_covers_insertions_and_deletions() {
        let d = dict();
        let scheme = InputScheme::paper();
        // "water" with one stroke DROPPED: substitution-only lookup fails,
        // general edit-distance lookup recovers it.
        let mut seq = scheme.encode_word("water").unwrap();
        seq.remove(2);
        assert!(d.find(&seq).iter().all(|e| e.word != "water"));
        let hits = d.find_within_edit(&seq, 1);
        assert!(
            hits.iter().any(|(e, dist)| e.word == "water" && *dist == 1),
            "deletion not recovered"
        );
        // Exact matches come back at distance 0.
        let exact = scheme.encode_word("the").unwrap();
        let hits = d.find_within_edit(&exact, 1);
        assert!(hits.iter().any(|(e, dist)| e.word == "the" && *dist == 0));
    }

    #[test]
    fn find_within_edit_zero_equals_find() {
        let d = dict();
        let seq = InputScheme::paper().encode_word("people").unwrap();
        let strict: Vec<&str> = d.find(&seq).iter().map(|e| e.word.as_str()).collect();
        let within: Vec<&str> = d
            .find_within_edit(&seq, 0)
            .iter()
            .map(|(e, _)| e.word.as_str())
            .collect();
        for w in &strict {
            assert!(within.contains(w));
        }
        assert_eq!(strict.len(), within.len());
    }
}
