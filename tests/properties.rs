//! Property-based tests over the core data structures and invariants.

use echowrite_dsp::filters::{gaussian_smooth, holoborodko_diff, median_filter, moving_average};
use echowrite_dsp::util::{normalize_zero_one, resample_linear};
use echowrite_dsp::{Complex, Fft, RealFft};
use echowrite_dtw::{dtw_distance, dtw_distance_pruned, DtwConfig};
use echowrite_gesture::{InputScheme, Stroke};
use echowrite_lang::{CorrectionRules, Dictionary, WordDecoder};
use echowrite_profile::{DopplerProfile, SegmentConfig, Segmenter};
use echowrite_spectro::{image, Spectrogram};
use proptest::prelude::*;

fn small_signal() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-100.0f64..100.0, 1..64)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // ---------- FFT ----------

    #[test]
    fn fft_roundtrip_recovers_signal(values in prop::collection::vec(-1.0f64..1.0, 32)) {
        let fft = Fft::new(32);
        let original: Vec<Complex> = values.iter().map(|&v| Complex::new(v, 0.0)).collect();
        let mut buf = original.clone();
        fft.forward(&mut buf);
        fft.inverse(&mut buf);
        for (a, b) in buf.iter().zip(&original) {
            prop_assert!((a.re - b.re).abs() < 1e-9);
            prop_assert!(a.im.abs() < 1e-9);
        }
    }

    #[test]
    fn fft_parseval(values in prop::collection::vec(-1.0f64..1.0, 64)) {
        let fft = Fft::new(64);
        let time: f64 = values.iter().map(|v| v * v).sum();
        let mut buf: Vec<Complex> = values.iter().map(|&v| Complex::new(v, 0.0)).collect();
        fft.forward(&mut buf);
        let freq: f64 = buf.iter().map(|z| z.norm_sqr()).sum::<f64>() / 64.0;
        prop_assert!((time - freq).abs() < 1e-6 * time.max(1.0));
    }

    // ---------- 1-D filters ----------

    #[test]
    fn moving_average_bounded_by_extremes(x in small_signal()) {
        let lo = x.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = x.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        for v in moving_average(&x, 3) {
            prop_assert!(v >= lo - 1e-12 && v <= hi + 1e-12);
        }
    }

    #[test]
    fn median_filter_output_values_exist_in_window(x in small_signal()) {
        let y = median_filter(&x, 3);
        prop_assert_eq!(y.len(), x.len());
        let lo = x.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = x.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        for v in y {
            prop_assert!(v >= lo && v <= hi);
        }
    }

    #[test]
    fn gaussian_smooth_preserves_length_and_bounds(x in small_signal()) {
        let y = gaussian_smooth(&x, 5);
        prop_assert_eq!(y.len(), x.len());
        let lo = x.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = x.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        for v in y {
            prop_assert!(v >= lo - 1e-9 && v <= hi + 1e-9);
        }
    }

    #[test]
    fn holoborodko_is_linear(x in prop::collection::vec(-10.0f64..10.0, 10..40),
                             a in -3.0f64..3.0) {
        let scaled: Vec<f64> = x.iter().map(|v| a * v).collect();
        let dx = holoborodko_diff(&x);
        let ds = holoborodko_diff(&scaled);
        for (u, v) in dx.iter().zip(&ds) {
            prop_assert!((a * u - v).abs() < 1e-9);
        }
    }

    #[test]
    fn normalize_zero_one_lands_in_unit_interval(mut x in small_signal()) {
        normalize_zero_one(&mut x);
        for v in &x {
            prop_assert!((0.0..=1.0).contains(v));
        }
    }

    #[test]
    fn resample_preserves_endpoints(x in prop::collection::vec(-5.0f64..5.0, 2..40),
                                    n in 2usize..60) {
        let y = resample_linear(&x, n);
        prop_assert_eq!(y.len(), n);
        prop_assert!((y[0] - x[0]).abs() < 1e-12);
        prop_assert!((y[n - 1] - x[x.len() - 1]).abs() < 1e-12);
    }

    // ---------- DTW ----------

    #[test]
    fn dtw_identity_and_symmetry(a in small_signal(), b in small_signal()) {
        let cfg = DtwConfig::default();
        prop_assert_eq!(dtw_distance(&a, &a, cfg), 0.0);
        let ab = dtw_distance(&a, &b, cfg);
        let ba = dtw_distance(&b, &a, cfg);
        prop_assert!((ab - ba).abs() < 1e-9);
        prop_assert!(ab >= 0.0);
    }

    #[test]
    fn dtw_invariant_to_duplication(a in prop::collection::vec(-50.0f64..50.0, 2..20)) {
        // Repeating every sample (time-stretch by 2) must not change the
        // normalized DTW distance to the original by much.
        let stretched: Vec<f64> = a.iter().flat_map(|&v| [v, v]).collect();
        let d = dtw_distance(&a, &stretched, DtwConfig::default());
        prop_assert!(d < 1e-9, "stretch distance {d}");
    }

    // ---------- spectrogram image ops ----------

    #[test]
    fn binarize_then_fill_is_idempotent(cells in prop::collection::vec(0.0f64..1.0, 36)) {
        let mut s = Spectrogram::zeros(6, 6);
        for (i, &v) in cells.iter().enumerate() {
            s.set(i / 6, i % 6, v);
        }
        let b = image::binarize(&s, 0.5);
        let f1 = image::fill_holes(&b);
        let f2 = image::fill_holes(&f1);
        prop_assert_eq!(&f1, &f2);
        // Fill never removes foreground.
        for r in 0..6 {
            for c in 0..6 {
                prop_assert!(f1.get(r, c) >= b.get(r, c));
            }
        }
    }

    #[test]
    fn subtract_static_never_negative(cells in prop::collection::vec(0.0f64..50.0, 40)) {
        let mut s = Spectrogram::zeros(4, 10);
        for (i, &v) in cells.iter().enumerate() {
            s.set(i / 10, i % 10, v);
        }
        let out = image::subtract_static(&s, 5);
        for v in out.data() {
            prop_assert!(*v >= 0.0);
        }
    }

    // ---------- scheme / dictionary / decoder ----------

    #[test]
    fn encode_word_length_preserved(word in "[a-z]{1,12}") {
        let scheme = InputScheme::paper();
        let seq = scheme.encode_word(&word).unwrap();
        prop_assert_eq!(seq.len(), word.len());
        // Every stroke maps back to a group containing the letter.
        for (ch, s) in word.chars().zip(&seq) {
            prop_assert!(scheme.letters_for(*s).contains(&ch.to_ascii_uppercase()));
        }
    }

    #[test]
    fn correction_variants_are_edit_distance_one(seq in prop::collection::vec(0usize..6, 1..8)) {
        let strokes: Vec<Stroke> = seq.iter().map(|&i| Stroke::from_index(i).unwrap()).collect();
        let rules = CorrectionRules::paper();
        for v in rules.corrected_sequences(&strokes) {
            prop_assert_eq!(v.len(), strokes.len());
            let diff = v.iter().zip(&strokes).filter(|(a, b)| a != b).count();
            prop_assert_eq!(diff, 1);
        }
    }

    #[test]
    fn decoder_candidates_are_sorted_and_unique(seq in prop::collection::vec(0usize..6, 1..6)) {
        use std::sync::OnceLock;
        static D: OnceLock<WordDecoder> = OnceLock::new();
        let d = D.get_or_init(|| {
            WordDecoder::new(Dictionary::build(
                echowrite_corpus::Lexicon::embedded(),
                &InputScheme::paper(),
            ))
        });
        let strokes: Vec<Stroke> = seq.iter().map(|&i| Stroke::from_index(i).unwrap()).collect();
        let cands = d.decode(&strokes);
        prop_assert!(cands.len() <= 5);
        for w in cands.windows(2) {
            prop_assert!(w[0].posterior >= w[1].posterior);
        }
        let mut words: Vec<&str> = cands.iter().map(|c| c.word.as_str()).collect();
        words.sort_unstable();
        words.dedup();
        prop_assert_eq!(words.len(), cands.len());
        // Every candidate has the right length (substitution-only).
        for c in &cands {
            prop_assert_eq!(c.word.len(), strokes.len());
        }
    }

    // ---------- WAV ----------

    #[test]
    fn wav_roundtrip_within_quantization(samples in prop::collection::vec(-1.0f64..1.0, 1..400),
                                         rate in 8_000u32..96_000) {
        let mut buf = Vec::new();
        echowrite_dsp::wav::write_wav(&mut buf, &samples, rate).unwrap();
        let audio = echowrite_dsp::wav::read_wav(buf.as_slice()).unwrap();
        prop_assert_eq!(audio.sample_rate, rate);
        prop_assert_eq!(audio.samples.len(), samples.len());
        for (a, b) in audio.samples.iter().zip(&samples) {
            prop_assert!((a - b).abs() < 1.0 / 16_000.0);
        }
    }

    #[test]
    fn wav_never_panics_on_garbage(bytes in prop::collection::vec(any::<u8>(), 0..200)) {
        let _ = echowrite_dsp::wav::read_wav(bytes.as_slice());
    }

    // ---------- down-conversion ----------

    #[test]
    fn downconverter_is_linear(a in -1.0f64..1.0, seedish in 0u64..100) {
        use echowrite_dsp::downconvert::Downconverter;
        let dc = Downconverter::new(20_000.0, 44_100.0, 16, 33);
        let n = 1024;
        let f = 20_000.0 + (seedish as f64 - 50.0);
        let x: Vec<f64> = (0..n)
            .map(|i| (std::f64::consts::TAU * f * i as f64 / 44_100.0).sin())
            .collect();
        let scaled: Vec<f64> = x.iter().map(|v| a * v).collect();
        let y1 = dc.process(&x);
        let y2 = dc.process(&scaled);
        for (u, v) in y1.iter().zip(&y2) {
            prop_assert!((u.scale(a) - *v).norm() < 1e-9);
        }
    }

    // ---------- digits ----------

    #[test]
    fn digit_ranked_decode_is_total_and_sorted(seq in prop::collection::vec(0usize..6, 0..5),
                                               p in 0.5f64..0.99) {
        use echowrite_gesture::digits::DigitScheme;
        let strokes: Vec<Stroke> = seq.iter().map(|&i| Stroke::from_index(i).unwrap()).collect();
        let ranked = DigitScheme::standard().decode_ranked(&strokes, p);
        prop_assert_eq!(ranked.len(), 10);
        let mut digits: Vec<u8> = ranked.iter().map(|r| r.0).collect();
        digits.sort_unstable();
        prop_assert_eq!(digits, (0..10u8).collect::<Vec<_>>());
        for w in ranked.windows(2) {
            prop_assert!(w[0].1 >= w[1].1);
        }
    }

    // ---------- metrics ----------

    #[test]
    fn msd_error_rate_bounded(a in prop::collection::vec("[a-z]{1,6}", 0..8),
                              b in prop::collection::vec("[a-z]{1,6}", 0..8)) {
        use echowrite_sim::metrics::msd_error_rate;
        let av: Vec<&str> = a.iter().map(|s| s.as_str()).collect();
        let bv: Vec<&str> = b.iter().map(|s| s.as_str()).collect();
        let r = msd_error_rate(&av, &bv);
        prop_assert!((0.0..=1.0).contains(&r));
        // Identity and symmetry.
        prop_assert_eq!(msd_error_rate(&av, &av), 0.0);
        prop_assert!((msd_error_rate(&av, &bv) - msd_error_rate(&bv, &av)).abs() < 1e-12);
    }

    // ---------- segmentation ----------

    #[test]
    fn segments_are_ordered_disjoint_and_in_bounds(
        bumps in prop::collection::vec((10usize..150, 20.0f64..120.0), 0..4)
    ) {
        let mut shifts = vec![0.0; 220];
        for (i, &(at, peak)) in bumps.iter().enumerate() {
            let at = at + i * 20; // keep bumps from fully overlapping
            for k in 0..14usize {
                if at + k < shifts.len() {
                    let tau = k as f64 / 13.0;
                    shifts[at + k] += peak * (std::f64::consts::PI * tau).sin();
                }
            }
        }
        let profile = DopplerProfile::new(shifts, 0.0232);
        let segs = Segmenter::new(SegmentConfig::paper()).segment(&profile);
        for w in segs.windows(2) {
            prop_assert!(w[0].end <= w[1].start, "overlap: {:?}", segs);
        }
        for s in &segs {
            prop_assert!(s.start < s.end);
            prop_assert!(s.end <= profile.len());
        }
    }

    // ---------- real-input FFT ----------

    #[test]
    fn realfft_matches_complex_fft_on_random_signals(
        values in prop::collection::vec(-10.0f64..10.0, 128)
    ) {
        let fast = RealFft::new(128).forward(&values);
        let reference = Fft::new(128).forward_real(&values);
        prop_assert_eq!(fast.len(), 65);
        for (k, (a, b)) in fast.iter().zip(&reference).enumerate() {
            prop_assert!((*a - *b).norm() <= 1e-9, "bin {}: {:?} vs {:?}", k, a, b);
        }
    }

    // ---------- pruned DTW ----------

    #[test]
    fn pruned_dtw_equals_exact_when_band_covers_everything(
        a in small_signal(),
        b in small_signal(),
        normalize in any::<bool>()
    ) {
        let full = DtwConfig { band: None, normalize };
        let covering = DtwConfig { band: Some(a.len().max(b.len())), normalize };
        let exact = dtw_distance(&a, &b, full);
        // A band at least max(n, m) wide constrains nothing, and without an
        // abandon threshold the rolling kernel must reproduce the exact
        // distance bit for bit.
        let pruned = dtw_distance_pruned(&a, &b, covering, None);
        prop_assert_eq!(pruned, Some(exact));
        // An abandon threshold strictly above the answer must not fire…
        prop_assert_eq!(
            dtw_distance_pruned(&a, &b, covering, Some(exact + 1.0)),
            Some(exact)
        );
        // …and abandoning is conservative: with any threshold the kernel
        // either abandons or still reports the exact distance — never a
        // wrong number.
        let tight = dtw_distance_pruned(&a, &b, covering, Some(exact * 0.5));
        prop_assert!(tight.is_none() || tight == Some(exact), "tight = {:?}", tight);
    }
}

// ---------- frame-parallel analysis ----------

/// The frame-parallel front-end must be bitwise identical to the serial
/// reference: workers fill disjoint frame-major chunks and everything
/// downstream of the transpose is single-threaded, so any worker count
/// yields the same `Analysis`.
#[test]
fn parallel_analyze_is_identical_to_serial() {
    use echowrite::{EchoWriteConfig, Parallelism, Pipeline};
    use echowrite_gesture::{Writer, WriterParams};
    use echowrite_synth::{DeviceProfile, EnvironmentProfile, Scene};

    let base = EchoWriteConfig::downsampled(16);
    let mut serial_cfg = base.clone();
    serial_cfg.parallelism = Parallelism::Threads(1);
    let serial = Pipeline::new(serial_cfg);

    for seed in 0..8u64 {
        let stroke = Stroke::from_index(seed as usize % 6).unwrap();
        let perf = Writer::new(WriterParams::nominal(), seed).write_stroke(stroke);
        let audio = Scene::new(
            DeviceProfile::mate9(),
            EnvironmentProfile::meeting_room(),
            seed,
        )
        .render(&perf.trajectory);

        let reference = serial.analyze(&audio);
        for workers in [2, 5] {
            let mut cfg = base.clone();
            cfg.parallelism = Parallelism::Threads(workers);
            let parallel = Pipeline::new(cfg).analyze(&audio);
            assert_eq!(parallel.binary, reference.binary, "seed {seed} workers {workers}");
            assert_eq!(parallel.profile, reference.profile, "seed {seed} workers {workers}");
            assert_eq!(parallel.segments, reference.segments, "seed {seed} workers {workers}");
        }
    }
}
