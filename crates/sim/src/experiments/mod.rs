//! One runner per paper figure/table.
//!
//! Every runner takes a [`Scale`] so tests can run reduced repetitions
//! while the `repro` binary and benches run the paper-scale protocol, and
//! returns typed results that the integration tests assert *shape*
//! properties on (orderings, ranges, crossovers) rather than parsing text.

pub mod ablations;
pub mod entry;
pub mod learnability;
pub mod strokes;
pub mod system;
pub mod words;

use crate::report::Table;

/// Repetition scale of an experiment run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scale {
    /// Repetitions per condition (paper: 30).
    pub reps: usize,
    /// Base RNG seed.
    pub seed: u64,
}

impl Scale {
    /// The paper's protocol scale (30 repetitions per condition).
    pub fn full() -> Self {
        Scale { reps: 30, seed: 2019 }
    }

    /// A fast scale for unit/integration tests.
    pub fn quick() -> Self {
        Scale { reps: 3, seed: 2019 }
    }

    /// A mid scale for benches.
    pub fn medium() -> Self {
        Scale { reps: 10, seed: 2019 }
    }
}

/// Runs the experiment(s) selected by name (`fig4` … `fig21`, `table1`,
/// or `all`) and prints their tables to stdout.
///
/// Unknown names print the list of available experiments.
pub fn run_by_name(name: &str) {
    let scale = Scale::full();
    let tables: Vec<Table> = match name {
        "fig4" => vec![learnability::fig4(scale)],
        "fig5" => vec![learnability::fig5(scale)],
        "fig6" => vec![learnability::fig6(scale)],
        "table1" => vec![words::table1()],
        "fig9" => vec![strokes::fig9()],
        "fig10" => vec![strokes::fig10(scale)],
        "fig11" => vec![strokes::fig11(scale)],
        "fig12" => vec![strokes::fig12(scale)],
        "fig13" => vec![strokes::fig13(scale)],
        "fig14" => vec![words::fig14(scale)],
        "fig15" => vec![words::fig15(scale)],
        "fig16" => vec![entry::fig16(scale)],
        "fig17" => vec![entry::fig17(scale)],
        "fig18" => vec![entry::fig18(scale)],
        "fig19" => vec![system::fig19(scale)],
        "fig20" => vec![system::fig20()],
        "fig21" => vec![system::fig21(scale)],
        "ablations" => vec![
            ablations::ablation_frontend(scale),
            ablations::ablation_burst(scale),
            ablations::ablation_topk(scale),
            ablations::ablation_full_edit(scale),
        ],
        "all" => {
            let mut all = vec![
                learnability::fig4(scale),
                learnability::fig5(scale),
                learnability::fig6(scale),
                words::table1(),
                strokes::fig9(),
                strokes::fig10(scale),
                strokes::fig11(scale),
                strokes::fig12(scale),
                strokes::fig13(scale),
                words::fig14(scale),
                words::fig15(scale),
                entry::fig16(scale),
                entry::fig17(scale),
                entry::fig18(scale),
                system::fig19(scale),
                system::fig20(),
                system::fig21(scale),
            ];
            all.shrink_to_fit();
            all
        }
        other => {
            eprintln!(
                "unknown experiment {other:?}; available: fig4 fig5 fig6 table1 fig9 fig10 \
                 fig11 fig12 fig13 fig14 fig15 fig16 fig17 fig18 fig19 fig20 fig21 ablations all"
            );
            return;
        }
    };
    for t in tables {
        println!("{t}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales() {
        assert_eq!(Scale::full().reps, 30);
        assert!(Scale::quick().reps < Scale::medium().reps);
        assert!(Scale::medium().reps < Scale::full().reps);
    }

    #[test]
    fn unknown_name_does_not_panic() {
        run_by_name("not-an-experiment");
    }
}
