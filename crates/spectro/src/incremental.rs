//! Column-at-a-time enhancement for the incremental streaming path.
//!
//! [`IncrementalEnhancer`] consumes raw ROI spectrogram columns one at a
//! time and emits finished binary columns as soon as they can no longer
//! change, producing output bitwise identical to running the offline
//! [`Enhancer::enhance`](crate::Enhancer::enhance) chain over the whole
//! session at once. Per-stage finality:
//!
//! - **median 3×3** — column `m` is an order statistic of a clamped window;
//!   final once raw column `m+1` exists (the last column clamps at finish).
//! - **background** — the per-row mean of the first `static_frames` median
//!   columns; frozen as soon as those columns are final, after which
//!   subtraction and the α threshold are pointwise.
//! - **Gaussian 5×5** — separable; the horizontal pass needs two columns of
//!   lookahead, the vertical pass is column-local.
//! - **binarization** — requires [`Normalization::FixedScale`]: the paper's
//!   global-max normalization is non-causal, so the streaming configuration
//!   trades it for a calibrated constant full-scale (see
//!   [`EnhanceConfig::streaming`]).
//! - **hole filling** — incremental union-find over per-column runs of
//!   background pixels. Border contact is monotone (once a region touches
//!   the border it stays unfillable) and regions are decided the moment
//!   they close (no run in the newest column), so columns are emitted in
//!   order with bounded delay: a column waits only while a hole spanning it
//!   is still open.

use crate::enhance::{EnhanceConfig, Normalization};
use crate::spectrogram::Spectrogram;
use echowrite_dsp::filters::gaussian_kernel;
use std::collections::VecDeque;

/// Streaming counterpart of [`Enhancer`](crate::Enhancer): push raw ROI
/// columns, receive finished binary columns, batch-equivalent bitwise.
///
/// # Example
///
/// ```
/// use echowrite_spectro::{EnhanceConfig, IncrementalEnhancer};
/// let mut inc = IncrementalEnhancer::new(EnhanceConfig::streaming(), 16);
/// let mut got = Vec::new();
/// inc.push_column(&vec![1.0; 16], &mut |_, col| got.push(col.to_vec()));
/// inc.finish(&mut |_, col| got.push(col.to_vec()));
/// assert_eq!(got.len(), 1);
/// ```
#[derive(Debug)]
pub struct IncrementalEnhancer {
    cfg: EnhanceConfig,
    rows: usize,
    /// Effective binarization threshold on raw smoothed magnitudes.
    binarize_at: f64,
    kernel: Vec<f64>,
    ghalf: usize,
    mhalf: usize,
    /// Raw columns retained for the median window.
    raw: ColStore,
    /// Raw columns received.
    raw_n: usize,
    /// Median columns finalized.
    med_n: usize,
    /// Median columns buffered until the background freezes.
    pre_bg: Vec<Vec<f64>>,
    background: Option<Vec<f64>>,
    /// Subtracted+thresholded columns retained for the Gaussian window.
    thr: ColStore,
    thr_n: usize,
    /// Columns fully smoothed, binarized, and handed to hole filling.
    h_n: usize,
    holes: HoleFiller,
    med_window: Vec<f64>,
    finished: bool,
}

impl IncrementalEnhancer {
    /// Creates an incremental enhancer for columns of `rows` bins.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails validation, uses
    /// [`Normalization::GlobalZeroOne`] (non-causal), or enables burst
    /// suppression (not yet streamable), or if `rows` is zero.
    pub fn new(cfg: EnhanceConfig, rows: usize) -> Self {
        if let Err(msg) = cfg.validate() {
            // echolint: allow(no-panic-path) -- documented `# Panics` contract of IncrementalEnhancer::new
            panic!("invalid enhancement config: {msg}");
        }
        assert!(rows > 0, "columns need at least one row");
        let scale = match cfg.normalization {
            Normalization::FixedScale(s) => s,
            Normalization::GlobalZeroOne => {
                // echolint: allow(no-panic-path) -- documented `# Panics` contract of IncrementalEnhancer::new
                panic!("incremental enhancement requires Normalization::FixedScale")
            }
        };
        assert!(
            cfg.burst_suppression.is_none(),
            "incremental enhancement does not support burst suppression"
        );
        let kernel = gaussian_kernel(cfg.gaussian_size, None);
        let ghalf = kernel.len() / 2;
        let mhalf = cfg.median_size / 2;
        IncrementalEnhancer {
            binarize_at: cfg.binarize_threshold * scale,
            rows,
            kernel,
            ghalf,
            mhalf,
            raw: ColStore::default(),
            raw_n: 0,
            med_n: 0,
            pre_bg: Vec::new(),
            background: None,
            thr: ColStore::default(),
            thr_n: 0,
            h_n: 0,
            holes: HoleFiller::new(rows),
            med_window: vec![0.0; cfg.median_size * cfg.median_size],
            cfg,
            finished: false,
        }
    }

    /// Raw columns received so far.
    pub fn columns_in(&self) -> usize {
        self.raw_n
    }

    /// Whether the static background has been frozen (the lead-in has
    /// completed or a warm reset carried one over).
    pub fn background_frozen(&self) -> bool {
        self.background.is_some()
    }

    /// Restores the enhancer to its fresh state in place, reusing every
    /// allocation. The next session re-estimates the static background from
    /// its own opening frames.
    pub fn reset(&mut self) {
        self.background = None;
        self.reset_keeping_background();
    }

    /// Like [`IncrementalEnhancer::reset`], but retains the frozen static
    /// background so the next session skips the `static_frames` lead-in:
    /// its opening columns are subtracted against the carried-over
    /// background immediately instead of being buffered for estimation.
    pub fn reset_keeping_background(&mut self) {
        self.raw.clear();
        self.raw_n = 0;
        self.med_n = 0;
        self.pre_bg.clear();
        self.thr.clear();
        self.thr_n = 0;
        self.h_n = 0;
        self.holes.reset();
        self.finished = false;
    }

    /// Binary columns emitted so far.
    pub fn columns_out(&self) -> usize {
        self.holes.next_emit
    }

    /// Appends one raw ROI column; `sink` receives `(column_index, binary
    /// column)` for every output column that became final.
    ///
    /// # Panics
    ///
    /// Panics if `raw.len() != rows` or the enhancer is already finished.
    pub fn push_column(&mut self, raw: &[f64], sink: &mut impl FnMut(usize, &[f64])) {
        assert!(!self.finished, "push_column after finish");
        assert_eq!(raw.len(), self.rows, "column length mismatch");
        let mut col = Vec::with_capacity(self.rows);
        col.extend_from_slice(raw);
        self.raw.push(col);
        self.raw_n += 1;
        let (frozen_before, out_before) = (self.background.is_some(), self.columns_out());
        self.advance(None, sink);
        if echowrite_trace::enabled() {
            use echowrite_trace::{SmallStr, Stage, TICK_UNSET};
            if !frozen_before && self.background.is_some() {
                echowrite_trace::instant(
                    Stage::Enhance,
                    "background_frozen",
                    TICK_UNSET,
                    SmallStr::empty(),
                );
            }
            echowrite_trace::counter(
                Stage::Enhance,
                "columns_out",
                TICK_UNSET,
                (self.columns_out() - out_before) as f64,
            );
        }
    }

    /// Ends the session: flushes edge-clamped columns and closes every open
    /// hole region. Output columns emitted before and during `finish`
    /// concatenate to exactly the offline enhancement of the whole session.
    pub fn finish(&mut self, sink: &mut impl FnMut(usize, &[f64])) {
        if self.finished {
            return;
        }
        self.finished = true;
        if self.raw_n == 0 {
            return;
        }
        self.advance(Some(self.raw_n), sink);
        self.holes.finish(sink);
    }

    /// Runs every stage as far as finality allows; `total` is the session
    /// column count once known (at finish).
    fn advance(&mut self, total: Option<usize>, sink: &mut impl FnMut(usize, &[f64])) {
        // Stage 1: median columns, then background freeze + subtraction + α.
        loop {
            let m = self.med_n;
            let computable = match total {
                Some(t) => m < t,
                // Column m clamps columns up to m + mhalf; final once the
                // window's rightmost real column exists.
                None => m + self.mhalf < self.raw_n,
            };
            if !computable {
                break;
            }
            let col = self.median_column(m, total);
            self.med_n += 1;
            self.raw.trim_to(self.med_n.saturating_sub(self.mhalf));
            if self.background.is_some() {
                self.accept_median(col);
            } else {
                self.pre_bg.push(col);
                let freeze = self.pre_bg.len() == self.cfg.static_frames
                    || total == Some(self.med_n);
                if freeze {
                    self.freeze_background();
                }
            }
        }
        // Stage 2: Gaussian smoothing (two-column lookahead), binarization,
        // and incremental hole filling.
        loop {
            let c = self.h_n;
            let computable = match total {
                Some(t) => c < t,
                None => c + self.ghalf < self.thr_n,
            };
            if !computable {
                break;
            }
            let col = self.smooth_binarize_column(c, total);
            self.h_n += 1;
            self.thr.trim_to(self.h_n.saturating_sub(self.ghalf));
            self.holes.push_column(col, sink);
        }
    }

    /// Order-statistic median of the clamped window centred on column `m`,
    /// identical to [`crate::image::median_filter_2d`].
    fn median_column(&mut self, m: usize, total: Option<usize>) -> Vec<f64> {
        let size = self.cfg.median_size;
        let mid = (size * size) / 2;
        let hi_col = match total {
            Some(t) => t - 1,
            None => self.raw_n - 1,
        };
        let mut out = Vec::with_capacity(self.rows);
        for r in 0..self.rows {
            let mut n = 0;
            for dr in -(self.mhalf as isize)..=self.mhalf as isize {
                let rr = (r as isize + dr).clamp(0, self.rows as isize - 1) as usize;
                for dc in -(self.mhalf as isize)..=self.mhalf as isize {
                    let cc = (m as isize + dc).clamp(0, hi_col as isize) as usize;
                    self.med_window[n] = self.raw.get(cc)[rr];
                    n += 1;
                }
            }
            let (_, v, _) = self.med_window.select_nth_unstable_by(mid, |a, b| a.total_cmp(b));
            out.push(*v);
        }
        out
    }

    /// Freezes the background as the per-row mean (ascending column order,
    /// matching `row[..n].iter().sum()`) of the buffered median columns,
    /// then flushes them through subtraction and the α threshold.
    fn freeze_background(&mut self) {
        let n = self.pre_bg.len();
        debug_assert!(n > 0);
        let mut bg = Vec::with_capacity(self.rows);
        for r in 0..self.rows {
            let mut sum = 0.0;
            for col in &self.pre_bg {
                sum += col[r];
            }
            bg.push(sum / n as f64);
        }
        self.background = Some(bg);
        let buffered = std::mem::take(&mut self.pre_bg);
        for col in buffered {
            self.accept_median(col);
        }
    }

    /// Background subtraction (clamped at zero) plus the α threshold,
    /// pointwise as in the offline chain.
    fn accept_median(&mut self, mut col: Vec<f64>) {
        debug_assert!(self.background.is_some());
        if let Some(bg) = &self.background {
            echowrite_dsp::kernels::subtract_clamp_bg(&mut col, bg);
            echowrite_dsp::kernels::threshold_zero(&mut col, self.cfg.alpha);
        }
        self.thr.push(col);
        self.thr_n += 1;
    }

    /// Horizontal then vertical Gaussian pass for column `c` (accumulation
    /// order identical to [`crate::image::gaussian_filter_2d_in_place`]),
    /// then fixed-scale binarization.
    fn smooth_binarize_column(&mut self, c: usize, total: Option<usize>) -> Vec<f64> {
        let half = self.ghalf as isize;
        let hi_col = total.map(|t| t as isize - 1);
        // Horizontal pass as one axpy per tap: each element accumulates its
        // taps in ascending k from zero, exactly like the scalar per-row loop
        // (and the offline pass), so the result is bitwise identical.
        let mut hcol = vec![0.0; self.rows];
        for (k, &kv) in self.kernel.iter().enumerate() {
            let mut cc = (c as isize + k as isize - half).max(0);
            if let Some(hi) = hi_col {
                cc = cc.min(hi);
            }
            echowrite_dsp::kernels::axpy(&mut hcol, self.thr.get(cc as usize), kv);
        }
        // Vertical pass: clamped convolution down the column, then the
        // fixed-scale binarization, both SIMD-dispatched.
        let mut out = vec![0.0; self.rows];
        echowrite_dsp::kernels::conv1d_clamped_into(&mut out, &hcol, &self.kernel);
        echowrite_dsp::kernels::binarize(&mut out, self.binarize_at);
        out
    }

    /// Captures the dynamic state of this enhancer, detached from its
    /// config-derived plan (kernel, thresholds, scratch). Paired with an
    /// identically configured enhancer via
    /// [`IncrementalEnhancer::restore_state`], further pushes emit bitwise
    /// the same columns an uninterrupted enhancer would.
    pub fn export_state(&self) -> EnhancerState {
        EnhancerState {
            raw_base: self.raw.base,
            raw_cols: self.raw.cols.iter().cloned().collect(),
            raw_n: self.raw_n,
            med_n: self.med_n,
            pre_bg: self.pre_bg.clone(),
            background: self.background.clone(),
            thr_base: self.thr.base,
            thr_cols: self.thr.cols.iter().cloned().collect(),
            thr_n: self.thr_n,
            h_n: self.h_n,
            holes: self.holes.export_state(),
            finished: self.finished,
        }
    }

    /// Overwrites this enhancer's dynamic state with a previously exported
    /// one, validating every internal invariant first so a corrupted or
    /// hand-built state is rejected with an error instead of panicking (or
    /// looping) later. The enhancer must have been built with the same
    /// config and row count the state was exported under.
    pub fn restore_state(&mut self, state: &EnhancerState) -> Result<(), &'static str> {
        let rows = self.rows;
        let col_ok = |cols: &[Vec<f64>]| cols.iter().all(|c| c.len() == rows);
        if !col_ok(&state.raw_cols) || !col_ok(&state.pre_bg) || !col_ok(&state.thr_cols) {
            return Err("enhancer state: column length differs from row count");
        }
        if let Some(bg) = &state.background {
            if bg.len() != rows {
                return Err("enhancer state: background length differs from row count");
            }
            if !state.pre_bg.is_empty() {
                return Err("enhancer state: frozen background with buffered lead-in");
            }
        } else {
            if state.thr_n != 0 || state.h_n != 0 {
                return Err("enhancer state: thresholded columns before background froze");
            }
            if state.pre_bg.len() >= self.cfg.static_frames {
                return Err("enhancer state: lead-in buffer at or past the freeze point");
            }
        }
        if state.raw_base + state.raw_cols.len() != state.raw_n
            || state.med_n > state.raw_n
            || state.raw_base > state.med_n.saturating_sub(self.mhalf)
        {
            return Err("enhancer state: inconsistent raw column window");
        }
        if state.thr_base + state.thr_cols.len() != state.thr_n
            || state.h_n > state.thr_n
            || state.thr_base > state.h_n.saturating_sub(self.ghalf)
        {
            return Err("enhancer state: inconsistent thresholded column window");
        }
        if state.h_n != state.holes.pushed {
            return Err("enhancer state: hole-filler input count mismatch");
        }
        self.holes.restore_state(&state.holes, rows)?;
        self.raw.restore(state.raw_base, &state.raw_cols);
        self.raw_n = state.raw_n;
        self.med_n = state.med_n;
        self.pre_bg = state.pre_bg.clone();
        self.background = state.background.clone();
        self.thr.restore(state.thr_base, &state.thr_cols);
        self.thr_n = state.thr_n;
        self.h_n = state.h_n;
        self.finished = state.finished;
        Ok(())
    }
}

/// Plan-independent dynamic state of an [`IncrementalEnhancer`]: retained
/// column windows with their absolute base offsets, the (possibly frozen)
/// static background, per-stage column counters, and the hole filler's
/// union-find arena, captured verbatim so a restored enhancer replays
/// bitwise. Config-derived fields (kernel, thresholds, scratch) are absent
/// and rebuilt from the receiving enhancer's configuration.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct EnhancerState {
    /// Absolute index of the first retained raw column.
    pub raw_base: usize,
    /// Raw columns retained for the median window.
    pub raw_cols: Vec<Vec<f64>>,
    /// Raw columns received.
    pub raw_n: usize,
    /// Median columns finalized.
    pub med_n: usize,
    /// Median columns buffered until the background freezes.
    pub pre_bg: Vec<Vec<f64>>,
    /// The frozen per-row static background, once estimated.
    pub background: Option<Vec<f64>>,
    /// Absolute index of the first retained thresholded column.
    pub thr_base: usize,
    /// Subtracted + thresholded columns retained for the Gaussian window.
    pub thr_cols: Vec<Vec<f64>>,
    /// Thresholded columns produced.
    pub thr_n: usize,
    /// Columns handed to hole filling.
    pub h_n: usize,
    /// Hole-filler union-find state.
    pub holes: HoleFillerState,
    /// Whether `finish` has run.
    pub finished: bool,
}

/// Background runs `(r0, r1, node)` of one spectrogram column.
pub type ColumnRuns = Vec<(usize, usize, usize)>;

/// An undecided column held back by the hole filler: its pixel data plus
/// its background runs.
pub type PendingColumn = (Vec<f64>, ColumnRuns);

/// Dynamic state of the incremental hole filler: the union-find arena
/// (captured verbatim — compaction only runs on push, so the arena shape is
/// part of the bitwise-replay contract), the newest column's runs, and the
/// undecided column queue.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct HoleFillerState {
    /// Union-find parent array (entries always point at equal or higher
    /// ids, so lookups terminate).
    pub parent: Vec<usize>,
    /// Root-indexed: component touches the border.
    pub border: Vec<bool>,
    /// Root-indexed: newest column holding one of the component's runs.
    pub last_col: Vec<usize>,
    /// Background runs `(r0, r1, node)` of the newest pushed column.
    pub frontier: ColumnRuns,
    /// Undecided columns awaiting emission, oldest first.
    pub pending: Vec<PendingColumn>,
    /// Columns pushed so far.
    pub pushed: usize,
    /// Next output column index.
    pub next_emit: usize,
}

/// Absolute-indexed window of retained columns.
#[derive(Debug, Default)]
struct ColStore {
    base: usize,
    cols: VecDeque<Vec<f64>>,
}

impl ColStore {
    fn push(&mut self, col: Vec<f64>) {
        self.cols.push_back(col);
    }

    fn get(&self, i: usize) -> &[f64] {
        &self.cols[i - self.base]
    }

    fn trim_to(&mut self, lo: usize) {
        while self.base < lo && !self.cols.is_empty() {
            self.cols.pop_front();
            self.base += 1;
        }
    }

    fn clear(&mut self) {
        self.cols.clear();
        self.base = 0;
    }

    fn restore(&mut self, base: usize, cols: &[Vec<f64>]) {
        self.cols.clear();
        self.cols.extend(cols.iter().cloned());
        self.base = base;
    }
}

/// Incremental hole filling: union-find over per-column background runs.
///
/// Equivalent to [`crate::image::fill_holes_in_place`]: a background pixel
/// is filled iff its 4-connected background component never touches the
/// image border. Components are decided as soon as they either touch the
/// border (decision "keep 0", monotone) or close (no run in the newest
/// column — nothing later can reconnect, decision "fill"). Finished columns
/// are emitted strictly in order.
#[derive(Debug)]
struct HoleFiller {
    rows: usize,
    parent: Vec<usize>,
    /// Root-indexed: component touches the border.
    border: Vec<bool>,
    /// Root-indexed: newest column holding one of the component's runs.
    last_col: Vec<usize>,
    /// Background runs `(r0, r1, node)` of the newest pushed column.
    frontier: Vec<(usize, usize, usize)>,
    pending: VecDeque<PendingCol>,
    pushed: usize,
    next_emit: usize,
}

#[derive(Debug)]
struct PendingCol {
    data: Vec<f64>,
    runs: Vec<(usize, usize, usize)>,
}

impl HoleFiller {
    fn new(rows: usize) -> Self {
        HoleFiller {
            rows,
            parent: Vec::new(),
            border: Vec::new(),
            last_col: Vec::new(),
            frontier: Vec::new(),
            pending: VecDeque::new(),
            pushed: 0,
            next_emit: 0,
        }
    }

    /// Clears every component and pending column, reusing the allocations.
    fn reset(&mut self) {
        self.parent.clear();
        self.border.clear();
        self.last_col.clear();
        self.frontier.clear();
        self.pending.clear();
        self.pushed = 0;
        self.next_emit = 0;
    }

    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    fn union(&mut self, a: usize, b: usize) {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra == rb {
            return;
        }
        self.parent[rb] = ra;
        self.border[ra] |= self.border[rb];
        self.last_col[ra] = self.last_col[ra].max(self.last_col[rb]);
    }

    fn new_node(&mut self, col: usize, border: bool) -> usize {
        let id = self.parent.len();
        self.parent.push(id);
        self.border.push(border);
        self.last_col.push(col);
        id
    }

    fn push_column(&mut self, data: Vec<f64>, sink: &mut impl FnMut(usize, &[f64])) {
        let c = self.pushed;
        self.pushed += 1;
        let mut runs: Vec<(usize, usize, usize)> = Vec::new();
        let mut r = 0;
        while r < self.rows {
            if data[r] == 0.0 {
                let r0 = r;
                while r + 1 < self.rows && data[r + 1] == 0.0 {
                    r += 1;
                }
                let r1 = r;
                let touches_border = r0 == 0 || r1 == self.rows - 1 || c == 0;
                let node = self.new_node(c, touches_border);
                // 4-connectivity: union with row-overlapping runs of the
                // previous column.
                let prev = std::mem::take(&mut self.frontier);
                for &(p0, p1, pn) in &prev {
                    if p0 <= r1 && r0 <= p1 {
                        self.union(node, pn);
                        let root = self.find(node);
                        self.last_col[root] = c;
                    }
                }
                self.frontier = prev;
                runs.push((r0, r1, node));
            }
            r += 1;
        }
        self.frontier.clear();
        self.frontier.extend_from_slice(&runs);
        self.pending.push_back(PendingCol { data, runs });
        self.drain(false, sink);
        self.maybe_compact();
    }

    /// Emits pending columns from the front while every run in them is
    /// decided (border, or closed before the newest column).
    fn drain(&mut self, final_flush: bool, sink: &mut impl FnMut(usize, &[f64])) {
        loop {
            let newest = self.pushed.wrapping_sub(1);
            let runs: Vec<(usize, usize, usize)> = match self.pending.front() {
                None => break,
                Some(front) => front.runs.clone(),
            };
            let mut decided = true;
            for &(_, _, node) in &runs {
                let root = self.find(node);
                if !(self.border[root] || final_flush || self.last_col[root] < newest) {
                    decided = false;
                    break;
                }
            }
            if !decided {
                break;
            }
            if let Some(mut front) = self.pending.pop_front() {
                for &(r0, r1, node) in &front.runs {
                    let root = self.find(node);
                    if !self.border[root] {
                        for v in &mut front.data[r0..=r1] {
                            *v = 1.0;
                        }
                    }
                }
                sink(self.next_emit, &front.data);
                self.next_emit += 1;
            }
        }
    }

    /// Marks the final column's runs as border-connected (the right image
    /// edge) and flushes everything still pending.
    fn finish(&mut self, sink: &mut impl FnMut(usize, &[f64])) {
        let frontier = std::mem::take(&mut self.frontier);
        for &(_, _, node) in &frontier {
            let root = self.find(node);
            self.border[root] = true;
        }
        self.drain(true, sink);
        debug_assert!(self.pending.is_empty());
    }

    fn export_state(&self) -> HoleFillerState {
        HoleFillerState {
            parent: self.parent.clone(),
            border: self.border.clone(),
            last_col: self.last_col.clone(),
            frontier: self.frontier.clone(),
            pending: self
                .pending
                .iter()
                .map(|p| (p.data.clone(), p.runs.clone()))
                .collect(),
            pushed: self.pushed,
            next_emit: self.next_emit,
        }
    }

    /// Validating restore: rejects arenas whose parent pointers could make
    /// `find` loop or index out of bounds, runs outside `[0, rows)`, and
    /// column counters that disagree with the pending queue.
    fn restore_state(&mut self, state: &HoleFillerState, rows: usize) -> Result<(), &'static str> {
        let n = state.parent.len();
        if state.border.len() != n || state.last_col.len() != n {
            return Err("hole filler state: arena array lengths disagree");
        }
        // Live arenas only ever point at equal-or-higher ids (unions root
        // older components under the newest node), which is also exactly
        // what makes the path-halving `find` terminate.
        if state.parent.iter().enumerate().any(|(i, &p)| p < i || p >= n) {
            return Err("hole filler state: parent pointer out of range");
        }
        let runs_ok = |runs: &[(usize, usize, usize)]| {
            runs.iter().all(|&(r0, r1, node)| r0 <= r1 && r1 < rows && node < n)
        };
        if !runs_ok(&state.frontier) {
            return Err("hole filler state: frontier run out of range");
        }
        for (data, runs) in &state.pending {
            if data.len() != rows || !runs_ok(runs) {
                return Err("hole filler state: pending column out of range");
            }
        }
        if state.next_emit + state.pending.len() != state.pushed {
            return Err("hole filler state: column counters disagree");
        }
        self.parent = state.parent.clone();
        self.border = state.border.clone();
        self.last_col = state.last_col.clone();
        self.frontier = state.frontier.clone();
        self.pending.clear();
        self.pending.extend(
            state
                .pending
                .iter()
                .map(|(data, runs)| PendingCol { data: data.clone(), runs: runs.clone() }),
        );
        self.pushed = state.pushed;
        self.next_emit = state.next_emit;
        Ok(())
    }

    /// Rebuilds the union-find arena once nothing but the frontier is live,
    /// bounding memory over arbitrarily long sessions.
    fn maybe_compact(&mut self) {
        if !self.pending.is_empty() || self.parent.len() < 4096 {
            return;
        }
        let frontier = std::mem::take(&mut self.frontier);
        let mut roots: Vec<(usize, usize)> = Vec::new();
        let mut fresh: Vec<(usize, usize, usize)> = Vec::with_capacity(frontier.len());
        let mut parent = Vec::new();
        let mut border = Vec::new();
        let mut last_col = Vec::new();
        for &(r0, r1, node) in &frontier {
            let root = self.find(node);
            let id = match roots.iter().find(|&&(old, _)| old == root) {
                Some(&(_, id)) => id,
                None => {
                    let id = parent.len();
                    parent.push(id);
                    border.push(self.border[root]);
                    last_col.push(self.last_col[root]);
                    roots.push((root, id));
                    id
                }
            };
            fresh.push((r0, r1, id));
        }
        self.parent = parent;
        self.border = border;
        self.last_col = last_col;
        self.frontier = fresh;
    }
}

/// Convenience: runs a whole spectrogram through the incremental enhancer
/// and reassembles the result (testing / diagnostics; the streaming path
/// consumes columns directly).
pub fn enhance_incrementally(cfg: EnhanceConfig, spec: &Spectrogram) -> Spectrogram {
    let mut out = Spectrogram::zeros(spec.rows(), spec.cols());
    out.set_carrier_row(spec.carrier_row());
    if spec.cols() == 0 {
        return out;
    }
    let mut inc = IncrementalEnhancer::new(cfg, spec.rows());
    let mut cols: Vec<Vec<f64>> = Vec::new();
    let mut sink = |_idx: usize, col: &[f64]| cols.push(col.to_vec());
    for c in 0..spec.cols() {
        inc.push_column(&spec.column(c), &mut sink);
    }
    inc.finish(&mut sink);
    assert_eq!(cols.len(), spec.cols(), "incremental enhancer lost columns");
    for (c, col) in cols.iter().enumerate() {
        for (r, &v) in col.iter().enumerate() {
            out.set(r, c, v);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enhance::Enhancer;

    /// Synthetic ROI spectrogram with a carrier, noise floor, a stroke blob,
    /// and a deliberate enclosed hole after binarization.
    fn synthetic(rows: usize, cols: usize, seed: u64) -> Spectrogram {
        let mut s = Spectrogram::zeros(rows, cols);
        let cf = s.carrier_row();
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        for c in 0..cols {
            for r in 0..rows {
                s.set(r, c, next() * 2.0);
            }
            s.set(cf, c, 900.0);
            if c >= 8 && cols > 14 && c < cols - 4 {
                let k = (c - 8) as f64 / (cols - 12) as f64;
                let peak = cf + 3 + (10.0 * (std::f64::consts::PI * k).sin()) as usize;
                for r in cf + 1..=peak.min(rows - 1) {
                    // Carve a hole in the middle of the blob.
                    let v = if r == cf + 2 && (10..14).contains(&c) { 0.0 } else { 60.0 };
                    s.set(r, c, v);
                }
            }
        }
        s
    }

    fn assert_bitwise_equal(a: &Spectrogram, b: &Spectrogram, label: &str) {
        assert_eq!(a.rows(), b.rows(), "{label}: rows");
        assert_eq!(a.cols(), b.cols(), "{label}: cols");
        for c in 0..a.cols() {
            for r in 0..a.rows() {
                assert!(
                    a.get(r, c) == b.get(r, c),
                    "{label}: cell ({r}, {c}) diverges: {} vs {}",
                    a.get(r, c),
                    b.get(r, c)
                );
            }
        }
    }

    #[test]
    fn incremental_matches_batch_across_shapes() {
        let cfg = EnhanceConfig::streaming();
        let batch = Enhancer::new(cfg);
        for cols in [1usize, 2, 3, 4, 5, 6, 7, 8, 12, 40] {
            for rows in [9usize, 32] {
                let spec = synthetic(rows, cols, (rows * 100 + cols) as u64);
                let offline = batch.enhance(&spec);
                let streamed = enhance_incrementally(cfg, &spec);
                assert_bitwise_equal(&streamed, &offline, &format!("{rows}×{cols}"));
            }
        }
    }

    #[test]
    fn incremental_matches_batch_on_quiet_input() {
        let cfg = EnhanceConfig::streaming();
        let spec = Spectrogram::zeros(24, 30);
        let offline = Enhancer::new(cfg).enhance(&spec);
        let streamed = enhance_incrementally(cfg, &spec);
        assert_bitwise_equal(&streamed, &offline, "quiet");
    }

    #[test]
    fn holes_enclosed_across_many_columns_still_fill() {
        // A long horizontal tube: 1-borders above and below, open for many
        // columns, sealed at both ends — must fill exactly like the batch
        // flood fill, exercising the long-pending drain path.
        let rows = 11;
        let cols = 60;
        let mut spec = Spectrogram::zeros(rows, cols);
        for c in 4..50 {
            for r in 3..8 {
                spec.set(r, c, if (4..7).contains(&r) && (5..49).contains(&c) { 0.0 } else { 60.0 });
            }
        }
        // Feed pre-binarized data through the shared hole filler directly.
        let mut filler = HoleFiller::new(rows);
        let mut got: Vec<Vec<f64>> = Vec::new();
        for c in 0..cols {
            let col: Vec<f64> = (0..rows)
                .map(|r| if spec.get(r, c) > 0.0 { 1.0 } else { 0.0 })
                .collect();
            filler.push_column(col, &mut |_, col| got.push(col.to_vec()));
        }
        filler.finish(&mut |_, col| got.push(col.to_vec()));
        assert_eq!(got.len(), cols);
        let mut bin = Spectrogram::zeros(rows, cols);
        for (c, col) in got.iter().enumerate() {
            for (r, &v) in col.iter().enumerate() {
                bin.set(r, c, v);
            }
        }
        let mut reference = Spectrogram::zeros(rows, cols);
        for c in 0..cols {
            for r in 0..rows {
                reference.set(r, c, if spec.get(r, c) > 0.0 { 1.0 } else { 0.0 });
            }
        }
        let expected = crate::image::fill_holes(&reference);
        assert_bitwise_equal(&bin, &expected, "tube");
    }

    #[test]
    fn compaction_keeps_long_sessions_bounded_and_correct() {
        let rows = 9;
        let mut filler = HoleFiller::new(rows);
        let mut emitted = 0usize;
        // Alternate small blobs and quiet gaps for many columns; quiet
        // columns are border-connected, so pending drains and compaction
        // can run.
        for c in 0..30_000usize {
            let col: Vec<f64> = (0..rows)
                .map(|r| if c % 7 < 3 && (3..6).contains(&r) { 1.0 } else { 0.0 })
                .collect();
            filler.push_column(col, &mut |_, _| emitted += 1);
        }
        filler.finish(&mut |_, _| emitted += 1);
        assert_eq!(emitted, 30_000);
        assert!(
            filler.parent.len() < 10_000,
            "union-find arena grew to {}",
            filler.parent.len()
        );
    }

    #[test]
    fn reset_replays_bitwise_and_warm_reset_keeps_background() {
        let cfg = EnhanceConfig::streaming();
        let spec = synthetic(24, 30, 77);
        let fresh = enhance_incrementally(cfg, &spec);

        let mut inc = IncrementalEnhancer::new(cfg, spec.rows());
        let mut sink_null = |_: usize, _: &[f64]| {};
        for c in 0..spec.cols() {
            inc.push_column(&spec.column(c), &mut sink_null);
        }
        inc.finish(&mut sink_null);
        assert!(inc.background_frozen());

        // Cold reset: a second session through the same enhancer is bitwise
        // the fresh run.
        inc.reset();
        assert!(!inc.background_frozen());
        let mut cols: Vec<Vec<f64>> = Vec::new();
        let mut sink = |_: usize, col: &[f64]| cols.push(col.to_vec());
        for c in 0..spec.cols() {
            inc.push_column(&spec.column(c), &mut sink);
        }
        inc.finish(&mut sink);
        assert_eq!(cols.len(), fresh.cols());
        for (c, col) in cols.iter().enumerate() {
            for (r, &v) in col.iter().enumerate() {
                assert!(v == fresh.get(r, c), "cold reset diverges at ({r}, {c})");
            }
        }

        // Warm reset: the background survives, so the same audio replays
        // bitwise (the frozen estimate equals what a fresh lead-in computes).
        inc.reset_keeping_background();
        assert!(inc.background_frozen(), "warm reset must keep the background");
        let mut cols: Vec<Vec<f64>> = Vec::new();
        let mut sink = |_: usize, col: &[f64]| cols.push(col.to_vec());
        for c in 0..spec.cols() {
            inc.push_column(&spec.column(c), &mut sink);
        }
        inc.finish(&mut sink);
        assert_eq!(cols.len(), fresh.cols());
        for (c, col) in cols.iter().enumerate() {
            for (r, &v) in col.iter().enumerate() {
                assert!(v == fresh.get(r, c), "warm reset diverges at ({r}, {c})");
            }
        }
    }

    #[test]
    fn state_roundtrip_resumes_bitwise() {
        let cfg = EnhanceConfig::streaming();
        let spec = synthetic(24, 60, 99);
        let fresh = enhance_incrementally(cfg, &spec);

        // Suspend at points before and after the background freezes and
        // while holes are pending, restore into a fresh enhancer, finish:
        // the concatenated output must be bitwise the uninterrupted run.
        for cut in [1usize, 5, 12, 30, 55] {
            let mut first = IncrementalEnhancer::new(cfg, spec.rows());
            let mut cols: Vec<Vec<f64>> = Vec::new();
            let mut sink = |_: usize, col: &[f64]| cols.push(col.to_vec());
            for c in 0..cut {
                first.push_column(&spec.column(c), &mut sink);
            }
            let state = first.export_state();
            drop(first);
            let mut resumed = IncrementalEnhancer::new(cfg, spec.rows());
            resumed.restore_state(&state).expect("valid exported state");
            for c in cut..spec.cols() {
                resumed.push_column(&spec.column(c), &mut sink);
            }
            resumed.finish(&mut sink);
            assert_eq!(cols.len(), fresh.cols(), "cut {cut}");
            for (c, col) in cols.iter().enumerate() {
                for (r, &v) in col.iter().enumerate() {
                    assert!(v == fresh.get(r, c), "cut {cut} diverges at ({r}, {c})");
                }
            }
        }
    }

    #[test]
    fn restore_rejects_corrupt_state() {
        let cfg = EnhanceConfig::streaming();
        let spec = synthetic(24, 30, 7);
        let mut inc = IncrementalEnhancer::new(cfg, spec.rows());
        let mut sink = |_: usize, _: &[f64]| {};
        for c in 0..20 {
            inc.push_column(&spec.column(c), &mut sink);
        }
        let good = inc.export_state();
        let mut fresh = IncrementalEnhancer::new(cfg, spec.rows());
        assert!(fresh.restore_state(&good).is_ok());

        let mut bad = good.clone();
        bad.raw_cols[0].pop();
        assert!(fresh.restore_state(&bad).is_err(), "short column accepted");

        let mut bad = good.clone();
        bad.med_n = bad.raw_n + 1;
        assert!(fresh.restore_state(&bad).is_err(), "counter overrun accepted");

        let mut bad = good.clone();
        if !bad.holes.parent.is_empty() {
            bad.holes.parent[0] = usize::MAX;
            assert!(fresh.restore_state(&bad).is_err(), "wild parent accepted");
        }

        let mut bad = good;
        bad.holes.pushed += 1;
        assert!(fresh.restore_state(&bad).is_err(), "queue mismatch accepted");
    }

    #[test]
    #[should_panic(expected = "requires Normalization::FixedScale")]
    fn rejects_global_normalization() {
        IncrementalEnhancer::new(EnhanceConfig::paper(), 8);
    }

    #[test]
    #[should_panic(expected = "burst suppression")]
    fn rejects_burst_suppression() {
        let cfg = EnhanceConfig {
            burst_suppression: Some(crate::burst::BurstConfig::nominal()),
            ..EnhanceConfig::streaming()
        };
        IncrementalEnhancer::new(cfg, 8);
    }
}
