//! Scene composition: device + room + finger motion → microphone samples.

use crate::device::DeviceProfile;
use crate::environment::EnvironmentProfile;
use crate::noise::{add_awgn, add_transients, TransientKind};
use crate::scatter::{MovingScatterer, StaticPath};
use echowrite_gesture::{Trajectory, Vec3};
use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Reflectivity model of the writer's body parts.
///
/// The finger is the intended reflector; the hand and forearm shadow its
/// motion with reduced displacement (hence lower Doppler shift) but larger
/// radar cross-section — the low-shift clutter the paper's MVCE contour
/// extraction must see through (Sec. III-B).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BodyModel {
    /// Finger echo reflectivity.
    pub finger_reflectivity: f64,
    /// Hand displacement scale relative to the finger (0–1).
    pub hand_scale: f64,
    /// Hand echo reflectivity.
    pub hand_reflectivity: f64,
    /// Forearm displacement scale relative to the finger (0–1).
    pub arm_scale: f64,
    /// Forearm echo reflectivity.
    pub arm_reflectivity: f64,
    /// Anchor (wrist/elbow region) offset from the device, metres.
    pub anchor: Vec3,
}

impl BodyModel {
    /// Nominal adult-hand model.
    pub fn nominal() -> Self {
        BodyModel {
            finger_reflectivity: 0.030,
            hand_scale: 0.45,
            hand_reflectivity: 0.055,
            arm_scale: 0.12,
            arm_reflectivity: 0.040,
            anchor: Vec3::new(0.02, -0.06, 0.26),
        }
    }

    /// Only the finger, no hand/arm clutter (for isolating tests).
    pub fn finger_only() -> Self {
        BodyModel {
            hand_reflectivity: 0.0,
            arm_reflectivity: 0.0,
            ..BodyModel::nominal()
        }
    }
}

impl Default for BodyModel {
    fn default() -> Self {
        BodyModel::nominal()
    }
}

/// A complete acoustic scene that renders finger trajectories into the
/// microphone sample stream.
///
/// Rendering is deterministic for a given `(scene seed, trial seed)` pair.
///
/// # Example
///
/// ```
/// use echowrite_gesture::{Writer, WriterParams, Stroke};
/// use echowrite_synth::{Scene, DeviceProfile, EnvironmentProfile};
///
/// let perf = Writer::new(WriterParams::nominal(), 3).write_stroke(Stroke::S1);
/// let scene = Scene::new(DeviceProfile::mate9(), EnvironmentProfile::lab_area(), 42);
/// let a = scene.render(&perf.trajectory);
/// let b = scene.render(&perf.trajectory);
/// assert_eq!(a, b);
/// ```
#[derive(Debug, Clone)]
pub struct Scene {
    device: DeviceProfile,
    environment: EnvironmentProfile,
    body: BodyModel,
    seed: u64,
}

impl Scene {
    /// Creates a scene with the nominal body model.
    ///
    /// # Panics
    ///
    /// Panics if the device profile fails validation.
    pub fn new(device: DeviceProfile, environment: EnvironmentProfile, seed: u64) -> Self {
        if let Err(msg) = device.validate() {
            panic!("invalid device profile: {msg}");
        }
        Scene { device, environment, body: BodyModel::nominal(), seed }
    }

    /// Replaces the body model.
    pub fn with_body(mut self, body: BodyModel) -> Self {
        self.body = body;
        self
    }

    /// The device profile in use.
    pub fn device(&self) -> &DeviceProfile {
        &self.device
    }

    /// The environment profile in use.
    pub fn environment(&self) -> &EnvironmentProfile {
        &self.environment
    }

    /// Renders the scene for `trajectory` using the scene's own seed.
    pub fn render(&self, trajectory: &Trajectory) -> Vec<f64> {
        self.render_seeded(trajectory, self.seed)
    }

    /// Renders the scene with an explicit trial seed (Monte-Carlo runs vary
    /// this while keeping the scene fixed).
    pub fn render_seeded(&self, trajectory: &Trajectory, trial_seed: u64) -> Vec<f64> {
        let tone = &self.device.tone;
        let n = (trajectory.duration() * tone.sample_rate).round() as usize;
        let mut out = vec![0.0; n];
        if n == 0 {
            return out;
        }
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed.wrapping_mul(0x9E37_79B9).wrapping_add(trial_seed));

        // 1. Direct speaker→mic leakage.
        StaticPath {
            length: self.device.speaker_pos.distance(self.device.mic_pos).max(1e-3),
            amplitude: self.device.direct_leak,
        }
        .render_into(tone, &mut out);

        // 2. Static room multipath: a handful of wall/table bounces.
        let n_paths = rng.gen_range(3..6);
        for _ in 0..n_paths {
            StaticPath {
                length: rng.gen_range(0.5..4.0),
                amplitude: rng.gen_range(0.02..0.10),
            }
            .render_into(tone, &mut out);
        }

        // 3. The writer: finger plus slower hand/forearm clutter.
        let g = self.device.echo_gain;
        let spk = self.device.speaker_pos;
        let mic = self.device.mic_pos;
        MovingScatterer::from_positions(
            trajectory.points(),
            trajectory.dt(),
            spk,
            mic,
            g * self.body.finger_reflectivity,
        )
        .render_into(tone, &mut out);
        if self.body.hand_reflectivity > 0.0 {
            MovingScatterer::shadowing(
                trajectory,
                self.body.anchor,
                self.body.hand_scale,
                spk,
                mic,
                g * self.body.hand_reflectivity,
            )
            .render_into(tone, &mut out);
        }
        if self.body.arm_reflectivity > 0.0 {
            MovingScatterer::shadowing(
                trajectory,
                self.body.anchor,
                self.body.arm_scale,
                spk,
                mic,
                g * self.body.arm_reflectivity,
            )
            .render_into(tone, &mut out);
        }

        // 4. A walking interferer, if the room has one.
        if let Some(walker) = self.environment.walker {
            let dt = 1.0 / tone.sample_rate;
            let t_mid = trajectory.duration() * rng.gen_range(0.3..0.7);
            let positions: Vec<Vec3> =
                (0..n).map(|i| walker.position(i as f64 * dt, t_mid)).collect();
            MovingScatterer::from_positions(&positions, dt, spk, mic, g * walker.reflectivity)
                .render_into(tone, &mut out);
        }

        // 5. Stationary noise floor: mic self-noise + room ambient.
        let sigma = (self.device.mic_noise_sigma.powi(2)
            + self.environment.ambient_sigma.powi(2))
        .sqrt();
        add_awgn(&mut out, sigma, &mut rng);

        // 6. Transient interference.
        let fs = tone.sample_rate;
        add_transients(&mut out, TransientKind::KeyboardClick, self.environment.click_rate, fs, &mut rng);
        add_transients(&mut out, TransientKind::Babble, self.environment.babble_rate, fs, &mut rng);
        add_transients(&mut out, TransientKind::Rubbing, self.environment.rubbing_rate, fs, &mut rng);
        add_transients(&mut out, TransientKind::HardwareBurst, self.device.burst_rate, fs, &mut rng);

        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use echowrite_dsp::{Stft, StftConfig};
    use echowrite_gesture::{Stroke, Writer, WriterParams};

    fn quick_writer(seed: u64) -> Writer {
        Writer::new(WriterParams::nominal(), seed)
    }

    #[test]
    fn render_is_deterministic() {
        let perf = quick_writer(1).write_stroke(Stroke::S3);
        let scene = Scene::new(DeviceProfile::mate9(), EnvironmentProfile::resting_zone(), 9);
        assert_eq!(scene.render(&perf.trajectory), scene.render(&perf.trajectory));
    }

    #[test]
    fn trial_seeds_change_noise_only_slightly_but_differ() {
        let perf = quick_writer(2).write_stroke(Stroke::S1);
        let scene = Scene::new(DeviceProfile::mate9(), EnvironmentProfile::lab_area(), 9);
        let a = scene.render_seeded(&perf.trajectory, 1);
        let b = scene.render_seeded(&perf.trajectory, 2);
        assert_ne!(a, b);
        assert_eq!(a.len(), b.len());
    }

    #[test]
    fn output_length_matches_duration() {
        let perf = quick_writer(3).write_stroke(Stroke::S5);
        let scene = Scene::new(DeviceProfile::mate9(), EnvironmentProfile::silent(), 1);
        let out = scene.render(&perf.trajectory);
        let expect = (perf.trajectory.duration() * 44_100.0).round() as usize;
        assert_eq!(out.len(), expect);
    }

    #[test]
    fn signal_stays_in_plausible_range() {
        let perf = quick_writer(4).write_sequence(&[Stroke::S2, Stroke::S6]);
        let scene = Scene::new(DeviceProfile::mate9(), EnvironmentProfile::resting_zone(), 5);
        let out = scene.render(&perf.trajectory);
        let peak = out.iter().fold(0.0f64, |m, &x| m.max(x.abs()));
        assert!(peak < 2.0, "peak {peak} suggests badly scaled components");
        assert!(peak > 0.3, "peak {peak} suggests a missing carrier");
    }

    /// The rendered spectrum must contain (a) a strong static carrier line
    /// and (b) motion energy offset from the carrier during the stroke.
    #[test]
    fn spectrum_shows_carrier_and_doppler_energy() {
        let perf = quick_writer(5).write_stroke(Stroke::S2);
        let scene = Scene::new(DeviceProfile::mate9(), EnvironmentProfile::silent(), 1);
        let out = scene.render(&perf.trajectory);
        let stft = Stft::new(StftConfig::paper());
        let frames = stft.process(&out);
        let cfg = stft.config();
        let carrier = cfg.frequency_bin(20_000.0);

        // Frame well inside the stroke (span recorded in ground truth).
        let span = perf.spans[0];
        let mid_frame = ((span.start + span.end) / 2.0 / cfg.hop_seconds()) as usize;
        let frame = &frames[mid_frame.min(frames.len() - 1)];

        assert!(frame[carrier] > 100.0, "carrier line too weak: {}", frame[carrier]);
        // S2 moves downward toward the device → positive Doppler: energy in
        // bins a bit above the carrier, well above the noise floor.
        let motion: f64 = frame[carrier + 4..carrier + 40].iter().fold(0.0, |m, &x| m.max(x));
        let noise: f64 = frame[carrier + 120..carrier + 170].iter().fold(0.0, |m, &x| m.max(x));
        assert!(
            motion > 6.0 * noise.max(1e-9),
            "no Doppler energy: motion {motion}, far noise {noise}"
        );
    }

    /// During the lead-in hold the probe band away from the carrier must be
    /// quiet — that's the static background the pipeline subtracts.
    #[test]
    fn lead_in_frames_are_static() {
        let perf = quick_writer(6).write_stroke(Stroke::S1);
        let scene = Scene::new(DeviceProfile::mate9(), EnvironmentProfile::meeting_room(), 2);
        let out = scene.render(&perf.trajectory);
        let stft = Stft::new(StftConfig::paper());
        let frames = stft.process(&out);
        let cfg = stft.config();
        let carrier = cfg.frequency_bin(20_000.0);
        // Sum Doppler-band energy on both sides of the carrier (S1 recedes,
        // so its energy sits below the carrier).
        let band_peak = |f: &[f64]| -> f64 {
            f[carrier + 5..carrier + 60]
                .iter()
                .chain(f[carrier - 60..carrier - 5].iter())
                .fold(0.0f64, |m, &x| m.max(x))
        };
        let offset_energy = band_peak(&frames[0]);
        let span = perf.spans[0];
        let mid_frame = ((span.start + span.end) / 2.0 / cfg.hop_seconds()) as usize;
        let moving_energy = band_peak(&frames[mid_frame.min(frames.len() - 1)]);
        assert!(
            moving_energy > 3.0 * offset_energy,
            "stroke energy {moving_energy} vs static {offset_energy}"
        );
    }

    #[test]
    fn watch_has_lower_echo_snr_than_phone() {
        let perf = quick_writer(7).write_stroke(Stroke::S2);
        let room = EnvironmentProfile::silent();
        let render = |dev: DeviceProfile| {
            let scene = Scene::new(dev, room.clone(), 3);
            let out = scene.render(&perf.trajectory);
            let stft = Stft::new(StftConfig::paper());
            let frames = stft.process(&out);
            let cfg = stft.config();
            let carrier = cfg.frequency_bin(20_000.0);
            let span = perf.spans[0];
            let mid = ((span.start + span.end) / 2.0 / cfg.hop_seconds()) as usize;
            let f = &frames[mid.min(frames.len() - 1)];
            f[carrier + 4..carrier + 40].iter().fold(0.0f64, |m, &x| m.max(x))
        };
        let phone = render(DeviceProfile::mate9());
        let watch = render(DeviceProfile::watch2());
        assert!(watch < phone, "watch echo {watch} should be weaker than phone {phone}");
    }

    #[test]
    fn empty_trajectory_renders_empty() {
        let scene = Scene::new(DeviceProfile::mate9(), EnvironmentProfile::silent(), 1);
        let traj = Trajectory::new(1.0 / 44_100.0);
        assert!(scene.render(&traj).is_empty());
    }

    #[test]
    #[should_panic(expected = "invalid device profile")]
    fn rejects_invalid_device() {
        let mut d = DeviceProfile::mate9();
        d.echo_gain = -1.0;
        Scene::new(d, EnvironmentProfile::silent(), 1);
    }
}
