//! Streaming-path benchmarks (DESIGN.md §6.3): the incremental
//! STFT→enhance→profile→segment recognizer vs the replay oracle that
//! re-analyzes its buffered window on every push.
//!
//! Two claims are measured:
//!
//! - **Per-push latency.** The incremental path does O(chunk) work per
//!   push, so its latency is flat no matter how much audio has already
//!   streamed. The replay path re-runs the batch pipeline over its whole
//!   window, so its per-push cost grows with the buffered duration.
//! - **Session throughput.** Streaming a full 12 s session chunk-by-chunk
//!   through the incremental path must beat replaying it by a wide margin
//!   (the replay total is quadratic in session length up to the window cap).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use echowrite::{EchoWrite, EchoWriteConfig, StreamingMode, StreamingRecognizer};
use echowrite_gesture::{Stroke, Writer, WriterParams};
use echowrite_synth::{DeviceProfile, EnvironmentProfile, Scene};
use std::sync::OnceLock;

const SAMPLE_RATE: usize = 44_100;
const SESSION_SECONDS: usize = 12;
/// Five STFT hops per push — the chunk an audio callback would hand over.
const CHUNK: usize = 5 * 1024;

/// A 12 s writing session: four strokes, then held still to the 12 s mark.
fn session_audio() -> &'static Vec<f64> {
    static A: OnceLock<Vec<f64>> = OnceLock::new();
    A.get_or_init(|| {
        let strokes = [Stroke::S2, Stroke::S4, Stroke::S1, Stroke::S3];
        let perf = Writer::new(WriterParams::nominal(), 7).write_sequence(&strokes);
        let mut audio = Scene::new(DeviceProfile::mate9(), EnvironmentProfile::meeting_room(), 7)
            .render(&perf.trajectory);
        audio.resize(SESSION_SECONDS * SAMPLE_RATE, 0.0);
        audio
    })
}

/// Engine whose streaming mode resolves to the incremental path.
fn incremental_engine() -> &'static EchoWrite {
    static E: OnceLock<EchoWrite> = OnceLock::new();
    E.get_or_init(|| EchoWrite::with_config(EchoWriteConfig::streaming()))
}

/// Same enhancement, but forced onto the replay path for comparison.
fn replay_engine() -> &'static EchoWrite {
    static E: OnceLock<EchoWrite> = OnceLock::new();
    E.get_or_init(|| {
        EchoWrite::with_config(EchoWriteConfig {
            streaming: StreamingMode::Replay,
            ..EchoWriteConfig::streaming()
        })
    })
}

/// Streams the whole session in `CHUNK`-sample pushes and finishes.
fn run_session(engine: &EchoWrite) -> usize {
    let mut stream = StreamingRecognizer::new(engine);
    let mut events = 0;
    for chunk in session_audio().chunks(CHUNK) {
        events += stream.push(black_box(chunk)).len();
    }
    events + stream.finish().len()
}

fn bench_session(c: &mut Criterion) {
    echowrite_bench::print_bench_environment();
    let mut g = c.benchmark_group("streaming_session");
    g.sample_size(10);
    g.bench_function(BenchmarkId::new("incremental", "12s"), |b| {
        b.iter(|| run_session(incremental_engine()))
    });
    g.bench_function(BenchmarkId::new("replay", "12s"), |b| {
        b.iter(|| run_session(replay_engine()))
    });
    g.finish();
}

/// Measures one steady-state push after `prefill_seconds` of audio have
/// already streamed. Replay recognizers get a window of exactly that
/// duration so every measured push re-analyzes a saturated window; the
/// incremental path has no window and its cost must not depend on the
/// prefill at all.
fn bench_push_at(
    g: &mut criterion::BenchmarkGroup<'_>,
    name: &str,
    engine: &'static EchoWrite,
    window: Option<f64>,
    prefill_seconds: usize,
) {
    g.bench_function(BenchmarkId::new(name, format!("{prefill_seconds}s")), |b| {
        let audio = session_audio();
        let mut stream = match window {
            Some(w) => StreamingRecognizer::new(engine).with_window_seconds(w),
            None => StreamingRecognizer::new(engine),
        };
        let mut pos = 0;
        while pos < prefill_seconds * SAMPLE_RATE {
            let end = (pos + CHUNK).min(audio.len());
            black_box(stream.push(&audio[pos..end]));
            pos = end;
        }
        b.iter(|| {
            if pos + CHUNK > audio.len() {
                pos = 0; // keep streaming: cycle the session audio
            }
            let events = stream.push(black_box(&audio[pos..pos + CHUNK])).len();
            pos += CHUNK;
            events
        })
    });
}

fn bench_push(c: &mut Criterion) {
    let mut g = c.benchmark_group("streaming_push");
    g.sample_size(10);
    for prefill in [2usize, 6, 12] {
        bench_push_at(&mut g, "incremental", incremental_engine(), None, prefill);
    }
    for window in [2usize, 6, 12] {
        bench_push_at(&mut g, "replay", replay_engine(), Some(window as f64), window);
    }
    g.finish();
}

criterion_group!(benches, bench_session, bench_push);
criterion_main!(benches);
