//! Quickstart: write a word in the air, recognize it from raw audio.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Simulates a user writing the strokes of "water" in front of a phone in
//! a meeting room, then runs the full EchoWrite pipeline — STFT,
//! enhancement, MVCE, segmentation, DTW, Bayesian decoding — on the
//! microphone samples.

use echowrite::EchoWrite;
use echowrite_gesture::{Writer, WriterParams};
use echowrite_synth::{DeviceProfile, EnvironmentProfile, Scene};

fn main() {
    let word = std::env::args().nth(1).unwrap_or_else(|| "water".to_string());

    // The engine: training-free — templates are generated from the stroke
    // geometry itself at construction.
    let engine = EchoWrite::new();

    // Encode the word into its stroke sequence under the paper scheme.
    let strokes = match engine.scheme().encode_word(&word) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot encode {word:?}: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "writing {:?} as [{}]",
        word,
        echowrite_gesture::stroke::format_sequence(&strokes)
    );

    // Simulate the writer and the acoustic channel.
    let mut writer = Writer::new(WriterParams::nominal(), 42);
    let performance = writer.write_sequence(&strokes);
    let scene = Scene::new(DeviceProfile::mate9(), EnvironmentProfile::meeting_room(), 42);
    let mic = scene.render(&performance.trajectory);
    println!(
        "rendered {:.1} s of microphone audio ({} samples)",
        performance.trajectory.duration(),
        mic.len()
    );

    // Recognize.
    let rec = engine.recognize_word(&mic);
    println!(
        "recognized strokes: [{}] in {:.0} ms",
        echowrite_gesture::stroke::format_sequence(&rec.strokes.strokes()),
        rec.strokes.timing.total_ms()
    );
    println!("candidates:");
    for (i, c) in rec.candidates.iter().enumerate() {
        let marker = if c.word == word { "  <-- target" } else { "" };
        println!("  {}. {} (posterior {:.3e}){}", i + 1, c.word, c.posterior, marker);
    }

    // Next-word suggestions, as the paper's 2-gram association feature.
    if let Some(top) = rec.top1() {
        let next = engine.predictor().predict(top, 3);
        println!("after {top:?}, suggested continuations: {next:?}");
    }
}
