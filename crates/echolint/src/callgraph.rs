//! The conservative workspace call graph.
//!
//! Nodes are the non-test functions of every scanned file; edges follow the
//! calls recorded by [`crate::symbols`]. Resolution is *conservative by
//! construction* — whenever the token-level evidence is ambiguous the graph
//! takes the union of every workspace candidate ("unresolved → assume
//! worst"), so the reachability rules over-approximate and never miss a
//! path. Calls that match no workspace symbol at all are treated as trusted
//! leaves (std/core surface): their panics are the *caller's* direct sites
//! (`.unwrap()`, literal indexing, …), which the token rules already see.
//!
//! Resolution policy, in order:
//!
//! | call shape | candidates |
//! |------------|-----------|
//! | `self.m(…)` | the enclosing impl type's `m` if defined, else every workspace method `m` |
//! | `recv.m(…)` | every workspace method named `m` (trait objects and shadowed names resolve to all impls) |
//! | `Type::f(…)` | `Type`'s methods/assoc fns; `Self::` maps to the enclosing type |
//! | `module::f(…)` | free fns `f` whose crate or module tail matches `module` |
//! | `f(…)` | free fns `f` — same file first, then same crate, then workspace |
//!
//! `--graph dot` renders the resolved graph for debugging.

use crate::symbols::{CallTarget, FileSymbols, FnSym};
use std::collections::BTreeMap;

/// One resolved call edge.
#[derive(Debug, Clone, Copy)]
pub struct Edge {
    /// Callee node index.
    pub callee: usize,
    /// 1-based line of the call site in the caller's file.
    pub line: u32,
}

/// The workspace call graph.
#[derive(Debug, Default)]
pub struct CallGraph {
    /// All non-test functions, in path-sorted file order then source order.
    pub nodes: Vec<FnSym>,
    /// Forward adjacency, parallel to `nodes`; each list is sorted and
    /// deduplicated by callee (first call line kept).
    pub edges: Vec<Vec<Edge>>,
    /// Reverse adjacency (caller indices), sorted.
    pub callers: Vec<Vec<usize>>,
}

impl CallGraph {
    /// Builds the graph over per-file symbol tables. `files` must already be
    /// in deterministic (path-sorted) order — node indices follow it.
    pub fn build(files: &[FileSymbols]) -> CallGraph {
        let mut nodes: Vec<FnSym> = Vec::new();
        for f in files {
            nodes.extend(f.fns.iter().cloned());
        }

        // Name indices. BTreeMap keeps candidate iteration deterministic.
        let mut methods: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        let mut typed: BTreeMap<(&str, &str), Vec<usize>> = BTreeMap::new();
        let mut free: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        for (i, n) in nodes.iter().enumerate() {
            match &n.type_ctx {
                Some(ty) => {
                    methods.entry(&n.name).or_default().push(i);
                    typed.entry((ty.as_str(), &n.name)).or_default().push(i);
                }
                None => free.entry(&n.name).or_default().push(i),
            }
        }

        let mut edges: Vec<Vec<Edge>> = vec![Vec::new(); nodes.len()];
        for (i, n) in nodes.iter().enumerate() {
            let mut out: BTreeMap<usize, u32> = BTreeMap::new();
            for call in &n.calls {
                for &callee in resolve(n, &call.target, &nodes, &methods, &typed, &free).iter() {
                    if callee != i {
                        out.entry(callee).or_insert(call.line);
                    }
                }
            }
            edges[i] = out.into_iter().map(|(callee, line)| Edge { callee, line }).collect();
        }

        let mut callers: Vec<Vec<usize>> = vec![Vec::new(); nodes.len()];
        for (i, es) in edges.iter().enumerate() {
            for e in es {
                callers[e.callee].push(i);
            }
        }

        CallGraph { nodes, edges, callers }
    }

    /// Node indices declared as reachability entry points, in node order.
    pub fn entries(&self) -> Vec<usize> {
        (0..self.nodes.len()).filter(|&i| self.nodes[i].entry).collect()
    }

    /// Node indices of hot kernels, in node order.
    pub fn hot_roots(&self) -> Vec<usize> {
        (0..self.nodes.len()).filter(|&i| self.nodes[i].hot).collect()
    }

    /// Renders the graph as Graphviz DOT: entry points are doubled octagons,
    /// hot kernels are boxes, functions with unsanctioned panic sites are
    /// filled red.
    pub fn to_dot(&self) -> String {
        let mut s = String::from("digraph echolint {\n  rankdir=LR;\n  node [fontsize=10];\n");
        for (i, n) in self.nodes.iter().enumerate() {
            let mut attrs = vec![format!("label=\"{}\"", n.qual)];
            if n.entry {
                attrs.push("shape=doubleoctagon".to_string());
            } else if n.hot {
                attrs.push("shape=box".to_string());
            }
            if !n.panic_sites.is_empty() {
                attrs.push("style=filled".to_string());
                attrs.push("fillcolor=\"#ffb3b3\"".to_string());
            }
            s.push_str(&format!("  n{} [{}];\n", i, attrs.join(", ")));
        }
        for (i, es) in self.edges.iter().enumerate() {
            for e in es {
                s.push_str(&format!("  n{} -> n{};\n", i, e.callee));
            }
        }
        s.push_str("}\n");
        s
    }
}

/// Resolves one call target to its workspace candidate set.
fn resolve(
    caller: &FnSym,
    target: &CallTarget,
    nodes: &[FnSym],
    methods: &BTreeMap<&str, Vec<usize>>,
    typed: &BTreeMap<(&str, &str), Vec<usize>>,
    free: &BTreeMap<&str, Vec<usize>>,
) -> Vec<usize> {
    match target {
        CallTarget::Method { name, self_receiver } => {
            if *self_receiver {
                if let Some(ty) = &caller.type_ctx {
                    if let Some(c) = typed.get(&(ty.as_str(), name.as_str())) {
                        return c.clone();
                    }
                }
            }
            // Unresolved receiver: assume worst — every method of that name
            // (covers trait-object dispatch and shadowed method names).
            methods.get(name.as_str()).cloned().unwrap_or_default()
        }
        CallTarget::Path { qualifier: Some(q), name } => {
            let q = if q == "Self" {
                match &caller.type_ctx {
                    Some(ty) => ty.as_str(),
                    None => return Vec::new(),
                }
            } else {
                q.as_str()
            };
            if let Some(c) = typed.get(&(q, name.as_str())) {
                return c.clone();
            }
            // Module- or crate-qualified free fn.
            if let Some(cands) = free.get(name.as_str()) {
                let modular: Vec<usize> = cands
                    .iter()
                    .copied()
                    .filter(|&i| {
                        nodes[i].crate_name == q
                            || nodes[i].module == q
                            || nodes[i].module.ends_with(&format!("::{q}"))
                    })
                    .collect();
                if !modular.is_empty() {
                    return modular;
                }
            }
            // The qualifier names no workspace type, module, or crate: the
            // call is explicit evidence of an external owner (`OnceLock::new`,
            // `f64::from_bits`, …) — an external leaf, not a worst-case union.
            // Unlike bare method calls, a path call tells us who owns the fn.
            Vec::new()
        }
        CallTarget::Path { qualifier: None, name } => {
            let Some(cands) = free.get(name.as_str()) else {
                return Vec::new();
            };
            let same_file: Vec<usize> =
                cands.iter().copied().filter(|&i| nodes[i].file == caller.file).collect();
            if !same_file.is_empty() {
                return same_file;
            }
            let same_crate: Vec<usize> = cands
                .iter()
                .copied()
                .filter(|&i| nodes[i].crate_name == caller.crate_name)
                .collect();
            if !same_crate.is_empty() {
                return same_crate;
            }
            cands.clone()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::classify;
    use crate::symbols::file_symbols;
    use std::path::Path;

    fn graph(files: &[(&str, &str)]) -> CallGraph {
        let syms: Vec<_> = files
            .iter()
            .map(|(rel, src)| file_symbols(rel, src, &classify(Path::new(rel))))
            .collect();
        CallGraph::build(&syms)
    }

    fn idx(g: &CallGraph, qual: &str) -> usize {
        g.nodes.iter().position(|n| n.qual == qual).unwrap_or_else(|| {
            panic!("no node {qual}; have {:?}", g.nodes.iter().map(|n| &n.qual).collect::<Vec<_>>())
        })
    }

    fn has_edge(g: &CallGraph, from: &str, to: &str) -> bool {
        let (f, t) = (idx(g, from), idx(g, to));
        g.edges[f].iter().any(|e| e.callee == t)
    }

    #[test]
    fn self_method_resolves_to_enclosing_type_only() {
        let g = graph(&[(
            "crates/core/src/a.rs",
            "impl A { fn go(&self) { self.step(); } fn step(&self) {} }\nimpl B { fn step(&self) {} }\n",
        )]);
        assert!(has_edge(&g, "core::A::go", "core::A::step"));
        assert!(!has_edge(&g, "core::A::go", "core::B::step"));
    }

    #[test]
    fn unresolved_receiver_takes_every_candidate() {
        let g = graph(&[(
            "crates/core/src/a.rs",
            "fn go(x: &dyn S) { x.step(); }\nimpl A { fn step(&self) {} }\nimpl B { fn step(&self) {} }\n",
        )]);
        assert!(has_edge(&g, "core::a::go", "core::A::step"));
        assert!(has_edge(&g, "core::a::go", "core::B::step"));
    }

    #[test]
    fn cross_crate_path_calls_resolve() {
        let g = graph(&[
            ("crates/core/src/a.rs", "fn go() { dsp::util::norm(); }\n"),
            ("crates/dsp/src/util.rs", "fn norm() {}\n"),
        ]);
        assert!(has_edge(&g, "core::a::go", "dsp::util::norm"));
    }

    #[test]
    fn plain_call_prefers_same_file_then_crate() {
        let g = graph(&[
            ("crates/core/src/a.rs", "fn go() { helper(); }\nfn helper() {}\n"),
            ("crates/dsp/src/b.rs", "fn helper() {}\n"),
        ]);
        assert!(has_edge(&g, "core::a::go", "core::a::helper"));
        assert!(!has_edge(&g, "core::a::go", "dsp::b::helper"));
    }

    #[test]
    fn cycles_are_representable() {
        let g = graph(&[(
            "crates/core/src/a.rs",
            "fn ping() { pong(); }\nfn pong() { ping(); }\n",
        )]);
        assert!(has_edge(&g, "core::a::ping", "core::a::pong"));
        assert!(has_edge(&g, "core::a::pong", "core::a::ping"));
    }

    #[test]
    fn dot_dump_names_every_node() {
        let g = graph(&[("crates/core/src/a.rs", "fn ping() { pong(); }\nfn pong() {}\n")]);
        let dot = g.to_dot();
        assert!(dot.contains("core::a::ping") && dot.contains("->"));
    }
}
