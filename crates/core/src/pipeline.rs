//! The offline signal pipeline with per-stage timing.
//!
//! [`Pipeline::analyze`] runs audio → STFT → ROI → enhancement → MVCE →
//! segmentation and reports how long each stage took — the measurement
//! behind the paper's Fig. 19 (running time of different parts), where
//! signal processing dominates with > 90 % of the budget.

use crate::config::{EchoWriteConfig, Frontend};
use echowrite_dsp::downconvert::{BasebandStft, Downconverter};
use echowrite_dsp::Stft;
use echowrite_profile::mvce::extract_profile_with_guard;
use echowrite_profile::{DopplerProfile, Segmenter, Stopwatch, StrokeSegment};
use echowrite_spectro::{Enhancer, Spectrogram};

/// Wall-clock cost of each pipeline stage, in milliseconds.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct StageTiming {
    /// STFT framing + FFTs + ROI crop.
    pub stft_ms: f64,
    /// Spectrogram enhancement (median, subtraction, threshold, Gaussian,
    /// binarize, flood fill).
    pub enhance_ms: f64,
    /// MVCE contour extraction + smoothing.
    pub profile_ms: f64,
    /// Acceleration-based segmentation.
    pub segment_ms: f64,
    /// DTW matching (filled in by the engine).
    pub dtw_ms: f64,
    /// Word decoding (filled in by the engine).
    pub decode_ms: f64,
}

impl StageTiming {
    /// Total across all stages.
    pub fn total_ms(&self) -> f64 {
        self.stft_ms + self.enhance_ms + self.profile_ms + self.segment_ms + self.dtw_ms
            + self.decode_ms
    }

    /// Fraction of the total spent in signal processing (STFT through
    /// profile extraction) — the paper reports > 90 %.
    pub fn signal_processing_fraction(&self) -> f64 {
        let total = self.total_ms();
        if total <= 0.0 {
            return 0.0;
        }
        (self.stft_ms + self.enhance_ms + self.profile_ms) / total
    }
}

/// Everything the signal pipeline extracts from one audio trace.
#[derive(Debug, Clone)]
pub struct Analysis {
    /// The enhanced binary ROI spectrogram.
    pub binary: Spectrogram,
    /// The smoothed Doppler profile.
    pub profile: DopplerProfile,
    /// Detected stroke segments.
    pub segments: Vec<StrokeSegment>,
    /// Per-stage timing.
    pub timing: StageTiming,
}

/// The audio → segments signal pipeline.
///
/// # Example
///
/// ```
/// use echowrite::{Pipeline, EchoWriteConfig};
/// let p = Pipeline::new(EchoWriteConfig::paper());
/// // A silent half-second: no strokes detected.
/// let silence = vec![0.0; 22_050];
/// let a = p.analyze(&silence);
/// assert!(a.segments.is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct Pipeline {
    config: EchoWriteConfig,
    /// The STFT plan, shared (via [`Pipeline::shared_stft`]) with every
    /// streaming session built on this engine so twiddle tables and window
    /// coefficients are planned once per configuration, not per session.
    stft: std::sync::Arc<Stft>,
    /// The decimating front-end, present for `Frontend::Downconverted`.
    downconvert: Option<(Downconverter, BasebandStft)>,
    enhancer: Enhancer,
    segmenter: Segmenter,
}

impl Pipeline {
    /// Builds the pipeline.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn new(config: EchoWriteConfig) -> Self {
        if let Err(msg) = config.validate() {
            // echolint: allow(no-panic-path) -- documented `# Panics` contract of Pipeline::new
            panic!("invalid EchoWrite config: {msg}");
        }
        let stft = std::sync::Arc::new(Stft::new(config.stft));
        let enhancer = Enhancer::new(config.enhance);
        let segmenter = Segmenter::new(config.segment);
        let downconvert = match config.frontend {
            Frontend::FullStft => None,
            Frontend::Downconverted { factor } => Some(make_downconvert(&config, factor)),
        };
        Pipeline { config, stft, downconvert, enhancer, segmenter }
    }

    /// A handle to the shared STFT plan, for streaming sessions that want
    /// to reuse this engine's twiddle tables and window instead of planning
    /// their own (the plan is immutable, so sharing is output-neutral).
    pub fn shared_stft(&self) -> std::sync::Arc<Stft> {
        std::sync::Arc::clone(&self.stft)
    }

    /// Builds the ROI spectrogram through the configured front-end.
    ///
    /// Only the ROI rows are ever computed — full half-spectrum columns are
    /// never materialized — and the frame loop is split across
    /// `config.parallelism` workers writing disjoint frame-major chunks, so
    /// the result is bitwise identical for every worker count.
    ///
    /// Returns `None` when the audio is shorter than one analysis frame.
    // echolint: entry
    pub fn roi_spectrogram(&self, audio: &[f64]) -> Option<Spectrogram> {
        let cfg = self.stft.config();
        let (lo, hi, carrier_bin) = roi_bins(&self.config);
        let band = hi - lo + 1;
        match &self.downconvert {
            None => {
                let frames = self.stft.frame_count(audio.len());
                if frames == 0 {
                    return None;
                }
                let mut flat = vec![0.0; frames * band];
                let workers = self.config.parallelism.workers(frames);
                let (stft, hop, size) = (&self.stft, cfg.hop, cfg.fft_size);
                fill_frame_major(
                    &mut flat,
                    frames,
                    band,
                    workers,
                    || stft.make_scratch(),
                    |f, scratch, row| {
                        let start = f * hop;
                        stft.frame_band_into(&audio[start..start + size], lo, hi, scratch, row);
                    },
                );
                let mut spec = Spectrogram::from_frame_major(band, frames, &flat);
                spec.set_carrier_row(carrier_bin - lo);
                spec.set_metadata(cfg.sample_rate / cfg.fft_size as f64, cfg.hop_seconds());
                Some(spec)
            }
            Some((dc, bb)) => {
                let baseband = dc.process(audio);
                let frames = bb.frame_count(baseband.len());
                if frames == 0 {
                    return None;
                }
                // Replicate the full-rate ROI row geometry exactly so the
                // stored templates remain valid: same number of rows above
                // and below the carrier, same bin width, same hop.
                let below = carrier_bin - lo;
                let above = hi - carrier_bin;
                let centre = bb.fft_size() / 2;
                let (row_lo, row_hi) = (centre - below, centre + above);
                let mut flat = vec![0.0; frames * band];
                let workers = self.config.parallelism.workers(frames);
                let baseband = &baseband[..];
                fill_frame_major(
                    &mut flat,
                    frames,
                    band,
                    workers,
                    || bb.make_scratch(),
                    |f, scratch, row| {
                        let start = f * bb.hop();
                        bb.frame_rows_into(
                            &baseband[start..start + bb.fft_size()],
                            row_lo,
                            row_hi,
                            scratch,
                            row,
                        );
                    },
                );
                let mut spec = Spectrogram::from_frame_major(band, frames, &flat);
                spec.set_carrier_row(below);
                spec.set_metadata(cfg.sample_rate / cfg.fft_size as f64, cfg.hop_seconds());
                Some(spec)
            }
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &EchoWriteConfig {
        &self.config
    }

    /// Runs the signal pipeline on raw microphone samples.
    ///
    /// Traces shorter than one STFT frame produce an empty analysis.
    pub fn analyze(&self, audio: &[f64]) -> Analysis {
        self.analyze_with_background(audio, None)
    }

    /// Estimates the frozen static background from the opening frames of a
    /// session (for streaming use). Returns `None` for audio shorter than
    /// one frame.
    pub fn estimate_background(&self, audio: &[f64]) -> Option<Vec<f64>> {
        let spec = self.roi_spectrogram(audio)?;
        self.enhancer.estimate_background(&spec)
    }

    /// [`Pipeline::analyze`] with an optional frozen background replacing
    /// the in-buffer static frames (streaming sessions trim their buffers,
    /// so the front is no longer guaranteed static).
    pub fn analyze_with_background(&self, audio: &[f64], background: Option<&[f64]>) -> Analysis {
        let mut timing = StageTiming::default();

        let t0 = Stopwatch::start();
        let spec = self.roi_spectrogram(audio).unwrap_or_else(|| {
            let rows = 2 * self.config.guard_bins + 3;
            Spectrogram::zeros(rows, 0)
        });
        timing.stft_ms = t0.elapsed_ms();
        debug_assert!(
            spec.data().iter().all(|v| v.is_finite()),
            "STFT stage produced a non-finite magnitude"
        );

        let t1 = Stopwatch::start();
        let binary = if spec.cols() == 0 {
            spec
        } else {
            match background {
                Some(bg) => self.enhancer.enhance_with_background(&spec, bg),
                None => self.enhancer.enhance(&spec),
            }
        };
        timing.enhance_ms = t1.elapsed_ms();
        debug_assert!(
            binary.data().iter().all(|&v| v == 0.0 || v == 1.0),
            "enhancement stage produced a non-binary spectrogram"
        );

        let t2 = Stopwatch::start();
        let profile = extract_profile_with_guard(&binary, self.config.guard_bins);
        timing.profile_ms = t2.elapsed_ms();
        debug_assert!(
            profile.shifts().iter().all(|v| v.is_finite()),
            "profile extraction produced a non-finite Doppler shift"
        );

        let t3 = Stopwatch::start();
        let segments = self.segmenter.segment(&profile);
        timing.segment_ms = t3.elapsed_ms();
        debug_assert!(
            segments
                .iter()
                .all(|s| s.start < s.end && s.end <= profile.len()),
            "segmentation produced an out-of-range or empty segment"
        );

        if echowrite_trace::enabled() {
            use echowrite_trace::Stage;
            let tick =
                echowrite_trace::samples_to_us(audio.len() as u64, self.config.stft.sample_rate);
            let ms_to_us = |ms: f64| (ms * 1_000.0) as u64;
            echowrite_trace::span(Stage::Stft, "offline_stft", tick, ms_to_us(timing.stft_ms), 0.0);
            echowrite_trace::span(
                Stage::Enhance,
                "offline_enhance",
                tick,
                ms_to_us(timing.enhance_ms),
                0.0,
            );
            echowrite_trace::span(
                Stage::Profile,
                "offline_profile",
                tick,
                ms_to_us(timing.profile_ms),
                profile.len() as f64,
            );
            echowrite_trace::span(
                Stage::Segment,
                "offline_segment",
                tick,
                ms_to_us(timing.segment_ms),
                segments.len() as f64,
            );
        }

        Analysis { binary, profile, segments, timing }
    }

    /// Like [`Pipeline::analyze`] but also returns the intermediate
    /// enhancement stages (Fig. 8 panels) for inspection.
    pub fn analyze_verbose(&self, audio: &[f64]) -> (Analysis, Option<echowrite_spectro::EnhanceStages>) {
        match self.roi_spectrogram(audio) {
            None => (self.analyze(audio), None),
            Some(spec) => {
                let stages = self.enhancer.enhance_stages(&spec);
                let analysis = self.analyze(audio);
                (analysis, Some(stages))
            }
        }
    }
}

impl Default for Pipeline {
    fn default() -> Self {
        Pipeline::new(EchoWriteConfig::paper())
    }
}

/// The ROI band in full-rate STFT bins: `(lo, hi, carrier_bin)`. Shared by
/// the batch pipeline and the streaming front-end so both crop the exact
/// same rows.
pub(crate) fn roi_bins(config: &EchoWriteConfig) -> (usize, usize, usize) {
    let cfg = &config.stft;
    let carrier_bin = cfg.frequency_bin(config.carrier_hz);
    let lo = cfg.frequency_bin(config.carrier_hz - config.roi_span_hz);
    let hi = cfg.frequency_bin(config.carrier_hz + config.roi_span_hz);
    (lo, hi, carrier_bin)
}

/// Builds the decimating front-end pair. Shared by the batch pipeline and
/// the streaming front-end so the filter taps and framing geometry are
/// identical: same bin width and hop duration as the full-rate STFT, with
/// magnitudes scaled by `factor` so α stays calibrated.
pub(crate) fn make_downconvert(
    config: &EchoWriteConfig,
    factor: usize,
) -> (Downconverter, BasebandStft) {
    let dc = Downconverter::new(config.carrier_hz, config.stft.sample_rate, factor, 129);
    let bb = BasebandStft::new(
        config.stft.fft_size / factor,
        config.stft.hop / factor,
        factor as f64,
    );
    (dc, bb)
}

/// Fills a flat frame-major buffer (`frames × band`) by computing each frame
/// row with `fill`, chunked across `workers` scoped threads.
///
/// Workers own disjoint `chunks_mut` regions and a private scratch, so the
/// result is identical — bit for bit — for every worker count; one worker
/// takes a plain serial loop with no thread scope.
fn fill_frame_major<S>(
    flat: &mut [f64],
    frames: usize,
    band: usize,
    workers: usize,
    make_scratch: impl Fn() -> S + Sync,
    fill: impl Fn(usize, &mut S, &mut [f64]) + Sync,
) {
    debug_assert_eq!(flat.len(), frames * band);
    if workers <= 1 || frames <= 1 {
        let mut scratch = make_scratch();
        for (f, row) in flat.chunks_exact_mut(band).enumerate() {
            fill(f, &mut scratch, row);
        }
        return;
    }
    let chunk = frames.div_ceil(workers);
    std::thread::scope(|s| {
        for (ci, chunk_out) in flat.chunks_mut(chunk * band).enumerate() {
            let (make_scratch, fill) = (&make_scratch, &fill);
            s.spawn(move || {
                let mut scratch = make_scratch();
                for (j, row) in chunk_out.chunks_exact_mut(band).enumerate() {
                    fill(ci * chunk + j, &mut scratch, row);
                }
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use echowrite_gesture::{Stroke, Writer, WriterParams};
    use echowrite_synth::{DeviceProfile, EnvironmentProfile, Scene};

    fn stroke_audio(stroke: Stroke, seed: u64) -> Vec<f64> {
        let perf = Writer::new(WriterParams::nominal(), seed).write_stroke(stroke);
        Scene::new(DeviceProfile::mate9(), EnvironmentProfile::meeting_room(), seed)
            .render(&perf.trajectory)
    }

    #[test]
    fn empty_audio_yields_empty_analysis() {
        let p = Pipeline::default();
        let a = p.analyze(&[]);
        assert!(a.segments.is_empty());
        assert!(a.profile.is_empty());
    }

    #[test]
    fn detects_one_segment_per_stroke() {
        let p = Pipeline::default();
        let a = p.analyze(&stroke_audio(Stroke::S3, 11));
        assert_eq!(a.segments.len(), 1, "{:?}", a.segments);
        assert!(a.profile.peak_shift() > 30.0);
    }

    #[test]
    fn timing_is_populated_and_signal_dominated() {
        let p = Pipeline::default();
        let a = p.analyze(&stroke_audio(Stroke::S2, 3));
        assert!(a.timing.stft_ms > 0.0);
        assert!(a.timing.enhance_ms > 0.0);
        assert!(a.timing.total_ms() > 0.0);
        // Without DTW/decode the signal fraction is 100 % by construction;
        // the meaningful claim (> 90 % with DTW) is asserted in the engine
        // tests. Here just check the accessor is consistent.
        assert!(a.timing.signal_processing_fraction() <= 1.0);
    }

    #[test]
    fn analyze_verbose_exposes_stages() {
        let p = Pipeline::default();
        let (a, stages) = p.analyze_verbose(&stroke_audio(Stroke::S5, 5));
        let stages = stages.expect("stages for non-empty audio");
        assert_eq!(stages.binary, a.binary);
        assert!(stages.raw.max_value() > stages.binary.max_value());
    }

    /// The frame-parallel front-end must be bitwise identical to the serial
    /// reference for every worker count, on both front-ends.
    #[test]
    fn parallel_roi_is_bitwise_identical_to_serial() {
        use crate::config::Parallelism;
        let audio = stroke_audio(Stroke::S4, 7);
        for base in [EchoWriteConfig::paper(), EchoWriteConfig::downsampled(32)] {
            let mut serial_cfg = base.clone();
            serial_cfg.parallelism = Parallelism::Threads(1);
            let reference = Pipeline::new(serial_cfg).roi_spectrogram(&audio).unwrap();
            for workers in [2, 3, 8] {
                let mut cfg = base.clone();
                cfg.parallelism = Parallelism::Threads(workers);
                let spec = Pipeline::new(cfg).roi_spectrogram(&audio).unwrap();
                assert_eq!(spec, reference, "workers={workers}");
            }
        }
    }

    /// The band-extraction rewrite must reproduce the original
    /// `process` + `roi_from_stft` construction exactly.
    #[test]
    fn roi_matches_legacy_full_spectrum_construction() {
        let audio = stroke_audio(Stroke::S1, 9);
        let mut cfg = EchoWriteConfig::paper();
        cfg.parallelism = crate::config::Parallelism::Threads(1);
        let p = Pipeline::new(cfg);
        let spec = p.roi_spectrogram(&audio).unwrap();
        let frames = p.stft.process(&audio);
        let legacy = Spectrogram::roi_from_stft(
            &frames,
            p.stft.config(),
            p.config.carrier_hz,
            p.config.roi_span_hz,
        );
        assert_eq!(spec, legacy);
    }

    #[test]
    #[should_panic(expected = "invalid EchoWrite config")]
    fn rejects_invalid_config() {
        let mut cfg = EchoWriteConfig::paper();
        cfg.top_k = 0;
        Pipeline::new(cfg);
    }

    /// The Sec. VII-A optimization: the decimated front-end must produce a
    /// spectrogram with identical geometry and near-identical Doppler
    /// profiles, so segmentation agrees with the full pipeline.
    #[test]
    fn downconverted_frontend_matches_full_pipeline() {
        let audio = stroke_audio(Stroke::S2, 4);
        let full = Pipeline::new(EchoWriteConfig::paper());
        let fast = Pipeline::new(EchoWriteConfig::downsampled(32));

        let sf = full.roi_spectrogram(&audio).unwrap();
        let sd = fast.roi_spectrogram(&audio).unwrap();
        assert_eq!(sf.rows(), sd.rows(), "row geometry must match");
        assert_eq!(sf.carrier_row(), sd.carrier_row());
        assert!((sf.bin_hz() - sd.bin_hz()).abs() < 1e-9);
        assert!((sf.cols() as i64 - sd.cols() as i64).abs() <= 1);

        let af = full.analyze(&audio);
        let ad = fast.analyze(&audio);
        assert_eq!(af.segments.len(), ad.segments.len(), "segmentation diverged");
        let (f, d) = (&af.segments[0], &ad.segments[0]);
        assert!((f.start as i64 - d.start as i64).abs() <= 2, "{f:?} vs {d:?}");
        assert!((f.end as i64 - d.end as i64).abs() <= 4, "{f:?} vs {d:?}");
        // Peak Doppler shift agrees within a bin or two.
        assert!(
            (af.profile.peak_shift() - ad.profile.peak_shift()).abs() < 12.0,
            "{} vs {}",
            af.profile.peak_shift(),
            ad.profile.peak_shift()
        );
    }

    #[test]
    fn downsampled_config_validation() {
        assert!(EchoWriteConfig::downsampled(32).validate().is_ok());
        assert!(EchoWriteConfig::downsampled(3).validate().is_err()); // 8192/3
        assert!(EchoWriteConfig::downsampled(1).validate().is_err());
        // Factor 64 leaves ±344 Hz < ROI span: rejected.
        assert!(EchoWriteConfig::downsampled(64).validate().is_err());
    }
}
