//! Bayesian word decoding — the paper's Algorithm 2.
//!
//! For an observed stroke sequence `I = s₁s₂…sₙ`, candidate words come from
//! dictionary lookups of `I` and of its corrected variants, and are ranked
//! by the posterior (Eq. 7):
//!
//! `P(w|I) ∝ P(w) · ∏ᵢ P(sᵢ|lᵢ)`
//!
//! where `P(w)` is the word's corpus frequency and `P(sᵢ|lᵢ)` comes from
//! the stroke-recognition confusion matrix. The top-k candidates (k = 5 in
//! the paper's implementation) are offered to the user; if the user makes
//! no choice within a second the top-1 is committed.

use crate::correction::CorrectionRules;
use crate::dictionary::Dictionary;
use echowrite_dtw::ConfusionMatrix;
use echowrite_gesture::stroke::{Stroke, STROKE_COUNT};

/// The number of candidates the paper's implementation displays.
pub const PAPER_TOP_K: usize = 5;

/// One ranked word candidate.
#[derive(Debug, Clone, PartialEq)]
pub struct Candidate {
    /// The candidate word.
    pub word: String,
    /// Unnormalized posterior `P(w)·∏P(sᵢ|lᵢ)`.
    pub posterior: f64,
    /// Whether the candidate came from a corrected sequence rather than the
    /// observed one.
    pub corrected: bool,
}

/// The Algorithm-2 word decoder.
///
/// # Example
///
/// ```
/// use echowrite_corpus::Lexicon;
/// use echowrite_gesture::InputScheme;
/// use echowrite_lang::{Dictionary, WordDecoder};
///
/// let scheme = InputScheme::paper();
/// let dict = Dictionary::build(Lexicon::embedded(), &scheme);
/// let decoder = WordDecoder::new(dict);
/// let seq = scheme.encode_word("the").unwrap();
/// let cands = decoder.decode(&seq);
/// assert_eq!(cands[0].word, "the"); // most frequent in its collision group
/// ```
#[derive(Debug, Clone)]
pub struct WordDecoder {
    dictionary: Dictionary,
    rules: CorrectionRules,
    confusion: ConfusionMatrix,
    top_k: usize,
}

impl WordDecoder {
    /// Creates a decoder with the paper's correction rules, an uninformative
    /// (uniform-smoothed) confusion prior, and k = 5.
    pub fn new(dictionary: Dictionary) -> Self {
        WordDecoder {
            dictionary,
            rules: CorrectionRules::paper(),
            confusion: ConfusionMatrix::new(),
            top_k: PAPER_TOP_K,
        }
    }

    /// Replaces the correction rules (e.g. [`CorrectionRules::none`] for
    /// the Fig. 15 ablation).
    pub fn with_rules(mut self, rules: CorrectionRules) -> Self {
        self.rules = rules;
        self
    }

    /// Installs an empirical confusion matrix for the `P(sᵢ|lᵢ)` terms.
    pub fn with_confusion(mut self, confusion: ConfusionMatrix) -> Self {
        self.confusion = confusion;
        self
    }

    /// Overrides the candidate-list length.
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero.
    pub fn with_top_k(mut self, k: usize) -> Self {
        assert!(k > 0, "top-k must be positive");
        self.top_k = k;
        self
    }

    /// The dictionary in use.
    pub fn dictionary(&self) -> &Dictionary {
        &self.dictionary
    }

    /// The candidate-list length.
    pub fn top_k(&self) -> usize {
        self.top_k
    }

    /// Decodes an observed stroke sequence into at most `top_k` candidates,
    /// posterior-descending.
    pub fn decode(&self, observed: &[Stroke]) -> Vec<Candidate> {
        self.decode_impl(observed, None)
    }

    /// Decodes using per-position soft stroke scores from the DTW
    /// classifier (`scores[i][s]` ≈ P(observed profile i | stroke s))
    /// instead of the global confusion matrix — strictly more information
    /// when the classifier is confident.
    ///
    /// # Panics
    ///
    /// Panics if `scores.len() != observed.len()`.
    pub fn decode_soft(&self, observed: &[Stroke], scores: &[[f64; STROKE_COUNT]]) -> Vec<Candidate> {
        assert_eq!(scores.len(), observed.len(), "one score vector per stroke");
        self.decode_impl(observed, Some(scores))
    }

    fn decode_impl(
        &self,
        observed: &[Stroke],
        soft: Option<&[[f64; STROKE_COUNT]]>,
    ) -> Vec<Candidate> {
        if observed.is_empty() {
            return Vec::new();
        }
        // candidateI = correct(I) ∪ I (Algorithm 2 line 1).
        let mut sequences = vec![(observed.to_vec(), false)];
        for v in self.rules.corrected_sequences(observed) {
            sequences.push((v, true));
        }

        let mut candidates: Vec<Candidate> = Vec::new();
        for (seq, corrected) in &sequences {
            for entry in self.dictionary.find(seq) {
                // ∏ P(sᵢ|lᵢ): observed stroke given the word's true stroke.
                let mut likelihood = 1.0;
                for (i, (&s_obs, &l_true)) in observed.iter().zip(&entry.stroke_seq).enumerate() {
                    likelihood *= match soft {
                        Some(scores) => scores[i][l_true.index()].max(1e-9),
                        None => self.confusion.likelihood(s_obs, l_true),
                    };
                }
                let posterior = entry.frequency * likelihood;
                match candidates.iter_mut().find(|c| c.word == entry.word) {
                    // A word can match via several sequences; keep its best.
                    Some(existing) => {
                        if posterior > existing.posterior {
                            existing.posterior = posterior;
                            existing.corrected = *corrected;
                        }
                    }
                    None => candidates.push(Candidate {
                        word: entry.word.clone(),
                        posterior,
                        corrected: *corrected,
                    }),
                }
            }
        }
        // All candidates share the observed length (substitution-only), so
        // Algorithm 2's length-then-posterior sort reduces to posterior.
        candidates.sort_by(|a, b| b.posterior.total_cmp(&a.posterior).then_with(|| a.word.cmp(&b.word)));
        if echowrite_trace::enabled() {
            use echowrite_trace::{SmallStr, Stage, TICK_UNSET};
            echowrite_trace::counter(
                Stage::Lang,
                "candidate_sequences",
                TICK_UNSET,
                sequences.len() as f64,
            );
            echowrite_trace::counter(Stage::Lang, "candidates", TICK_UNSET, candidates.len() as f64);
            // Decision provenance: every surviving hypothesis with its
            // posterior log-probability, best first.
            for cand in candidates.iter().take(self.top_k) {
                echowrite_trace::annotated(
                    Stage::Lang,
                    "hypothesis",
                    TICK_UNSET,
                    cand.posterior.ln(),
                    SmallStr::new(&cand.word),
                );
            }
        }
        candidates.truncate(self.top_k);
        candidates
    }

    /// Convenience: the top-1 word, if any candidate exists (the paper's
    /// auto-commit after 1 s without a selection).
    pub fn top1(&self, observed: &[Stroke]) -> Option<String> {
        self.decode(observed).first().map(|c| c.word.clone())
    }

    /// Decodes with **general** edit-distance-1 correction (substitutions,
    /// insertions, and deletions), the alternative the paper prunes away.
    /// Each edit costs a fixed likelihood penalty in the posterior; exact
    /// matches keep the full `P(sᵢ|lᵢ)` product.
    ///
    /// This exists to quantify the paper's claim that "we can take no
    /// account of deleting and inserting cases without much performance
    /// decline" — see ablation A4.
    pub fn decode_full_edit(&self, observed: &[Stroke], edit_penalty: f64) -> Vec<Candidate> {
        if observed.is_empty() {
            return Vec::new();
        }
        let mut candidates: Vec<Candidate> = Vec::new();
        for (entry, dist) in self.dictionary.find_within_edit(observed, 1) {
            let mut likelihood = 1.0;
            if dist == 0 {
                for (&s_obs, &l_true) in observed.iter().zip(&entry.stroke_seq) {
                    likelihood *= self.confusion.likelihood(s_obs, l_true);
                }
            } else {
                // Edited alignment: charge the penalty and the average
                // per-stroke likelihood for the unaligned positions.
                likelihood = edit_penalty;
                for (&s_obs, &l_true) in observed.iter().zip(&entry.stroke_seq) {
                    likelihood *= self.confusion.likelihood(s_obs, l_true).max(1e-3);
                }
            }
            let posterior = entry.frequency * likelihood;
            match candidates.iter_mut().find(|c| c.word == entry.word) {
                Some(existing) => {
                    if posterior > existing.posterior {
                        existing.posterior = posterior;
                        existing.corrected = dist > 0;
                    }
                }
                None => candidates.push(Candidate {
                    word: entry.word.clone(),
                    posterior,
                    corrected: dist > 0,
                }),
            }
        }
        candidates
            .sort_by(|a, b| b.posterior.total_cmp(&a.posterior).then_with(|| a.word.cmp(&b.word)));
        candidates.truncate(self.top_k);
        candidates
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use echowrite_corpus::Lexicon;
    use echowrite_gesture::InputScheme;

    fn decoder() -> WordDecoder {
        let scheme = InputScheme::paper();
        WordDecoder::new(Dictionary::build(Lexicon::embedded(), &scheme))
    }

    fn seq(word: &str) -> Vec<Stroke> {
        InputScheme::paper().encode_word(word).unwrap()
    }

    #[test]
    fn decodes_exact_sequences() {
        let d = decoder();
        for w in ["the", "and", "water", "people"] {
            let cands = d.decode(&seq(w));
            assert!(
                cands.iter().any(|c| c.word == w),
                "{w} not in candidates {cands:?}"
            );
        }
    }

    #[test]
    fn frequency_breaks_collision_ties() {
        let d = decoder();
        let cands = d.decode(&seq("the"));
        // "the" is the most frequent word in its collision group.
        assert_eq!(cands[0].word, "the");
        for w in cands.windows(2) {
            assert!(w[0].posterior >= w[1].posterior);
        }
    }

    #[test]
    fn top_k_limits_candidates() {
        let d = decoder().with_top_k(3);
        assert!(d.decode(&seq("the")).len() <= 3);
        assert_eq!(d.top_k(), 3);
    }

    #[test]
    #[should_panic(expected = "top-k")]
    fn zero_top_k_rejected() {
        decoder().with_top_k(0);
    }

    #[test]
    fn empty_sequence_decodes_to_nothing() {
        assert!(decoder().decode(&[]).is_empty());
        assert_eq!(decoder().top1(&[]), None);
    }

    /// A sequence with one misrecognized stroke is rescued by correction.
    #[test]
    fn correction_recovers_single_substitution() {
        let d = decoder();
        // True word "can" = S5 S3 S4. Suppose S5 was misread as S6
        // (a paper confusion mode: observed S6 → true S5).
        let mut observed = seq("can");
        assert_eq!(observed[0], Stroke::S5);
        observed[0] = Stroke::S6;
        let cands = d.decode(&observed);
        let hit = cands.iter().find(|c| c.word == "can");
        assert!(hit.is_some(), "correction failed: {cands:?}");
        assert!(hit.unwrap().corrected);
    }

    #[test]
    fn no_correction_misses_substituted_words() {
        let d = decoder().with_rules(CorrectionRules::none());
        let mut observed = seq("can");
        observed[0] = Stroke::S6;
        let cands = d.decode(&observed);
        assert!(
            !cands.iter().any(|c| c.word == "can"),
            "without rules the substitution cannot be recovered"
        );
    }

    #[test]
    fn confusion_matrix_weights_posteriors() {
        // Make S1-observed-as-S1 highly reliable but S2-as-S1 common; then
        // for an observed S1, words whose true stroke is S2 gain ground.
        let mut m = ConfusionMatrix::new();
        for _ in 0..50 {
            m.record(Stroke::S1, Stroke::S1);
            m.record(Stroke::S2, Stroke::S1); // S2 always misread as S1!
        }
        let d = decoder().with_confusion(m);
        // Observed: "the" = S1 S2 S1, but suppose the middle stroke (H, S2)
        // was read as S1 → observed S1 S1 S1.
        let observed = vec![Stroke::S1, Stroke::S1, Stroke::S1];
        let cands = d.decode(&observed);
        assert!(cands.iter().any(|c| c.word == "the"), "{cands:?}");
    }

    #[test]
    fn decode_soft_prefers_high_scoring_strokes() {
        let d = decoder();
        let observed = seq("the"); // S1 S2 S1
        // Scores confident in the observed strokes.
        let mut scores = [[0.01; STROKE_COUNT]; 3];
        scores[0][Stroke::S1.index()] = 0.95;
        scores[1][Stroke::S2.index()] = 0.95;
        scores[2][Stroke::S1.index()] = 0.95;
        let cands = d.decode_soft(&observed, &scores);
        assert_eq!(cands[0].word, "the");
    }

    #[test]
    #[should_panic(expected = "one score vector per stroke")]
    fn decode_soft_validates_lengths() {
        let d = decoder();
        d.decode_soft(&seq("the"), &[[0.1; STROKE_COUNT]; 2]);
    }

    #[test]
    fn full_edit_decoding_recovers_deletions() {
        let d = decoder();
        // Drop a stroke of "people": substitution-only decoding misses it,
        // the general edit decoder recovers it.
        let mut observed = seq("people");
        observed.remove(3);
        assert!(!d.decode(&observed).iter().any(|c| c.word == "people"));
        let cands = d.decode_full_edit(&observed, 0.05);
        assert!(
            cands.iter().any(|c| c.word == "people" && c.corrected),
            "{cands:?}"
        );
    }

    #[test]
    fn full_edit_prefers_exact_matches() {
        let d = decoder();
        let observed = seq("the");
        let cands = d.decode_full_edit(&observed, 0.05);
        assert_eq!(cands[0].word, "the");
        assert!(!cands[0].corrected);
    }

    #[test]
    fn full_edit_empty_input() {
        assert!(decoder().decode_full_edit(&[], 0.05).is_empty());
    }

    #[test]
    fn duplicate_words_keep_best_posterior() {
        // A word reachable via both the observed and a corrected sequence
        // must appear once with its best posterior.
        let d = decoder();
        let observed = seq("me");
        let cands = d.decode(&observed);
        let mut words: Vec<&str> = cands.iter().map(|c| c.word.as_str()).collect();
        words.sort_unstable();
        let before = words.len();
        words.dedup();
        assert_eq!(before, words.len(), "duplicate candidates: {cands:?}");
    }
}
