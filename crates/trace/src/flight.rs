//! The flight recorder's data plane: a fixed-capacity, single-writer ring
//! of recent [`TraceEvent`]s that is *always on*, independent of the
//! global sink gate (DESIGN.md §6.11).
//!
//! Unlike [`crate::RecordingSink`] — a process-global sink behind a mutex,
//! installed on demand — a [`FlightRing`] is owned outright by exactly one
//! writer (in practice a serve shard worker), so recording is a plain
//! array store: no atomics, no locks, no allocation after construction.
//! Readers never touch the ring directly; the owner snapshots it on
//! request (the serve layer routes snapshot requests through the shard's
//! own command queue, preserving single-writer discipline).
//!
//! Each entry pairs the event with the session and client-assigned
//! request id it belonged to, so a postmortem dump can be filtered per
//! session and stitched 1:1 against a client-side trace.
//!
//! Timestamp policy: identical to the rest of the crate — `tick_us` is
//! logical audio time, and this module never reads a clock.

use crate::event::{EventKind, Stage, TraceEvent, TICK_UNSET};
use crate::recording::{escape_json, push_detail_arg, push_json_f64, push_sep};
use std::fmt::Write as _;

/// Default per-shard ring capacity in entries (~360 KiB per shard).
pub const DEFAULT_FLIGHT_CAPACITY: usize = 4_096;

/// One recorded observation: the trace event plus the serve-layer
/// correlation keys it was emitted under.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FlightEntry {
    /// Session the event belongs to (0 for shard-global events).
    pub session: u64,
    /// Client-assigned wire request id (0 when not request-scoped).
    pub request_id: u64,
    /// The event itself.
    pub event: TraceEvent,
}

/// A bounded ring of [`FlightEntry`]s with exactly one writer.
///
/// `record` is O(1) and allocation-free once the ring has filled (the
/// backing `Vec` grows push-by-push up to `capacity` and is never resized
/// again); eviction overwrites the oldest slot in place.
#[derive(Debug)]
pub struct FlightRing {
    entries: Vec<FlightEntry>,
    /// Next slot to overwrite once the ring is full.
    head: usize,
    capacity: usize,
    dropped: u64,
}

impl FlightRing {
    /// Creates a ring holding at most `capacity` entries (floored at 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        FlightRing {
            entries: Vec::with_capacity(capacity.min(DEFAULT_FLIGHT_CAPACITY)),
            head: 0,
            capacity,
            dropped: 0,
        }
    }

    /// Entries currently buffered.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The fixed capacity this ring was built with.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Entries overwritten because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Records one entry, overwriting the oldest when full.
    #[inline]
    pub fn record(&mut self, session: u64, request_id: u64, event: TraceEvent) {
        let entry = FlightEntry { session, request_id, event };
        if self.entries.len() < self.capacity {
            self.entries.push(entry);
            return;
        }
        if let Some(slot) = self.entries.get_mut(self.head) {
            *slot = entry;
        }
        self.head = (self.head + 1) % self.capacity;
        self.dropped += 1;
    }

    /// A copy of the buffered entries, oldest first.
    pub fn snapshot(&self) -> Vec<FlightEntry> {
        let mut out = Vec::with_capacity(self.entries.len());
        out.extend_from_slice(self.entries.get(self.head..).unwrap_or(&[]));
        out.extend_from_slice(self.entries.get(..self.head).unwrap_or(&[]));
        out
    }
}

/// Serializes flight entries as Chrome `trace_event` JSON — the same
/// export shape as [`crate::RecordingSink::to_chrome_json`], with each
/// event additionally carrying `sid` (session) and `req` (request id)
/// args so dumps stitch against client-side traces. Events render under
/// `pid` 1 (the server side of a stitched timeline); the per-stage lane
/// metadata is emitted once up front.
pub fn flight_to_chrome_json(entries: &[FlightEntry]) -> String {
    let mut out = String::with_capacity(entries.len() * 112 + 1024);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    let mut first = true;
    for stage in Stage::ALL {
        push_sep(&mut out, &mut first);
        let _ = write!(
            out,
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{},\
             \"args\":{{\"name\":\"{}\"}}}}",
            stage.index(),
            stage.as_str()
        );
    }
    for entry in entries {
        let ev = &entry.event;
        push_sep(&mut out, &mut first);
        let ts = if ev.tick_us == TICK_UNSET { 0 } else { ev.tick_us };
        out.push_str("{\"name\":");
        escape_json(&mut out, ev.name);
        let _ = write!(
            out,
            ",\"cat\":\"{}\",\"pid\":1,\"tid\":{},\"ts\":{}",
            ev.stage.as_str(),
            ev.stage.index(),
            ts
        );
        match ev.kind {
            EventKind::Span => {
                let _ = write!(out, ",\"ph\":\"X\",\"dur\":{}", ev.wall_us);
            }
            EventKind::Instant => out.push_str(",\"ph\":\"i\",\"s\":\"t\""),
            EventKind::Counter => out.push_str(",\"ph\":\"C\""),
        }
        out.push_str(",\"args\":{");
        let _ = write!(out, "\"sid\":{},\"req\":{}", entry.session, entry.request_id);
        if ev.value != 0.0 {
            out.push_str(",\"value\":");
            push_json_f64(&mut out, ev.value);
        }
        push_detail_arg(&mut out, ev, false);
        out.push('}');
        out.push('}');
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::SmallStr;

    fn ev(name: &'static str, tick: u64) -> TraceEvent {
        TraceEvent {
            stage: Stage::Serve,
            name,
            kind: EventKind::Span,
            tick_us: tick,
            wall_us: 7,
            value: 0.0,
            detail: SmallStr::empty(),
        }
    }

    #[test]
    fn ring_overwrites_oldest_and_snapshots_in_order() {
        let mut ring = FlightRing::new(3);
        assert!(ring.is_empty());
        for i in 0..5u64 {
            ring.record(i, 100 + i, ev("push", i));
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.dropped(), 2);
        let snap = ring.snapshot();
        let sessions: Vec<u64> = snap.iter().map(|e| e.session).collect();
        assert_eq!(sessions, vec![2, 3, 4]); // oldest first, oldest evicted
        assert_eq!(snap.first().map(|e| e.request_id), Some(102));
    }

    #[test]
    fn ring_capacity_floor_and_exact_fill() {
        let mut ring = FlightRing::new(0);
        assert_eq!(ring.capacity(), 1);
        ring.record(1, 1, ev("a", 0));
        ring.record(2, 2, ev("b", 1));
        assert_eq!(ring.len(), 1);
        assert_eq!(ring.snapshot().first().map(|e| e.session), Some(2));
    }

    #[test]
    fn chrome_export_carries_correlation_args() {
        let mut ring = FlightRing::new(8);
        ring.record(42, 9001, ev("push", 1_000));
        let mut inst = ev("shed", 2_000);
        inst.kind = EventKind::Instant;
        inst.detail = SmallStr::new("latched");
        ring.record(0, 0, inst);
        let json = flight_to_chrome_json(&ring.snapshot());
        assert!(json.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
        assert!(json.ends_with("]}"));
        assert!(json.contains("\"sid\":42,\"req\":9001"));
        assert!(json.contains("\"ph\":\"X\",\"dur\":7"));
        assert!(json.contains("\"detail\":\"latched\""));
        // Balanced braces (cheap well-formedness check).
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }
}
