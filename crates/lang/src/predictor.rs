//! Next-word prediction after a committed word.
//!
//! "After word recognition, our texts-entry algorithm will predict
//! following words by automatic successive associations by using the
//! 2-gram data of COCA" (Sec. III-C).

use echowrite_corpus::BigramModel;

/// Suggests likely next words once a word has been committed.
///
/// # Example
///
/// ```
/// use echowrite_lang::NextWordPredictor;
/// let p = NextWordPredictor::embedded();
/// assert_eq!(p.predict("of", 1), vec!["the".to_string()]);
/// ```
#[derive(Debug, Clone)]
pub struct NextWordPredictor {
    model: BigramModel,
    default_k: usize,
}

impl NextWordPredictor {
    /// Uses the embedded bigram model with the paper's 5-candidate list.
    pub fn embedded() -> Self {
        NextWordPredictor { model: BigramModel::embedded().clone(), default_k: 5 }
    }

    /// Uses a custom bigram model.
    pub fn with_model(model: BigramModel, default_k: usize) -> Self {
        assert!(default_k > 0, "prediction list length must be positive");
        NextWordPredictor { model, default_k }
    }

    /// Predicts `k` next words after `prev`.
    pub fn predict(&self, prev: &str, k: usize) -> Vec<String> {
        self.model.predict(prev, k)
    }

    /// Predicts the default number of next words.
    pub fn suggest(&self, prev: &str) -> Vec<String> {
        self.model.predict(prev, self.default_k)
    }

    /// Whether `word` would be the top suggestion after `prev` — when true,
    /// the user can accept the prediction instead of writing the strokes,
    /// the mechanism behind the paper's "8 words per second in a fuzzy way"
    /// burst rate.
    pub fn is_top_prediction(&self, prev: &str, word: &str) -> bool {
        self.predict(prev, 1)
            .first()
            .map(|w| w == &word.to_ascii_lowercase())
            .unwrap_or(false)
    }
}

impl Default for NextWordPredictor {
    fn default() -> Self {
        NextWordPredictor::embedded()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn embedded_predicts_common_bigrams() {
        let p = NextWordPredictor::embedded();
        assert_eq!(p.predict("of", 1), vec!["the".to_string()]);
        assert_eq!(p.predict("going", 1), vec!["to".to_string()]);
    }

    #[test]
    fn suggest_uses_default_k() {
        let p = NextWordPredictor::embedded();
        assert_eq!(p.suggest("the").len(), 5);
    }

    #[test]
    fn is_top_prediction_checks_head() {
        let p = NextWordPredictor::embedded();
        assert!(p.is_top_prediction("of", "the"));
        assert!(p.is_top_prediction("of", "THE"));
        assert!(!p.is_top_prediction("of", "water"));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_default_k_rejected() {
        NextWordPredictor::with_model(BigramModel::embedded().clone(), 0);
    }
}
