//! Minimal WAV (RIFF PCM) reading and writing.
//!
//! Lets simulated microphone traces be exported for listening/inspection
//! and real recordings be pulled into the pipeline, without an external
//! audio dependency. Supports the formats EchoWrite needs: mono or stereo,
//! 16-bit PCM at any sample rate (the pipeline expects 44.1 kHz).

use std::fmt;
use std::io::{Read, Write};

/// Errors from WAV parsing.
#[derive(Debug)]
pub enum WavError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The file is not a RIFF/WAVE stream or a chunk is malformed.
    Malformed(&'static str),
    /// The encoding is valid WAV but not supported here.
    Unsupported(String),
}

impl fmt::Display for WavError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WavError::Io(e) => write!(f, "i/o error: {e}"),
            WavError::Malformed(what) => write!(f, "malformed wav: {what}"),
            WavError::Unsupported(what) => write!(f, "unsupported wav: {what}"),
        }
    }
}

impl std::error::Error for WavError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WavError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for WavError {
    fn from(e: std::io::Error) -> Self {
        WavError::Io(e)
    }
}

/// Decoded WAV audio: normalized `[-1, 1]` samples per channel-interleaved
/// frame, flattened to mono by averaging channels.
#[derive(Debug, Clone, PartialEq)]
pub struct WavAudio {
    /// Mono samples in `[-1, 1]`.
    pub samples: Vec<f64>,
    /// Sample rate in Hz.
    pub sample_rate: u32,
}

/// Writes mono `samples` (clamped to `[-1, 1]`) as 16-bit PCM.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_wav<W: Write>(mut w: W, samples: &[f64], sample_rate: u32) -> Result<(), WavError> {
    let data_len = (samples.len() * 2) as u32;
    w.write_all(b"RIFF")?;
    w.write_all(&(36 + data_len).to_le_bytes())?;
    w.write_all(b"WAVE")?;
    // fmt chunk: PCM, mono, 16-bit.
    w.write_all(b"fmt ")?;
    w.write_all(&16u32.to_le_bytes())?;
    w.write_all(&1u16.to_le_bytes())?; // PCM
    w.write_all(&1u16.to_le_bytes())?; // mono
    w.write_all(&sample_rate.to_le_bytes())?;
    w.write_all(&(sample_rate * 2).to_le_bytes())?; // byte rate
    w.write_all(&2u16.to_le_bytes())?; // block align
    w.write_all(&16u16.to_le_bytes())?; // bits per sample
    w.write_all(b"data")?;
    w.write_all(&data_len.to_le_bytes())?;
    for &s in samples {
        let v = (s.clamp(-1.0, 1.0) * i16::MAX as f64).round() as i16;
        w.write_all(&v.to_le_bytes())?;
    }
    Ok(())
}

/// Convenience: writes a mono WAV file to `path`.
///
/// # Errors
///
/// Propagates file-creation and write errors.
pub fn write_wav_file(
    path: impl AsRef<std::path::Path>,
    samples: &[f64],
    sample_rate: u32,
) -> Result<(), WavError> {
    let file = std::fs::File::create(path)?;
    write_wav(std::io::BufWriter::new(file), samples, sample_rate)
}

/// Reads `N` little-endian bytes at `at`, or a typed error on truncation.
fn field<const N: usize>(bytes: &[u8], at: usize, what: &'static str) -> Result<[u8; N], WavError> {
    bytes
        .get(at..at.checked_add(N).ok_or(WavError::Malformed(what))?)
        .and_then(|s| <[u8; N]>::try_from(s).ok())
        .ok_or(WavError::Malformed(what))
}

/// Little-endian `u16` at `at`.
fn le_u16(bytes: &[u8], at: usize, what: &'static str) -> Result<u16, WavError> {
    Ok(u16::from_le_bytes(field::<2>(bytes, at, what)?))
}

/// Little-endian `u32` at `at`.
fn le_u32(bytes: &[u8], at: usize, what: &'static str) -> Result<u32, WavError> {
    Ok(u32::from_le_bytes(field::<4>(bytes, at, what)?))
}

/// Reads a 16-bit PCM WAV stream, averaging channels to mono.
///
/// Every multi-byte field is bounds-checked: truncated or garbage input
/// yields a typed [`WavError`], never a panic.
///
/// # Errors
///
/// Returns [`WavError::Malformed`] for structural problems and
/// [`WavError::Unsupported`] for valid-but-unhandled encodings
/// (non-PCM, not 16-bit).
pub fn read_wav<R: Read>(mut r: R) -> Result<WavAudio, WavError> {
    let mut bytes = Vec::new();
    r.read_to_end(&mut bytes)?;
    if bytes.get(0..4) != Some(b"RIFF".as_slice()) || bytes.get(8..12) != Some(b"WAVE".as_slice())
    {
        return Err(WavError::Malformed("missing RIFF/WAVE header"));
    }
    let mut pos = 12usize;
    let mut fmt: Option<(u16, u16, u32, u16)> = None; // format, channels, rate, bits
    let mut data: Option<&[u8]> = None;
    while pos + 8 <= bytes.len() {
        let id: [u8; 4] = field(&bytes, pos, "chunk id")?;
        let len = le_u32(&bytes, pos + 4, "chunk length")? as usize;
        let body_start = pos + 8;
        let body_end = body_start.checked_add(len).ok_or(WavError::Malformed("chunk overflow"))?;
        let body = bytes
            .get(body_start..body_end)
            .ok_or(WavError::Malformed("chunk extends past end of file"))?;
        match &id {
            b"fmt " => {
                fmt = Some((
                    le_u16(body, 0, "fmt chunk too short")?,
                    le_u16(body, 2, "fmt chunk too short")?,
                    le_u32(body, 4, "fmt chunk too short")?,
                    le_u16(body, 14, "fmt chunk too short")?,
                ));
            }
            b"data" => data = Some(body),
            _ => {}
        }
        // Chunks are word-aligned.
        pos = body_end + (len & 1);
    }
    let (format, channels, sample_rate, bits) =
        fmt.ok_or(WavError::Malformed("missing fmt chunk"))?;
    let data = data.ok_or(WavError::Malformed("missing data chunk"))?;
    if format != 1 {
        return Err(WavError::Unsupported(format!("format tag {format} (want PCM=1)")));
    }
    if bits != 16 {
        return Err(WavError::Unsupported(format!("{bits}-bit samples (want 16)")));
    }
    if channels == 0 {
        return Err(WavError::Malformed("zero channels"));
    }
    let frame_bytes = 2 * channels as usize;
    let mut samples = Vec::with_capacity(data.len() / frame_bytes);
    for frame in data.chunks_exact(frame_bytes) {
        let mut acc = 0.0;
        for pair in frame.chunks_exact(2) {
            let v = i16::from_le_bytes(<[u8; 2]>::try_from(pair).unwrap_or_default());
            acc += v as f64 / i16::MAX as f64;
        }
        samples.push(acc / channels as f64);
    }
    Ok(WavAudio { samples, sample_rate })
}

/// Convenience: reads a WAV file from `path`.
///
/// # Errors
///
/// Propagates file-open and parse errors.
pub fn read_wav_file(path: impl AsRef<std::path::Path>) -> Result<WavAudio, WavError> {
    let file = std::fs::File::open(path)?;
    read_wav(std::io::BufReader::new(file))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_preserves_samples() {
        let samples: Vec<f64> = (0..1000)
            .map(|i| (std::f64::consts::TAU * 440.0 * i as f64 / 44_100.0).sin() * 0.8)
            .collect();
        let mut buf = Vec::new();
        write_wav(&mut buf, &samples, 44_100).unwrap();
        let audio = read_wav(buf.as_slice()).unwrap();
        assert_eq!(audio.sample_rate, 44_100);
        assert_eq!(audio.samples.len(), samples.len());
        for (a, b) in audio.samples.iter().zip(&samples) {
            assert!((a - b).abs() < 1.0 / 16_000.0, "{a} vs {b}");
        }
    }

    #[test]
    fn clamps_out_of_range() {
        let mut buf = Vec::new();
        write_wav(&mut buf, &[2.0, -2.0], 8000).unwrap();
        let audio = read_wav(buf.as_slice()).unwrap();
        assert!((audio.samples[0] - 1.0).abs() < 1e-3);
        assert!((audio.samples[1] + 1.0).abs() < 1e-3);
    }

    #[test]
    fn rejects_garbage() {
        assert!(matches!(
            read_wav(&b"not a wav file at all"[..]),
            Err(WavError::Malformed(_))
        ));
        assert!(matches!(read_wav(&b""[..]), Err(WavError::Malformed(_))));
    }

    #[test]
    fn rejects_truncation_at_every_prefix() {
        // A valid file cut anywhere must fail typed, never panic. Very
        // short prefixes of the data chunk still decode (fewer frames), so
        // only structural truncations are asserted as errors.
        let mut buf = Vec::new();
        write_wav(&mut buf, &[0.25; 16], 44_100).unwrap();
        for cut in 0..44 {
            let r = read_wav(&buf[..cut]);
            assert!(
                matches!(r, Err(WavError::Malformed(_))),
                "prefix of {cut} bytes should be malformed, got {r:?}"
            );
        }
    }

    #[test]
    fn rejects_garbage_chunk_lengths() {
        let mut buf = Vec::new();
        write_wav(&mut buf, &[0.5; 8], 44_100).unwrap();
        // Blow up the fmt chunk length so it runs past the end of file.
        buf[16..20].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(read_wav(buf.as_slice()), Err(WavError::Malformed(_))));
    }

    #[test]
    fn random_bytes_never_panic() {
        // Deterministic pseudo-random garbage, some with a RIFF prefix so
        // the chunk walker actually runs.
        let mut state = 0x9e37_79b9_u32;
        for trial in 0..64 {
            let mut bytes: Vec<u8> = (0..200)
                .map(|_| {
                    state = state.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
                    (state >> 24) as u8
                })
                .collect();
            if trial % 2 == 0 {
                bytes[..4].copy_from_slice(b"RIFF");
                bytes[8..12].copy_from_slice(b"WAVE");
            }
            let _ = read_wav(bytes.as_slice());
        }
    }

    #[test]
    fn rejects_unsupported_format() {
        // Hand-build a float-format (3) WAV header.
        let mut buf = Vec::new();
        write_wav(&mut buf, &[0.0; 4], 8000).unwrap();
        buf[20] = 3; // format tag → IEEE float
        assert!(matches!(read_wav(buf.as_slice()), Err(WavError::Unsupported(_))));
    }

    #[test]
    fn stereo_is_averaged_to_mono() {
        // Build a stereo file manually: L=0.5, R=-0.5 → mono 0.
        let mut buf = Vec::new();
        let n_frames = 4u32;
        let data_len = n_frames * 4;
        buf.extend_from_slice(b"RIFF");
        buf.extend_from_slice(&(36 + data_len).to_le_bytes());
        buf.extend_from_slice(b"WAVE");
        buf.extend_from_slice(b"fmt ");
        buf.extend_from_slice(&16u32.to_le_bytes());
        buf.extend_from_slice(&1u16.to_le_bytes());
        buf.extend_from_slice(&2u16.to_le_bytes()); // stereo
        buf.extend_from_slice(&44_100u32.to_le_bytes());
        buf.extend_from_slice(&(44_100u32 * 4).to_le_bytes());
        buf.extend_from_slice(&4u16.to_le_bytes());
        buf.extend_from_slice(&16u16.to_le_bytes());
        buf.extend_from_slice(b"data");
        buf.extend_from_slice(&data_len.to_le_bytes());
        let half = i16::MAX / 2;
        for _ in 0..n_frames {
            buf.extend_from_slice(&half.to_le_bytes());
            buf.extend_from_slice(&(-half).to_le_bytes());
        }
        let audio = read_wav(buf.as_slice()).unwrap();
        assert_eq!(audio.samples.len(), 4);
        for s in audio.samples {
            assert!(s.abs() < 1e-4);
        }
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("echowrite_wav_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.wav");
        write_wav_file(&path, &[0.1, -0.2, 0.3], 22_050).unwrap();
        let audio = read_wav_file(&path).unwrap();
        assert_eq!(audio.sample_rate, 22_050);
        assert_eq!(audio.samples.len(), 3);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn skips_unknown_chunks() {
        // Insert a LIST chunk before data.
        let mut inner = Vec::new();
        write_wav(&mut inner, &[0.5; 8], 44_100).unwrap();
        // Reassemble: header + fmt + LIST + data.
        let mut buf = Vec::new();
        buf.extend_from_slice(&inner[..36]); // RIFF..fmt chunk end
        buf.extend_from_slice(b"LIST");
        buf.extend_from_slice(&4u32.to_le_bytes());
        buf.extend_from_slice(b"INFO");
        buf.extend_from_slice(&inner[36..]); // data chunk
        // Fix RIFF size.
        let riff_len = (buf.len() - 8) as u32;
        buf[4..8].copy_from_slice(&riff_len.to_le_bytes());
        let audio = read_wav(buf.as_slice()).unwrap();
        assert_eq!(audio.samples.len(), 8);
    }
}
