//! Machine-readable diagnostic output: SARIF 2.1.0 and a stable JSON form.
//!
//! Both writers are hand-rolled (the build environment is offline; echolint
//! stays dependency-free) and byte-deterministic: same diagnostics in, same
//! bytes out, so CI can diff runs and the fixture tests can pin output.
//!
//! The SARIF document carries one `run` whose driver lists every rule (id +
//! short description from [`Rule::describe`]) and one `result` per
//! diagnostic with a `physicalLocation` at file:line — exactly the shape
//! GitHub code scanning ingests to render PR annotations.

use crate::rules::{Diagnostic, Rule};
use std::fmt::Write as _;

/// Escapes a string for a JSON string literal (no surrounding quotes).
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders diagnostics as a SARIF 2.1.0 document.
pub fn to_sarif(diags: &[Diagnostic]) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"$schema\": \"https://docs.oasis-open.org/sarif/sarif/v2.1.0/os/schemas/sarif-schema-2.1.0.json\",\n");
    s.push_str("  \"version\": \"2.1.0\",\n");
    s.push_str("  \"runs\": [\n    {\n");
    s.push_str("      \"tool\": {\n        \"driver\": {\n");
    s.push_str("          \"name\": \"echolint\",\n");
    s.push_str(&format!(
        "          \"version\": \"{}\",\n",
        esc(env!("CARGO_PKG_VERSION"))
    ));
    s.push_str("          \"informationUri\": \"https://example.invalid/echowrite/echolint\",\n");
    s.push_str("          \"rules\": [\n");
    for (k, r) in Rule::ALL.iter().enumerate() {
        s.push_str(&format!(
            "            {{ \"id\": \"{}\", \"shortDescription\": {{ \"text\": \"{}\" }} }}{}\n",
            esc(r.id()),
            esc(r.describe()),
            if k + 1 < Rule::ALL.len() { "," } else { "" }
        ));
    }
    s.push_str("          ]\n        }\n      },\n");
    s.push_str("      \"results\": [\n");
    for (k, d) in diags.iter().enumerate() {
        let rule_index = Rule::ALL.iter().position(|r| *r == d.rule).unwrap_or(0);
        s.push_str("        {\n");
        s.push_str(&format!("          \"ruleId\": \"{}\",\n", esc(d.rule.id())));
        s.push_str(&format!("          \"ruleIndex\": {rule_index},\n"));
        s.push_str("          \"level\": \"error\",\n");
        s.push_str(&format!(
            "          \"message\": {{ \"text\": \"{}\" }},\n",
            esc(&d.message)
        ));
        s.push_str("          \"locations\": [\n            {\n");
        s.push_str("              \"physicalLocation\": {\n");
        s.push_str(&format!(
            "                \"artifactLocation\": {{ \"uri\": \"{}\" }},\n",
            esc(&d.file)
        ));
        s.push_str(&format!(
            "                \"region\": {{ \"startLine\": {} }}\n",
            d.line.max(1)
        ));
        s.push_str("              }\n            }\n          ]\n");
        s.push_str(&format!("        }}{}\n", if k + 1 < diags.len() { "," } else { "" }));
    }
    s.push_str("      ]\n    }\n  ]\n}\n");
    s
}

/// Renders diagnostics as the stable JSON form consumed by repo tooling:
/// a flat `diagnostics` array plus a `count`, nothing SARIF-shaped.
pub fn to_json(diags: &[Diagnostic]) -> String {
    let mut s = String::from("{\n  \"diagnostics\": [\n");
    for (k, d) in diags.iter().enumerate() {
        s.push_str(&format!(
            "    {{ \"file\": \"{}\", \"line\": {}, \"rule\": \"{}\", \"message\": \"{}\" }}{}\n",
            esc(&d.file),
            d.line,
            esc(d.rule.id()),
            esc(&d.message),
            if k + 1 < diags.len() { "," } else { "" }
        ));
    }
    s.push_str(&format!("  ],\n  \"count\": {}\n}}\n", diags.len()));
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Diagnostic> {
        vec![
            Diagnostic {
                file: "crates/dsp/src/wav.rs".into(),
                line: 12,
                rule: Rule::PanicReach,
                message: ".unwrap() can panic — return a typed error instead; call chain: a → b".into(),
            },
            Diagnostic {
                file: "crates/serve/src/manager.rs".into(),
                line: 3,
                rule: Rule::AtomicsOrder,
                message: "Ordering::Relaxed without a reasoned `// ordering:` comment in scope".into(),
            },
        ]
    }

    /// A tiny structural JSON check: quotes balanced outside escapes, braces
    /// and brackets balanced outside strings. Not a parser — enough to catch
    /// writer regressions without a JSON dependency.
    fn assert_balanced(s: &str) {
        let (mut brace, mut bracket) = (0i64, 0i64);
        let mut in_str = false;
        let mut esc = false;
        for c in s.chars() {
            if in_str {
                if esc {
                    esc = false;
                } else if c == '\\' {
                    esc = true;
                } else if c == '"' {
                    in_str = false;
                }
                continue;
            }
            match c {
                '"' => in_str = true,
                '{' => brace += 1,
                '}' => brace -= 1,
                '[' => bracket += 1,
                ']' => bracket -= 1,
                _ => {}
            }
            assert!(brace >= 0 && bracket >= 0, "negative nesting");
        }
        assert!(!in_str && brace == 0 && bracket == 0, "unbalanced document");
    }

    #[test]
    fn sarif_has_schema_version_rules_and_locations() {
        let s = to_sarif(&sample());
        assert_balanced(&s);
        assert!(s.contains("\"version\": \"2.1.0\""));
        assert!(s.contains("sarif-schema-2.1.0.json"));
        assert!(s.contains("\"name\": \"echolint\""));
        for r in Rule::ALL {
            assert!(s.contains(&format!("\"id\": \"{}\"", r.id())), "missing rule {}", r.id());
        }
        assert!(s.contains("\"uri\": \"crates/dsp/src/wav.rs\""));
        assert!(s.contains("\"startLine\": 12"));
        assert!(s.contains("\"ruleId\": \"panic-reach\""));
    }

    #[test]
    fn sarif_of_empty_run_is_still_a_valid_document() {
        let s = to_sarif(&[]);
        assert_balanced(&s);
        assert!(s.contains("\"results\": [\n      ]"));
    }

    #[test]
    fn json_is_flat_and_counts() {
        let s = to_json(&sample());
        assert_balanced(&s);
        assert!(s.contains("\"count\": 2"));
        assert!(s.contains("\"rule\": \"atomics-order\""));
    }

    #[test]
    fn output_is_deterministic() {
        let d = sample();
        assert_eq!(to_sarif(&d), to_sarif(&d));
        assert_eq!(to_json(&d), to_json(&d));
    }

    #[test]
    fn strings_are_escaped() {
        let d = vec![Diagnostic {
            file: "a\"b.rs".into(),
            line: 1,
            rule: Rule::Marker,
            message: "tab\there\nline".into(),
        }];
        let s = to_json(&d);
        assert_balanced(&s);
        assert!(s.contains("a\\\"b.rs") && s.contains("tab\\there\\nline"));
    }
}
