//! A human-writer model: turns stroke sequences into finger trajectories
//! with per-user variability.
//!
//! The paper's participants differ in "proficiency in performing finger
//! gestures" (Sec. V-A3); this model captures that with per-writer jitter in
//! stroke duration, amplitude, writing-centre drift, and physiological
//! tremor. The produced [`Performance`] carries ground-truth stroke spans so
//! segmentation and recognition can be scored exactly.

use crate::geom::Vec3;
use crate::stroke::Stroke;
use crate::trajectory::{StrokePath, Trajectory};
use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Parameters describing how (and where) a user writes.
///
/// Defaults follow the paper's setting: strokes of roughly 10 cm written
/// ~15 cm in front of and slightly above the device, finishing within one
/// second ("each stroke lasting no more than 1 second", Sec. III-A).
#[derive(Debug, Clone, PartialEq)]
pub struct WriterParams {
    /// Centre of the writing area in device coordinates (metres).
    pub centre: Vec3,
    /// World direction of the writing plane's lateral (+x) axis. Tilted so
    /// that lateral motion has a radial component toward/away from the
    /// device, as when the plane faces the device rather than the ceiling.
    pub axis_u: Vec3,
    /// World direction of the writing plane's vertical (+y) axis, likewise
    /// tilted toward the device.
    pub axis_v: Vec3,
    /// Stroke extent in metres.
    pub amplitude: f64,
    /// Nominal duration of a unit-length stroke (S1) in seconds.
    pub base_duration: f64,
    /// Hold time before the first stroke (lets the pipeline collect the
    /// static frames it subtracts as background).
    pub lead_in: f64,
    /// Pause between withdraw and the next stroke, seconds.
    pub pause: f64,
    /// Minimum duration of the slow withdraw move back to the next start,
    /// seconds (short repositioning still takes at least this long).
    pub withdraw_duration: f64,
    /// Mean withdraw speed in m/s: long repositioning moves take
    /// proportionally longer, keeping the withdraw's Doppler signature slow
    /// regardless of distance (the paper's premise that the withdraw "keeps
    /// speed but the acceleration decreases notably").
    pub withdraw_speed: f64,
    /// Relative 1σ jitter of stroke durations (0 = metronomic).
    pub duration_jitter: f64,
    /// Relative 1σ jitter of stroke amplitude.
    pub amplitude_jitter: f64,
    /// Absolute 1σ drift of the writing centre per performance (metres).
    pub centre_jitter: f64,
    /// Amplitude of physiological hand tremor (metres, ~4–9 Hz).
    pub tremor: f64,
    /// Trajectory sample period in seconds.
    pub dt: f64,
}

impl WriterParams {
    /// Nominal parameters for a practised writer.
    pub fn nominal() -> Self {
        WriterParams {
            centre: Vec3::new(0.05, 0.08, 0.14),
            axis_u: Vec3::new(1.0, 0.0, 0.55),
            axis_v: Vec3::new(0.0, 1.0, 0.45),
            amplitude: 0.10,
            base_duration: 0.27,
            lead_in: 0.6,
            pause: 0.20,
            withdraw_duration: 0.85,
            withdraw_speed: 0.13,
            duration_jitter: 0.08,
            amplitude_jitter: 0.08,
            centre_jitter: 0.004,
            tremor: 0.0008,
            dt: 1.0 / 44_100.0,
        }
    }

    /// Parameters with all randomness disabled — the canonical "template"
    /// writer whose profiles the recognizer stores (the paper's training-free
    /// templates are intrinsic to the strokes, not to a user).
    pub fn canonical() -> Self {
        WriterParams {
            duration_jitter: 0.0,
            amplitude_jitter: 0.0,
            centre_jitter: 0.0,
            tremor: 0.0,
            ..WriterParams::nominal()
        }
    }

    /// Validates physical plausibility.
    ///
    /// # Errors
    ///
    /// Returns a message if any parameter is non-physical (non-positive
    /// durations/amplitude, writing centre at the device, or a peak finger
    /// speed beyond the paper's 4 m/s bound).
    pub fn validate(&self) -> Result<(), String> {
        if self.amplitude <= 0.0 {
            return Err(format!("amplitude must be positive, got {}", self.amplitude));
        }
        if self.base_duration <= 0.0 || self.dt <= 0.0 {
            return Err("durations must be positive".to_string());
        }
        if self.centre.norm() < 0.03 {
            return Err("writing centre is implausibly close to the device".to_string());
        }
        if self.axis_u.norm() < 1e-6 || self.axis_v.norm() < 1e-6 {
            return Err("writing-plane axes must be non-zero".to_string());
        }
        if self.withdraw_speed <= 0.0 {
            return Err(format!(
                "withdraw speed must be positive, got {}",
                self.withdraw_speed
            ));
        }
        if self.axis_u.normalized().cross(self.axis_v.normalized()).norm() < 0.5 {
            return Err("writing-plane axes are nearly parallel".to_string());
        }
        // Longest path is an arc: r = 0.6·A swept 4π/3.
        // Minimum-jerk peak speed is 1.875 × mean speed; allow the jitter
        // clamp (duration shrunk to at worst 0.6×).
        let worst_len = 0.6 * self.amplitude * 4.0 * std::f64::consts::PI / 3.0;
        let worst_dur = 0.6 * self.base_duration * Stroke::S5.relative_duration();
        let peak = 1.875 * worst_len / worst_dur;
        if peak > 4.0 {
            return Err(format!(
                "peak finger speed {peak:.2} m/s exceeds the paper's 4 m/s bound"
            ));
        }
        Ok(())
    }
}

impl Default for WriterParams {
    fn default() -> Self {
        WriterParams::nominal()
    }
}

/// Ground-truth span of one written stroke inside a [`Performance`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StrokeSpan {
    /// The stroke that was written.
    pub stroke: Stroke,
    /// Start time of the stroke motion, seconds from trace start.
    pub start: f64,
    /// End time of the stroke motion, seconds from trace start.
    pub end: f64,
}

/// A finger trajectory together with the ground truth of what was written.
#[derive(Debug, Clone, PartialEq)]
pub struct Performance {
    /// The full finger trajectory (strokes, withdraws, pauses).
    pub trajectory: Trajectory,
    /// Per-stroke ground-truth spans in seconds.
    pub spans: Vec<StrokeSpan>,
}

impl Performance {
    /// The stroke sequence that was written.
    pub fn strokes(&self) -> Vec<Stroke> {
        self.spans.iter().map(|s| s.stroke).collect()
    }
}

/// A writer that renders stroke sequences as trajectories.
///
/// Deterministic for a given seed: two writers with identical parameters and
/// seeds produce identical performances.
///
/// # Example
///
/// ```
/// use echowrite_gesture::{Writer, WriterParams, Stroke};
/// let mut w = Writer::new(WriterParams::nominal(), 7);
/// let perf = w.write_sequence(&[Stroke::S1, Stroke::S2]);
/// assert_eq!(perf.spans.len(), 2);
/// assert!(perf.trajectory.duration() > 1.0);
/// ```
#[derive(Debug, Clone)]
pub struct Writer {
    params: WriterParams,
    rng: ChaCha8Rng,
    tremor_phase: [f64; 2],
    tremor_freq: [f64; 2],
}

impl Writer {
    /// Creates a writer with the given parameters and RNG seed.
    ///
    /// # Panics
    ///
    /// Panics if the parameters fail [`WriterParams::validate`].
    pub fn new(params: WriterParams, seed: u64) -> Self {
        if let Err(msg) = params.validate() {
            // echolint: allow(no-panic-path) -- documented `# Panics` contract of Writer::new
            panic!("invalid writer parameters: {msg}");
        }
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let tremor_phase = [
            rng.gen::<f64>() * std::f64::consts::TAU,
            rng.gen::<f64>() * std::f64::consts::TAU,
        ];
        let tremor_freq = [3.5 + 1.5 * rng.gen::<f64>(), 5.5 + 1.5 * rng.gen::<f64>()];
        Writer { params, rng, tremor_phase, tremor_freq }
    }

    /// The writer's parameters.
    pub fn params(&self) -> &WriterParams {
        &self.params
    }

    /// Standard-normal sample via Box–Muller.
    fn gauss(&mut self) -> f64 {
        let u1: f64 = self.rng.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = self.rng.gen();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    fn jittered(&mut self, nominal: f64, rel_sigma: f64) -> f64 {
        // The clamp keeps draws legible: a stroke at 60 % scale would be a
        // do-over for a real writer, not an input.
        let f = 1.0 + rel_sigma * self.gauss();
        nominal * f.clamp(0.78, 1.35)
    }

    /// Renders a single stroke (with lead-in hold and trailing pause).
    pub fn write_stroke(&mut self, stroke: Stroke) -> Performance {
        self.write_sequence(std::slice::from_ref(&stroke))
    }

    /// Renders a stroke sequence: lead-in hold, then for each stroke a
    /// minimum-jerk traversal followed by a slow withdraw to the next
    /// stroke's start position and a short pause.
    pub fn write_sequence(&mut self, strokes: &[Stroke]) -> Performance {
        let p = self.params.clone();
        let mut traj = Trajectory::new(p.dt);
        let mut spans = Vec::with_capacity(strokes.len());

        // Per-performance centre drift.
        let centre = p.centre
            + Vec3::new(
                p.centre_jitter * self.gauss(),
                p.centre_jitter * self.gauss(),
                p.centre_jitter * self.gauss(),
            );
        let (u, v) = (p.axis_u.normalized(), p.axis_v.normalized());
        let embed = move |pt: Vec3| centre + u * pt.x + v * pt.y + u.cross(v) * pt.z;

        let first_amp = self.jittered(p.amplitude, p.amplitude_jitter);
        let first_path =
            StrokePath::for_stroke(*strokes.first().unwrap_or(&Stroke::S1), first_amp);
        traj.hold(embed(first_path.point(0.0)), p.lead_in);

        let mut amp = first_amp;
        for (i, &stroke) in strokes.iter().enumerate() {
            let path = StrokePath::for_stroke(stroke, amp);
            let dur =
                self.jittered(p.base_duration * stroke.relative_duration(), p.duration_jitter);
            let start = traj.duration();
            traj.traverse_mapped(&path, dur, embed);
            spans.push(StrokeSpan { stroke, start, end: traj.duration() });

            // Withdraw: slow move to the next stroke's start (or back to a
            // rest point after the last stroke), then a short pause. The
            // duration scales with distance so long repositioning stays as
            // slow (in m/s) as short repositioning.
            amp = self.jittered(p.amplitude, p.amplitude_jitter);
            let next_start = match strokes.get(i + 1) {
                Some(&next) => embed(StrokePath::for_stroke(next, amp).point(0.0)),
                None => embed(Vec3::ZERO),
            };
            // The lead-in hold guarantees samples exist; fall back to the
            // target itself (a zero-length move) rather than panicking.
            let here = traj.points().last().copied().unwrap_or(next_start);
            let dist = here.distance(next_start);
            let dur = (dist / p.withdraw_speed).max(p.withdraw_duration);
            traj.move_to(next_start, dur);
            let pause = self.jittered(p.pause, p.duration_jitter);
            traj.hold(next_start, pause);
        }

        Performance { trajectory: self.apply_tremor(&traj), spans }
    }

    /// Renders a multi-word phrase as one continuous trajectory: words are
    /// written in sequence with a smooth repositioning move and a
    /// `word_pause` rest between them (no positional discontinuities — a
    /// teleporting finger would inject a wideband click into the rendered
    /// audio).
    ///
    /// Returns an empty performance for an empty word list.
    pub fn write_phrase(&mut self, words: &[Vec<Stroke>], word_pause: f64) -> Performance {
        let mut out: Option<Performance> = None;
        for word in words {
            let perf = self.write_sequence(word);
            match &mut out {
                None => out = Some(perf),
                Some(acc) => {
                    // write_sequence always emits the lead-in hold, so both
                    // endpoints exist; if either is ever empty the stitch is
                    // skipped instead of panicking.
                    if let (Some(&here), Some(&target)) =
                        (acc.trajectory.points().last(), perf.trajectory.points().first())
                    {
                        let dist = here.distance(target);
                        let dur = (dist / self.params.withdraw_speed).max(0.5);
                        acc.trajectory.move_to(target, dur);
                        acc.trajectory.hold(target, word_pause);
                    }
                    let offset = acc.trajectory.duration();
                    for &p in perf.trajectory.points() {
                        acc.trajectory.push(p);
                    }
                    for s in perf.spans {
                        acc.spans.push(StrokeSpan {
                            stroke: s.stroke,
                            start: s.start + offset,
                            end: s.end + offset,
                        });
                    }
                }
            }
        }
        out.unwrap_or_else(|| Performance {
            trajectory: Trajectory::new(self.params.dt),
            spans: Vec::new(),
        })
    }

    /// Adds smooth physiological tremor (two incommensurate sinusoids in the
    /// 4–9 Hz band) to every sample.
    fn apply_tremor(&mut self, traj: &Trajectory) -> Trajectory {
        if self.params.tremor == 0.0 {
            return traj.clone();
        }
        let dt = traj.dt();
        let a = self.params.tremor;
        let mut out = Trajectory::new(dt);
        let [freq0, freq1] = self.tremor_freq;
        let [phase0, phase1] = self.tremor_phase;
        for (i, &pt) in traj.points().iter().enumerate() {
            let t = i as f64 * dt;
            let w0 = std::f64::consts::TAU * freq0 * t + phase0;
            let w1 = std::f64::consts::TAU * freq1 * t + phase1;
            out.push(pt + Vec3::new(a * w0.sin(), a * w1.sin(), 0.5 * a * (w0 + w1).cos()));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Coarser sampling keeps the unit tests fast.
    fn test_params() -> WriterParams {
        WriterParams { dt: 1e-3, ..WriterParams::nominal() }
    }

    #[test]
    fn nominal_params_are_valid() {
        WriterParams::nominal().validate().unwrap();
        WriterParams::canonical().validate().unwrap();
    }

    #[test]
    fn validation_catches_bad_params() {
        let mut p = WriterParams::nominal();
        p.amplitude = -1.0;
        assert!(p.validate().is_err());

        let mut p = WriterParams::nominal();
        p.centre = Vec3::new(0.0, 0.0, 0.001);
        assert!(p.validate().is_err());

        let mut p = WriterParams::nominal();
        p.base_duration = 0.05; // would need >4 m/s for the S5 arc
        assert!(p.validate().unwrap_err().contains("4 m/s"));
    }

    #[test]
    #[should_panic(expected = "invalid writer parameters")]
    fn writer_rejects_invalid_params() {
        let mut p = WriterParams::nominal();
        p.amplitude = 0.0;
        Writer::new(p, 1);
    }

    #[test]
    fn deterministic_for_same_seed() {
        let a = Writer::new(test_params(), 42).write_sequence(&[Stroke::S3, Stroke::S5]);
        let b = Writer::new(test_params(), 42).write_sequence(&[Stroke::S3, Stroke::S5]);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = Writer::new(test_params(), 1).write_stroke(Stroke::S1);
        let b = Writer::new(test_params(), 2).write_stroke(Stroke::S1);
        assert_ne!(a.trajectory, b.trajectory);
    }

    #[test]
    fn spans_cover_each_stroke_in_order() {
        let strokes = [Stroke::S1, Stroke::S4, Stroke::S6];
        let perf = Writer::new(test_params(), 5).write_sequence(&strokes);
        assert_eq!(perf.strokes(), strokes);
        let p = test_params();
        let mut prev_end = p.lead_in * 0.99;
        for span in &perf.spans {
            assert!(span.start >= prev_end, "strokes must not overlap");
            assert!(span.end > span.start);
            // Withdraw + pause separate consecutive strokes.
            prev_end = span.end + 0.9 * (p.withdraw_duration + 0.6 * p.pause);
        }
    }

    #[test]
    fn lead_in_is_static() {
        let p = test_params();
        let perf = Writer::new(p.clone(), 9).write_stroke(Stroke::S2);
        let traj = &perf.trajectory;
        // During the lead-in the only motion is tremor (≤ a few mm/s).
        let lead_samples = (p.lead_in / p.dt) as usize;
        for i in (10..lead_samples - 10).step_by(50) {
            assert!(
                traj.velocity(i).norm() < 0.15,
                "lead-in velocity too high at {i}: {}",
                traj.velocity(i).norm()
            );
        }
    }

    #[test]
    fn peak_speed_within_paper_bound() {
        for (seed, stroke) in [(1u64, Stroke::S1), (2, Stroke::S4), (3, Stroke::S5)] {
            let perf = Writer::new(test_params(), seed).write_stroke(stroke);
            let peak = perf.trajectory.peak_speed();
            assert!(peak < 4.0, "{stroke} peak {peak} m/s exceeds paper bound");
            assert!(peak > 0.1, "{stroke} implausibly slow: {peak} m/s");
        }
    }

    #[test]
    fn stroke_durations_respect_relative_length() {
        // Use the canonical writer (no jitter) for exact comparisons.
        let p = WriterParams { dt: 1e-3, ..WriterParams::canonical() };
        let s1 = Writer::new(p.clone(), 1).write_stroke(Stroke::S1);
        let s5 = Writer::new(p, 1).write_stroke(Stroke::S5);
        let d1 = s1.spans[0].end - s1.spans[0].start;
        let d5 = s5.spans[0].end - s5.spans[0].start;
        assert!((d5 / d1 - Stroke::S5.relative_duration()).abs() < 0.05);
    }

    #[test]
    fn canonical_writer_is_tremor_free() {
        let p = WriterParams { dt: 1e-3, ..WriterParams::canonical() };
        let perf = Writer::new(p.clone(), 3).write_stroke(Stroke::S1);
        let lead = (p.lead_in / p.dt) as usize;
        for i in 5..lead - 5 {
            assert!(perf.trajectory.velocity(i).norm() < 1e-12);
        }
    }

    #[test]
    fn write_phrase_is_continuous_and_ordered() {
        let mut w = Writer::new(test_params(), 17);
        let words = vec![
            vec![Stroke::S1, Stroke::S2],
            vec![Stroke::S5],
            vec![Stroke::S4, Stroke::S6],
        ];
        let perf = w.write_phrase(&words, 1.5);
        assert_eq!(perf.strokes(), vec![Stroke::S1, Stroke::S2, Stroke::S5, Stroke::S4, Stroke::S6]);
        // Spans strictly ordered.
        for pair in perf.spans.windows(2) {
            assert!(pair[0].end < pair[1].start);
        }
        // No positional discontinuity anywhere: max per-sample step bounded
        // by (max speed)·dt.
        let pts = perf.trajectory.points();
        let dt = perf.trajectory.dt();
        let max_step = pts
            .windows(2)
            .map(|p| p[0].distance(p[1]))
            .fold(0.0f64, f64::max);
        assert!(
            max_step < 4.0 * dt,
            "teleport detected: {max_step} m in one sample"
        );
    }

    #[test]
    fn write_phrase_empty_and_single() {
        let mut w = Writer::new(test_params(), 3);
        let empty = w.write_phrase(&[], 1.0);
        assert!(empty.spans.is_empty());
        assert!(empty.trajectory.is_empty());
        let single = w.write_phrase(&[vec![Stroke::S3]], 1.0);
        assert_eq!(single.strokes(), vec![Stroke::S3]);
    }

    #[test]
    fn trajectory_stays_in_front_of_device() {
        let perf = Writer::new(test_params(), 11).write_sequence(&[Stroke::S5, Stroke::S6]);
        for pt in perf.trajectory.points().iter().step_by(100) {
            assert!(pt.z > 0.05, "finger crossed behind the device: {pt:?}");
            assert!(pt.norm() < 0.5, "finger implausibly far: {pt:?}");
        }
    }
}
