//! Small numeric helpers shared across the pipeline.

/// Converts a linear amplitude ratio to decibels (`20·log10`).
///
/// Returns negative infinity for non-positive input.
pub fn amplitude_to_db(a: f64) -> f64 {
    if a <= 0.0 {
        f64::NEG_INFINITY
    } else {
        20.0 * a.log10()
    }
}

/// Converts decibels to a linear amplitude ratio.
pub fn db_to_amplitude(db: f64) -> f64 {
    10f64.powf(db / 20.0)
}

/// Converts a linear power ratio to decibels (`10·log10`).
pub fn power_to_db(p: f64) -> f64 {
    if p <= 0.0 {
        f64::NEG_INFINITY
    } else {
        10.0 * p.log10()
    }
}

/// Mean of a slice; 0.0 for an empty slice.
pub fn mean(x: &[f64]) -> f64 {
    if x.is_empty() {
        0.0
    } else {
        x.iter().sum::<f64>() / x.len() as f64
    }
}

/// Population standard deviation of a slice; 0.0 for fewer than 2 samples.
pub fn std_dev(x: &[f64]) -> f64 {
    if x.len() < 2 {
        return 0.0;
    }
    let m = mean(x);
    (x.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / x.len() as f64).sqrt()
}

/// Root-mean-square of a slice; 0.0 for an empty slice.
pub fn rms(x: &[f64]) -> f64 {
    if x.is_empty() {
        0.0
    } else {
        (x.iter().map(|v| v * v).sum::<f64>() / x.len() as f64).sqrt()
    }
}

/// Index of the maximum element (ties broken toward the lower index).
///
/// Returns `None` for an empty slice.
pub fn argmax(x: &[f64]) -> Option<usize> {
    x.iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1).then(b.0.cmp(&a.0)))
        .map(|(i, _)| i)
}

/// Index of the minimum element (ties broken toward the lower index).
pub fn argmin(x: &[f64]) -> Option<usize> {
    x.iter()
        .enumerate()
        .min_by(|a, b| a.1.total_cmp(b.1).then(a.0.cmp(&b.0)))
        .map(|(i, _)| i)
}

/// Rescales a slice into `[0, 1]` in place (the paper's "zero-one
/// normalization"). A constant slice becomes all zeros.
pub fn normalize_zero_one(x: &mut [f64]) {
    if x.is_empty() {
        return;
    }
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for &v in x.iter() {
        lo = lo.min(v);
        hi = hi.max(v);
    }
    let span = hi - lo;
    if span <= 0.0 {
        x.iter_mut().for_each(|v| *v = 0.0);
        return;
    }
    for v in x.iter_mut() {
        *v = (*v - lo) / span;
    }
}

/// Linearly interpolates `x` onto `n` evenly spaced points, used for
/// resampling Doppler profiles to comparable lengths.
///
/// # Panics
///
/// Panics if `x` is empty or `n == 0`.
pub fn resample_linear(x: &[f64], n: usize) -> Vec<f64> {
    assert!(!x.is_empty(), "cannot resample an empty profile");
    assert!(n > 0, "target length must be positive");
    if x.len() == 1 {
        // echolint: allow(no-panic-path) -- x is non-empty, asserted at entry
        return vec![x[0]; n];
    }
    if n == 1 {
        return vec![x[x.len() / 2]];
    }
    let scale = (x.len() - 1) as f64 / (n - 1) as f64;
    (0..n)
        .map(|i| {
            let pos = i as f64 * scale;
            let lo = pos.floor() as usize;
            let hi = (lo + 1).min(x.len() - 1);
            let frac = pos - lo as f64;
            x[lo] * (1.0 - frac) + x[hi] * frac
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn db_conversions_roundtrip() {
        for a in [0.001, 0.5, 1.0, 3.7, 100.0] {
            assert!((db_to_amplitude(amplitude_to_db(a)) - a).abs() < 1e-9 * a);
        }
        assert_eq!(amplitude_to_db(1.0), 0.0);
        assert!((amplitude_to_db(10.0) - 20.0).abs() < 1e-12);
        assert!((power_to_db(10.0) - 10.0).abs() < 1e-12);
        assert_eq!(amplitude_to_db(0.0), f64::NEG_INFINITY);
        assert_eq!(power_to_db(-1.0), f64::NEG_INFINITY);
    }

    #[test]
    fn stats_basics() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert_eq!(std_dev(&[5.0]), 0.0);
        assert!((std_dev(&[2.0, 4.0]) - 1.0).abs() < 1e-12);
        assert!((rms(&[3.0, 4.0]) - (12.5f64).sqrt()).abs() < 1e-12);
        assert_eq!(rms(&[]), 0.0);
    }

    #[test]
    fn argmax_argmin() {
        assert_eq!(argmax(&[]), None);
        assert_eq!(argmax(&[1.0, 5.0, 3.0]), Some(1));
        assert_eq!(argmin(&[1.0, 5.0, -3.0]), Some(2));
        // Ties resolve to the lowest index.
        assert_eq!(argmax(&[2.0, 2.0]), Some(0));
        assert_eq!(argmin(&[2.0, 2.0]), Some(0));
    }

    #[test]
    fn normalize_zero_one_bounds() {
        let mut x = vec![2.0, 4.0, 6.0];
        normalize_zero_one(&mut x);
        assert_eq!(x, vec![0.0, 0.5, 1.0]);
        let mut flat = vec![3.0; 4];
        normalize_zero_one(&mut flat);
        assert!(flat.iter().all(|&v| v == 0.0));
        let mut empty: Vec<f64> = vec![];
        normalize_zero_one(&mut empty);
        assert!(empty.is_empty());
    }

    #[test]
    fn resample_identity_when_same_length() {
        let x = vec![1.0, 2.0, 3.0, 4.0];
        assert_eq!(resample_linear(&x, 4), x);
    }

    #[test]
    fn resample_upsamples_linearly() {
        let y = resample_linear(&[0.0, 2.0], 5);
        assert_eq!(y, vec![0.0, 0.5, 1.0, 1.5, 2.0]);
    }

    #[test]
    fn resample_downsamples_keeping_endpoints() {
        let x: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let y = resample_linear(&x, 10);
        assert_eq!(y[0], 0.0);
        assert_eq!(y[9], 99.0);
        assert_eq!(y.len(), 10);
    }

    #[test]
    fn resample_degenerate_cases() {
        assert_eq!(resample_linear(&[7.0], 3), vec![7.0, 7.0, 7.0]);
        assert_eq!(resample_linear(&[1.0, 2.0, 3.0], 1), vec![2.0]);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn resample_rejects_empty() {
        resample_linear(&[], 3);
    }
}
