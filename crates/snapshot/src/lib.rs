//! # echowrite-snapshot
//!
//! Versioned checkpoint/restore for EchoWrite streaming sessions.
//!
//! A [`StreamingSession`](echowrite::StreamingSession) carries every bit of
//! state its pipeline needs — pending front-end samples, enhancement
//! windows, profile/differentiation tails, the segmenter's interpreter
//! position, the dedup set, and the per-session sample clock — and nothing
//! ambient: no wall clocks, no thread identity, no allocator addresses.
//! This crate exploits that: [`snapshot_session`] serializes a session into
//! a compact self-describing byte string, and [`restore_session`] rebuilds
//! a session that resumes **bitwise identically** to one that was never
//! suspended, under the engine configuration that produced the snapshot.
//!
//! Three serving-layer capabilities ride on this primitive:
//!
//! - **Evict-to-disk** — the serve reaper can suspend idle sessions into a
//!   [`SnapshotStore`] instead of dropping them, and transparently thaw
//!   them when the client pushes again.
//! - **Shard migration** — a session exported on one shard (or process)
//!   imports on another, because the bytes carry no process-local state.
//! - **Crash recovery** — shutdown drains live sessions into a
//!   [`FileStore`]; a fresh manager restores them and clients continue
//!   mid-word.
//!
//! The codec ([`encode`]/[`decode`]) is dependency-free, little-endian,
//! length-checked at every section, and strict: truncated, bit-flipped, or
//! version/config-mismatched input yields a typed [`SnapshotError`], never
//! a panic or a silently wrong session. See [`codec`] for the full wire
//! grammar and the version/compatibility policy.

pub mod codec;
pub mod store;

pub use codec::{
    config_fingerprint, decode, encode, restore_in_place, restore_session, snapshot_session,
    SnapshotError, MAGIC, VERSION,
};
pub use store::{FileStore, MemoryStore, SnapshotStore, StoreError};
