//! Minimal 3-D vector geometry for finger trajectories.
//!
//! Coordinate convention (device-centric, metres):
//! - the device's microphone/speaker pair sits at the origin,
//! - `x` is lateral (positive to the writer's right),
//! - `y` is vertical (positive up),
//! - `z` points from the device toward the writer.

use std::ops::{Add, AddAssign, Mul, Neg, Sub, SubAssign};

/// A 3-D vector/point in metres.
///
/// # Example
///
/// ```
/// use echowrite_gesture::Vec3;
/// let p = Vec3::new(3.0, 4.0, 0.0);
/// assert_eq!(p.norm(), 5.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Vec3 {
    /// Lateral component (metres).
    pub x: f64,
    /// Vertical component (metres).
    pub y: f64,
    /// Depth component (metres, away from the device).
    pub z: f64,
}

impl Vec3 {
    /// The zero vector.
    pub const ZERO: Vec3 = Vec3 { x: 0.0, y: 0.0, z: 0.0 };

    /// Creates a vector from components.
    #[inline]
    pub const fn new(x: f64, y: f64, z: f64) -> Self {
        Vec3 { x, y, z }
    }

    /// Euclidean norm.
    #[inline]
    pub fn norm(self) -> f64 {
        (self.x * self.x + self.y * self.y + self.z * self.z).sqrt()
    }

    /// Squared norm.
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.x * self.x + self.y * self.y + self.z * self.z
    }

    /// Dot product.
    #[inline]
    pub fn dot(self, other: Vec3) -> f64 {
        self.x * other.x + self.y * other.y + self.z * other.z
    }

    /// Cross product.
    #[inline]
    pub fn cross(self, other: Vec3) -> Vec3 {
        Vec3::new(
            self.y * other.z - self.z * other.y,
            self.z * other.x - self.x * other.z,
            self.x * other.y - self.y * other.x,
        )
    }

    /// Unit vector in this direction.
    ///
    /// # Panics
    ///
    /// Panics if the vector is (near) zero length.
    pub fn normalized(self) -> Vec3 {
        let n = self.norm();
        assert!(n > 1e-12, "cannot normalize a zero-length vector");
        self * (1.0 / n)
    }

    /// Distance to another point.
    #[inline]
    pub fn distance(self, other: Vec3) -> f64 {
        (self - other).norm()
    }

    /// Linear interpolation: `self + t·(other − self)`.
    #[inline]
    pub fn lerp(self, other: Vec3, t: f64) -> Vec3 {
        self + (other - self) * t
    }
}

impl Add for Vec3 {
    type Output = Vec3;
    #[inline]
    fn add(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x + rhs.x, self.y + rhs.y, self.z + rhs.z)
    }
}

impl AddAssign for Vec3 {
    #[inline]
    fn add_assign(&mut self, rhs: Vec3) {
        *self = *self + rhs;
    }
}

impl Sub for Vec3 {
    type Output = Vec3;
    #[inline]
    fn sub(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x - rhs.x, self.y - rhs.y, self.z - rhs.z)
    }
}

impl SubAssign for Vec3 {
    #[inline]
    fn sub_assign(&mut self, rhs: Vec3) {
        *self = *self - rhs;
    }
}

impl Mul<f64> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn mul(self, k: f64) -> Vec3 {
        Vec3::new(self.x * k, self.y * k, self.z * k)
    }
}

impl Neg for Vec3 {
    type Output = Vec3;
    #[inline]
    fn neg(self) -> Vec3 {
        Vec3::new(-self.x, -self.y, -self.z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(-1.0, 0.5, 2.0);
        assert_eq!(a + b, Vec3::new(0.0, 2.5, 5.0));
        assert_eq!(a - b, Vec3::new(2.0, 1.5, 1.0));
        assert_eq!(a * 2.0, Vec3::new(2.0, 4.0, 6.0));
        assert_eq!(-a, Vec3::new(-1.0, -2.0, -3.0));
        let mut c = a;
        c += b;
        assert_eq!(c, a + b);
        c -= b;
        assert_eq!(c, a);
    }

    #[test]
    fn norms_and_dot() {
        let v = Vec3::new(2.0, 3.0, 6.0);
        assert_eq!(v.norm(), 7.0);
        assert_eq!(v.norm_sqr(), 49.0);
        assert_eq!(v.dot(Vec3::new(1.0, 0.0, 0.0)), 2.0);
    }

    #[test]
    fn cross_product_orthogonality() {
        let a = Vec3::new(1.0, 0.0, 0.0);
        let b = Vec3::new(0.0, 1.0, 0.0);
        assert_eq!(a.cross(b), Vec3::new(0.0, 0.0, 1.0));
        let c = Vec3::new(1.0, 2.0, 3.0).cross(Vec3::new(4.0, 5.0, 6.0));
        assert!(c.dot(Vec3::new(1.0, 2.0, 3.0)).abs() < 1e-12);
    }

    #[test]
    fn normalized_is_unit() {
        let u = Vec3::new(3.0, -4.0, 12.0).normalized();
        assert!((u.norm() - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "zero-length")]
    fn normalize_zero_panics() {
        Vec3::ZERO.normalized();
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = Vec3::new(0.0, 0.0, 0.0);
        let b = Vec3::new(2.0, 4.0, -2.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.lerp(b, 0.5), Vec3::new(1.0, 2.0, -1.0));
    }

    #[test]
    fn distance_symmetry() {
        let a = Vec3::new(1.0, 1.0, 1.0);
        let b = Vec3::new(4.0, 5.0, 1.0);
        assert_eq!(a.distance(b), 5.0);
        assert_eq!(b.distance(a), 5.0);
    }
}
