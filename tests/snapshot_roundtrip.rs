//! The checkpoint/restore guarantee (DESIGN.md §6.10), as a property: a
//! session suspended with `echowrite-snapshot` at an *arbitrary* push
//! boundary — including mid-stroke — and restored (optionally through a
//! [`FileStore`] on disk) continues bitwise identically to a session that
//! was never interrupted, for arbitrary chunkings, on the replay engine
//! and both incremental front-ends. Corrupted bytes decode to typed
//! errors, never panics or silently wrong sessions.

use echowrite::{EchoWrite, EchoWriteConfig, SegmentEvent, StreamingSession};
use echowrite_gesture::{Stroke, Writer, WriterParams};
use echowrite_snapshot::{
    decode, restore_session, snapshot_session, FileStore, SnapshotError, SnapshotStore,
};
use echowrite_synth::{DeviceProfile, EnvironmentProfile, Scene};
use proptest::prelude::*;
use std::sync::OnceLock;

/// Replay engine plus both incremental front-ends (full-rate and 32×
/// down-converted): every session body flavor in the snapshot grammar.
fn engines() -> &'static [EchoWrite; 3] {
    static E: OnceLock<[EchoWrite; 3]> = OnceLock::new();
    E.get_or_init(|| {
        [
            EchoWrite::new(),
            EchoWrite::with_config(EchoWriteConfig::streaming()),
            EchoWrite::with_config(EchoWriteConfig::streaming_downsampled(32)),
        ]
    })
}

fn render(strokes: &[Stroke], seed: u64, tail: f64) -> Vec<f64> {
    let perf = Writer::new(WriterParams::nominal(), seed).write_sequence(strokes);
    let mut traj = perf.trajectory;
    if tail > 0.0 {
        let last = *traj.points().last().expect("non-empty trajectory");
        traj.hold(last, tail);
    }
    Scene::new(DeviceProfile::mate9(), EnvironmentProfile::meeting_room(), seed).render(&traj)
}

fn audios() -> &'static Vec<Vec<f64>> {
    static A: OnceLock<Vec<Vec<f64>>> = OnceLock::new();
    A.get_or_init(|| {
        vec![
            render(&[Stroke::S2, Stroke::S5], 7, 1.1),
            // No rest tail: the last stroke is only decidable at finish,
            // so the dedup set and segmenter phase are non-trivial at
            // every candidate snapshot point.
            render(&[Stroke::S4, Stroke::S1, Stroke::S6], 19, 0.0),
        ]
    })
}

/// A transcript row: boundaries, label, and the raw DTW distance/score
/// bits (compared with `==` on f64, i.e. bitwise for non-NaN values).
type Row = (usize, usize, Stroke, [f64; 6], [f64; 6]);

fn rows(events: &[SegmentEvent]) -> Vec<Row> {
    events
        .iter()
        .map(|ev| {
            let c = ev.classification.as_ref().expect("classified segment");
            (ev.start_frame, ev.end_frame, c.stroke, c.distances, c.scores)
        })
        .collect()
}

/// Splits `audio` into the cycled chunk-length pattern; the replay
/// engine's output is chunking-sensitive, so the interrupted and
/// uninterrupted runs must share these exact boundaries.
fn chunk_plan(audio_len: usize, pattern: &[usize]) -> Vec<std::ops::Range<usize>> {
    let mut plan = Vec::new();
    let mut pos = 0;
    let mut i = 0;
    while pos < audio_len {
        let len = pattern[i % pattern.len()].min(audio_len - pos);
        plan.push(pos..pos + len);
        pos += len;
        i += 1;
    }
    plan
}

/// One uninterrupted session over the whole plan.
fn continuous_rows(engine: &EchoWrite, audio: &[f64], plan: &[std::ops::Range<usize>]) -> Vec<Row> {
    let mut session = StreamingSession::new(engine);
    let mut events = Vec::new();
    for r in plan {
        session.push_events(engine, &audio[r.clone()], true, &mut events);
    }
    session.finish_events(engine, true, &mut events);
    rows(&events)
}

/// The same plan with a snapshot/restore inserted after `cut` chunks,
/// optionally bouncing the bytes through a [`FileStore`] on disk.
fn interrupted_rows(
    engine: &EchoWrite,
    audio: &[f64],
    plan: &[std::ops::Range<usize>],
    cut: usize,
    via_disk: bool,
) -> Vec<Row> {
    let mut session = StreamingSession::new(engine);
    let mut events = Vec::new();
    for r in &plan[..cut] {
        session.push_events(engine, &audio[r.clone()], true, &mut events);
    }
    let mut bytes = snapshot_session(&session, engine);
    drop(session); // the original is gone; only the bytes remain
    if via_disk {
        let dir = std::env::temp_dir()
            .join(format!("ewsn-roundtrip-{}", std::process::id()));
        let store = FileStore::new(&dir).expect("file store");
        store.put(42, bytes).expect("store put");
        // A second handle over the same directory models the restart.
        let reopened = FileStore::new(&dir).expect("file store reopen");
        bytes = reopened.remove(42).expect("store remove").expect("stored snapshot");
    }
    let mut session = restore_session(&bytes, engine).expect("snapshot restores");
    for r in &plan[cut..] {
        session.push_events(engine, &audio[r.clone()], true, &mut events);
    }
    session.finish_events(engine, true, &mut events);
    rows(&events)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Arbitrary chunkings, arbitrary snapshot point (any push boundary,
    /// mid-stroke included), every engine flavor: suspend/resume must be
    /// invisible in the output bits.
    #[test]
    fn restore_resumes_bitwise_at_any_push_boundary(
        pattern in prop::collection::vec(256usize..20_000, 1..8),
        cut_frac in 0.0f64..1.0,
        audio_idx in 0usize..2,
        engine_idx in 0usize..3,
    ) {
        let engine = &engines()[engine_idx];
        let audio = &audios()[audio_idx];
        let plan = chunk_plan(audio.len(), &pattern);
        let cut = ((plan.len() as f64) * cut_frac) as usize;
        let oracle = continuous_rows(engine, audio, &plan);
        let got = interrupted_rows(engine, audio, &plan, cut.min(plan.len()), false);
        prop_assert_eq!(got, oracle);
    }

    /// Any slice of a valid snapshot — truncation at an arbitrary point —
    /// is a typed error, never a panic; a byte flipped anywhere in the
    /// header is always rejected.
    #[test]
    fn corrupt_snapshots_decode_to_typed_errors(
        trunc_frac in 0.0f64..1.0,
        flip_at in 0usize..14,
        flip_mask in 1usize..256,
        engine_idx in 0usize..3,
    ) {
        let engine = &engines()[engine_idx];
        let mut session = StreamingSession::new(engine);
        let mut sink = Vec::new();
        session.push_events(engine, &audios()[0][..24_000], true, &mut sink);
        let bytes = snapshot_session(&session, engine);

        let cut = ((bytes.len() as f64) * trunc_frac) as usize;
        match decode(&bytes[..cut.min(bytes.len() - 1)], engine.config()) {
            Err(_) => {}
            Ok(_) => prop_assert!(false, "a strict prefix must never decode"),
        }

        // Header corruption: magic, version, or config fingerprint.
        let mut flipped = bytes.clone();
        flipped[flip_at] ^= flip_mask as u8;
        match decode(&flipped, engine.config()) {
            Err(
                SnapshotError::BadMagic
                | SnapshotError::UnsupportedVersion(_)
                | SnapshotError::ConfigMismatch { .. },
            ) => {}
            other => prop_assert!(false, "corrupt header accepted: {:?}", other),
        }
    }
}

/// The disk round-trip (FileStore put → reopen → remove → restore) at a
/// deterministic mid-stroke boundary, every engine flavor.
#[test]
fn file_store_round_trip_resumes_bitwise() {
    let audio = &audios()[1];
    for engine in engines() {
        let plan = chunk_plan(audio.len(), &[5 * 1024]);
        let cut = plan.len() / 2;
        let oracle = continuous_rows(engine, audio, &plan);
        assert!(!oracle.is_empty(), "test audio must produce segments");
        let got = interrupted_rows(engine, audio, &plan, cut, true);
        assert_eq!(got, oracle, "disk round-trip diverged");
    }
}

/// A snapshot taken under one engine must refuse to restore under
/// another: the config fingerprint is part of the header.
#[test]
fn snapshots_do_not_cross_engine_configs() {
    let [replay, full, down] = engines();
    let session = StreamingSession::new(full);
    let bytes = snapshot_session(&session, full);
    for other in [replay, down] {
        match restore_session(&bytes, other) {
            Err(SnapshotError::ConfigMismatch { .. }) => {}
            other => panic!("expected ConfigMismatch, got {other:?}"),
        }
    }
}
