//! Stroke alphabet, input scheme, and finger-motion kinematics for EchoWrite.
//!
//! The paper decomposes uppercase English letters into six basic strokes
//! (Fig. 2a) and assigns each letter to the stroke group given by its first
//! or second stroke under school stroke order (Fig. 3). A user "types" a
//! word by writing its letters' strokes in the air; the acoustic pipeline
//! recognizes the stroke sequence and a language model decodes candidate
//! words, T9-style.
//!
//! This crate provides:
//! - the [`Stroke`] alphabet S1–S6,
//! - the letter→stroke [`scheme::InputScheme`] (a faithful reconstruction of
//!   the paper's Fig. 3, data-driven so alternative mappings can be loaded),
//! - 3-D [`geom::Vec3`] geometry and minimum-jerk [`trajectory`] synthesis
//!   of finger motion for each stroke, including the inter-stroke withdraw
//!   motion,
//! - a [`writer::Writer`] model adding per-user speed/amplitude/jitter
//!   variability and writing-error behaviour.
//!
//! # Example
//!
//! ```
//! use echowrite_gesture::{Stroke, scheme::InputScheme};
//!
//! let scheme = InputScheme::paper();
//! assert_eq!(scheme.stroke_for('T'), Some(Stroke::S1));
//! let seq = scheme.encode_word("the").unwrap();
//! assert_eq!(seq, vec![Stroke::S1, Stroke::S2, Stroke::S1]);
//! ```

pub mod digits;
pub mod geom;
pub mod scheme;
pub mod stroke;
pub mod trajectory;
pub mod writer;

pub use geom::Vec3;
pub use scheme::InputScheme;
pub use stroke::Stroke;
pub use trajectory::{StrokePath, Trajectory};
pub use writer::{Writer, WriterParams};
