//! Good fixture: idiomatic pipeline code that passes every rule.

use std::collections::BTreeMap;

/// Returns the first sample, or zero for an empty buffer.
pub fn first_or_zero(xs: &[f64]) -> f64 {
    xs.first().copied().unwrap_or(0.0)
}

/// Ranks values with a NaN-total order.
pub fn rank(xs: &mut [f64]) {
    xs.sort_by(|a, b| a.total_cmp(b));
}

/// Counts words deterministically.
pub fn tally<'a>(words: &[&'a str]) -> BTreeMap<&'a str, usize> {
    let mut out = BTreeMap::new();
    for w in words {
        *out.entry(*w).or_insert(0) += 1;
    }
    out
}

/// Writes an index ramp into a caller-owned buffer — allocation-free.
pub fn ramp_into(out: &mut [f64]) {
    for (i, v) in out.iter_mut().enumerate() {
        *v = i as f64;
    }
}

fn checked(xs: &[f64]) -> f64 {
    // echolint: allow(no-panic-path) -- non-emptiness asserted by every caller
    xs[0]
}
