//! Item-level scan over the token stream.
//!
//! A lightweight recursive-descent pass that recovers just enough structure
//! for the rules: which token ranges are `#[cfg(test)]` / `#[test]` code,
//! where each function body starts and ends (and what the function is
//! called), and which `pub` items lack a doc comment. It is resilient to
//! code it does not understand — anything unrecognized is skipped one token
//! at a time.

use crate::lexer::{Comment, Lexed, TokKind, Token};

/// A function found in the file.
#[derive(Debug, Clone)]
pub struct FnSpan {
    /// The function's name.
    pub name: String,
    /// Line of the `fn` keyword.
    pub line: u32,
    /// Token range of the body, `[start, end)` (excludes the braces' outside).
    pub body: (usize, usize),
    /// Whether a `// echolint: hot` marker precedes the function.
    pub marked_hot: bool,
    /// Whether a `// echolint: entry` marker precedes the function — the
    /// function is a declared hot entry point for the reachability analyses.
    pub marked_entry: bool,
    /// Enclosing `impl` / `trait` type name (`Worker` for a method declared
    /// inside `impl Worker { … }`), or `None` for free functions.
    pub type_ctx: Option<String>,
    /// Whether the function itself is declared `unsafe fn`.
    pub is_unsafe: bool,
}

/// A `pub` item with no doc comment.
#[derive(Debug, Clone)]
pub struct UndocPub {
    /// Line of the `pub` keyword.
    pub line: u32,
    /// Item kind keyword (`fn`, `struct`, …).
    pub kind: String,
    /// Item name.
    pub name: String,
}

/// Scan results.
#[derive(Debug, Default)]
pub struct Scan {
    /// Token ranges `[start, end)` that are test-only code.
    pub test_spans: Vec<(usize, usize)>,
    /// All functions with bodies, in source order.
    pub fns: Vec<FnSpan>,
    /// Public items missing docs.
    pub undoc_pubs: Vec<UndocPub>,
}

impl Scan {
    /// Whether token index `i` falls in test-only code.
    pub fn is_test(&self, i: usize) -> bool {
        self.test_spans.iter().any(|&(s, e)| i >= s && i < e)
    }
}

/// Lines carrying `// echolint: hot` / `// echolint: entry` markers. Both
/// words may share one marker (`// echolint: hot entry`): `hot` makes the
/// next function a hot kernel, `entry` declares it a reachability root.
fn fn_marker_lines(comments: &[Comment]) -> Vec<(u32, bool, bool)> {
    comments
        .iter()
        .filter_map(|c| {
            let body = c.text.trim_start_matches('/').trim_start_matches('!').trim();
            let rest = body.strip_prefix("echolint:")?.trim();
            let words: Vec<&str> = rest.split_whitespace().collect();
            if words.is_empty() || !words.iter().all(|w| *w == "hot" || *w == "entry") {
                return None;
            }
            Some((c.line, words.contains(&"hot"), words.contains(&"entry")))
        })
        .collect()
}

/// Runs the item scan.
pub fn scan(lexed: &Lexed) -> Scan {
    let mut out = Scan::default();
    let marker_lines = fn_marker_lines(&lexed.comments);
    let mut cx = Cx {
        toks: &lexed.tokens,
        comments: &lexed.comments,
        marker_lines,
        type_ctx: Vec::new(),
        out: &mut out,
    };
    let end = lexed.tokens.len();
    cx.items(0, end);
    out
}

struct Cx<'a> {
    toks: &'a [Token],
    comments: &'a [Comment],
    marker_lines: Vec<(u32, bool, bool)>,
    /// Stack of enclosing `impl` / `trait` type names.
    type_ctx: Vec<String>,
    out: &'a mut Scan,
}

impl Cx<'_> {
    /// Scans items in `[i, end)` at module or impl/trait scope.
    fn items(&mut self, mut i: usize, end: usize) {
        while i < end {
            i = self.item(i, end);
        }
    }

    /// Scans one item starting at `i`; returns the index just past it.
    fn item(&mut self, start: usize, end: usize) -> usize {
        let mut i = start;
        let mut is_test_item = false;
        let mut has_doc_attr = false;
        // Attributes.
        while i < end && self.toks[i].is_punct('#') {
            let mut j = i + 1;
            if j < end && self.toks[j].is_punct('!') {
                j += 1; // inner attribute `#![…]`
            }
            if j < end && self.toks[j].is_punct('[') {
                let close = self.match_delim(j, end, '[', ']');
                for t in &self.toks[j..close] {
                    if t.is_ident("test") || t.is_ident("bench") {
                        is_test_item = true;
                    }
                    if t.is_ident("doc") {
                        has_doc_attr = true;
                    }
                }
                i = close;
            } else {
                i = j;
            }
        }
        if i >= end {
            return end;
        }

        // Visibility.
        let mut is_pub = false;
        if self.toks[i].is_ident("pub") {
            is_pub = true;
            let pub_line = self.toks[i].line;
            i += 1;
            if i < end && self.toks[i].is_punct('(') {
                // `pub(crate)` / `pub(super)` / `pub(in …)` — not public API.
                is_pub = false;
                i = self.match_delim(i, end, '(', ')');
            }
            let _ = pub_line;
        }

        // Qualifiers before the item keyword.
        let mut is_unsafe = false;
        while i < end
            && (self.toks[i].is_ident("unsafe")
                || self.toks[i].is_ident("async")
                || self.toks[i].is_ident("default")
                || (self.toks[i].is_ident("extern")
                    && i + 1 < end
                    && self.toks[i + 1].kind == TokKind::Literal)
                || (self.toks[i].is_ident("const")
                    && i + 1 < end
                    && self.toks[i + 1].is_ident("fn")))
        {
            if self.toks[i].is_ident("unsafe") {
                is_unsafe = true;
            }
            if self.toks[i].is_ident("extern") {
                i += 2;
            } else {
                i += 1;
            }
        }
        if i >= end {
            return end;
        }

        let kw = self.toks[i].text.clone();
        let kw_line = self.toks[i].line;
        let item_end = match kw.as_str() {
            "fn" => {
                let name = self
                    .toks
                    .get(i + 1)
                    .filter(|t| t.kind == TokKind::Ident)
                    .map(|t| t.text.clone())
                    .unwrap_or_default();
                let body_open = self.find_body_open(i, end);
                let e = match body_open {
                    Some(open) => {
                        let close = self.match_delim(open, end, '{', '}');
                        let (marked_hot, marked_entry) = self.fn_markers(start, kw_line);
                        self.out.fns.push(FnSpan {
                            name: name.clone(),
                            line: kw_line,
                            body: (open + 1, close.saturating_sub(1)),
                            marked_hot,
                            marked_entry,
                            type_ctx: self.type_ctx.last().cloned(),
                            is_unsafe,
                        });
                        close
                    }
                    None => self.skip_to_semi(i, end),
                };
                self.record_pub(is_pub, has_doc_attr, start, kw_line, "fn", &name);
                e
            }
            "mod" => {
                let name = self
                    .toks
                    .get(i + 1)
                    .filter(|t| t.kind == TokKind::Ident)
                    .map(|t| t.text.clone())
                    .unwrap_or_default();
                // A bodyless `pub mod x;` is documented by the target file's
                // `//!` header; only inline module bodies need outer docs.
                if self.find_body_open(i, end).is_some() {
                    self.record_pub(is_pub, has_doc_attr, start, kw_line, "mod", &name);
                }
                match self.find_body_open(i, end) {
                    Some(open) => {
                        let close = self.match_delim(open, end, '{', '}');
                        if is_test_item {
                            self.out.test_spans.push((start, close));
                        } else {
                            self.items(open + 1, close.saturating_sub(1));
                        }
                        close
                    }
                    None => self.skip_to_semi(i, end),
                }
            }
            "impl" | "trait" => {
                if kw == "trait" {
                    let name = self
                        .toks
                        .get(i + 1)
                        .filter(|t| t.kind == TokKind::Ident)
                        .map(|t| t.text.clone())
                        .unwrap_or_default();
                    self.record_pub(is_pub, has_doc_attr, start, kw_line, "trait", &name);
                }
                match self.find_body_open(i, end) {
                    Some(open) => {
                        let close = self.match_delim(open, end, '{', '}');
                        let ctx = if kw == "impl" {
                            self.impl_self_type(i + 1, open)
                        } else {
                            self.toks
                                .get(i + 1)
                                .filter(|t| t.kind == TokKind::Ident)
                                .map(|t| t.text.clone())
                        };
                        let pushed = ctx.is_some();
                        if let Some(name) = ctx {
                            self.type_ctx.push(name);
                        }
                        self.items(open + 1, close.saturating_sub(1));
                        if pushed {
                            self.type_ctx.pop();
                        }
                        close
                    }
                    None => self.skip_to_semi(i, end),
                }
            }
            "struct" | "enum" | "union" => {
                let name = self
                    .toks
                    .get(i + 1)
                    .filter(|t| t.kind == TokKind::Ident)
                    .map(|t| t.text.clone())
                    .unwrap_or_default();
                self.record_pub(is_pub, has_doc_attr, start, kw_line, &kw, &name);
                // Unit struct `;`, tuple struct `(…);`, or braced body.
                match self.find_body_open(i, end) {
                    Some(open) => self.match_delim(open, end, '{', '}'),
                    None => self.skip_to_semi(i, end),
                }
            }
            "const" | "static" | "type" => {
                let mut j = i + 1;
                if j < end && self.toks[j].is_ident("mut") {
                    j += 1;
                }
                let name = self
                    .toks
                    .get(j)
                    .filter(|t| t.kind == TokKind::Ident)
                    .map(|t| t.text.clone())
                    .unwrap_or_default();
                self.record_pub(is_pub, has_doc_attr, start, kw_line, &kw, &name);
                self.skip_to_semi(i, end)
            }
            "use" | "extern" => self.skip_to_semi(i, end),
            "macro_rules" => match self.find_body_open(i, end) {
                Some(open) => self.match_delim(open, end, '{', '}'),
                None => self.skip_to_semi(i, end),
            },
            _ => i + 1,
        };
        if is_test_item && kw != "mod" {
            self.out.test_spans.push((start, item_end));
        }
        item_end.max(start + 1)
    }

    /// Records an undocumented public item.
    fn record_pub(
        &mut self,
        is_pub: bool,
        has_doc_attr: bool,
        item_start: usize,
        kw_line: u32,
        kind: &str,
        name: &str,
    ) {
        if !is_pub || has_doc_attr {
            return;
        }
        // Documented iff a rustdoc outer comment sits between the previous
        // code token and the item's first token (attributes included) — this
        // tolerates blank lines and attribute stacks under the doc block.
        let first_line = self.toks[item_start].line;
        let prev_line = if item_start == 0 { 0 } else { self.toks[item_start - 1].line };
        let documented = self.comments.iter().any(|c| {
            c.is_doc
                && !c.trailing
                && !c.text.starts_with("//!")
                && !c.text.starts_with("/*!")
                && c.line > prev_line
                && c.line < first_line
        });
        if !documented {
            self.out.undoc_pubs.push(UndocPub {
                line: kw_line,
                kind: kind.to_string(),
                name: name.to_string(),
            });
        }
    }

    /// The `(hot, entry)` markers immediately preceding the item (between
    /// the previous code token and the `fn` keyword line).
    fn fn_markers(&self, item_start: usize, kw_line: u32) -> (bool, bool) {
        let prev_line = if item_start == 0 { 0 } else { self.toks[item_start - 1].line };
        let first_line = self.toks[item_start].line.min(kw_line);
        let mut hot = false;
        let mut entry = false;
        for &(l, h, e) in &self.marker_lines {
            if l > prev_line && l < first_line {
                hot |= h;
                entry |= e;
            }
        }
        (hot, entry)
    }

    /// The `Self` type name of an `impl` item whose tokens span
    /// `[after_impl, body_open)`: the last path segment before the body for
    /// an inherent impl, or the last segment after `for` in a trait impl
    /// (`impl<T> Trait for Type<T>` → `Type`). Generic arguments, references,
    /// and `where` clauses are skipped; `None` when no plain segment is found
    /// (e.g. `impl Trait for &[u8]`).
    fn impl_self_type(&self, after_impl: usize, body_open: usize) -> Option<String> {
        let mut i = after_impl;
        // Leading generic parameter list `<…>`.
        if i < body_open && self.toks[i].is_punct('<') {
            let mut depth = 0i32;
            while i < body_open {
                if self.toks[i].is_punct('<') {
                    depth += 1;
                } else if self.toks[i].is_punct('>') {
                    depth -= 1;
                    if depth == 0 {
                        i += 1;
                        break;
                    }
                }
                i += 1;
            }
        }
        let mut last_segment: Option<String> = None;
        let mut angle_depth = 0i32;
        let mut j = i;
        while j < body_open {
            let t = &self.toks[j];
            if t.is_punct('<') {
                angle_depth += 1;
            } else if t.is_punct('>') {
                angle_depth -= 1;
            } else if angle_depth == 0 {
                if t.is_ident("where") {
                    break;
                }
                if t.is_ident("for") {
                    // Trait impl: the self type is what follows `for`.
                    last_segment = None;
                } else if t.kind == TokKind::Ident
                    && !matches!(t.text.as_str(), "dyn" | "mut" | "const")
                {
                    last_segment = Some(t.text.clone());
                }
            }
            j += 1;
        }
        last_segment
    }

    /// Finds the opening `{` of a body, stopping at a terminating `;`.
    fn find_body_open(&self, mut i: usize, end: usize) -> Option<usize> {
        let mut depth = 0i32;
        while i < end {
            let t = &self.toks[i];
            if depth == 0 {
                if t.is_punct('{') {
                    return Some(i);
                }
                if t.is_punct(';') {
                    return None;
                }
            }
            if t.is_punct('(') || t.is_punct('[') {
                depth += 1;
            } else if t.is_punct(')') || t.is_punct(']') {
                depth -= 1;
            }
            i += 1;
        }
        None
    }

    /// Given `open` at an opening delimiter, returns the index just past the
    /// matching closer.
    fn match_delim(&self, open: usize, end: usize, o: char, c: char) -> usize {
        let mut depth = 0i32;
        let mut i = open;
        while i < end {
            if self.toks[i].is_punct(o) {
                depth += 1;
            } else if self.toks[i].is_punct(c) {
                depth -= 1;
                if depth == 0 {
                    return i + 1;
                }
            }
            i += 1;
        }
        end
    }

    /// Skips to just past the next `;` at delimiter depth 0.
    fn skip_to_semi(&self, mut i: usize, end: usize) -> usize {
        let mut depth = 0i32;
        while i < end {
            let t = &self.toks[i];
            if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
                depth += 1;
            } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
                depth -= 1;
            } else if t.is_punct(';') && depth <= 0 {
                return i + 1;
            }
            i += 1;
        }
        end
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn finds_functions_and_bodies() {
        let l = lex("fn a() { x(); }\npub fn magnitude_into(o: &mut [f64]) { o[0] = 1.0; }\n");
        let s = scan(&l);
        assert_eq!(s.fns.len(), 2);
        assert_eq!(s.fns[0].name, "a");
        assert_eq!(s.fns[1].name, "magnitude_into");
    }

    #[test]
    fn cfg_test_mod_is_a_test_span() {
        let src = "fn live() { a.unwrap(); }\n#[cfg(test)]\nmod tests {\n fn t() { b.unwrap(); }\n}\n";
        let l = lex(src);
        let s = scan(&l);
        let unwraps: Vec<usize> = l
            .tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| t.is_ident("unwrap"))
            .map(|(i, _)| i)
            .collect();
        assert_eq!(unwraps.len(), 2);
        assert!(!s.is_test(unwraps[0]));
        assert!(s.is_test(unwraps[1]));
    }

    #[test]
    fn test_attr_fn_is_a_test_span() {
        let src = "#[test]\nfn t() { x.unwrap(); }\nfn live() { y(); }\n";
        let l = lex(src);
        let s = scan(&l);
        let unwrap_idx = l.tokens.iter().position(|t| t.is_ident("unwrap")).unwrap();
        assert!(s.is_test(unwrap_idx));
        assert_eq!(s.fns.len(), 2);
    }

    #[test]
    fn hot_marker_attaches_to_next_fn() {
        let src = "// echolint: hot\nfn kernel(buf: &mut [f64]) {}\nfn other() {}\n";
        let s = scan(&lex(src));
        assert!(s.fns[0].marked_hot);
        assert!(!s.fns[1].marked_hot);
    }

    #[test]
    fn undocumented_pub_items_are_reported() {
        let src = "/// Documented.\npub fn good() {}\npub fn bad() {}\npub(crate) fn internal() {}\nfn private() {}\n";
        let s = scan(&lex(src));
        let names: Vec<&str> = s.undoc_pubs.iter().map(|u| u.name.as_str()).collect();
        assert_eq!(names, vec!["bad"]);
    }

    #[test]
    fn doc_through_attributes_and_blank_lines() {
        let src = "/// Doc.\n#[derive(Debug)]\n\npub struct S { x: u8 }\n";
        let s = scan(&lex(src));
        assert!(s.undoc_pubs.is_empty(), "{:?}", s.undoc_pubs);
    }

    #[test]
    fn inner_module_doc_does_not_document_first_item() {
        let src = "//! Module docs.\n\npub fn first() {}\n";
        let s = scan(&lex(src));
        assert_eq!(s.undoc_pubs.len(), 1);
    }

    #[test]
    fn impl_methods_are_scanned() {
        let src = "impl Foo {\n pub fn undoc(&self) {}\n /// ok\n pub fn doc(&self) {}\n}\n";
        let s = scan(&lex(src));
        assert_eq!(s.fns.len(), 2);
        assert_eq!(s.undoc_pubs.len(), 1);
        assert_eq!(s.undoc_pubs[0].name, "undoc");
    }

    #[test]
    fn pub_use_is_exempt() {
        let src = "pub use crate::foo::Bar;\n";
        let s = scan(&lex(src));
        assert!(s.undoc_pubs.is_empty());
    }

    #[test]
    fn trait_with_default_and_required_methods() {
        let src = "pub trait T {\n fn req(&self);\n fn def(&self) { x.unwrap(); }\n}\n";
        let s = scan(&lex(src));
        // One trait (undocumented) + the default-body fn recorded.
        assert!(s.undoc_pubs.iter().any(|u| u.kind == "trait"));
        assert_eq!(s.fns.len(), 1);
        assert_eq!(s.fns[0].name, "def");
    }
}
