//! Echo-path rendering: static multipath and moving scatterers.
//!
//! A path speaker → scatterer → microphone of instantaneous length `L(t)`
//! delays the carrier by `L(t)/c`; the received contribution is
//! `a(t) · sin(2π f₀ (t − L(t)/c))`. A changing `L(t)` modulates the phase,
//! which *is* the Doppler effect: instantaneous frequency
//! `f₀ (1 − L'(t)/c)`. Rendering paths this way means every downstream
//! spectral feature (profile shape, smearing within frames, multipath
//! clutter) is physically derived rather than assumed.

use crate::tone::ToneConfig;
use crate::SPEED_OF_SOUND;
use echowrite_gesture::{Trajectory, Vec3};

/// A static propagation path with fixed delay and amplitude (direct leak,
/// wall/table reflections).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StaticPath {
    /// Path length in metres.
    pub length: f64,
    /// Received amplitude of this path.
    pub amplitude: f64,
}

impl StaticPath {
    /// Adds this path's contribution to `out`.
    pub fn render_into(&self, tone: &ToneConfig, out: &mut [f64]) {
        let w = std::f64::consts::TAU * tone.frequency;
        let delay = self.length / SPEED_OF_SOUND;
        let dt = 1.0 / tone.sample_rate;
        for (i, o) in out.iter_mut().enumerate() {
            let t = i as f64 * dt;
            *o += self.amplitude * (w * (t - delay)).sin();
        }
    }
}

/// A moving point scatterer described by its position at each trajectory
/// sample, rendered with exact time-varying path-length phase.
#[derive(Debug, Clone)]
pub struct MovingScatterer {
    /// Per-sample path lengths speaker→scatterer→mic (metres), at the
    /// trajectory's sample period.
    path_lengths: Vec<f64>,
    /// Per-sample amplitudes (inverse-square spreading folded in).
    amplitudes: Vec<f64>,
    /// Sample period of `path_lengths` (seconds).
    dt: f64,
}

impl MovingScatterer {
    /// Builds a scatterer from a position trajectory.
    ///
    /// `reflectivity` scales the echo; the received amplitude additionally
    /// falls off as `1 / (r_ss · r_sm)` (spherical spreading out and back),
    /// normalized so that a path at 15 cm + 15 cm has amplitude
    /// `reflectivity`.
    pub fn from_positions(
        positions: &[Vec3],
        dt: f64,
        speaker: Vec3,
        mic: Vec3,
        reflectivity: f64,
    ) -> Self {
        let norm = 0.15 * 0.15;
        let mut path_lengths = Vec::with_capacity(positions.len());
        let mut amplitudes = Vec::with_capacity(positions.len());
        for &p in positions {
            let r_out = speaker.distance(p).max(0.02);
            let r_back = p.distance(mic).max(0.02);
            path_lengths.push(r_out + r_back);
            amplitudes.push(reflectivity * norm / (r_out * r_back));
        }
        MovingScatterer { path_lengths, amplitudes, dt }
    }

    /// Builds a scatterer that shadows a finger [`Trajectory`] with reduced
    /// displacement — the hand or forearm, which moves more slowly and so
    /// produces the lower Doppler shifts the paper's MVCE must reject.
    ///
    /// Each position is `anchor + scale · (finger − anchor)`.
    pub fn shadowing(
        traj: &Trajectory,
        anchor: Vec3,
        scale: f64,
        speaker: Vec3,
        mic: Vec3,
        reflectivity: f64,
    ) -> Self {
        let positions: Vec<Vec3> = traj
            .points()
            .iter()
            .map(|&p| anchor + (p - anchor) * scale)
            .collect();
        Self::from_positions(&positions, traj.dt(), speaker, mic, reflectivity)
    }

    /// Number of trajectory samples.
    pub fn len(&self) -> usize {
        self.path_lengths.len()
    }

    /// Whether the scatterer has no samples.
    pub fn is_empty(&self) -> bool {
        self.path_lengths.is_empty()
    }

    /// Path length at an arbitrary time via linear interpolation, clamped to
    /// the trajectory's span.
    fn path_length_at(&self, t: f64) -> f64 {
        interp_clamped(&self.path_lengths, self.dt, t)
    }

    fn amplitude_at(&self, t: f64) -> f64 {
        interp_clamped(&self.amplitudes, self.dt, t)
    }

    /// Adds this scatterer's echo to `out` (length defines render duration).
    pub fn render_into(&self, tone: &ToneConfig, out: &mut [f64]) {
        if self.path_lengths.is_empty() {
            return;
        }
        let w = std::f64::consts::TAU * tone.frequency;
        let dt = 1.0 / tone.sample_rate;
        for (i, o) in out.iter_mut().enumerate() {
            let t = i as f64 * dt;
            let delay = self.path_length_at(t) / SPEED_OF_SOUND;
            *o += self.amplitude_at(t) * (w * (t - delay)).sin();
        }
    }
}

fn interp_clamped(values: &[f64], dt: f64, t: f64) -> f64 {
    debug_assert!(!values.is_empty());
    let pos = t / dt;
    if pos <= 0.0 {
        return values[0];
    }
    let lo = pos.floor() as usize;
    if lo + 1 >= values.len() {
        return *values.last().expect("non-empty");
    }
    let frac = pos - lo as f64;
    values[lo] * (1.0 - frac) + values[lo + 1] * frac
}

#[cfg(test)]
mod tests {
    use super::*;
    use echowrite_dsp::{Stft, StftConfig, WindowKind};

    fn tone() -> ToneConfig {
        ToneConfig::paper()
    }

    #[test]
    fn static_path_is_pure_tone() {
        let t = tone();
        let mut out = vec![0.0; 4096];
        StaticPath { length: 0.5, amplitude: 0.3 }.render_into(&t, &mut out);
        // RMS of a 0.3-amplitude sine is 0.3/√2.
        let rms = (out.iter().map(|x| x * x).sum::<f64>() / out.len() as f64).sqrt();
        assert!((rms - 0.3 / 2f64.sqrt()).abs() < 0.01);
    }

    #[test]
    fn interp_clamps_and_interpolates() {
        let v = [1.0, 3.0, 5.0];
        assert_eq!(interp_clamped(&v, 1.0, -0.5), 1.0);
        assert_eq!(interp_clamped(&v, 1.0, 0.5), 2.0);
        assert_eq!(interp_clamped(&v, 1.0, 10.0), 5.0);
    }

    #[test]
    fn stationary_scatterer_keeps_carrier_frequency() {
        let t = tone();
        let positions = vec![Vec3::new(0.0, 0.0, 0.15); 100];
        let sc = MovingScatterer::from_positions(
            &positions,
            0.01,
            Vec3::new(-0.03, 0.0, 0.0),
            Vec3::new(0.03, 0.0, 0.0),
            0.05,
        );
        let n = 16_384;
        let mut out = vec![0.0; n];
        sc.render_into(&t, &mut out);
        let stft = Stft::new(StftConfig {
            fft_size: n,
            hop: n,
            window: WindowKind::Hann,
            sample_rate: t.sample_rate,
        });
        let mags = stft.process(&out).remove(0);
        let cfg = stft.config();
        let peak = mags
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        assert_eq!(peak, cfg.frequency_bin(20_000.0));
    }

    /// An approaching scatterer must shift energy *above* the carrier and a
    /// receding one below — the sign convention everything downstream
    /// depends on.
    #[test]
    fn moving_scatterer_produces_correct_doppler_sign() {
        let t = tone();
        let fs = t.sample_rate;
        let dur = 0.8;
        let n = (dur * fs) as usize;
        let v = 0.5; // m/s approach speed
        let positions: Vec<Vec3> = (0..n)
            .map(|i| Vec3::new(0.0, 0.0, 0.40 - v * i as f64 / fs))
            .collect();
        let sc = MovingScatterer::from_positions(
            &positions,
            1.0 / fs,
            Vec3::new(-0.02, 0.0, 0.0),
            Vec3::new(0.02, 0.0, 0.0),
            0.05,
        );
        let mut out = vec![0.0; n];
        sc.render_into(&t, &mut out);

        let stft = Stft::new(StftConfig {
            fft_size: 8192,
            hop: 4096,
            window: WindowKind::Hann,
            sample_rate: fs,
        });
        let frames = stft.process(&out);
        let carrier = stft.config().frequency_bin(20_000.0);
        // Expected shift ≈ 2 f0 v / c ≈ 58.8 Hz ≈ 10.9 bins above carrier.
        let expect = (2.0 * 20_000.0 * v / SPEED_OF_SOUND) / (fs / 8192.0);
        for frame in &frames {
            let peak = frame
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(b.1))
                .unwrap()
                .0;
            let shift = peak as f64 - carrier as f64;
            assert!(
                (shift - expect).abs() <= 2.0,
                "approach shift {shift} bins, expected ~{expect:.1}"
            );
        }
    }

    #[test]
    fn receding_scatterer_shifts_below_carrier() {
        let t = tone();
        let fs = t.sample_rate;
        let n = (0.6 * fs) as usize;
        let v = 0.7;
        let positions: Vec<Vec3> = (0..n)
            .map(|i| Vec3::new(0.0, 0.0, 0.10 + v * i as f64 / fs))
            .collect();
        let sc = MovingScatterer::from_positions(
            &positions,
            1.0 / fs,
            Vec3::new(-0.02, 0.0, 0.0),
            Vec3::new(0.02, 0.0, 0.0),
            0.05,
        );
        let mut out = vec![0.0; n];
        sc.render_into(&t, &mut out);
        let stft = Stft::new(StftConfig {
            fft_size: 8192,
            hop: 8192,
            window: WindowKind::Hann,
            sample_rate: fs,
        });
        let frames = stft.process(&out);
        let carrier = stft.config().frequency_bin(20_000.0) as isize;
        for frame in &frames {
            let peak = frame
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(b.1))
                .unwrap()
                .0 as isize;
            assert!(peak < carrier, "receding peak {peak} not below carrier {carrier}");
        }
    }

    #[test]
    fn closer_scatterer_is_louder() {
        let _ = tone();
        let spk = Vec3::new(-0.02, 0.0, 0.0);
        let mic = Vec3::new(0.02, 0.0, 0.0);
        let near = MovingScatterer::from_positions(
            &[Vec3::new(0.0, 0.0, 0.10)],
            1.0,
            spk,
            mic,
            0.05,
        );
        let far = MovingScatterer::from_positions(
            &[Vec3::new(0.0, 0.0, 0.40)],
            1.0,
            spk,
            mic,
            0.05,
        );
        assert!(near.amplitudes[0] > far.amplitudes[0] * 4.0);
    }

    #[test]
    fn shadowing_scatterer_moves_less() {
        use echowrite_gesture::{Stroke, Writer, WriterParams};
        let perf = Writer::new(WriterParams { dt: 1e-3, ..WriterParams::canonical() }, 1)
            .write_stroke(Stroke::S2);
        let traj = &perf.trajectory;
        let anchor = Vec3::new(0.0, -0.1, 0.2);
        let spk = Vec3::new(-0.02, 0.0, 0.0);
        let mic = Vec3::new(0.02, 0.0, 0.0);
        let finger = MovingScatterer::from_positions(traj.points(), traj.dt(), spk, mic, 1.0);
        let hand = MovingScatterer::shadowing(traj, anchor, 0.4, spk, mic, 1.0);
        let swing = |s: &MovingScatterer| {
            let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
            for &l in &s.path_lengths {
                lo = lo.min(l);
                hi = hi.max(l);
            }
            hi - lo
        };
        assert!(
            swing(&hand) < 0.6 * swing(&finger),
            "hand path swing {} vs finger {}",
            swing(&hand),
            swing(&finger)
        );
    }

    #[test]
    fn empty_scatterer_renders_nothing() {
        let sc = MovingScatterer::from_positions(&[], 1.0, Vec3::ZERO, Vec3::ZERO, 1.0);
        assert!(sc.is_empty());
        let mut out = vec![0.0; 8];
        sc.render_into(&tone(), &mut out);
        assert!(out.iter().all(|&x| x == 0.0));
    }
}
