//! The streaming batch-equivalence guarantee (DESIGN.md §6.3), as a
//! property: for *arbitrary* chunkings of the input audio, the incremental
//! [`StreamingRecognizer`] emits exactly the segments and classifications
//! of the offline [`EchoWrite::recognize_strokes`] on the concatenated
//! session — same boundaries, same DTW scores, bitwise — on both the
//! full-rate and the down-converted front-end.

use echowrite::{EchoWrite, EchoWriteConfig, StreamingRecognizer, StrokeRecognition};
use echowrite_gesture::{Stroke, Writer, WriterParams};
use echowrite_synth::{DeviceProfile, EnvironmentProfile, Scene};
use proptest::prelude::*;
use std::sync::OnceLock;

/// One engine per front-end, both with the causal streaming enhancement.
fn engines() -> &'static [EchoWrite; 2] {
    static E: OnceLock<[EchoWrite; 2]> = OnceLock::new();
    E.get_or_init(|| {
        [
            EchoWrite::with_config(EchoWriteConfig::streaming()),
            EchoWrite::with_config(EchoWriteConfig::streaming_downsampled(32)),
        ]
    })
}

struct Case {
    name: &'static str,
    audio: Vec<f64>,
    /// Offline oracle per engine, computed once.
    offline: [StrokeRecognition; 2],
}

fn render(strokes: &[Stroke], seed: u64, tail: f64) -> Vec<f64> {
    let perf = Writer::new(WriterParams::nominal(), seed).write_sequence(strokes);
    let mut traj = perf.trajectory;
    if tail > 0.0 {
        let last = *traj.points().last().expect("non-empty trajectory");
        traj.hold(last, tail);
    }
    Scene::new(DeviceProfile::mate9(), EnvironmentProfile::meeting_room(), seed).render(&traj)
}

fn pool() -> &'static Vec<Case> {
    static P: OnceLock<Vec<Case>> = OnceLock::new();
    P.get_or_init(|| {
        let audios: Vec<(&'static str, Vec<f64>)> = vec![
            ("single", render(&[Stroke::S2], 3, 1.0)),
            ("pair", render(&[Stroke::S4, Stroke::S1], 11, 1.2)),
            // No rest tail: the last stroke is only decidable at finish.
            ("triple-truncated", render(&[Stroke::S3, Stroke::S6, Stroke::S5], 29, 0.0)),
            // Silence, deliberately not hop-aligned.
            ("silence", vec![0.0; 30_001]),
        ];
        audios
            .into_iter()
            .map(|(name, audio)| {
                let offline = [
                    engines()[0].recognize_strokes(&audio),
                    engines()[1].recognize_strokes(&audio),
                ];
                Case { name, audio, offline }
            })
            .collect()
    })
}

/// Streams `audio` through the recognizer using the chunk-length pattern
/// (cycled), then finishes; returns `(start, end, stroke, scores)` per
/// event.
fn stream_with_chunks(
    engine: &EchoWrite,
    audio: &[f64],
    chunks: &[usize],
) -> Vec<(usize, usize, Stroke, [f64; 6])> {
    let mut stream = StreamingRecognizer::new(engine);
    assert!(stream.is_incremental(), "streaming preset must take the incremental path");
    let mut events = Vec::new();
    let mut pos = 0;
    let mut i = 0;
    while pos < audio.len() {
        let len = chunks[i % chunks.len()].min(audio.len() - pos);
        events.extend(stream.push(&audio[pos..pos + len]));
        pos += len;
        i += 1;
    }
    events.extend(stream.finish());
    events
        .into_iter()
        .map(|ev| (ev.start_frame, ev.end_frame, ev.classification.stroke, ev.classification.scores))
        .collect()
}

fn assert_equals_offline(case: &Case, engine_idx: usize, chunks: &[usize]) {
    let got = stream_with_chunks(&engines()[engine_idx], &case.audio, chunks);
    let oracle = &case.offline[engine_idx];
    assert_eq!(
        got.len(),
        oracle.segments.len(),
        "case {} engine {engine_idx}: streamed vs offline segment count",
        case.name,
    );
    for ((start, end, stroke, scores), (seg, cls)) in got
        .iter()
        .zip(oracle.segments.iter().zip(&oracle.classifications))
    {
        assert_eq!(*start, seg.start, "case {}: start frame", case.name);
        assert_eq!(*end, seg.end, "case {}: end frame", case.name);
        assert_eq!(*stroke, cls.stroke, "case {}: stroke label", case.name);
        for (a, b) in scores.iter().zip(&cls.scores) {
            assert!(a == b, "case {}: DTW scores diverge bitwise ({a} vs {b})", case.name);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Random chunk-size patterns in [1, 16384], random scenario, both
    /// front-ends: streaming == offline, bitwise.
    #[test]
    fn streaming_equals_offline_for_any_chunking(
        chunks in prop::collection::vec(1usize..16_385, 1..24),
        case_idx in 0usize..4,
        engine_idx in 0usize..2,
    ) {
        assert_equals_offline(&pool()[case_idx], engine_idx, &chunks);
    }
}

/// Deterministic edge chunkings that random sampling is unlikely to hit:
/// one-sample pushes, exact hop/FFT alignment, one giant push.
#[test]
fn streaming_equals_offline_for_edge_chunkings() {
    let case = &pool()[0];
    for engine_idx in [0usize, 1] {
        for chunks in [
            vec![1usize],
            vec![1024],
            vec![8192],
            vec![usize::MAX / 2],
            vec![1023, 1, 1025, 511],
        ] {
            assert_equals_offline(case, engine_idx, &chunks);
        }
    }
}
