//! Device acoustic profiles.
//!
//! The paper evaluates EchoWrite on a Huawei Mate 9 (real-time) and verifies
//! a Huawei Watch 2's sensors by offline processing (Fig. 11). Device
//! identity only enters the pipeline through the transducer geometry and
//! front-end quality modelled here.

use crate::tone::ToneConfig;
use echowrite_gesture::Vec3;

/// Acoustic front-end of a device: transducer positions and quality.
///
/// # Example
///
/// ```
/// use echowrite_synth::DeviceProfile;
/// let phone = DeviceProfile::mate9();
/// let watch = DeviceProfile::watch2();
/// assert!(watch.mic_noise_sigma > phone.mic_noise_sigma);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceProfile {
    /// Human-readable device name.
    pub name: String,
    /// Probe tone configuration.
    pub tone: ToneConfig,
    /// Microphone position in device coordinates (metres).
    pub mic_pos: Vec3,
    /// Speaker position in device coordinates (metres).
    pub speaker_pos: Vec3,
    /// Standard deviation of the microphone's self-noise (full scale = 1).
    pub mic_noise_sigma: f64,
    /// Overall gain applied to echo paths (transducer sensitivity product).
    pub echo_gain: f64,
    /// Amplitude of the direct speaker→mic leakage path.
    pub direct_leak: f64,
    /// Mean rate of bursty hardware noise events per second (paper
    /// Sec. III-A: "bursting hardware noise whose power is larger than
    /// background noise but lower than echoes").
    pub burst_rate: f64,
}

impl DeviceProfile {
    /// A Huawei Mate 9–class smartphone: well-separated transducers and a
    /// quality microphone.
    pub fn mate9() -> Self {
        DeviceProfile {
            name: "Huawei Mate 9".to_string(),
            tone: ToneConfig::paper(),
            mic_pos: Vec3::new(0.03, -0.07, 0.0),
            speaker_pos: Vec3::new(-0.03, -0.07, 0.0),
            mic_noise_sigma: 0.004,
            echo_gain: 1.0,
            direct_leak: 0.55,
            burst_rate: 1.2,
        }
    }

    /// A Huawei Watch 2–class smartwatch: a smaller, noisier MEMS
    /// microphone and a weaker speaker. For the paper's comparison the
    /// watch is *placed where the phone sat* (its echoes were processed
    /// offline through the same pipeline), so the writing geometry matches
    /// the phone's; only the transducer spacing shrinks to the watch body.
    pub fn watch2() -> Self {
        DeviceProfile {
            name: "Huawei Watch 2".to_string(),
            tone: ToneConfig::paper(),
            mic_pos: Vec3::new(0.018, -0.065, 0.0),
            speaker_pos: Vec3::new(-0.018, -0.065, 0.0),
            mic_noise_sigma: 0.006,
            echo_gain: 0.85,
            direct_leak: 0.45,
            burst_rate: 1.6,
        }
    }

    /// Validates physical plausibility of the profile.
    ///
    /// # Errors
    ///
    /// Returns a message if gains or noise are non-physical, or the
    /// transducers coincide (path lengths would degenerate).
    pub fn validate(&self) -> Result<(), String> {
        if self.echo_gain <= 0.0 || self.direct_leak < 0.0 {
            return Err("gains must be positive".to_string());
        }
        if self.mic_noise_sigma < 0.0 || self.burst_rate < 0.0 {
            return Err("noise parameters must be non-negative".to_string());
        }
        if self.mic_pos.distance(self.speaker_pos) < 1e-4 {
            return Err("microphone and speaker positions coincide".to_string());
        }
        Ok(())
    }
}

impl Default for DeviceProfile {
    fn default() -> Self {
        DeviceProfile::mate9()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_valid() {
        DeviceProfile::mate9().validate().unwrap();
        DeviceProfile::watch2().validate().unwrap();
    }

    #[test]
    fn watch_is_worse_than_phone() {
        let phone = DeviceProfile::mate9();
        let watch = DeviceProfile::watch2();
        assert!(watch.mic_noise_sigma > phone.mic_noise_sigma);
        assert!(watch.echo_gain < phone.echo_gain);
        assert!(watch.burst_rate > phone.burst_rate);
    }

    #[test]
    fn validation_catches_degenerate_geometry() {
        let mut d = DeviceProfile::mate9();
        d.speaker_pos = d.mic_pos;
        assert!(d.validate().is_err());
    }

    #[test]
    fn validation_catches_bad_gain() {
        let mut d = DeviceProfile::mate9();
        d.echo_gain = 0.0;
        assert!(d.validate().is_err());
        let mut d = DeviceProfile::mate9();
        d.mic_noise_sigma = -0.1;
        assert!(d.validate().is_err());
    }

    #[test]
    fn default_is_mate9() {
        assert_eq!(DeviceProfile::default(), DeviceProfile::mate9());
    }
}
