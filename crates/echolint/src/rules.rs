//! The lint rules and the allow-marker contract.
//!
//! Every rule is suppressible only by an explicit, reasoned marker:
//!
//! ```text
//! // echolint: allow(<rule>[, <rule>…]) -- <reason>
//! ```
//!
//! placed on the offending line or the line directly above it. A marker
//! without a `-- <reason>` tail, or naming an unknown rule, is itself a
//! diagnostic (`marker`), so suppressions stay auditable.

use crate::lexer::{Comment, Lexed, TokKind, Token};
use crate::scanner::Scan;
use std::fmt;

/// The rule that produced a diagnostic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// `unwrap`/`expect`/`panic!`/`unreachable!`/`todo!`/`unimplemented!`/
    /// slice-index-by-literal in non-test pipeline code.
    NoPanicPath,
    /// Allocation or copy calls inside hot kernels (`*_into` functions and
    /// functions marked `// echolint: hot`).
    NoAllocHot,
    /// NaN-sensitive float ordering (`partial_cmp`, `f64::max`-style) where
    /// `total_cmp` is required.
    FloatOrder,
    /// Nondeterminism hazards: hash-ordered collections in result paths,
    /// wall-clock/thread-identity reads outside `crates/profile` and benches.
    Determinism,
    /// `pub` items in pipeline library crates must carry doc comments.
    PubDoc,
    /// Raw SIMD surface (`std::arch`/`core::arch`, `_mm*` intrinsics,
    /// feature-detect macros, `target_feature` attributes) outside
    /// `crates/dsp/src/kernels` — the one module sanctioned to hold
    /// architecture-specific code behind the safe dispatch wrappers.
    SimdBoundary,
    /// Malformed or unknown `// echolint:` marker.
    Marker,
}

impl Rule {
    /// The rule's stable id, as written in allow markers.
    pub fn id(self) -> &'static str {
        match self {
            Rule::NoPanicPath => "no-panic-path",
            Rule::NoAllocHot => "no-alloc-hot",
            Rule::FloatOrder => "float-order",
            Rule::Determinism => "determinism",
            Rule::PubDoc => "pub-doc",
            Rule::SimdBoundary => "simd-boundary",
            Rule::Marker => "marker",
        }
    }

    /// Parses a rule id (`marker` is not suppressible and not parsed).
    pub fn from_id(s: &str) -> Option<Rule> {
        match s {
            "no-panic-path" => Some(Rule::NoPanicPath),
            "no-alloc-hot" => Some(Rule::NoAllocHot),
            "float-order" => Some(Rule::FloatOrder),
            "determinism" => Some(Rule::Determinism),
            "pub-doc" => Some(Rule::PubDoc),
            "simd-boundary" => Some(Rule::SimdBoundary),
            _ => None,
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.id())
    }
}

/// One finding.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Path of the offending file (as given to the linter).
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// The rule that fired.
    pub rule: Rule,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: {}: {}", self.file, self.line, self.rule, self.message)
    }
}

/// Where a file sits in the workspace — drives which rules apply.
#[derive(Debug, Clone, Default)]
pub struct FileScope {
    /// Short crate name (`dsp`, `core`, …) or empty when unknown.
    pub crate_name: String,
    /// Whether the crate is one of the Fig. 6 pipeline crates.
    pub pipeline: bool,
    /// Whole file is test/bench/example code (under `tests/`, `benches/`,
    /// `examples/`, or a `build.rs`).
    pub test_file: bool,
    /// Wall-clock reads are permitted (crates/profile, benches, tests).
    pub allow_time: bool,
    /// The file lives in `crates/dsp/src/kernels` — the sanctioned home of
    /// raw `std::arch` SIMD; the `simd-boundary` rule is off here.
    pub simd_kernels: bool,
}

/// A parsed `// echolint: allow(…) -- reason` marker.
#[derive(Debug, Clone)]
struct AllowMarker {
    line: u32,
    rules: Vec<Rule>,
}

/// Parses markers out of the comment list; malformed markers become
/// diagnostics immediately.
fn parse_markers(comments: &[Comment], file: &str, diags: &mut Vec<Diagnostic>) -> Vec<AllowMarker> {
    let mut allows = Vec::new();
    for c in comments {
        let body = c.text.trim_start_matches('/').trim_start_matches('!').trim();
        let Some(rest) = body.strip_prefix("echolint:") else {
            continue;
        };
        let rest = rest.trim();
        if rest == "hot" || rest.starts_with("hot ") {
            continue; // handled by the scanner
        }
        let Some(after_kw) = rest.strip_prefix("allow") else {
            diags.push(Diagnostic {
                file: file.to_string(),
                line: c.line,
                rule: Rule::Marker,
                message: format!("unknown echolint marker {rest:?} (expected `allow(…)` or `hot`)"),
            });
            continue;
        };
        let after_kw = after_kw.trim_start();
        let Some((inside, tail)) = after_kw.strip_prefix('(').and_then(|s| s.split_once(')'))
        else {
            diags.push(Diagnostic {
                file: file.to_string(),
                line: c.line,
                rule: Rule::Marker,
                message: "malformed allow marker: expected `allow(<rule>, …)`".to_string(),
            });
            continue;
        };
        let reason = tail.trim().strip_prefix("--").map(str::trim).unwrap_or("");
        if reason.is_empty() {
            diags.push(Diagnostic {
                file: file.to_string(),
                line: c.line,
                rule: Rule::Marker,
                message: "allow marker must carry a reason: `-- <why this is safe>`".to_string(),
            });
            continue;
        }
        let mut rules = Vec::new();
        let mut ok = true;
        for part in inside.split(',') {
            let id = part.trim();
            match Rule::from_id(id) {
                Some(r) => rules.push(r),
                None => {
                    diags.push(Diagnostic {
                        file: file.to_string(),
                        line: c.line,
                        rule: Rule::Marker,
                        message: format!("unknown rule {id:?} in allow marker"),
                    });
                    ok = false;
                }
            }
        }
        if ok && !rules.is_empty() {
            allows.push(AllowMarker { line: c.line, rules });
        }
    }
    allows
}

/// Runs every rule over one lexed+scanned file.
pub fn check(file: &str, lexed: &Lexed, scan: &Scan, scope: &FileScope) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let allows = parse_markers(&lexed.comments, file, &mut diags);

    if !scope.test_file {
        if scope.pipeline {
            no_panic_path(file, lexed, scan, &mut diags);
            float_order(file, lexed, scan, &mut diags);
            determinism(file, lexed, scan, scope, &mut diags);
            pub_doc(file, scan, &mut diags);
        }
        no_alloc_hot(file, lexed, scan, &mut diags);
        if !scope.simd_kernels {
            simd_boundary(file, lexed, scan, &mut diags);
        }
    }

    // Apply suppressions: a marker on the same line or the line above.
    diags.retain(|d| {
        d.rule == Rule::Marker
            || !allows
                .iter()
                .any(|a| a.rules.contains(&d.rule) && (a.line == d.line || a.line + 1 == d.line))
    });
    diags.sort_by(|a, b| a.line.cmp(&b.line).then(a.rule.cmp(&b.rule)));
    diags
}

fn push(diags: &mut Vec<Diagnostic>, file: &str, line: u32, rule: Rule, message: String) {
    diags.push(Diagnostic { file: file.to_string(), line, rule, message });
}

/// Rule 1 — `no-panic-path`.
fn no_panic_path(file: &str, lexed: &Lexed, scan: &Scan, diags: &mut Vec<Diagnostic>) {
    let toks = &lexed.tokens;
    for i in 0..toks.len() {
        if scan.is_test(i) {
            continue;
        }
        let t = &toks[i];
        // `.unwrap()` / `.expect(`.
        if t.kind == TokKind::Ident
            && (t.text == "unwrap" || t.text == "expect")
            && i > 0
            && toks[i - 1].is_punct('.')
            && toks.get(i + 1).is_some_and(|n| n.is_punct('('))
        {
            push(
                diags,
                file,
                t.line,
                Rule::NoPanicPath,
                format!(".{}() can panic — return a typed error instead", t.text),
            );
        }
        // Panic macros.
        if t.kind == TokKind::Ident
            && matches!(t.text.as_str(), "panic" | "unreachable" | "todo" | "unimplemented")
            && toks.get(i + 1).is_some_and(|n| n.is_punct('!'))
        {
            push(
                diags,
                file,
                t.line,
                Rule::NoPanicPath,
                format!("{}! in non-test pipeline code", t.text),
            );
        }
        // Slice-index-by-literal: `expr[0]`, `expr[0..4]`, `expr[..4]`,
        // `expr[4..]` where expr ends with an identifier, `)`, or `]`.
        if t.is_punct('[') && i > 0 {
            let prev = &toks[i - 1];
            let indexable =
                prev.kind == TokKind::Ident || prev.is_punct(')') || prev.is_punct(']');
            // Exclude attribute openers `#[…]` and struct-ish contexts.
            if indexable && literal_index_inside(toks, i) {
                push(
                    diags,
                    file,
                    t.line,
                    Rule::NoPanicPath,
                    "slice index by literal can panic — use get()/split_first() or a checked range"
                        .to_string(),
                );
            }
        }
    }
}

/// Whether the bracket group opening at `open` is a literal index:
/// `[INT]`, `[INT..INT]`, `[INT..]`, `[..INT]` (with optional `=` range).
fn literal_index_inside(toks: &[Token], open: usize) -> bool {
    let mut j = open + 1;
    let mut saw_int = false;
    let mut structure_ok = true;
    while j < toks.len() && !toks[j].is_punct(']') {
        let t = &toks[j];
        if t.kind == TokKind::Int {
            saw_int = true;
        } else if t.is_punct('.') || t.is_punct('=') {
            // range dots / inclusive `=`
        } else {
            structure_ok = false;
            break;
        }
        j += 1;
    }
    structure_ok && saw_int && j < toks.len()
}

/// Rule 2 — `no-alloc-hot`.
fn no_alloc_hot(file: &str, lexed: &Lexed, scan: &Scan, diags: &mut Vec<Diagnostic>) {
    let toks = &lexed.tokens;
    for f in &scan.fns {
        let hot = f.marked_hot || f.name.ends_with("_into");
        if !hot {
            continue;
        }
        let (s, e) = f.body;
        for i in s..e.min(toks.len()) {
            if scan.is_test(i) {
                continue;
            }
            let t = &toks[i];
            let next_is = |c: char| toks.get(i + 1).is_some_and(|n| n.is_punct(c));
            let prev_is_dot = i > 0 && toks[i - 1].is_punct('.');
            let hit = if t.kind != TokKind::Ident {
                None
            } else if (t.text == "Vec" || t.text == "Box" || t.text == "String")
                && next_is(':')
            {
                // `Vec::new`, `Vec::with_capacity`, `Box::new`, `String::from`…
                Some(format!("{}::… constructor", t.text))
            } else if t.text == "vec" && next_is('!') {
                Some("vec! allocation".to_string())
            } else if prev_is_dot
                && matches!(
                    t.text.as_str(),
                    "to_vec" | "clone" | "collect" | "push" | "to_owned" | "to_string"
                )
            {
                Some(format!(".{}()", t.text))
            } else if t.text == "format" && next_is('!') {
                Some("format! allocation".to_string())
            } else {
                None
            };
            if let Some(what) = hit {
                push(
                    diags,
                    file,
                    t.line,
                    Rule::NoAllocHot,
                    format!(
                        "{} in hot kernel `{}` — hot kernels must write into caller-owned buffers",
                        what, f.name
                    ),
                );
            }
        }
    }
}

/// Rule 3 — `float-order`.
fn float_order(file: &str, lexed: &Lexed, scan: &Scan, diags: &mut Vec<Diagnostic>) {
    let toks = &lexed.tokens;
    for i in 0..toks.len() {
        if scan.is_test(i) {
            continue;
        }
        let t = &toks[i];
        if t.is_ident("partial_cmp") && i > 0 && toks[i - 1].is_punct('.') {
            push(
                diags,
                file,
                t.line,
                Rule::FloatOrder,
                "partial_cmp is NaN-unsafe — use total_cmp for float ordering".to_string(),
            );
        }
        // `f32::max(a, b)` / `f64::min(…)` path form.
        if (t.is_ident("f32") || t.is_ident("f64"))
            && toks.get(i + 1).is_some_and(|n| n.is_punct(':'))
            && toks.get(i + 2).is_some_and(|n| n.is_punct(':'))
            && toks.get(i + 3).is_some_and(|n| n.is_ident("max") || n.is_ident("min"))
            && toks.get(i + 4).is_some_and(|n| n.is_punct('('))
        {
            push(
                diags,
                file,
                t.line,
                Rule::FloatOrder,
                format!(
                    "{}::{} silently drops NaN — order with total_cmp or guard the inputs",
                    t.text,
                    toks[i + 3].text
                ),
            );
        }
    }
}

/// Rule 4 — `determinism`.
fn determinism(
    file: &str,
    lexed: &Lexed,
    scan: &Scan,
    scope: &FileScope,
    diags: &mut Vec<Diagnostic>,
) {
    let toks = &lexed.tokens;
    for i in 0..toks.len() {
        if scan.is_test(i) {
            continue;
        }
        let t = &toks[i];
        if t.is_ident("HashMap") || t.is_ident("HashSet") {
            push(
                diags,
                file,
                t.line,
                Rule::Determinism,
                format!(
                    "{} iteration order is nondeterministic — use BTreeMap/BTreeSet or sort before producing results",
                    t.text
                ),
            );
        }
        if scope.allow_time {
            continue;
        }
        // `std::time`, `Instant::…`, `SystemTime::…`.
        if t.is_ident("time")
            && i >= 2
            && toks[i - 1].is_punct(':')
            && toks[i - 2].is_punct(':')
            && i >= 3
            && toks[i - 3].is_ident("std")
        {
            push(
                diags,
                file,
                t.line,
                Rule::Determinism,
                "std::time outside crates/profile and benches — wall-clock reads make results environment-dependent".to_string(),
            );
        }
        if (t.is_ident("Instant") || t.is_ident("SystemTime"))
            && toks.get(i + 1).is_some_and(|n| n.is_punct(':'))
            && !(i >= 1 && toks[i - 1].is_punct(':'))
        {
            push(
                diags,
                file,
                t.line,
                Rule::Determinism,
                format!("{}:: outside crates/profile and benches", t.text),
            );
        }
        // `thread::current()` — thread identity.
        if t.is_ident("current")
            && i >= 3
            && toks[i - 1].is_punct(':')
            && toks[i - 2].is_punct(':')
            && toks[i - 3].is_ident("thread")
        {
            push(
                diags,
                file,
                t.line,
                Rule::Determinism,
                "thread::current() identity must not influence results".to_string(),
            );
        }
    }
}

/// Rule 6 — `simd-boundary`.
///
/// Raw architecture-specific SIMD belongs in `crates/dsp/src/kernels`
/// behind the dispatcher's safe wrappers; anywhere else it fragments the
/// scalar-equivalence guarantee (there is exactly one place to audit for
/// `unsafe` lane code and exactly one `ECHOWRITE_SIMD` knob to force it
/// off). Fires on `std::arch`/`core::arch` paths, `_mm*` intrinsic idents,
/// the feature-detect macros, and `target_feature` attributes.
fn simd_boundary(file: &str, lexed: &Lexed, scan: &Scan, diags: &mut Vec<Diagnostic>) {
    let toks = &lexed.tokens;
    for i in 0..toks.len() {
        if scan.is_test(i) {
            continue;
        }
        let t = &toks[i];
        if t.kind != TokKind::Ident {
            continue;
        }
        // `std::arch` / `core::arch` paths (use, call, or cfg position).
        if t.text == "arch"
            && i >= 3
            && toks[i - 1].is_punct(':')
            && toks[i - 2].is_punct(':')
            && (toks[i - 3].is_ident("std") || toks[i - 3].is_ident("core"))
        {
            push(
                diags,
                file,
                t.line,
                Rule::SimdBoundary,
                format!(
                    "{}::arch outside dsp::kernels — raw SIMD lives behind the kernel dispatch layer",
                    toks[i - 3].text
                ),
            );
        }
        // Intel intrinsic idents (`_mm_…`, `_mm256_…`) even when imported.
        if t.text.starts_with("_mm") {
            push(
                diags,
                file,
                t.line,
                Rule::SimdBoundary,
                format!("intrinsic `{}` outside dsp::kernels", t.text),
            );
        }
        // Runtime feature probes: the dispatcher is the single source of
        // truth for what the host supports.
        if (t.text == "is_x86_feature_detected" || t.text == "is_aarch64_feature_detected")
            && toks.get(i + 1).is_some_and(|n| n.is_punct('!'))
        {
            push(
                diags,
                file,
                t.line,
                Rule::SimdBoundary,
                format!("{}! outside dsp::kernels — query kernels::backend() instead", t.text),
            );
        }
        // `#[target_feature(…)]` attributes imply unsafe lane code.
        if t.text == "target_feature" && i >= 1 && toks[i - 1].is_punct('[') {
            push(
                diags,
                file,
                t.line,
                Rule::SimdBoundary,
                "#[target_feature] outside dsp::kernels".to_string(),
            );
        }
    }
}

/// Rule 5 — `pub-doc`.
fn pub_doc(file: &str, scan: &Scan, diags: &mut Vec<Diagnostic>) {
    for u in &scan.undoc_pubs {
        push(
            diags,
            file,
            u.line,
            Rule::PubDoc,
            format!("public {} `{}` has no doc comment", u.kind, u.name),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::scanner::scan;

    fn pipeline_scope() -> FileScope {
        FileScope {
            crate_name: "dsp".into(),
            pipeline: true,
            test_file: false,
            allow_time: false,
            simd_kernels: false,
        }
    }

    fn run(src: &str) -> Vec<Diagnostic> {
        let l = lex(src);
        let s = scan(&l);
        check("mem.rs", &l, &s, &pipeline_scope())
    }

    #[test]
    fn unwrap_fires_and_allow_suppresses() {
        let d = run("fn f() { x.unwrap(); }");
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, Rule::NoPanicPath);
        let d = run(
            "fn f() {\n// echolint: allow(no-panic-path) -- length checked above\nx.unwrap();\n}",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn allow_without_reason_is_a_marker_diag() {
        let d = run("fn f() {\n// echolint: allow(no-panic-path)\nx.unwrap();\n}");
        assert!(d.iter().any(|d| d.rule == Rule::Marker));
        assert!(d.iter().any(|d| d.rule == Rule::NoPanicPath), "unreasoned marker must not suppress");
    }

    #[test]
    fn literal_index_fires_variable_index_does_not() {
        let d = run("fn f(v: &[u8]) { let a = v[0]; let b = v[i]; let c = v[1..3]; }");
        assert_eq!(d.iter().filter(|d| d.rule == Rule::NoPanicPath).count(), 2);
    }

    #[test]
    fn hot_kernel_alloc_fires_only_in_hot_fns() {
        let d = run("fn magnitude_into(o: &mut [f64]) { let v = Vec::new(); }\nfn cold() { let v = Vec::new(); }");
        assert_eq!(d.iter().filter(|d| d.rule == Rule::NoAllocHot).count(), 1);
    }

    #[test]
    fn partial_cmp_and_f64_max_fire() {
        let d = run("fn f(a: f64, b: f64) { a.partial_cmp(&b); f64::max(a, b); }");
        assert_eq!(d.iter().filter(|d| d.rule == Rule::FloatOrder).count(), 2);
    }

    #[test]
    fn total_cmp_is_clean() {
        let d = run("fn f(xs: &mut [f64]) { xs.sort_by(|a, b| a.total_cmp(b)); }");
        assert!(d.iter().all(|d| d.rule != Rule::FloatOrder));
    }

    #[test]
    fn hashmap_and_time_fire() {
        let d = run("use std::collections::HashMap;\nfn f() { let t = std::time::Instant::now(); }");
        assert_eq!(d.iter().filter(|d| d.rule == Rule::Determinism).count(), 2);
    }

    #[test]
    fn time_allowed_in_profile_scope() {
        let l = lex("fn f() { let t = std::time::Instant::now(); }");
        let s = scan(&l);
        let scope = FileScope {
            crate_name: "profile".into(),
            pipeline: true,
            test_file: false,
            allow_time: true,
            simd_kernels: false,
        };
        let d = check("mem.rs", &l, &s, &scope);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn test_code_is_exempt() {
        let d = run("#[cfg(test)]\nmod tests {\n fn t() { x.unwrap(); let m: HashMap<u8, u8>; }\n}");
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn simd_surface_fires_outside_kernels() {
        let d = run("use std::arch::x86_64::_mm256_add_pd;\nfn f() { unsafe { _mm256_add_pd(a, b) }; }");
        assert!(d.iter().filter(|d| d.rule == Rule::SimdBoundary).count() >= 2, "{d:?}");
        let d = run("fn f() -> bool { is_x86_feature_detected!(\"avx2\") }");
        assert_eq!(d.iter().filter(|d| d.rule == Rule::SimdBoundary).count(), 1);
        let d = run("#[target_feature(enable = \"avx2\")]\nunsafe fn g() {}");
        assert_eq!(d.iter().filter(|d| d.rule == Rule::SimdBoundary).count(), 1);
    }

    #[test]
    fn simd_surface_is_sanctioned_inside_kernels_scope() {
        let src = "use core::arch::x86_64::_mm256_add_pd;\n#[target_feature(enable = \"avx2\")]\nunsafe fn g() { is_x86_feature_detected!(\"avx2\"); }";
        let l = lex(src);
        let s = scan(&l);
        let scope = FileScope { simd_kernels: true, ..pipeline_scope() };
        let d = check("mem.rs", &l, &s, &scope);
        assert!(d.iter().all(|d| d.rule != Rule::SimdBoundary), "{d:?}");
    }

    #[test]
    fn simd_boundary_suppressed_by_reasoned_allow() {
        let d = run(
            "fn f() -> bool {\n// echolint: allow(simd-boundary) -- probing for a diagnostics banner only\nis_x86_feature_detected!(\"avx2\")\n}",
        );
        assert!(d.iter().all(|d| d.rule != Rule::SimdBoundary), "{d:?}");
    }

    #[test]
    fn non_pipeline_scope_only_checks_hot_fns() {
        let l = lex("fn f() { x.unwrap(); }\nfn fill_into(o: &mut [f64]) { o.to_vec(); }");
        let s = scan(&l);
        let scope = FileScope::default();
        let d = check("mem.rs", &l, &s, &scope);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, Rule::NoAllocHot);
    }
}
