//! A deliberately tiny HTTP/1.1 subset — exactly what an admin plane
//! needs and nothing more: parse one request head, discard a bounded
//! body, write one `Connection: close` response. No keep-alive, no
//! chunked encoding, no TLS; the server closes the socket after every
//! response, so the connection lifecycle is the response framing.
//!
//! Grammar violations are *terminal per connection*: a desynced byte
//! stream cannot be trusted for a second request, so the caller answers
//! `400` (when the line was readable at all) and closes — other
//! connections are unaffected, which the fuzz tests pin down.

use std::io::Read;

/// Maximum bytes of request head (request line + headers) accepted.
pub const MAX_HEAD: usize = 8 * 1024;
/// Maximum request body accepted (bodies are read and discarded).
pub const MAX_BODY: usize = 64 * 1024;

/// The request methods the admin plane serves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// Read-only endpoints.
    Get,
    /// State-changing endpoints (trace start/stop).
    Post,
}

/// One parsed request: the method and the path with any query stripped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpRequest {
    /// Request method.
    pub method: Method,
    /// Absolute path, query string removed.
    pub path: String,
}

/// Why a request could not be served.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestError {
    /// The peer closed (or errored) before a full head arrived. Not a
    /// protocol violation — browsers probe and hang up — so it is not
    /// counted as malformed.
    Disconnected,
    /// The bytes violate the HTTP grammar this subset accepts; the
    /// payload names the first violated rule.
    Malformed(&'static str),
}

/// Reads and parses one request from `stream`, then discards any
/// `Content-Length` body so a subsequent response is not interleaved
/// with unread input.
///
/// # Errors
///
/// [`RequestError::Disconnected`] on EOF/IO before a full head,
/// [`RequestError::Malformed`] on grammar violations (oversized head or
/// body included — a peer that overruns the bounds is indistinguishable
/// from a hostile one).
pub fn read_request(stream: &mut impl Read) -> Result<HttpRequest, RequestError> {
    let mut head = Vec::with_capacity(512);
    let mut byte = [0u8; 1];
    // Byte-at-a-time until the blank line: the head is tiny and arrives
    // in one segment in practice; simplicity beats a lookahead buffer
    // that would have to be pushed back before the body.
    let end = loop {
        match stream.read(&mut byte) {
            Ok(0) | Err(_) => return Err(RequestError::Disconnected),
            Ok(_) => head.extend_from_slice(&byte),
        }
        if head.ends_with(b"\r\n\r\n") {
            break head.len();
        }
        if head.len() >= MAX_HEAD {
            return Err(RequestError::Malformed("request head exceeds 8 KiB"));
        }
    };
    let text = match std::str::from_utf8(head.get(..end).unwrap_or_default()) {
        Ok(text) => text,
        Err(_) => return Err(RequestError::Malformed("request head is not UTF-8")),
    };
    let (request, content_length) = parse_head(text)?;
    if content_length > MAX_BODY {
        return Err(RequestError::Malformed("request body exceeds 64 KiB"));
    }
    // Drain the body so the response does not race unread input through
    // the socket's buffers.
    let mut remaining = content_length;
    let mut chunk = [0u8; 1024];
    while remaining > 0 {
        let want = remaining.min(chunk.len());
        let Some(buf) = chunk.get_mut(..want) else { break };
        match stream.read(buf) {
            Ok(0) | Err(_) => return Err(RequestError::Disconnected),
            Ok(n) => remaining = remaining.saturating_sub(n),
        }
    }
    Ok(request)
}

/// Parses a complete request head (terminated by the blank line) into
/// the request plus the declared `Content-Length` (0 when absent).
///
/// # Errors
///
/// [`RequestError::Malformed`] naming the first violated grammar rule.
pub fn parse_head(head: &str) -> Result<(HttpRequest, usize), RequestError> {
    let mut lines = head.split("\r\n");
    let request_line = match lines.next() {
        Some(line) if !line.is_empty() => line,
        _ => return Err(RequestError::Malformed("empty request line")),
    };
    let mut parts = request_line.split(' ');
    let method = match parts.next() {
        Some("GET") => Method::Get,
        Some("POST") => Method::Post,
        _ => return Err(RequestError::Malformed("method must be GET or POST")),
    };
    let Some(target) = parts.next() else {
        return Err(RequestError::Malformed("request line lacks a target"));
    };
    match parts.next() {
        Some(version) if version.starts_with("HTTP/1.") => {}
        _ => return Err(RequestError::Malformed("version must be HTTP/1.x")),
    }
    if parts.next().is_some() {
        return Err(RequestError::Malformed("request line has trailing fields"));
    }
    if !target.starts_with('/') {
        return Err(RequestError::Malformed("target must be an absolute path"));
    }
    let path = target.split('?').next().unwrap_or(target).to_string();

    let mut content_length = 0usize;
    for line in lines {
        if line.is_empty() {
            break; // the blank line terminating the head
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(RequestError::Malformed("header line lacks a colon"));
        };
        if name.trim().eq_ignore_ascii_case("content-length") {
            content_length = match value.trim().parse::<usize>() {
                Ok(n) => n,
                Err(_) => return Err(RequestError::Malformed("unparseable Content-Length")),
            };
        }
    }
    Ok((HttpRequest { method, path }, content_length))
}

/// The reason phrase for the status codes this plane emits.
fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Serializes one `Connection: close` response into `out` (separated
/// from socket writes so tests can inspect the exact bytes).
pub fn encode_response(out: &mut Vec<u8>, status: u16, content_type: &str, body: &[u8]) {
    out.extend_from_slice(b"HTTP/1.1 ");
    out.extend_from_slice(status.to_string().as_bytes());
    out.push(b' ');
    out.extend_from_slice(reason(status).as_bytes());
    out.extend_from_slice(b"\r\nContent-Type: ");
    out.extend_from_slice(content_type.as_bytes());
    out.extend_from_slice(b"\r\nContent-Length: ");
    out.extend_from_slice(body.len().to_string().as_bytes());
    out.extend_from_slice(b"\r\nConnection: close\r\n\r\n");
    out.extend_from_slice(body);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(head: &str) -> Result<(HttpRequest, usize), RequestError> {
        parse_head(head)
    }

    #[test]
    fn parses_get_with_query_and_headers() {
        let (req, len) =
            parse("GET /sessions?verbose=1 HTTP/1.1\r\nHost: x\r\nAccept: */*\r\n\r\n").unwrap();
        assert_eq!(req.method, Method::Get);
        assert_eq!(req.path, "/sessions", "query must be stripped");
        assert_eq!(len, 0);
    }

    #[test]
    fn parses_post_with_content_length() {
        let (req, len) =
            parse("POST /trace/start HTTP/1.1\r\nContent-Length: 12\r\n\r\n").unwrap();
        assert_eq!(req.method, Method::Post);
        assert_eq!(len, 12);
    }

    #[test]
    fn rejects_grammar_violations() {
        for (head, why) in [
            ("", "empty"),
            ("\r\n\r\n", "blank request line"),
            ("BREW /pot HTTP/1.1\r\n\r\n", "unknown method"),
            ("GET HTTP/1.1\r\n\r\n", "missing target"),
            ("GET / SIP/2.0\r\n\r\n", "wrong protocol"),
            ("GET / HTTP/1.1 extra\r\n\r\n", "trailing fields"),
            ("GET metrics HTTP/1.1\r\n\r\n", "relative target"),
            ("GET / HTTP/1.1\r\nno-colon-header\r\n\r\n", "bad header"),
            ("GET / HTTP/1.1\r\nContent-Length: ten\r\n\r\n", "bad length"),
        ] {
            assert!(
                matches!(parse(head), Err(RequestError::Malformed(_))),
                "{why} must be malformed: {head:?}"
            );
        }
    }

    #[test]
    fn read_request_drains_declared_body() {
        let bytes = b"POST /trace/start HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello";
        let mut cursor = &bytes[..];
        let req = read_request(&mut cursor).unwrap();
        assert_eq!(req.path, "/trace/start");
        assert!(cursor.is_empty(), "body must be consumed");
    }

    #[test]
    fn read_request_bounds_head_and_body() {
        let huge = format!("GET /{} HTTP/1.1\r\n\r\n", "x".repeat(MAX_HEAD));
        let mut cursor = huge.as_bytes();
        assert!(matches!(read_request(&mut cursor), Err(RequestError::Malformed(_))));
        let big_body = format!("POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n", MAX_BODY + 1);
        let mut cursor = big_body.as_bytes();
        assert!(matches!(read_request(&mut cursor), Err(RequestError::Malformed(_))));
    }

    #[test]
    fn truncated_stream_is_disconnected_not_malformed() {
        let mut cursor = &b"GET /healthz HT"[..];
        assert_eq!(read_request(&mut cursor), Err(RequestError::Disconnected));
    }

    #[test]
    fn response_wire_shape() {
        let mut out = Vec::new();
        encode_response(&mut out, 200, "text/plain", b"ok\n");
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 3\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.ends_with("\r\n\r\nok\n"));
    }
}
