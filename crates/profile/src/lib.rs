//! Doppler-profile extraction and stroke segmentation (paper Sec. III-B).
//!
//! From the enhanced binary spectrogram, EchoWrite:
//!
//! 1. extracts the **Doppler profile** — one signed frequency-shift value
//!    per time frame — with the mean-value-based contour extraction
//!    algorithm ([`mvce`], the paper's Algorithm 1), which first decides the
//!    overall motion direction from the mean of the non-null bins versus the
//!    carrier row and then takes the extreme bin on that side, rejecting the
//!    slower hand/arm multipath blobs near the carrier;
//! 2. smooths the profile with a 3-point moving average;
//! 3. **segments** the continuous profile into strokes by detecting abrupt
//!    changes in the profile's first difference (finger acceleration),
//!    computed with the Holoborodko noise-robust differentiator (Eq. 2):
//!    a stroke starts where |acceleration| first exceeds β (searching back
//!    to the nearest zero-shift point) and ends when nine successive points
//!    fall below γ = β/2 ([`segment`]).

pub mod incremental;
pub mod mvce;
pub mod profile;
pub mod segment;
pub mod timing;

pub use incremental::{
    IncrementalDiff, IncrementalDiffState, ProfileBuilder, ProfileBuilderState, SegmentedStroke,
    SegmenterPhase, StreamingSegmenter, StreamingSegmenterState,
};
pub use mvce::{column_contour_row, deadzone_hz, extract_profile};
pub use profile::DopplerProfile;
pub use segment::{SegmentConfig, Segmenter, StrokeSegment};
pub use timing::Stopwatch;
