//! The comparison baseline: a soft keyboard on a smartwatch screen.
//!
//! Figs. 16–17 compare EchoWrite's entry speed against typing on a
//! smartwatch touch keyboard (5.5 WPM / ~18.8 LPM for the paper's
//! participants). The model here is a standard Fitts'-law tap model with
//! fat-finger errors on tiny keys: each letter costs a pointing time that
//! grows with key distance and shrinking key size, and a miss forces a
//! backspace + retype.

use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// A Fitts'-law smartwatch keyboard model.
#[derive(Debug, Clone, PartialEq)]
pub struct SmartwatchKeyboard {
    /// Fitts' law intercept (seconds).
    pub fitts_a: f64,
    /// Fitts' law slope (seconds per bit).
    pub fitts_b: f64,
    /// Keyboard width in millimetres (a ~30 mm watch keyboard).
    pub keyboard_width_mm: f64,
    /// Key width in millimetres (QWERTY: width / 10).
    pub key_width_mm: f64,
    /// Probability of a fat-finger miss per tap.
    pub miss_rate: f64,
    /// Extra time to notice + backspace a miss (seconds).
    pub correction_time: f64,
}

impl SmartwatchKeyboard {
    /// Parameters of a typical 1.4-inch smartwatch keyboard.
    pub fn typical() -> Self {
        SmartwatchKeyboard {
            fitts_a: 0.35,
            fitts_b: 0.70,
            keyboard_width_mm: 30.0,
            key_width_mm: 3.0,
            miss_rate: 0.15,
            correction_time: 1.2,
        }
    }

    /// Expected time to tap one key, averaging over travel distances
    /// (mean travel ≈ 40 % of the keyboard width).
    pub fn tap_time(&self) -> f64 {
        let d = 0.4 * self.keyboard_width_mm;
        let id = (d / self.key_width_mm + 1.0).log2();
        self.fitts_a + self.fitts_b * id
    }

    /// Simulates typing `words`, returning total seconds including misses
    /// and the space taps between words.
    pub fn type_words(&self, words: &[&str], seed: u64) -> f64 {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let tap = self.tap_time();
        let mut total = 0.0;
        for (i, w) in words.iter().enumerate() {
            for _ in w.chars() {
                total += tap;
                // Misses require a backspace tap and a retype.
                while rng.gen::<f64>() < self.miss_rate {
                    total += self.correction_time + tap;
                }
            }
            if i + 1 < words.len() {
                total += tap; // space
            }
        }
        total
    }

    /// Expected words-per-minute on text with the given mean word length.
    pub fn expected_wpm(&self, mean_word_len: f64) -> f64 {
        let tap = self.tap_time();
        // Each letter costs a tap plus expected miss overhead; one space per
        // word.
        let expected_miss = self.miss_rate / (1.0 - self.miss_rate);
        let per_letter = tap + expected_miss * (self.correction_time + tap);
        let per_word = mean_word_len * per_letter + tap;
        60.0 / per_word
    }
}

impl Default for SmartwatchKeyboard {
    fn default() -> Self {
        SmartwatchKeyboard::typical()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tap_time_plausible() {
        // Tiny 3 mm keys need visually guided, slow taps.
        let kb = SmartwatchKeyboard::typical();
        let t = kb.tap_time();
        assert!(t > 1.0 && t < 2.5, "tap time {t}s");
    }

    #[test]
    fn expected_wpm_matches_paper_ballpark() {
        // The paper's participants typed at ~5.5 WPM on the watch.
        let kb = SmartwatchKeyboard::typical();
        let wpm = kb.expected_wpm(4.0);
        assert!(wpm > 4.0 && wpm < 8.0, "watch keyboard at {wpm} WPM");
    }

    #[test]
    fn smaller_keys_are_slower() {
        let big = SmartwatchKeyboard { key_width_mm: 6.0, ..SmartwatchKeyboard::typical() };
        let small = SmartwatchKeyboard { key_width_mm: 2.0, ..SmartwatchKeyboard::typical() };
        assert!(small.tap_time() > big.tap_time());
        assert!(small.expected_wpm(4.0) < big.expected_wpm(4.0));
    }

    #[test]
    fn typing_time_deterministic_and_scales() {
        let kb = SmartwatchKeyboard::typical();
        let words = ["the", "people"];
        assert_eq!(kb.type_words(&words, 5), kb.type_words(&words, 5));
        let longer = kb.type_words(&["the", "people", "morning"], 5);
        assert!(longer > kb.type_words(&words, 5));
    }

    #[test]
    fn misses_add_time() {
        let clean = SmartwatchKeyboard { miss_rate: 0.0, ..SmartwatchKeyboard::typical() };
        let sloppy = SmartwatchKeyboard { miss_rate: 0.25, ..SmartwatchKeyboard::typical() };
        let words = ["because", "question", "morning"];
        assert!(sloppy.type_words(&words, 9) > clean.type_words(&words, 9));
        assert!(sloppy.expected_wpm(4.0) < clean.expected_wpm(4.0));
    }
}
