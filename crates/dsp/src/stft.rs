//! Short-time Fourier transform.
//!
//! EchoWrite frames the 44.1 kHz echo stream into 8192-sample FFT frames
//! advanced by a 1024-sample hop (0.186 s frames every 0.023 s), windowed
//! with Hann, and concatenates the per-frame magnitude spectra of every
//! 5 frames into a spectrogram (paper Sec. III-A).

use crate::complex::Complex;
use crate::realfft::{RealFft, RealFftScratch};
use crate::window::WindowKind;

/// Configuration of an STFT analysis.
///
/// # Example
///
/// ```
/// use echowrite_dsp::{StftConfig, WindowKind};
/// let cfg = StftConfig::paper();
/// assert_eq!(cfg.fft_size, 8192);
/// assert_eq!(cfg.hop, 1024);
/// assert_eq!(cfg.window, WindowKind::Hann);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StftConfig {
    /// FFT frame length in samples; must be a power of two.
    pub fft_size: usize,
    /// Hop (window step) between successive frames, in samples.
    pub hop: usize,
    /// Analysis window applied to each frame.
    pub window: WindowKind,
    /// Sample rate in Hz, used only to translate bins to frequencies.
    pub sample_rate: f64,
}

impl StftConfig {
    /// The exact parameters used by the paper: 8192-sample Hann frames at a
    /// 1024-sample hop over 44.1 kHz audio.
    pub fn paper() -> Self {
        StftConfig {
            fft_size: 8192,
            hop: 1024,
            window: WindowKind::Hann,
            sample_rate: 44_100.0,
        }
    }

    /// Frequency in Hz of a given bin index.
    pub fn bin_frequency(&self, bin: usize) -> f64 {
        bin as f64 * self.sample_rate / self.fft_size as f64
    }

    /// The bin index whose centre frequency is closest to `freq_hz`.
    pub fn frequency_bin(&self, freq_hz: f64) -> usize {
        (freq_hz * self.fft_size as f64 / self.sample_rate).round() as usize
    }

    /// Frame duration in seconds.
    pub fn frame_seconds(&self) -> f64 {
        self.fft_size as f64 / self.sample_rate
    }

    /// Hop duration in seconds (the spectrogram's column period).
    pub fn hop_seconds(&self) -> f64 {
        self.hop as f64 / self.sample_rate
    }
}

impl Default for StftConfig {
    fn default() -> Self {
        StftConfig::paper()
    }
}

/// A planned short-time Fourier transform.
///
/// Holds a planned [`RealFft`] (half-size complex transform plus split pass)
/// and window coefficients; reusable across frames without reallocation of
/// the plan, and shareable across threads — per-frame workspace lives in a
/// separate [`StftScratch`].
#[derive(Debug, Clone)]
pub struct Stft {
    config: StftConfig,
    fft: RealFft,
    window: Vec<f64>,
}

/// Reusable per-worker workspace for the zero-allocation STFT entry points:
/// the windowed frame, the packed half-size FFT buffer, and the complex
/// half-spectrum.
#[derive(Debug, Clone)]
pub struct StftScratch {
    windowed: Vec<f64>,
    fft: RealFftScratch,
    spectrum: Vec<Complex>,
}

impl Stft {
    /// Plans an STFT with the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if `fft_size` is not a power of two or `hop` is zero.
    pub fn new(config: StftConfig) -> Self {
        assert!(config.hop > 0, "hop must be positive");
        let fft = RealFft::new(config.fft_size);
        let window = config.window.coefficients(config.fft_size);
        Stft { config, fft, window }
    }

    /// Returns the configuration this plan was built with.
    pub fn config(&self) -> &StftConfig {
        &self.config
    }

    /// Number of complete frames available in a signal of `len` samples.
    pub fn frame_count(&self, len: usize) -> usize {
        if len < self.config.fft_size {
            0
        } else {
            (len - self.config.fft_size) / self.config.hop + 1
        }
    }

    /// Number of magnitude bins per full frame: `fft_size/2 + 1`.
    #[inline]
    pub fn bins(&self) -> usize {
        self.config.fft_size / 2 + 1
    }

    /// Allocates a scratch arena sized for this plan. One scratch serves any
    /// number of sequential frames; concurrent workers each need their own.
    pub fn make_scratch(&self) -> StftScratch {
        StftScratch {
            windowed: vec![0.0; self.config.fft_size],
            fft: self.fft.make_scratch(),
            spectrum: vec![Complex::ZERO; self.fft.output_len()],
        }
    }

    /// Computes magnitudes of the bin range `[lo_bin, hi_bin]` (inclusive)
    /// of one frame into `out`, allocating nothing.
    ///
    /// # Panics
    ///
    /// Panics if `frame.len() != fft_size`, the band is invalid, or
    /// `out.len() != hi_bin - lo_bin + 1`.
    pub fn frame_band_into(
        &self,
        frame: &[f64],
        lo_bin: usize,
        hi_bin: usize,
        scratch: &mut StftScratch,
        out: &mut [f64],
    ) {
        assert_eq!(frame.len(), self.config.fft_size, "frame length mismatch");
        assert!(lo_bin <= hi_bin, "lo_bin {lo_bin} > hi_bin {hi_bin}");
        assert!(
            hi_bin <= self.config.fft_size / 2,
            "hi_bin {hi_bin} beyond Nyquist bin {}",
            self.config.fft_size / 2
        );
        assert_eq!(out.len(), hi_bin - lo_bin + 1, "band output length mismatch");
        scratch.windowed.resize(self.config.fft_size, 0.0);
        crate::kernels::mul_into(&mut scratch.windowed, frame, &self.window);
        scratch.spectrum.resize(self.fft.output_len(), Complex::ZERO);
        self.fft
            .forward_into(&scratch.windowed, &mut scratch.fft, &mut scratch.spectrum);
        for (o, z) in out.iter_mut().zip(&scratch.spectrum[lo_bin..=hi_bin]) {
            *o = z.norm();
        }
    }

    /// Computes the full half-spectrum magnitudes of one frame into `out`,
    /// allocating nothing.
    ///
    /// # Panics
    ///
    /// Panics if `frame.len() != fft_size` or `out.len() != fft_size/2 + 1`.
    pub fn frame_magnitudes_into(&self, frame: &[f64], scratch: &mut StftScratch, out: &mut [f64]) {
        self.frame_band_into(frame, 0, self.config.fft_size / 2, scratch, out);
    }

    /// Computes the magnitude spectrum of a single frame starting at sample 0
    /// of `frame` (which must be exactly `fft_size` samples long).
    ///
    /// Returns `fft_size / 2 + 1` magnitudes. Allocating convenience wrapper
    /// around [`Stft::frame_magnitudes_into`].
    ///
    /// # Panics
    ///
    /// Panics if `frame.len() != fft_size`.
    pub fn frame_magnitudes(&self, frame: &[f64]) -> Vec<f64> {
        let mut scratch = self.make_scratch();
        let mut out = vec![0.0; self.bins()];
        self.frame_magnitudes_into(frame, &mut scratch, &mut out);
        out
    }

    /// Computes magnitude spectra for all complete frames of `signal`.
    ///
    /// Returns one `Vec` of `fft_size/2 + 1` magnitudes per frame; an empty
    /// vector if the signal is shorter than one frame. One scratch arena is
    /// reused across all frames.
    pub fn process(&self, signal: &[f64]) -> Vec<Vec<f64>> {
        let frames = self.frame_count(signal.len());
        let mut scratch = self.make_scratch();
        let mut out = Vec::with_capacity(frames);
        for f in 0..frames {
            let start = f * self.config.hop;
            let mut row = vec![0.0; self.bins()];
            self.frame_magnitudes_into(
                &signal[start..start + self.config.fft_size],
                &mut scratch,
                &mut row,
            );
            out.push(row);
        }
        out
    }

    /// Computes magnitude spectra restricted to the bin range
    /// `[lo_bin, hi_bin]` inclusive — the paper's region-of-interest
    /// optimization that cuts the processed column height from 8192 to 350.
    ///
    /// Each frame computes only the requested band; full half-spectrum rows
    /// are never materialized.
    ///
    /// # Panics
    ///
    /// Panics if `lo_bin > hi_bin` or `hi_bin` exceeds `fft_size/2`.
    pub fn process_band(&self, signal: &[f64], lo_bin: usize, hi_bin: usize) -> Vec<Vec<f64>> {
        assert!(lo_bin <= hi_bin, "lo_bin {lo_bin} > hi_bin {hi_bin}");
        assert!(
            hi_bin <= self.config.fft_size / 2,
            "hi_bin {hi_bin} beyond Nyquist bin {}",
            self.config.fft_size / 2
        );
        let frames = self.frame_count(signal.len());
        let band = hi_bin - lo_bin + 1;
        let mut scratch = self.make_scratch();
        let mut out = Vec::with_capacity(frames);
        for f in 0..frames {
            let start = f * self.config.hop;
            let mut row = vec![0.0; band];
            self.frame_band_into(
                &signal[start..start + self.config.fft_size],
                lo_bin,
                hi_bin,
                &mut scratch,
                &mut row,
            );
            out.push(row);
        }
        out
    }

    /// Computes the band `[lo_bin, hi_bin]` of every complete frame into a
    /// flat frame-major buffer: frame `f`'s magnitudes occupy
    /// `out[f*band .. (f+1)*band]` where `band = hi_bin - lo_bin + 1`.
    ///
    /// This is the zero-allocation bulk entry point used by the pipeline;
    /// disjoint sub-slices of `out` can also be filled by parallel workers
    /// via [`Stft::frame_band_into`].
    ///
    /// # Panics
    ///
    /// Panics if the band is invalid or `out.len()` differs from
    /// `frame_count * band`.
    pub fn process_band_into(
        &self,
        signal: &[f64],
        lo_bin: usize,
        hi_bin: usize,
        scratch: &mut StftScratch,
        out: &mut [f64],
    ) {
        assert!(lo_bin <= hi_bin, "lo_bin {lo_bin} > hi_bin {hi_bin}");
        let frames = self.frame_count(signal.len());
        let band = hi_bin - lo_bin + 1;
        assert_eq!(
            out.len(),
            frames * band,
            "flat output length {} != frames {frames} × band {band}",
            out.len()
        );
        for (f, row) in out.chunks_exact_mut(band).enumerate() {
            let start = f * self.config.hop;
            self.frame_band_into(
                &signal[start..start + self.config.fft_size],
                lo_bin,
                hi_bin,
                scratch,
                row,
            );
        }
    }
}

/// A streaming STFT that accepts arbitrary audio chunks and yields frames as
/// soon as they complete, mirroring the Android app's 5-frame ring buffer.
///
/// Consumed samples are tracked by an offset and compacted in bulk, so each
/// pushed sample is moved O(1) times instead of once per emitted frame, and
/// a persistent [`StftScratch`] keeps per-frame FFT work allocation-free.
#[derive(Debug, Clone)]
pub struct StreamingStft {
    /// The immutable plan, behind an [`Arc`](std::sync::Arc) so many
    /// streams (e.g. every session of a serve shard) can share one twiddle
    /// table and window instead of planning per session.
    stft: std::sync::Arc<Stft>,
    buffer: Vec<f64>,
    /// Index of the first unconsumed sample in `buffer`.
    start: usize,
    scratch: StftScratch,
    /// Persistent output row handed to `push_band_into` callbacks.
    band: Vec<f64>,
    /// Absolute samples received since creation/reset (the logical clock
    /// behind trace timestamps).
    total_in: u64,
}

impl StreamingStft {
    /// Creates a streaming wrapper around a planned STFT.
    pub fn new(stft: Stft) -> Self {
        Self::with_shared_plan(std::sync::Arc::new(stft))
    }

    /// Creates a streaming wrapper over an already shared plan, so N
    /// streams amortize one twiddle table and window (the plan is
    /// immutable; sharing cannot change any output bit).
    pub fn with_shared_plan(stft: std::sync::Arc<Stft>) -> Self {
        let scratch = stft.make_scratch();
        StreamingStft { stft, buffer: Vec::new(), start: 0, scratch, band: Vec::new(), total_in: 0 }
    }

    /// The STFT plan driving this stream.
    pub fn stft(&self) -> &Stft {
        &self.stft
    }

    /// Appends samples and invokes `on_frame` with the `[lo_bin, hi_bin]`
    /// magnitudes of every frame that became complete, in order, without
    /// allocating: the callback borrows a persistent internal row that is
    /// overwritten by the next frame.
    ///
    /// The emitted rows are bitwise identical to [`Stft::process_band`] over
    /// the concatenated stream, independent of how the samples are chunked.
    ///
    /// # Panics
    ///
    /// Panics if the band is invalid (see [`Stft::frame_band_into`]).
    pub fn push_band_into(
        &mut self,
        samples: &[f64],
        lo_bin: usize,
        hi_bin: usize,
        mut on_frame: impl FnMut(&[f64]),
    ) {
        let scratch = &mut self.scratch;
        let band = &mut self.band;
        let buffer = &mut self.buffer;
        let start = &mut self.start;
        let total_in = &mut self.total_in;
        drain_frames(
            &self.stft, buffer, start, total_in, band, scratch, samples, lo_bin, hi_bin,
            &mut on_frame,
        );
    }

    /// Like [`StreamingStft::push_band_into`], but frames run through an
    /// externally owned scratch arena instead of the embedded one.
    ///
    /// This is the batched-shard entry point: a serve shard that drains
    /// several sessions' pushes in one pass hands every session the same
    /// scratch, so the windowed-frame, packed-FFT, and spectrum buffers stay
    /// hot in cache across sessions instead of ping-ponging between per-
    /// session arenas. The emitted rows are bitwise identical to
    /// [`StreamingStft::push_band_into`] — the scratch is pure workspace and
    /// carries no state between frames.
    pub fn push_band_into_with_scratch(
        &mut self,
        samples: &[f64],
        lo_bin: usize,
        hi_bin: usize,
        scratch: &mut StftScratch,
        mut on_frame: impl FnMut(&[f64]),
    ) {
        drain_frames(
            &self.stft,
            &mut self.buffer,
            &mut self.start,
            &mut self.total_in,
            &mut self.band,
            scratch,
            samples,
            lo_bin,
            hi_bin,
            &mut on_frame,
        );
    }

    /// Appends samples and returns magnitude spectra for every frame that
    /// became complete.
    ///
    /// Allocating convenience wrapper around
    /// [`StreamingStft::push_band_into`]; incremental consumers should use
    /// the callback form directly.
    pub fn push(&mut self, samples: &[f64]) -> Vec<Vec<f64>> {
        let mut out = Vec::new();
        let hi = self.stft.config.fft_size / 2;
        self.push_band_into(samples, 0, hi, |row| out.push(row.to_vec()));
        out
    }

    /// Number of samples buffered but not yet emitted as a frame.
    pub fn pending(&self) -> usize {
        self.buffer.len() - self.start
    }

    /// Clears the internal buffer (e.g. between text-entry sessions) and
    /// rewinds the logical sample clock.
    pub fn reset(&mut self) {
        self.buffer.clear();
        self.start = 0;
        self.total_in = 0;
    }

    /// Captures the dynamic state of this stream — the not-yet-framed
    /// sample tail and the logical sample clock — detached from the plan.
    ///
    /// Frame emission depends only on the pending window content, so a
    /// stream rebuilt from this state over an identical plan emits bitwise
    /// the same frames for any future pushes (see
    /// [`StreamingStft::restore_state`]).
    pub fn export_state(&self) -> StreamingStftState {
        StreamingStftState {
            pending: self.buffer[self.start..].to_vec(),
            total_in: self.total_in,
        }
    }

    /// Overwrites this stream's dynamic state with a previously exported
    /// one. The plan (FFT size, hop, window, sample rate) must match the
    /// plan the state was exported under for the resumed output to be
    /// meaningful; the caller is responsible for that pairing.
    pub fn restore_state(&mut self, state: &StreamingStftState) {
        self.buffer.clear();
        self.buffer.extend_from_slice(&state.pending);
        self.start = 0;
        self.total_in = state.total_in;
    }
}

/// Plan-independent dynamic state of a [`StreamingStft`]: everything a
/// suspended stream needs to resume bitwise-identically once paired with an
/// identical plan. Scratch arenas are intentionally absent — they carry no
/// state between frames.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct StreamingStftState {
    /// Samples buffered but not yet consumed by a completed frame.
    pub pending: Vec<f64>,
    /// Absolute samples received since creation/reset (the logical clock).
    pub total_in: u64,
}

/// Shared frame loop behind both [`StreamingStft`] push entry points, split
/// out as a free function so the embedded-scratch and shared-scratch paths
/// borrow disjoint fields without duplicating the drain logic.
#[allow(clippy::too_many_arguments)]
fn drain_frames(
    stft: &Stft,
    buffer: &mut Vec<f64>,
    start: &mut usize,
    total_in: &mut u64,
    band: &mut Vec<f64>,
    scratch: &mut StftScratch,
    samples: &[f64],
    lo_bin: usize,
    hi_bin: usize,
    on_frame: &mut impl FnMut(&[f64]),
) {
    buffer.extend_from_slice(samples);
    *total_in += samples.len() as u64;
    let (size, hop) = (stft.config.fft_size, stft.config.hop);
    band.resize(hi_bin.saturating_sub(lo_bin) + 1, 0.0);
    let mut frames = 0u32;
    while buffer.len() - *start >= size {
        stft.frame_band_into(&buffer[*start..*start + size], lo_bin, hi_bin, scratch, band);
        frames += 1;
        on_frame(band);
        *start += hop;
    }
    if echowrite_trace::enabled() {
        let tick = echowrite_trace::samples_to_us(*total_in, stft.config.sample_rate);
        echowrite_trace::counter(
            echowrite_trace::Stage::Stft,
            "frames_emitted",
            tick,
            f64::from(frames),
        );
    }
    // Compact once the dead prefix dominates the live tail.
    if *start > size.max(buffer.len() - *start) {
        buffer.copy_within(*start.., 0);
        buffer.truncate(buffer.len() - *start);
        *start = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tone(freq: f64, rate: f64, n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| (2.0 * std::f64::consts::PI * freq * i as f64 / rate).sin())
            .collect()
    }

    #[test]
    fn paper_config_values() {
        let c = StftConfig::paper();
        assert!((c.frame_seconds() - 0.1857).abs() < 1e-3);
        assert!((c.hop_seconds() - 0.02322).abs() < 1e-4);
        // 20 kHz lands at bin 3715 and the paper's ROI is ~350 bins wide.
        assert_eq!(c.frequency_bin(20_000.0), 3715);
        let lo = c.frequency_bin(19_530.0);
        let hi = c.frequency_bin(20_470.0);
        assert!((hi - lo + 1) as i64 - 350 <= 3 && (hi - lo + 1) >= 170, "roi width {}", hi - lo + 1);
    }

    #[test]
    fn bin_frequency_roundtrip() {
        let c = StftConfig::paper();
        for f in [1000.0, 5000.0, 19_530.0, 20_470.0] {
            let b = c.frequency_bin(f);
            assert!((c.bin_frequency(b) - f).abs() < c.sample_rate / c.fft_size as f64);
        }
    }

    #[test]
    fn frame_count_matches_definition() {
        let stft = Stft::new(StftConfig {
            fft_size: 8,
            hop: 4,
            window: WindowKind::Rectangular,
            sample_rate: 100.0,
        });
        assert_eq!(stft.frame_count(7), 0);
        assert_eq!(stft.frame_count(8), 1);
        assert_eq!(stft.frame_count(11), 1);
        assert_eq!(stft.frame_count(12), 2);
        assert_eq!(stft.frame_count(16), 3);
    }

    #[test]
    fn tone_peaks_in_expected_bin() {
        let cfg = StftConfig {
            fft_size: 1024,
            hop: 256,
            window: WindowKind::Hann,
            sample_rate: 44_100.0,
        };
        let stft = Stft::new(cfg);
        let sig = tone(20_000.0, 44_100.0, 4096);
        let frames = stft.process(&sig);
        assert!(!frames.is_empty());
        for frame in &frames {
            let peak = frame
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(b.1))
                .unwrap()
                .0;
            assert_eq!(peak, cfg.frequency_bin(20_000.0));
        }
    }

    #[test]
    fn band_processing_equals_slice_of_full() {
        let cfg = StftConfig {
            fft_size: 512,
            hop: 128,
            window: WindowKind::Hann,
            sample_rate: 44_100.0,
        };
        let stft = Stft::new(cfg);
        let sig = tone(10_000.0, 44_100.0, 2048);
        let full = stft.process(&sig);
        let band = stft.process_band(&sig, 100, 150);
        for (f, b) in full.iter().zip(&band) {
            assert_eq!(&f[100..=150], b.as_slice());
        }
    }

    #[test]
    fn band_into_flat_matches_per_frame_rows() {
        let cfg = StftConfig {
            fft_size: 512,
            hop: 128,
            window: WindowKind::Hann,
            sample_rate: 44_100.0,
        };
        let stft = Stft::new(cfg);
        let sig = tone(9_000.0, 44_100.0, 3000);
        let (lo, hi) = (80, 140);
        let rows = stft.process_band(&sig, lo, hi);
        let frames = stft.frame_count(sig.len());
        assert_eq!(rows.len(), frames);
        let band = hi - lo + 1;
        let mut flat = vec![0.0; frames * band];
        let mut scratch = stft.make_scratch();
        stft.process_band_into(&sig, lo, hi, &mut scratch, &mut flat);
        for (f, row) in rows.iter().enumerate() {
            assert_eq!(row.as_slice(), &flat[f * band..(f + 1) * band]);
        }
    }

    #[test]
    fn scratch_reuse_is_stateless() {
        let cfg = StftConfig {
            fft_size: 256,
            hop: 64,
            window: WindowKind::Hann,
            sample_rate: 8000.0,
        };
        let stft = Stft::new(cfg);
        let a = tone(1000.0, 8000.0, 256);
        let b = tone(2300.0, 8000.0, 256);
        let mut scratch = stft.make_scratch();
        let mut first = vec![0.0; stft.bins()];
        stft.frame_magnitudes_into(&a, &mut scratch, &mut first);
        let mut other = vec![0.0; stft.bins()];
        stft.frame_magnitudes_into(&b, &mut scratch, &mut other);
        let mut again = vec![0.0; stft.bins()];
        stft.frame_magnitudes_into(&a, &mut scratch, &mut again);
        assert_eq!(first, again);
        assert_ne!(first, other);
    }

    #[test]
    #[should_panic(expected = "band output length mismatch")]
    fn frame_band_into_rejects_wrong_output_len() {
        let cfg = StftConfig {
            fft_size: 64,
            hop: 16,
            window: WindowKind::Hann,
            sample_rate: 8000.0,
        };
        let stft = Stft::new(cfg);
        let mut scratch = stft.make_scratch();
        let mut out = vec![0.0; 3];
        stft.frame_band_into(&[0.0; 64], 0, 10, &mut scratch, &mut out);
    }

    #[test]
    fn streaming_matches_offline() {
        let cfg = StftConfig {
            fft_size: 256,
            hop: 64,
            window: WindowKind::Hann,
            sample_rate: 8000.0,
        };
        let stft = Stft::new(cfg);
        let sig = tone(1000.0, 8000.0, 2000);
        let offline = stft.process(&sig);

        let mut streaming = StreamingStft::new(Stft::new(cfg));
        let mut collected = Vec::new();
        for chunk in sig.chunks(97) {
            collected.extend(streaming.push(chunk));
        }
        assert_eq!(collected.len(), offline.len());
        for (a, b) in collected.iter().zip(&offline) {
            for (x, y) in a.iter().zip(b) {
                assert!((x - y).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn push_band_into_matches_process_band_bitwise() {
        let cfg = StftConfig {
            fft_size: 256,
            hop: 64,
            window: WindowKind::Hann,
            sample_rate: 8000.0,
        };
        let stft = Stft::new(cfg);
        let sig = tone(1000.0, 8000.0, 2317);
        let (lo, hi) = (20usize, 45usize);
        let offline = stft.process_band(&sig, lo, hi);

        for chunk_sizes in [vec![1usize, 13, 97, 500], vec![2317], vec![64]] {
            let mut streaming = StreamingStft::new(Stft::new(cfg));
            let mut collected: Vec<Vec<f64>> = Vec::new();
            let mut pos = 0usize;
            let mut ci = 0usize;
            while pos < sig.len() {
                let len = chunk_sizes[ci % chunk_sizes.len()].min(sig.len() - pos);
                ci += 1;
                streaming.push_band_into(&sig[pos..pos + len], lo, hi, |row| {
                    collected.push(row.to_vec());
                });
                pos += len;
            }
            assert_eq!(collected.len(), offline.len(), "chunking {chunk_sizes:?}");
            for (f, (a, b)) in collected.iter().zip(&offline).enumerate() {
                assert_eq!(a.len(), b.len());
                for (r, (x, y)) in a.iter().zip(b).enumerate() {
                    assert!(x == y, "frame {f} bin {r} diverges: {x} vs {y}");
                }
            }
        }
    }

    #[test]
    fn shared_scratch_push_matches_embedded_scratch_bitwise() {
        let cfg = StftConfig {
            fft_size: 256,
            hop: 64,
            window: WindowKind::Hann,
            sample_rate: 8000.0,
        };
        let sig = tone(1700.0, 8000.0, 1999);
        let (lo, hi) = (20usize, 45usize);

        let mut embedded = StreamingStft::new(Stft::new(cfg));
        let mut want: Vec<Vec<f64>> = Vec::new();
        for chunk in sig.chunks(91) {
            embedded.push_band_into(chunk, lo, hi, |row| want.push(row.to_vec()));
        }

        // One external scratch shared across two interleaved sessions, as the
        // batched serve shard does.
        let plan = Stft::new(cfg);
        let mut shared = plan.make_scratch();
        let mut a = StreamingStft::new(Stft::new(cfg));
        let mut b = StreamingStft::new(Stft::new(cfg));
        let mut got_a: Vec<Vec<f64>> = Vec::new();
        let mut got_b: Vec<Vec<f64>> = Vec::new();
        for chunk in sig.chunks(91) {
            a.push_band_into_with_scratch(chunk, lo, hi, &mut shared, |row| {
                got_a.push(row.to_vec());
            });
            b.push_band_into_with_scratch(chunk, lo, hi, &mut shared, |row| {
                got_b.push(row.to_vec());
            });
        }
        assert_eq!(want, got_a);
        assert_eq!(want, got_b);
    }

    #[test]
    fn streaming_reset_discards_partial_frame() {
        let cfg = StftConfig {
            fft_size: 128,
            hop: 32,
            window: WindowKind::Hann,
            sample_rate: 8000.0,
        };
        let mut s = StreamingStft::new(Stft::new(cfg));
        s.push(&vec![0.1; 100]);
        assert_eq!(s.pending(), 100);
        s.reset();
        assert_eq!(s.pending(), 0);
        assert!(s.push(&vec![0.1; 100]).is_empty());
    }

    #[test]
    fn state_roundtrip_resumes_bitwise() {
        let cfg = StftConfig {
            fft_size: 256,
            hop: 64,
            window: WindowKind::Hann,
            sample_rate: 8000.0,
        };
        let sig = tone(1234.0, 8000.0, 2500);
        let (lo, hi) = (10usize, 40usize);
        // Uninterrupted reference.
        let mut oracle = StreamingStft::new(Stft::new(cfg));
        let mut want: Vec<Vec<f64>> = Vec::new();
        for chunk in sig.chunks(77) {
            oracle.push_band_into(chunk, lo, hi, |row| want.push(row.to_vec()));
        }
        // Suspend mid-stream at an awkward point, restore into a fresh
        // stream, finish: the emitted frames must be bitwise identical.
        let cut = 1003;
        let mut first = StreamingStft::new(Stft::new(cfg));
        let mut got: Vec<Vec<f64>> = Vec::new();
        for chunk in sig[..cut].chunks(77) {
            first.push_band_into(chunk, lo, hi, |row| got.push(row.to_vec()));
        }
        let state = first.export_state();
        assert_eq!(state.total_in, cut as u64);
        drop(first);
        let mut resumed = StreamingStft::new(Stft::new(cfg));
        resumed.restore_state(&state);
        for chunk in sig[cut..].chunks(77) {
            resumed.push_band_into(chunk, lo, hi, |row| got.push(row.to_vec()));
        }
        assert_eq!(want.len(), got.len());
        for (f, (a, b)) in want.iter().zip(&got).enumerate() {
            assert_eq!(a, b, "frame {f} diverged after restore");
        }
    }

    #[test]
    #[should_panic(expected = "hop must be positive")]
    fn zero_hop_rejected() {
        Stft::new(StftConfig {
            fft_size: 64,
            hop: 0,
            window: WindowKind::Hann,
            sample_rate: 8000.0,
        });
    }

    #[test]
    #[should_panic(expected = "beyond Nyquist")]
    fn band_beyond_nyquist_rejected() {
        let stft = Stft::new(StftConfig {
            fft_size: 64,
            hop: 16,
            window: WindowKind::Hann,
            sample_rate: 8000.0,
        });
        stft.process_band(&[0.0; 64], 0, 64);
    }
}
