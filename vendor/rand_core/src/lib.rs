//! Offline stand-in for `rand_core` 0.6: the two traits the workspace uses.
//!
//! `seed_from_u64` reproduces upstream's PCG32-based seed expansion so a
//! generator seeded here yields the same stream as one seeded by the real
//! rand_core.

/// A source of random 32/64-bit words.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(4);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u32().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let word = self.next_u32().to_le_bytes();
            rem.copy_from_slice(&word[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator constructible from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// The seed byte array type.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed exactly as rand_core 0.6 does
    /// (a PCG32 sequence written little-endian in 4-byte chunks).
    fn seed_from_u64(mut state: u64) -> Self {
        const MUL: u64 = 6364136223846793005;
        const INC: u64 = 11634580027462260723;
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            state = state.wrapping_mul(MUL).wrapping_add(INC);
            let xorshifted = (((state >> 18) ^ state) >> 27) as u32;
            let rot = (state >> 59) as u32;
            let x = xorshifted.rotate_right(rot);
            chunk.copy_from_slice(&x.to_le_bytes()[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u32);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.0 += 1;
            self.0
        }
        fn next_u64(&mut self) -> u64 {
            let lo = self.next_u32() as u64;
            let hi = self.next_u32() as u64;
            (hi << 32) | lo
        }
    }

    #[derive(Debug, PartialEq)]
    struct SeedCapture([u8; 32]);
    impl SeedableRng for SeedCapture {
        type Seed = [u8; 32];
        fn from_seed(seed: [u8; 32]) -> Self {
            SeedCapture(seed)
        }
    }

    #[test]
    fn fill_bytes_is_little_endian_words() {
        let mut rng = Counter(0);
        let mut buf = [0u8; 6];
        rng.fill_bytes(&mut buf);
        assert_eq!(&buf[..4], &1u32.to_le_bytes());
        assert_eq!(&buf[4..], &2u32.to_le_bytes()[..2]);
    }

    #[test]
    fn seed_from_u64_is_deterministic_and_seed_sensitive() {
        let a = SeedCapture::seed_from_u64(1);
        let b = SeedCapture::seed_from_u64(1);
        let c = SeedCapture::seed_from_u64(2);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
